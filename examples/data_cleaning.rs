//! Error-detection workflow: train an approximate-FD model via exploratory
//! training, then use it to flag erroneous tuples — the paper's motivating
//! application (an annotator cleaning patient-like records with an
//! error-detection system).
//!
//! ```text
//! cargo run --release --example data_cleaning
//! ```
//!
//! Compares the learner trained by a *learning* annotator against two
//! reference points: a stationary annotator with perfect knowledge (what
//! classic active learning assumes exists) and unsupervised discovery
//! straight from the dirty data.

// Example code favours direct `expect` over error plumbing.
#![allow(clippy::expect_used, clippy::unwrap_used)]
use std::sync::Arc;

use exploratory_training::belief::{
    build_prior, Belief, Beta, EvidenceConfig, PriorConfig, PriorSpec,
};
use exploratory_training::data::gen::DatasetName;
use exploratory_training::data::{inject_errors, InjectConfig};
use exploratory_training::fd::discovery::{discover, DiscoveryConfig};
use exploratory_training::fd::{predict_labels, Fd, HypothesisSpace, ViolationIndex};
use exploratory_training::game::trainer::{FpTrainer, StationaryTrainer, Trainer};
use exploratory_training::game::{
    run_session, Learner, ResponseStrategy, SessionConfig, StrategyKind,
};
use exploratory_training::metrics::ConfusionMatrix;

fn main() {
    // A Hospital-like dataset (19 attributes, six exact FDs) with ~15%
    // violations.
    let mut ds = DatasetName::Hospital.generate(300, 9);
    let truth = ds.exact_fds.clone();
    let injection = inject_errors(
        &mut ds.table,
        &truth,
        &[],
        &InjectConfig::with_degree(0.15, 9),
    );
    let dirty = &injection.dirty_rows;
    println!(
        "Hospital: {} rows, {} genuinely dirty",
        ds.table.nrows(),
        injection.dirty_row_count()
    );

    let pinned: Vec<Fd> = truth.iter().map(Fd::from_spec).collect();
    let space = Arc::new(HypothesisSpace::capped(&ds.table, 3, 38, 25, &pinned));
    let index = ViolationIndex::build(&ds.table, &space);
    let actual: Vec<bool> = dirty.clone();
    let all_rows: Vec<usize> = (0..ds.table.nrows()).collect();

    let score = |conf: &[f64]| -> ConfusionMatrix {
        let predicted = predict_labels(&index, conf, &all_rows);
        ConfusionMatrix::from_predictions(&predicted, &actual)
    };

    // --- Baseline 1: unsupervised discovery on the dirty data. ---
    let found = discover(
        &ds.table,
        &DiscoveryConfig {
            max_lhs: 2,
            max_violation_rate: 0.3,
            min_support: 25,
        },
    );
    let mut conf_unsup = vec![0.0; space.len()];
    for d in &found {
        if let Some(i) = space.index_of(&d.fd) {
            conf_unsup[i] = d.stats.confidence();
        }
    }
    let m = score(&conf_unsup);
    println!(
        "\nunsupervised discovery : P {:.2}  R {:.2}  F1 {:.2}   ({} FDs found)",
        m.precision(),
        m.recall(),
        m.f1(),
        found.len()
    );

    // --- Baseline 2: a stationary, perfectly-informed annotator. ---
    let oracle_belief = Belief::new(
        space.clone(),
        space
            .fds()
            .iter()
            .map(|fd| {
                if pinned.contains(fd) {
                    Beta::from_mean_std(0.98, 0.01)
                } else {
                    Beta::from_mean_std(0.05, 0.01)
                }
            })
            .collect(),
    );
    let mut stationary = StationaryTrainer::new(oracle_belief);
    let m = score(&stationary.confidences());
    println!(
        "stationary oracle model: P {:.2}  R {:.2}  F1 {:.2}",
        m.precision(),
        m.recall(),
        m.f1()
    );
    let _ = stationary.respond(&ds.table, &[0, 1]); // (trait demo; no-op learning)

    // --- Exploratory training: a *learning* annotator. ---
    let prior_cfg = PriorConfig {
        strength: 0.3,
        ..PriorConfig::default()
    };
    let trainer_prior = build_prior(
        &PriorSpec::Random { seed: 3 },
        &prior_cfg,
        &space,
        &ds.table,
    );
    let learner_prior = build_prior(&PriorSpec::DataEstimate, &prior_cfg, &space, &ds.table);
    let mut trainer = FpTrainer::new(trainer_prior, EvidenceConfig::default());
    let mut learner = Learner::new(
        learner_prior,
        ResponseStrategy::paper(StrategyKind::StochasticUncertainty),
        EvidenceConfig::default(),
        5,
    );
    let result = run_session(
        &ds.table,
        space.clone(),
        dirty,
        SessionConfig::default(),
        &mut trainer,
        &mut learner,
    );
    let m = score(&result.learner_confidences);
    println!(
        "exploratory training   : P {:.2}  R {:.2}  F1 {:.2}   (30 interactions, 10 tuples each)",
        m.precision(),
        m.recall(),
        m.f1()
    );

    // Cell-level diagnosis for the strongest learned FD.
    let (best_idx, best_conf) = result
        .learner_confidences
        .iter()
        .copied()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty space");
    let best_fd = space.fd(best_idx);
    let cells = exploratory_training::fd::cell_violations(&ds.table, &best_fd);
    println!(
        "\nstrongest learned FD {} (confidence {:.2}) implicates {} cells",
        best_fd.display(ds.table.schema()),
        best_conf,
        cells.len()
    );
}
