//! Convergence laboratory: how priors, temperature and strategy shape the
//! joint learning dynamics (Figures 1/3 and Proposition 1 in miniature).
//!
//! ```text
//! cargo run --release --example convergence_lab
//! ```

use exploratory_training::data::gen::DatasetName;
use exploratory_training::experiments::{ConvergenceExperiment, PriorKind};
use exploratory_training::game::StrategyKind;
use exploratory_training::metrics::{auc, iterations_to_threshold};

fn run(label: &str, e: &ConvergenceExperiment) {
    println!("\n--- {label} ---");
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>14}",
        "method", "MAE@0", "MAE@end", "AUC", "iters to 0.25"
    );
    for m in e.run() {
        let reach = iterations_to_threshold(&m.mae.mean, 0.25)
            .map(|t| t.to_string())
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<16} {:>10.3} {:>10.3} {:>10.2} {:>14}",
            m.kind.as_str(),
            m.mae.mean[0],
            m.mae.last_mean(),
            auc(&m.mae.mean),
            reach
        );
    }
}

fn main() {
    // The two headline settings of the paper's empirical study.
    let informed = ConvergenceExperiment::paper(
        DatasetName::Omdb,
        0.10,
        PriorKind::Random,
        PriorKind::DataEstimate,
    );
    run(
        "informed learner prior (Figure 1 setting) — expect US sharpest",
        &informed,
    );

    let uninformed = ConvergenceExperiment::paper(
        DatasetName::Omdb,
        0.10,
        PriorKind::Random,
        PriorKind::Uniform(0.9),
    );
    run(
        "uninformed learner prior (Figure 3 setting) — expect US to lose its edge",
        &uninformed,
    );

    // Temperature sweep: γ interpolates between greedy and uniform.
    println!("\n--- temperature sweep (StochasticBR, informed prior) ---");
    println!("{:>8} {:>12}", "gamma", "final MAE");
    for gamma in [0.05, 0.25, 0.5, 2.0, 10.0] {
        let mut e = ConvergenceExperiment::paper(
            DatasetName::Omdb,
            0.10,
            PriorKind::Random,
            PriorKind::DataEstimate,
        );
        e.methods = vec![StrategyKind::StochasticBestResponse];
        e.gamma = gamma;
        e.runs = 3;
        let m = &e.run()[0];
        println!("{:>8} {:>12.3}", gamma, m.mae.last_mean());
    }
    println!("\nγ → 0 approaches greedy Best; γ → ∞ approaches Random (paper §2, §4).");
}
