//! The FD substrate on its own: discovery, measures, keys, covers, repairs.
//!
//! ```text
//! cargo run --release --example fd_discovery
//! ```
//!
//! Exploratory training assumes an FD toolbox underneath (the paper cites
//! TANE, CORDS, Holoclean, Livshits et al.); this example walks that
//! toolbox over a dirty Hospital-like dataset: discover approximate FDs two
//! independent ways, compare approximation measures, find keys, reduce the
//! discovered set to a minimal cover, and propose majority-consensus
//! repairs.

use exploratory_training::data::gen::DatasetName;
use exploratory_training::data::{inject_errors, violation_degree, InjectConfig};
use exploratory_training::fd::discovery::{discover, DiscoveryConfig};
use exploratory_training::fd::{
    apply_repairs, discover_keys, discover_tane, g1_of, g2_g3, minimal_cover, propose_repairs, Fd,
    HypothesisSpace,
};

fn main() {
    let mut ds = DatasetName::Hospital.generate(300, 17);
    let truth = ds.exact_fds.clone();
    let injection = inject_errors(
        &mut ds.table,
        &truth,
        &[],
        &InjectConfig::with_degree(0.10, 17),
    );
    let schema = ds.table.schema().clone();
    println!(
        "Hospital-like dataset: {} rows, {} dirty, degree {:.2}\n",
        ds.table.nrows(),
        injection.dirty_row_count(),
        injection.achieved_degree
    );

    // --- 1. Discovery, two independent implementations. ---
    let tane = discover_tane(&ds.table, 2, 0.08);
    let groupby = discover(
        &ds.table,
        &DiscoveryConfig {
            max_lhs: 2,
            max_violation_rate: 0.25,
            min_support: 25,
        },
    );
    println!(
        "TANE (g3 <= 0.08): {} FDs; group-by levelwise (rate <= 0.25): {} FDs",
        tane.len(),
        groupby.len()
    );
    println!("\nTANE findings (ground-truth FDs marked):");
    for d in tane.iter().take(10) {
        let is_true = truth
            .iter()
            .any(|spec| Fd::from_spec(spec) == d.fd || d.fd.implies(&Fd::from_spec(spec)));
        println!(
            "  {:<40} g3={:.3}{}",
            d.fd.display(&schema),
            d.g3,
            if is_true { "   <- ground truth" } else { "" }
        );
    }

    // --- 2. Approximation measures side by side. ---
    println!("\nmeasures for the ground-truth FDs (dirty data):");
    println!("{:<42} {:>6} {:>6} {:>6}", "FD", "g1", "g2", "g3");
    for spec in &truth {
        let fd = Fd::from_spec(spec);
        let g1 = g1_of(&ds.table, &fd);
        let m = g2_g3(&ds.table, &fd);
        println!(
            "{:<42} {:>6.3} {:>6.3} {:>6.3}",
            fd.display(&schema),
            g1.g1(),
            m.g2,
            m.g3
        );
    }

    // --- 3. Keys. ---
    let keys = discover_keys(&ds.table, 2, 0.0);
    println!("\nminimal exact keys (<= 2 attributes): {}", keys.len());
    for k in keys.iter().take(5) {
        println!("  {{{}}}", k.attrs.display(&schema));
    }

    // --- 4. Minimal cover of the discovered exact FDs. ---
    let exact: Vec<Fd> = discover_tane(&ds.table, 2, 0.0)
        .into_iter()
        .map(|d| d.fd)
        .collect();
    let cover = minimal_cover(&exact);
    println!(
        "\nminimal cover: {} exact FDs reduce to {}",
        exact.len(),
        cover.len()
    );

    // --- 5. Majority-consensus repairs from the ground-truth FDs. ---
    let space = HypothesisSpace::from_fds(truth.iter().map(Fd::from_spec));
    let conf = vec![0.95; space.len()];
    let repairs = propose_repairs(&ds.table, &space, &conf, 0.5);
    let before = violation_degree(&ds.table, &truth);
    let mut repaired = ds.table.clone();
    let applied = apply_repairs(&mut repaired, &repairs);
    let after = violation_degree(&repaired, &truth);
    println!(
        "\nrepairs: {} proposals, {} applied; violation degree {:.3} -> {:.3}",
        repairs.len(),
        applied,
        before,
        after
    );
}
