//! Service-layer walkthrough: start the session server in-process, drive
//! one exploratory-training session over TCP as a wire client, and verify
//! the reported MAE curve equals a batch `run_session` with the same seed
//! — exactly, not approximately.
//!
//! ```text
//! cargo run --release --example serve_session
//! ```
//!
//! The same dialogue works against a standalone server:
//! `cargo run --release -p et-serve --bin serve -- --addr 127.0.0.1:7171`.

// Example code favours direct `expect` over error plumbing.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use exploratory_training::game::StrategyKind;
use exploratory_training::serve::{
    run_batch, spawn, Client, CreateSessionSpec, Json, ServerConfig,
};

fn main() {
    // 1. An in-process server on an ephemeral port. The `serve` binary
    //    wraps exactly this call.
    let handle = spawn(ServerConfig::default()).expect("bind ephemeral port");
    let addr = handle.addr().to_string();
    println!("server listening on {addr}");

    // 2. Create a session over the wire. Every request and response is one
    //    line of JSON; the client below is a thin convenience over that.
    let spec = CreateSessionSpec {
        rows: 140,
        iterations: 8,
        strategy: StrategyKind::StochasticBestResponse,
        seed: Some(41),
        ..CreateSessionSpec::default()
    };
    println!(
        "-> {}",
        exploratory_training::serve::Request::Create(spec.clone())
            .to_json()
            .encode()
    );
    let mut client = Client::connect(&addr).expect("connect");
    let (session, seed) = client.create_session(&spec).expect("create session");
    println!("<- session {session} created (seed {seed})");

    // 3. The annotation loop: ask for pairs, look at them, submit labels.
    //    Omitting `labels` delegates to the hosted simulated annotator,
    //    which reproduces the batch loop bit for bit; a real annotator
    //    would send `{"labels": [true, false, ...]}` instead.
    let mut mae_series = Vec::new();
    loop {
        let reply = client.next_pairs(session).expect("next_pairs");
        match reply.get("reply").and_then(Json::as_str) {
            Some("pairs") => {
                let t = reply.get("t").and_then(Json::as_u64).expect("t");
                let shown = reply
                    .get("tuples")
                    .and_then(Json::as_array)
                    .map_or(0, <[Json]>::len);
                let labeled = client.submit_labels(session, None).expect("submit");
                let mae = labeled
                    .get("metrics")
                    .and_then(|m| m.get("mae"))
                    .and_then(Json::as_f64)
                    .expect("mae");
                println!("iteration {t}: {shown} tuples labeled, MAE {mae:.4}");
                mae_series.push(mae);
            }
            Some("done") => {
                let final_mae = reply
                    .get("final_mae")
                    .and_then(Json::as_f64)
                    .expect("final_mae");
                println!("session done, final MAE {final_mae:.4}");
                break;
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
    client.close_session(session).expect("close");

    // 4. The reproducibility guarantee: the wire-driven curve IS the batch
    //    curve — same seed, same bits (JSON numbers encode
    //    shortest-round-trip, so no precision is lost in transit).
    let batch = run_batch(&spec, seed).expect("batch reference");
    assert_eq!(
        mae_series,
        batch.mae_series(),
        "wire and batch curves must match exactly"
    );
    println!(
        "wire curve matches batch run_session exactly ({} iterations)",
        mae_series.len()
    );

    // 5. Graceful shutdown over the wire.
    client.shutdown_server().expect("shutdown");
    handle.wait();
    println!("server shut down cleanly");
}
