//! Quickstart: one exploratory-training session, end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a dirty OMDB-like dataset, builds the 38-FD hypothesis space,
//! gives the trainer a random prior (an annotator who has not seen the data
//! yet) and the learner a data-estimate prior, runs 30 interactions with
//! the paper's Stochastic Best Response, and prints how the two agents'
//! beliefs converge.

// Example code favours direct `expect` over error plumbing.
#![allow(clippy::expect_used, clippy::unwrap_used)]
use std::sync::Arc;

use exploratory_training::belief::{build_prior, EvidenceConfig, PriorConfig, PriorSpec};
use exploratory_training::data::gen::DatasetName;
use exploratory_training::data::{inject_errors, InjectConfig};
use exploratory_training::fd::{Fd, HypothesisSpace};
use exploratory_training::game::trainer::FpTrainer;
use exploratory_training::game::{
    run_session, Learner, ResponseStrategy, SessionConfig, StrategyKind,
};

fn main() {
    // 1. A dirty dataset: 240 OMDB-like rows, ~10% of at-risk tuple pairs
    //    violating the ground-truth FDs.
    let mut ds = DatasetName::Omdb.generate(240, 42);
    let truth = ds.exact_fds.clone();
    let injection = inject_errors(
        &mut ds.table,
        &truth,
        &[],
        &InjectConfig::with_degree(0.10, 42),
    );
    println!(
        "dataset: {} rows, {} dirty ({} cell edits, degree {:.2})",
        ds.table.nrows(),
        injection.dirty_row_count(),
        injection.edits,
        injection.achieved_degree
    );

    // 2. The hypothesis space: 38 approximate FDs spanning the quality
    //    spectrum, with the ground-truth FDs pinned in.
    let pinned: Vec<Fd> = truth.iter().map(Fd::from_spec).collect();
    let space = Arc::new(HypothesisSpace::capped(&ds.table, 4, 38, 20, &pinned));
    println!("hypothesis space: {} FDs, e.g.:", space.len());
    for fd in space.fds().iter().take(3) {
        println!("  {}", fd.display(ds.table.schema()));
    }

    // 3. Agents. The trainer is the simulated annotator (fictitious play,
    //    random prior — it will *learn about the data while labeling*); the
    //    learner starts from the usual practice of estimating confidences
    //    from the unlabeled data.
    let prior_cfg = PriorConfig {
        strength: 0.3,
        ..PriorConfig::default()
    };
    let trainer_prior = build_prior(
        &PriorSpec::Random { seed: 7 },
        &prior_cfg,
        &space,
        &ds.table,
    );
    let learner_prior = build_prior(&PriorSpec::DataEstimate, &prior_cfg, &space, &ds.table);
    let mut trainer = FpTrainer::new(trainer_prior, EvidenceConfig::default());
    let mut learner = Learner::new(
        learner_prior,
        ResponseStrategy::paper(StrategyKind::StochasticBestResponse),
        EvidenceConfig::default(),
        7,
    );

    // 4. Play the game.
    let result = run_session(
        &ds.table,
        space.clone(),
        &injection.dirty_rows,
        SessionConfig::default(),
        &mut trainer,
        &mut learner,
    );

    println!("\niter   MAE    learner-F1  agreement  dirty-labels");
    for m in result.metrics.iter().step_by(5) {
        println!(
            "{:>4}  {:.3}     {:.3}      {:.3}        {}",
            m.t, m.mae, m.learner_f1, m.agreement, m.dirty_labels
        );
    }
    let last = result.metrics.last().expect("session ran");
    println!(
        "\nafter {} interactions: MAE {:.3} -> {:.3}, learner F1 {:.3}",
        result.metrics.len(),
        result.metrics[0].mae,
        last.mae,
        last.learner_f1
    );

    // 5. What did the learner conclude? Top-5 hypotheses by confidence.
    println!("\nlearner's top hypotheses:");
    let mut ranked: Vec<(usize, f64)> = result
        .learner_confidences
        .iter()
        .copied()
        .enumerate()
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (i, c) in ranked.into_iter().take(5) {
        let fd = space.fd(i);
        let is_true = pinned.contains(&fd);
        println!(
            "  {:.2}  {}{}",
            c,
            fd.display(ds.table.schema()),
            if is_true { "   <- ground truth" } else { "" }
        );
    }
}
