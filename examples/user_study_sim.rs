//! The simulated user study: 20 annotators × 5 scenarios (paper §A).
//!
//! ```text
//! cargo run --release --example user_study_sim
//! ```
//!
//! Regenerates Table 3 (how much participants' declared hypotheses move
//! between rounds) and the Figure 2 analysis (which learning model —
//! Bayesian/FP or hypothesis testing — predicts participants' declared FDs
//! better).

use std::sync::Arc;

use exploratory_training::userstudy::{
    average_f1_change, predictor_mrr, run_study, scenarios, study_dataset, PredictorKind,
    StudyConfig,
};

fn main() {
    let cfg = StudyConfig {
        seed: 20230612, // the study is deterministic per seed
        ..StudyConfig::default()
    };
    println!(
        "{} participants ({} of them hypothesis-testers), {}–{} iterations of {} tuples",
        cfg.participants,
        cfg.ht_participants,
        cfg.min_iterations,
        cfg.max_iterations,
        cfg.sample_size
    );

    println!("\n=== Table 3: average f1-change between labeling rounds ===");
    println!("{:<10} {:>22}", "scenario", "avg |Δf1| per round");
    let mut studies = Vec::new();
    for s in scenarios() {
        let trajs = run_study(&s, &cfg);
        println!("{:<10} {:>22.4}", s.id, average_f1_change(&trajs));
        studies.push((s, trajs));
    }
    println!("(0.33 is the gap between an FD explaining 2/3 of violations and all of them)");

    println!("\n=== Figure 2: MRR@5 of each learning model per scenario ===");
    println!(
        "{:<10} {:<20} {:>8} {:>10} {:>12}",
        "scenario", "model", "MRR@5", "MRR@5 (+)", "predictions"
    );
    for (s, trajs) in &studies {
        // The exact dataset the study generated.
        let data = study_dataset(s, &cfg);
        let clean = data.clean_rows();
        let space = Arc::new(s.space());
        for predictor in PredictorKind::ALL {
            let r = predictor_mrr(&data.table, &space, trajs, &clean, predictor, 5);
            println!(
                "{:<10} {:<20} {:>8.3} {:>10.3} {:>12}",
                s.id,
                predictor.as_str(),
                r.mrr_exact,
                r.mrr_plus,
                r.predictions
            );
        }
    }
    println!(
        "\nExpected shape (paper): the Bayesian (FP) model explains annotators better\n\
         than hypothesis testing in most scenarios; hard scenarios (non-monotone\n\
         learning) depress every model."
    );
}
