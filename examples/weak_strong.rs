//! Weak/strong labeler escalation — combining exploratory training with the
//! related work the paper points at (active learning from weak and strong
//! labelers).
//!
//! ```text
//! cargo run --release --example weak_strong
//! ```
//!
//! A cheap-but-noisy annotator labels every round; an expensive accurate
//! one is consulted only when the learner's own predictions disagree with
//! the weak labels. Sweep the weak annotator's noise and watch the
//! escalation rate respond.

// Example code favours direct `expect` over error plumbing.
#![allow(clippy::expect_used, clippy::unwrap_used)]
use std::sync::Arc;

use exploratory_training::belief::{build_prior, EvidenceConfig, PriorConfig, PriorSpec};
use exploratory_training::data::gen::DatasetName;
use exploratory_training::data::{inject_errors, InjectConfig};
use exploratory_training::fd::{Fd, HypothesisSpace};
use exploratory_training::game::trainer::{FpTrainer, NoisyTrainer};
use exploratory_training::game::{
    run_weak_strong, Learner, ResponseStrategy, StrategyKind, WeakStrongConfig,
};

fn main() {
    let mut ds = DatasetName::Tax.generate(260, 31);
    let truth = ds.exact_fds.clone();
    let injection = inject_errors(
        &mut ds.table,
        &truth,
        &[],
        &InjectConfig::with_degree(0.12, 31),
    );
    let pinned: Vec<Fd> = truth.iter().map(Fd::from_spec).collect();
    let space = Arc::new(HypothesisSpace::capped(&ds.table, 3, 30, 20, &pinned));
    let prior_cfg = PriorConfig {
        strength: 0.3,
        ..PriorConfig::default()
    };

    println!(
        "Tax dataset: {} rows, {} dirty; hypothesis space {} FDs\n",
        ds.table.nrows(),
        injection.dirty_row_count(),
        space.len()
    );
    println!(
        "{:>10} {:>16} {:>14} {:>16}",
        "weak noise", "escalation rate", "final MAE", "final learner F1"
    );

    for flip in [0.0, 0.1, 0.25, 0.5] {
        // Both annotators are *learning* FP trainers; the weak one is also
        // noisy (labels flipped with probability `flip`).
        let weak_prior = build_prior(&PriorSpec::DataEstimate, &prior_cfg, &space, &ds.table);
        let strong_prior = build_prior(&PriorSpec::DataEstimate, &prior_cfg, &space, &ds.table);
        let mut weak = NoisyTrainer::new(
            FpTrainer::new(weak_prior, EvidenceConfig::default()),
            flip,
            7,
        );
        let mut strong = FpTrainer::new(strong_prior, EvidenceConfig::default());
        let learner_prior = build_prior(&PriorSpec::DataEstimate, &prior_cfg, &space, &ds.table);
        let mut learner = Learner::new(
            learner_prior,
            ResponseStrategy::paper(StrategyKind::StochasticBestResponse),
            EvidenceConfig::default(),
            11,
        );
        let result = run_weak_strong(
            &ds.table,
            space.clone(),
            &injection.dirty_rows,
            &mut weak,
            &mut strong,
            &mut learner,
            &WeakStrongConfig {
                iterations: 30,
                seed: 13,
                ..WeakStrongConfig::default()
            },
        );
        let last = result.iterations.last().expect("ran");
        println!(
            "{:>10.2} {:>16.2} {:>14.3} {:>16.3}",
            flip,
            result.escalation_rate(),
            last.mae_vs_strong,
            last.learner_f1
        );
    }
    println!("\nNoisier weak labelers trigger more escalations to the strong annotator,");
    println!("keeping the learner's model usable without paying for every label.");
}
