//! Criterion micro-benchmarks of the substrate hot paths.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use et_belief::{update_from_pair_relations, Belief, Beta};
use et_bench::fixtures::fixture;
use et_data::gen::DatasetName;
use et_data::{inject_errors, InjectConfig};
use et_fd::{discovery, g1_of, Fd, PartitionCache, SubsampleIndex, ViolationIndex};
use std::sync::Arc;

fn bench_g1(c: &mut Criterion) {
    let mut group = c.benchmark_group("g1");
    for rows in [200usize, 500, 1000] {
        let f = fixture(DatasetName::Omdb, rows, 0.1, 1);
        let fd = f.space.fd(0);
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            b.iter(|| g1_of(black_box(&f.table), black_box(&fd)))
        });
    }
    group.finish();
}

fn bench_violation_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("violation_index");
    for rows in [200usize, 500] {
        let f = fixture(DatasetName::Hospital, rows, 0.15, 2);
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            b.iter(|| ViolationIndex::build(black_box(&f.table), black_box(&f.space)))
        });
    }
    group.finish();
}

fn bench_violation_index_cached(c: &mut Criterion) {
    let mut group = c.benchmark_group("violation_index_cached");
    for rows in [200usize, 500] {
        let f = fixture(DatasetName::Hospital, rows, 0.15, 2);
        let cache = PartitionCache::new(&f.table);
        // Warm the cache once; the bench measures steady-state rebuilds.
        let _ = ViolationIndex::build_with(&f.table, &f.space, &cache);
        group.bench_with_input(BenchmarkId::new("warm", rows), &rows, |b, _| {
            b.iter(|| ViolationIndex::build_with(black_box(&f.table), black_box(&f.space), &cache))
        });
        group.bench_with_input(BenchmarkId::new("warm_serial", rows), &rows, |b, _| {
            b.iter(|| {
                ViolationIndex::build_with_threads(
                    black_box(&f.table),
                    black_box(&f.space),
                    &cache,
                    1,
                )
            })
        });
    }
    group.finish();
}

fn bench_subsample_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("subsample");
    let f = fixture(DatasetName::Hospital, 500, 0.15, 2);
    let cache = PartitionCache::new(&f.table);
    let _ = ViolationIndex::build_with(&f.table, &f.space, &cache);
    let sample: Vec<usize> = (0..f.table.nrows()).step_by(3).collect();
    group.bench_function("subset_rebuild", |b| {
        b.iter(|| ViolationIndex::build(&f.table.subset(black_box(&sample)), &f.space))
    });
    group.bench_function("cached_restrict", |b| {
        b.iter(|| ViolationIndex::build_subsample(&f.table, &f.space, &cache, black_box(&sample)))
    });
    let batches: Vec<Vec<usize>> = (0..20)
        .map(|t| {
            (0..10)
                .map(|i| (t * 17 + i * 3 + 1) % f.table.nrows())
                .collect()
        })
        .collect();
    group.bench_function("incremental_grow_20x10", |b| {
        b.iter(|| {
            let mut inc = SubsampleIndex::new(&f.table, &f.space);
            for batch in &batches {
                inc.grow(&f.table, &cache, black_box(batch));
            }
            inc.index().n_rows()
        })
    });
    group.finish();
}

fn bench_belief_update(c: &mut Criterion) {
    let f = fixture(DatasetName::Omdb, 300, 0.1, 3);
    let pairs: Vec<(usize, usize)> = (0..50).map(|i| (i, i + 50)).collect();
    c.bench_function("belief_update_50_pairs", |b| {
        b.iter_batched(
            || Belief::constant(f.space.clone(), Beta::new(2.0, 2.0)),
            |mut belief| update_from_pair_relations(&mut belief, &f.table, black_box(&pairs), 1.0),
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_injection(c: &mut Criterion) {
    let mut group = c.benchmark_group("inject");
    for degree in [0.05f64, 0.20] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("deg{degree}")),
            &degree,
            |b, &degree| {
                b.iter_batched(
                    || DatasetName::Omdb.generate(300, 7),
                    |mut ds| {
                        let specs = ds.exact_fds.clone();
                        inject_errors(
                            &mut ds.table,
                            &specs,
                            &[],
                            &InjectConfig::with_degree(degree, 9),
                        )
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_partitions(c: &mut Criterion) {
    let f = fixture(DatasetName::Hospital, 500, 0.1, 7);
    c.bench_function("stripped_partition_product", |b| {
        let p1 = et_fd::StrippedPartition::of_attr(&f.table, 0);
        let p2 = et_fd::StrippedPartition::of_attr(&f.table, 9);
        b.iter(|| black_box(&p1).product(black_box(&p2)))
    });
    c.bench_function("tane_lhs2_hospital", |b| {
        b.iter(|| et_fd::discover_tane(black_box(&f.table), 2, 0.05))
    });
}

fn bench_discovery(c: &mut Criterion) {
    let f = fixture(DatasetName::Airport, 300, 0.1, 5);
    c.bench_function("discovery_lhs2", |b| {
        b.iter(|| {
            discovery::discover(
                black_box(&f.table),
                &discovery::DiscoveryConfig {
                    max_lhs: 2,
                    max_violation_rate: 0.15,
                    min_support: 3,
                },
            )
        })
    });
}

fn bench_space_capping(c: &mut Criterion) {
    let ds = DatasetName::Tax.generate(300, 11);
    let pinned: Vec<Fd> = ds.exact_fds.iter().map(Fd::from_spec).collect();
    c.bench_function("space_capped_tax_38", |b| {
        b.iter(|| {
            Arc::new(et_fd::HypothesisSpace::capped(
                black_box(&ds.table),
                3,
                38,
                3,
                &pinned,
            ))
        })
    });
}

criterion_group!(
    benches,
    bench_g1,
    bench_violation_index,
    bench_violation_index_cached,
    bench_subsample_paths,
    bench_belief_update,
    bench_injection,
    bench_partitions,
    bench_discovery,
    bench_space_capping
);
criterion_main!(benches);
