//! Per-strategy selection cost over growing candidate pools.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use et_belief::{build_prior, PriorConfig, PriorSpec};
use et_bench::fixtures::fixture;
use et_core::{CandidatePool, ResponseStrategy, ScoreCtx, StrategyKind};
use et_data::gen::DatasetName;
use et_fd::{PartitionCache, RelationMatrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_selection(c: &mut Criterion) {
    let f = fixture(DatasetName::Omdb, 400, 0.1, 1);
    let cache = PartitionCache::new(&f.table);
    let index = et_fd::ViolationIndex::build(&f.table, &f.space);
    let belief = build_prior(
        &PriorSpec::DataEstimate,
        &PriorConfig::default(),
        &f.space,
        &f.table,
    );
    let mut group = c.benchmark_group("select_5_pairs");
    for pool_cap in [200usize, 1000, 4000] {
        let pool = CandidatePool::build_with(&f.table, &f.space, &cache, pool_cap, 3);
        let candidates = pool.pairs().to_vec();
        let pairs: Vec<(usize, usize)> = candidates.iter().map(|p| (p.a, p.b)).collect();
        let matrix = RelationMatrix::build(&f.table, &f.space, &cache, &pairs);
        for kind in StrategyKind::PAPER_METHODS {
            let strategy = ResponseStrategy::paper(kind);
            // Reference (raw-cell) scoring path.
            group.bench_with_input(
                BenchmarkId::new(kind.as_str(), pool_cap),
                &pool_cap,
                |b, _| {
                    b.iter_batched(
                        || StdRng::seed_from_u64(9),
                        |mut rng| {
                            strategy.select(
                                ScoreCtx::new(black_box(&f.table)).with_index(&index),
                                black_box(&belief),
                                black_box(&candidates),
                                5,
                                &mut rng,
                            )
                        },
                        criterion::BatchSize::SmallInput,
                    )
                },
            );
            // Precomputed relation-matrix scoring path.
            group.bench_with_input(
                BenchmarkId::new(format!("{}_matrix", kind.as_str()), pool_cap),
                &pool_cap,
                |b, _| {
                    b.iter_batched(
                        || StdRng::seed_from_u64(9),
                        |mut rng| {
                            strategy.select(
                                ScoreCtx::new(black_box(&f.table))
                                    .with_index(&index)
                                    .with_matrix(&matrix),
                                black_box(&belief),
                                black_box(&candidates),
                                5,
                                &mut rng,
                            )
                        },
                        criterion::BatchSize::SmallInput,
                    )
                },
            );
        }
    }
    group.finish();
}

fn bench_pool_build(c: &mut Criterion) {
    let f = fixture(DatasetName::Hospital, 400, 0.15, 2);
    c.bench_function("pool_build_hospital_4000", |b| {
        b.iter(|| CandidatePool::build(black_box(&f.table), black_box(&f.space), 4000, 3))
    });
}

criterion_group!(benches, bench_selection, bench_pool_build);
criterion_main!(benches);
