//! Benchmark harness crate.
//!
//! * `src/bin/repro.rs` — the reproduction driver: regenerates every table
//!   and figure of the paper from the [`et_experiments`] registry
//!   (`repro --list`, `repro --exp fig1`, `repro --all`), writing reports to
//!   stdout and CSV artifacts to `results/`.
//! * `benches/substrate.rs` — criterion micro-benchmarks of the substrate
//!   hot paths (g1, violation indexing, belief updates, error injection,
//!   FD discovery).
//! * `benches/strategies.rs` — per-strategy selection cost over growing
//!   candidate pools.
//! * `benches/figures.rs` — end-to-end session cost for each figure's
//!   configuration (one bench per paper artifact family).

#![warn(missing_docs)]

/// Shared fixture sizes so benches stay comparable.
pub mod fixtures {
    use std::sync::Arc;

    use et_data::gen::DatasetName;
    use et_data::{inject_errors, InjectConfig, Table};
    use et_fd::{Fd, HypothesisSpace};

    /// A dirty dataset plus its capped hypothesis space, as the experiments
    /// use it.
    pub struct Fixture {
        /// The dirty table.
        pub table: Table,
        /// Ground-truth dirty rows.
        pub dirty_rows: Vec<bool>,
        /// The capped hypothesis space (paper: 38 FDs).
        pub space: Arc<HypothesisSpace>,
    }

    /// Builds the standard benchmark fixture.
    pub fn fixture(dataset: DatasetName, rows: usize, degree: f64, seed: u64) -> Fixture {
        let mut ds = dataset.generate(rows, seed);
        let specs = ds.exact_fds.clone();
        let inj = inject_errors(
            &mut ds.table,
            &specs,
            &[],
            &InjectConfig::with_degree(degree, seed ^ 0xBE),
        );
        let pinned: Vec<Fd> = specs.iter().map(Fd::from_spec).collect();
        let space = Arc::new(HypothesisSpace::capped(
            &ds.table,
            3,
            38,
            (rows as u64 / 12).max(5),
            &pinned,
        ));
        Fixture {
            table: ds.table,
            dirty_rows: inj.dirty_rows,
            space,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::fixtures::fixture;
    use et_data::gen::DatasetName;

    #[test]
    fn fixture_builds() {
        let f = fixture(DatasetName::Omdb, 120, 0.1, 1);
        assert_eq!(f.table.nrows(), 120);
        assert_eq!(f.dirty_rows.len(), 120);
        assert!(f.space.len() <= 38);
    }
}
