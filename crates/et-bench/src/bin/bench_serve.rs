//! Machine-readable serving benchmarks: the event-loop transport versus
//! the blocking thread-per-connection transport under an open-loop load,
//! emitted as `BENCH_serve.json`.
//!
//! ```text
//! bench_serve                    # full profile, writes BENCH_serve.json
//! bench_serve --quick            # CI smoke profile (fewer conns, short window)
//! bench_serve --out path.json    # alternate output path
//! bench_serve --gate NAME:MIN    # exit 1 if derived NAME < MIN (repeatable)
//! ```
//!
//! Each run spawns an in-process server (event or blocking transport, same
//! worker count) and drives it with `et_serve::loadgen`: C connections,
//! each holding one live session and offering a fixed per-connection round
//! rate on a fixed-increment virtual schedule. The workload is the
//! signaling-game shape — long-lived, mostly-idle annotation dialogues —
//! where the blocking server's throughput is capped by its worker count
//! (it can only converse with `workers` clients at once) while the event
//! server converses with all C. The headline derived ratio,
//! `event_loop_vs_blocking_throughput_speedup`, compares completed-round
//! throughput at the largest connection count; p99/p999 submit latency is
//! reported per run from the same log₂-µs histograms the server uses
//! internally.

use std::io::Write as _;
use std::time::Duration;

use et_serve::{run_load, spawn, CreateSessionSpec, LoadConfig, ServeMode, ServerConfig};

struct Cli {
    quick: bool,
    out: String,
    /// `(derived name, minimum)` floors enforced after emission.
    gates: Vec<(String, f64)>,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        quick: false,
        out: "BENCH_serve.json".to_string(),
        gates: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => cli.quick = true,
            "--out" => cli.out = args.next().ok_or("--out needs a path")?,
            "--gate" => {
                let spec = args.next().ok_or("--gate needs NAME:MIN")?;
                let (name, min) = spec
                    .split_once(':')
                    .ok_or_else(|| format!("--gate `{spec}` is not NAME:MIN"))?;
                let min: f64 = min
                    .parse()
                    .map_err(|e| format!("--gate `{spec}`: bad minimum: {e}"))?;
                cli.gates.push((name.to_string(), min));
            }
            "--help" | "-h" => {
                println!("usage: bench_serve [--quick] [--out PATH] [--gate NAME:MIN]...");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(cli)
}

/// Exits loudly; benches have no error channel worth plumbing.
fn fail(what: &str, e: impl std::fmt::Display) -> ! {
    eprintln!("error: {what}: {e}");
    std::process::exit(1);
}

/// One measured server-under-load run.
struct RunResult {
    transport: &'static str,
    connections: usize,
    offered_rps: f64,
    report: et_serve::LoadReport,
}

/// Spawns a fresh in-process server in `mode`, offers `connections` ×
/// `rate` rounds/s for `window`, and tears the server down.
fn run_one(
    mode: ServeMode,
    transport: &'static str,
    connections: usize,
    workers: usize,
    rate: f64,
    window: Duration,
    rows: usize,
) -> RunResult {
    let mut cfg = ServerConfig {
        workers,
        mode,
        ..ServerConfig::default()
    };
    cfg.store.capacity = connections + 8;
    cfg.store.base_seed = 2;
    let handle = match spawn(cfg) {
        Ok(h) => h,
        Err(e) => fail("spawn server", e),
    };
    // Sessions must not exhaust their iteration budget mid-window.
    let iterations = (rate * window.as_secs_f64()).ceil() as usize + 16;
    let load = LoadConfig {
        addr: handle.addr().to_string(),
        connections,
        rate,
        window,
        grace: Duration::from_secs(1),
        spec: CreateSessionSpec {
            rows,
            iterations,
            ..CreateSessionSpec::default()
        },
    };
    eprintln!("  {transport} x {connections} conns ({workers} workers, {rate} rounds/s/conn)...");
    let report = match run_load(&load) {
        Ok(r) => r,
        Err(e) => fail("load run", e),
    };
    handle.shutdown();
    handle.wait();
    eprintln!(
        "    {:.1} rounds/s completed of {:.1} offered; {}/{} conns served; \
         submit p99 {:.3}ms",
        report.throughput_rps,
        connections as f64 * rate,
        report.conns_served,
        connections,
        report.submit.p99_ms,
    );
    RunResult {
        transport,
        connections,
        offered_rps: connections as f64 * rate,
        report,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Whether a derived entry counts as a regression: every `*_speedup`
/// ratio is "event path over blocking path", so below 1.0 means the
/// event loop lost to thread-per-connection and the JSON says so.
fn is_regressed(name: &str, value: f64) -> bool {
    name.ends_with("_speedup") && value < 1.0
}

fn op_json(s: &et_serve::loadgen::OpStats) -> String {
    format!(
        "{{\"p50\": {:.3}, \"p99\": {:.3}, \"p999\": {:.3}, \"samples\": {}}}",
        s.p50_ms, s.p99_ms, s.p999_ms, s.samples
    )
}

fn emit_json(
    cli: &Cli,
    workers: usize,
    rate: f64,
    window: Duration,
    rows: usize,
    runs: &[RunResult],
    derived: &[(&str, f64)],
) -> String {
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"schema\": \"et-bench/serve-v1\",\n");
    j.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if cli.quick { "quick" } else { "full" }
    ));
    j.push_str(&format!(
        "  \"workload\": {{\"workers\": {workers}, \"rate_per_conn\": {rate}, \
         \"window_secs\": {}, \"rows\": {rows}, \"open_loop\": true}},\n",
        window.as_secs_f64()
    ));
    j.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"transport\": \"{}\", \"connections\": {}, \"offered_rps\": {:.1}, \
             \"throughput_rps\": {:.1}, \"rounds_completed\": {}, \"conns_served\": {}, \
             \"next_pairs_ms\": {}, \"submit_ms\": {}}}{}\n",
            r.transport,
            r.connections,
            r.offered_rps,
            r.report.throughput_rps,
            r.report.rounds_completed,
            r.report.conns_served,
            op_json(&r.report.next_pairs),
            op_json(&r.report.submit),
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    j.push_str("  ],\n");
    j.push_str("  \"derived\": {\n");
    for (i, (name, v)) in derived.iter().enumerate() {
        j.push_str(&format!(
            "    \"{}\": {{\"value\": {:.3}{}}}{}\n",
            json_escape(name),
            v,
            if is_regressed(name, *v) {
                ", \"regressed\": true"
            } else {
                ""
            },
            if i + 1 < derived.len() { "," } else { "" }
        ));
    }
    j.push_str("  }\n}\n");
    j
}

fn main() {
    let cli = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    // Equal worker count across transports is the point of the comparison:
    // the blocking server's concurrency cap IS its worker pool, while the
    // event server's workers only bound concurrent CPU-bound dispatches.
    let workers = 4;
    let rows = 40;
    let rate = 1.0;
    let (conn_ladder, top, window) = if cli.quick {
        (vec![32usize], 128usize, Duration::from_secs(2))
    } else {
        (vec![64usize, 256], 512usize, Duration::from_secs(5))
    };

    eprintln!(
        "bench_serve: open-loop load, {workers} workers, {rate} rounds/s/conn, \
         {}s window, rows {rows}",
        window.as_secs_f64()
    );
    let mut runs: Vec<RunResult> = Vec::new();
    // Connections-vs-throughput family for the event transport.
    for &c in &conn_ladder {
        runs.push(run_one(
            ServeMode::Event,
            "event",
            c,
            workers,
            rate,
            window,
            rows,
        ));
    }
    // The head-to-head at the top connection count, both transports.
    runs.push(run_one(
        ServeMode::Event,
        "event",
        top,
        workers,
        rate,
        window,
        rows,
    ));
    runs.push(run_one(
        ServeMode::Blocking,
        "blocking",
        top,
        workers,
        rate,
        window,
        rows,
    ));

    let find = |transport: &str, conns: usize| {
        runs.iter()
            .find(|r| r.transport == transport && r.connections == conns)
    };
    let mut derived: Vec<(&str, f64)> = Vec::new();
    if let (Some(ev), Some(bl)) = (find("event", top), find("blocking", top)) {
        if bl.report.throughput_rps > 0.0 {
            derived.push((
                "event_loop_vs_blocking_throughput_speedup",
                ev.report.throughput_rps / bl.report.throughput_rps,
            ));
        }
        derived.push(("event_p99_submit_ms", ev.report.submit.p99_ms));
        derived.push(("blocking_p99_submit_ms", bl.report.submit.p99_ms));
        // Fraction of the offered load the event transport completed at
        // the top connection count (1.0 = kept up perfectly).
        if ev.offered_rps > 0.0 {
            derived.push((
                "event_offered_load_completion",
                ev.report.throughput_rps / ev.offered_rps,
            ));
        }
    }

    let json = emit_json(&cli, workers, rate, window, rows, &runs, &derived);
    let write = std::fs::File::create(&cli.out).and_then(|mut fh| fh.write_all(json.as_bytes()));
    match write {
        Ok(()) => {
            for (name, v) in &derived {
                let flag = if is_regressed(name, *v) {
                    "  (regressed)"
                } else {
                    ""
                };
                eprintln!("  {name}: {v:.3}{flag}");
            }
            println!("wrote {}", cli.out);
        }
        Err(e) => {
            eprintln!("error: cannot write {}: {e}", cli.out);
            std::process::exit(1);
        }
    }

    let mut gate_failed = false;
    for (name, min) in &cli.gates {
        match derived.iter().find(|(n, _)| n == name) {
            Some((_, v)) if v >= min => eprintln!("  gate {name}: {v:.3} >= {min:.3} ok"),
            Some((_, v)) => {
                eprintln!("  gate {name}: {v:.3} < {min:.3} FAILED");
                gate_failed = true;
            }
            None => {
                eprintln!("  gate {name}: no such derived value FAILED");
                gate_failed = true;
            }
        }
    }
    if gate_failed {
        std::process::exit(1);
    }
}
