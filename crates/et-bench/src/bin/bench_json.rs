//! Machine-readable substrate benchmarks: deterministic wall-clock stats
//! for the partition-cache fast paths, emitted as `BENCH_substrate.json`.
//!
//! ```text
//! bench_json                     # full profile, writes BENCH_substrate.json
//! bench_json --quick             # CI smoke profile (small fixture, few iters)
//! bench_json --out path.json     # alternate output path
//! bench_json --gate NAME:MIN     # exit 1 if derived NAME < MIN (repeatable)
//! ```
//!
//! Unlike the criterion benches (interactive, statistical), this binary is
//! the *perf-trajectory recorder*: a fixed fixture, a fixed bench list, and
//! a JSON file that can be checked in and diffed across PRs.
//!
//! Derived speedups are computed from **medians of interleaved runs**: the
//! two sides of a ratio alternate iteration by iteration, so a frequency
//! ramp or a noisy neighbour biases both sides alike instead of whichever
//! ran second. A derived speedup below 1.0 is flagged `"regressed": true`
//! in the emitted JSON and `--gate` turns any such floor into an exit code.

use std::hint::black_box;
use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;

use et_bench::fixtures::{fixture, Fixture};
use et_core::{
    recover_session, run_session, top_k_indices, CandidatePool, FpTrainer, JournalConfig, Learner,
    ResponseStrategy, SessionConfig, SessionJournal, SessionState, StrategyKind,
};
use et_data::gen::DatasetName;
use et_data::Table;
use et_durable::{FsyncPolicy, Wal};
use et_fd::{
    pair_dirty_probs_with, DeltaScorer, DetectParams, HypothesisSpace, PairScores, PartitionCache,
    RelationMatrix, SubsampleIndex, ViolationIndex,
};

struct Cli {
    quick: bool,
    out: String,
    /// `(derived name, minimum)` floors enforced after emission.
    gates: Vec<(String, f64)>,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        quick: false,
        out: "BENCH_substrate.json".to_string(),
        gates: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => cli.quick = true,
            "--out" => cli.out = args.next().ok_or("--out needs a path")?,
            "--gate" => {
                let spec = args.next().ok_or("--gate needs NAME:MIN")?;
                let (name, min) = spec
                    .split_once(':')
                    .ok_or_else(|| format!("--gate `{spec}` is not NAME:MIN"))?;
                let min: f64 = min
                    .parse()
                    .map_err(|e| format!("--gate `{spec}`: bad minimum: {e}"))?;
                cli.gates.push((name.to_string(), min));
            }
            "--help" | "-h" => {
                println!("usage: bench_json [--quick] [--out PATH] [--gate NAME:MIN]...");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(cli)
}

/// Wall-clock stats of one bench, in seconds.
struct BenchStats {
    name: &'static str,
    iters: usize,
    min: f64,
    mean: f64,
    median: f64,
    max: f64,
}

/// Runs `f` for `iters` measured iterations after `warmup` unmeasured
/// ones, returning the per-iteration wall-clock samples in run order.
fn collect_samples<R>(warmup: usize, iters: usize, mut f: impl FnMut() -> R) -> Vec<f64> {
    for _ in 0..warmup {
        black_box(f());
    }
    let mut samples: Vec<f64> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        black_box(f());
        samples.push(t0.elapsed().as_secs_f64());
    }
    samples
}

/// Reduces samples to [`BenchStats`], dividing each sample by `scale`
/// (scale > 1 reports a per-unit latency, e.g. per round of a session).
fn stats_from(name: &'static str, samples: &[f64], scale: f64) -> BenchStats {
    let mut sorted: Vec<f64> = samples.iter().map(|s| s / scale).collect();
    sorted.sort_by(f64::total_cmp);
    let min = sorted.first().copied().unwrap_or(0.0);
    let max = sorted.last().copied().unwrap_or(0.0);
    let mean = if sorted.is_empty() {
        0.0
    } else {
        sorted.iter().sum::<f64>() / sorted.len() as f64
    };
    let median = if sorted.is_empty() {
        0.0
    } else {
        sorted[sorted.len() / 2]
    };
    eprintln!(
        "  {name}: mean {:.3} ms over {} iters",
        mean * 1e3,
        sorted.len()
    );
    BenchStats {
        name,
        iters: sorted.len(),
        min,
        mean,
        median,
        max,
    }
}

/// Times `f` for `iters` measured runs after `warmup` unmeasured ones.
fn time_bench<R>(
    name: &'static str,
    warmup: usize,
    iters: usize,
    f: impl FnMut() -> R,
) -> BenchStats {
    let samples = collect_samples(warmup, iters, f);
    stats_from(name, &samples, 1.0)
}

/// Times two benches with their iterations interleaved (a, b, a, b, …) so
/// a derived a/b ratio compares like against like under clock drift. Both
/// sides get `warmup` unmeasured alternating rounds first.
fn time_bench_interleaved<RA, RB>(
    name_a: &'static str,
    name_b: &'static str,
    warmup: usize,
    iters: usize,
    mut fa: impl FnMut() -> RA,
    mut fb: impl FnMut() -> RB,
) -> (BenchStats, BenchStats) {
    for _ in 0..warmup {
        black_box(fa());
        black_box(fb());
    }
    let mut samples_a: Vec<f64> = Vec::with_capacity(iters);
    let mut samples_b: Vec<f64> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        black_box(fa());
        samples_a.push(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        black_box(fb());
        samples_b.push(t0.elapsed().as_secs_f64());
    }
    (
        stats_from(name_a, &samples_a, 1.0),
        stats_from(name_b, &samples_b, 1.0),
    )
}

/// The index build as it existed before the partition cache: one
/// `group_by` hash pass per distinct LHS and an `O(group · distinct-RHS)`
/// linear-scan counting loop per group. Kept inline so the emitted JSON
/// always carries an honest before/after pair.
fn index_build_legacy(table: &Table, space: &HypothesisSpace) -> u64 {
    let mut total_violating = 0u64;
    for lhs in space.distinct_lhs() {
        let lhs_attrs: Vec<u16> = lhs.to_vec();
        let grouped = table.group_by(&lhs_attrs);
        for (_, fd) in space.iter().filter(|(_, fd)| fd.lhs == lhs) {
            let mut rhs_counts: Vec<(u32, u64)> = Vec::new();
            for group in &grouped.groups {
                let g = group.len() as u64;
                if g < 2 {
                    continue;
                }
                rhs_counts.clear();
                for &row in group {
                    let s = table.sym(row as usize, fd.rhs);
                    match rhs_counts.iter_mut().find(|(sym, _)| *sym == s) {
                        Some((_, c)) => *c += 1,
                        None => rhs_counts.push((s, 1)),
                    }
                }
                let sum_sq: u64 = rhs_counts.iter().map(|(_, c)| c * c).sum();
                total_violating += (g * g - sum_sq) / 2;
            }
        }
    }
    total_violating
}

/// Deterministic growing sample: `rounds` batches of `per_round` row ids.
fn sample_batches(n_rows: usize, rounds: usize, per_round: usize) -> Vec<Vec<usize>> {
    (0..rounds)
        .map(|t| {
            (0..per_round)
                .map(|i| (t * 17 + i * 3 + 1) % n_rows.max(1))
                .collect()
        })
        .collect()
}

fn run_benches(f: &Fixture, quick: bool) -> Vec<BenchStats> {
    let (warmup, iters) = if quick { (1, 3) } else { (3, 25) };
    let session_iters = if quick { 2 } else { 5 };
    let rounds = if quick { 8 } else { 30 };
    let mut out = Vec::new();

    out.push(time_bench("index_build_legacy", warmup, iters, || {
        index_build_legacy(&f.table, &f.space)
    }));
    out.push(time_bench("index_build_fresh", warmup, iters, || {
        ViolationIndex::build(&f.table, &f.space)
    }));

    let cache = PartitionCache::new(&f.table);
    let _ = ViolationIndex::build_with(&f.table, &f.space, &cache); // warm
    out.push(time_bench("index_build_cached", warmup, iters, || {
        ViolationIndex::build_with(&f.table, &f.space, &cache)
    }));
    out.push(time_bench(
        "index_build_cached_serial",
        warmup,
        iters,
        || ViolationIndex::build_with_threads(&f.table, &f.space, &cache, 1),
    ));
    let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    out.push(time_bench(
        "index_build_cached_parallel",
        warmup,
        iters,
        || ViolationIndex::build_with_threads(&f.table, &f.space, &cache, hw),
    ));

    let batches = sample_batches(f.table.nrows(), rounds, 10);
    out.push(time_bench(
        "subsample_rebuild_rounds",
        warmup,
        iters,
        || {
            // Per-round fresh build over the materialized cumulative subset —
            // what the session layer did before the cache.
            let mut cumulative: Vec<usize> = Vec::new();
            let mut seen = vec![false; f.table.nrows()];
            let mut last = 0usize;
            for batch in &batches {
                for &r in batch {
                    if !seen[r] {
                        seen[r] = true;
                        cumulative.push(r);
                    }
                }
                let idx = ViolationIndex::build(&f.table.subset(&cumulative), &f.space);
                last = idx.n_rows();
            }
            last
        },
    ));
    out.push(time_bench(
        "subsample_restrict_rounds",
        warmup,
        iters,
        || {
            // Per-round O(|sample|) restriction of the cached partitions.
            let mut cumulative: Vec<usize> = Vec::new();
            let mut seen = vec![false; f.table.nrows()];
            let mut last = 0usize;
            for batch in &batches {
                for &r in batch {
                    if !seen[r] {
                        seen[r] = true;
                        cumulative.push(r);
                    }
                }
                let idx = ViolationIndex::build_subsample(&f.table, &f.space, &cache, &cumulative);
                last = idx.n_rows();
            }
            last
        },
    ));
    out.push(time_bench(
        "subsample_incremental_rounds",
        warmup,
        iters,
        || {
            // Incremental refinement: only the touched classes are recounted.
            let mut inc = SubsampleIndex::new(&f.table, &f.space);
            for batch in &batches {
                inc.grow(&f.table, &cache, batch);
            }
            inc.index().n_rows()
        },
    ));

    let pool = CandidatePool::build_with(&f.table, &f.space, &cache, 4000, 2);
    let pairs: Vec<(usize, usize)> = pool.pairs().iter().map(|p| (p.a, p.b)).collect();
    let conf: Vec<f64> = (0..f.space.len())
        .map(|i| 0.25 + 0.5 * ((i % 7) as f64) / 7.0)
        .collect();
    let params = DetectParams::unsmoothed();
    out.push(time_bench("scoring_naive_pool", warmup, iters, || {
        // Per-pair relation enumeration, as the strategies scored before
        // the matrix: one raw-cell scan of the space per candidate.
        let mut acc = 0.0f64;
        for &(a, b) in &pairs {
            let (pa, _) = pair_dirty_probs_with(&f.table, &f.space, &conf, a, b, &params);
            acc += pa;
        }
        acc
    }));
    out.push(time_bench("scoring_matrix_build", warmup, iters, || {
        RelationMatrix::build(&f.table, &f.space, &cache, &pairs)
    }));
    let matrix = RelationMatrix::build(&f.table, &f.space, &cache, &pairs);
    // The hot-path contract (L12): the same batch pass with caller-owned
    // scratch allocates nothing after the first round. Scores pinned
    // bit-exact against score_all by the relmatrix tests. The two sides
    // are interleaved because their ratio is a checked-in derived speedup.
    let mut factors = vec![0.0; f.space.len()];
    let mut scores = PairScores::zeroed(pairs.len());
    // Sub-millisecond sides need more than the headline iteration count
    // for a stable median; 60 interleaved runs still cost < 20ms total.
    let (with_alloc, alloc_free) = time_bench_interleaved(
        "scoring_matrix_score",
        "scoring_matrix_score_alloc_free",
        warmup.max(3),
        iters.max(60),
        || {
            let s = matrix.score_all(&conf, &params);
            s.dirty.iter().sum::<f64>()
        },
        || {
            matrix.score_all_into(&conf, &params, &mut factors, &mut scores);
            scores.dirty.iter().sum::<f64>()
        },
    );
    out.push(with_alloc);
    out.push(alloc_free);

    // k-selection over the pool-sized score vector: the bounded heap vs
    // the historical full sort (same deterministic tie-break on index, so
    // both sides return identical pairs — pinned by the et-core proptests).
    let select_scores = scores.dirty.clone();
    let k = 10usize;
    let (topk, sortk) = time_bench_interleaved(
        "round_topk_select",
        "round_sort_select",
        warmup,
        iters.max(10),
        || top_k_indices(&select_scores, k),
        || {
            let mut idx: Vec<usize> = (0..select_scores.len()).collect();
            idx.sort_by(|&i, &j| {
                select_scores[j]
                    .total_cmp(&select_scores[i])
                    .then(i.cmp(&j))
            });
            idx.truncate(k);
            idx
        },
    );
    out.push(topk);
    out.push(sortk);

    out.extend(round_latency_benches(
        f,
        ["round_full_rescore", "round_delta_rescore"],
        4000,
        quick,
    ));

    let session_samples = collect_samples(0, session_iters, || {
        let prior_cfg = et_belief::PriorConfig {
            strength: 0.3,
            ..et_belief::PriorConfig::default()
        };
        let trainer_prior = et_belief::build_prior(
            &et_belief::PriorSpec::Random { seed: 3 },
            &prior_cfg,
            &f.space,
            &f.table,
        );
        let learner_prior = et_belief::build_prior(
            &et_belief::PriorSpec::DataEstimate,
            &prior_cfg,
            &f.space,
            &f.table,
        );
        let mut trainer =
            et_core::FpTrainer::new(trainer_prior, et_belief::EvidenceConfig::default());
        let mut learner = Learner::new(
            learner_prior,
            ResponseStrategy::paper(StrategyKind::StochasticBestResponse),
            et_belief::EvidenceConfig::default(),
            7,
        );
        let r = run_session(
            &f.table,
            f.space.clone(),
            &f.dirty_rows,
            SessionConfig {
                iterations: rounds,
                seed: 5,
                ..SessionConfig::default()
            },
            &mut trainer,
            &mut learner,
        );
        r.metrics.len()
    });
    out.push(stats_from("session_fp_rounds", &session_samples, 1.0));
    // Per-round successor metric: the same samples scaled per iteration —
    // the unit the sub-millisecond round target is stated in.
    out.push(stats_from(
        "session_fp_round",
        &session_samples,
        rounds as f64,
    ));

    out.extend(durability_benches(f, quick));
    out
}

/// The per-round batch-rescoring cost, full versus delta. Each iteration
/// nudges one FD's confidence (what a single labeled batch typically
/// moves) and rescores the whole candidate pool — either from scratch
/// (`score_all_into`) or through a [`DeltaScorer`], which re-folds only
/// the pairs whose packed relation words intersect the changed-FD mask.
/// Both sides score the identical confidence sequence and are interleaved
/// iteration by iteration; the delta side's scores are pinned bit-exact
/// to the full side's by the et-fd proptests.
fn round_latency_benches(
    f: &Fixture,
    names: [&'static str; 2],
    pool_cap: usize,
    quick: bool,
) -> Vec<BenchStats> {
    let (warmup, iters) = if quick { (2, 5) } else { (5, 50) };
    let cache = PartitionCache::new(&f.table);
    let pool = CandidatePool::build_with(&f.table, &f.space, &cache, pool_cap, 2);
    let pairs: Vec<(usize, usize)> = pool.pairs().iter().map(|p| (p.a, p.b)).collect();
    let matrix = Arc::new(RelationMatrix::build(&f.table, &f.space, &cache, &pairs));
    let params = DetectParams::unsmoothed();
    let n_fds = f.space.len();
    let conf = std::cell::RefCell::new(
        (0..n_fds)
            .map(|i| 0.25 + 0.5 * ((i % 7) as f64) / 7.0)
            .collect::<Vec<f64>>(),
    );
    let tick = std::cell::Cell::new(0usize);
    let mut factors = vec![0.0; n_fds];
    let mut scores = PairScores::zeroed(pairs.len());
    let mut delta = DeltaScorer::new(Arc::clone(&matrix));
    {
        // Seed the delta slot so every measured call takes the delta path,
        // never the cold full fold.
        let c = conf.borrow();
        let _ = delta.scores_for(&c, &params);
    }
    let (full, del) = time_bench_interleaved(
        names[0],
        names[1],
        warmup,
        iters,
        || {
            let mut c = conf.borrow_mut();
            let fd = tick.get() % n_fds;
            tick.set(tick.get() + 1);
            // Deterministic nudge kept inside (0.25, 0.75).
            c[fd] = 0.25 + (c[fd] * 97.0 + 0.013).fract() * 0.5;
            matrix.score_all_into(&c, &params, &mut factors, &mut scores);
            scores.dirty.iter().sum::<f64>()
        },
        || {
            let c = conf.borrow();
            delta.scores_for(&c, &params).dirty.iter().sum::<f64>()
        },
    );
    vec![full, del]
}

/// Exits loudly; benches have no error channel worth plumbing.
fn fail(what: &str, e: impl std::fmt::Display) -> ! {
    eprintln!("error: {what}: {e}");
    std::process::exit(1);
}

/// Builds a fresh journaling-ready session over the fixture.
fn durable_session(f: &Fixture, iterations: usize) -> (SessionState, FpTrainer, Learner) {
    let prior_cfg = et_belief::PriorConfig::weak();
    let trainer_prior = et_belief::build_prior(
        &et_belief::PriorSpec::Random { seed: 3 },
        &prior_cfg,
        &f.space,
        &f.table,
    );
    let learner_prior = et_belief::build_prior(
        &et_belief::PriorSpec::DataEstimate,
        &prior_cfg,
        &f.space,
        &f.table,
    );
    let trainer = FpTrainer::new(trainer_prior, et_belief::EvidenceConfig::default());
    let learner = Learner::new(
        learner_prior,
        ResponseStrategy::paper(StrategyKind::StochasticBestResponse),
        et_belief::EvidenceConfig::default(),
        7,
    );
    let cfg = SessionConfig {
        iterations,
        seed: 5,
        ..SessionConfig::default()
    };
    let state = match SessionState::new(
        f.table.clone(),
        f.space.clone(),
        &f.dirty_rows,
        cfg,
        &trainer,
        &learner,
    ) {
        Ok(s) => s,
        Err(e) => fail("session config", e),
    };
    (state, trainer, learner)
}

/// The durability family: raw WAL appends (with and without fdatasync),
/// atomic snapshot writes of a mid-stream session, and full
/// snapshot-plus-replay recovery.
fn durability_benches(f: &Fixture, quick: bool) -> Vec<BenchStats> {
    let (warmup, iters) = if quick { (1, 3) } else { (3, 25) };
    let driven = if quick { 5 } else { 8 };
    let mut out = Vec::new();

    let scratch = std::env::temp_dir().join(format!("et-bench-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    if let Err(e) = std::fs::create_dir_all(&scratch) {
        fail("create scratch dir", e);
    }

    // A representative label record: ~10 row ids plus labels and framing.
    let payload = [0x5Au8; 96];
    let mut wal = match Wal::open(&scratch.join("bench-nosync.wal"), FsyncPolicy::Never) {
        Ok(o) => o.wal,
        Err(e) => fail("open wal", e),
    };
    out.push(time_bench(
        "durable_wal_append",
        warmup,
        iters.max(10),
        || {
            if let Err(e) = wal.append(1, &payload) {
                fail("wal append", e);
            }
        },
    ));
    let mut wal = match Wal::open(&scratch.join("bench-sync.wal"), FsyncPolicy::Always) {
        Ok(o) => o.wal,
        Err(e) => fail("open wal", e),
    };
    out.push(time_bench(
        "durable_wal_append_fsync",
        warmup,
        iters.max(10),
        || {
            if let Err(e) = wal.append(1, &payload) {
                fail("wal append", e);
            }
        },
    ));

    // Drive a real session mid-stream once, then measure snapshotting it.
    let journal_cfg = JournalConfig {
        fsync: FsyncPolicy::Never,
        snapshot_every: 3,
    };
    let snap_dir = scratch.join("session");
    let (mut state, mut trainer, mut learner) = durable_session(f, driven + 4);
    let journal = match SessionJournal::create(&snap_dir, journal_cfg) {
        Ok(j) => j,
        Err(e) => fail("create journal", e),
    };
    state.attach_journal(journal);
    for _ in 0..driven {
        let mut step = || -> Result<(), String> {
            state.present(&mut learner).map_err(|e| e.to_string())?;
            let labels = state
                .label_pending(&mut trainer)
                .map_err(|e| e.to_string())?;
            state
                .apply_labels(&trainer, &mut learner, &labels)
                .map_err(|e| e.to_string())?;
            state
                .maybe_snapshot(&trainer, &learner)
                .map_err(|e| e.to_string())?;
            Ok(())
        };
        if let Err(e) = step() {
            fail("drive session", e);
        }
    }
    out.push(time_bench("durable_snapshot_write", warmup, iters, || {
        if let Err(e) = state.snapshot_now(&trainer, &learner) {
            fail("snapshot", e);
        }
    }));

    // Recovery: newest snapshot restore plus WAL-suffix replay, into a
    // fresh state and agents each time (what a restarting host pays).
    out.push(time_bench("durable_recover", warmup, iters, || {
        let (mut state, mut trainer, mut learner) = durable_session(f, driven + 4);
        match recover_session(
            &snap_dir,
            journal_cfg,
            &mut state,
            &mut trainer,
            &mut learner,
        ) {
            Ok(outcome) => outcome.replayed,
            Err(e) => fail("recover", e),
        }
    }));

    let _ = std::fs::remove_dir_all(&scratch);
    out
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Whether a derived entry counts as a regression: every `*_speedup`
/// ratio is "new path over old path", so below 1.0 means the new path
/// lost ground and the JSON should say so explicitly.
fn is_regressed(name: &str, value: f64) -> bool {
    name.ends_with("_speedup") && value < 1.0
}

fn emit_json(
    cli: &Cli,
    f: &Fixture,
    rows: usize,
    tax_rows: Option<usize>,
    benches: &[BenchStats],
    derived: &[(&str, f64)],
) -> String {
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"schema\": \"et-bench/substrate-v2\",\n");
    j.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if cli.quick { "quick" } else { "full" }
    ));
    j.push_str(&format!(
        "  \"fixture\": {{\"dataset\": \"hospital\", \"rows\": {rows}, \"degree\": 0.15, \
         \"seed\": 2, \"fds\": {}, \"distinct_lhs\": {}}},\n",
        f.space.len(),
        f.space.distinct_lhs().len()
    ));
    if let Some(tr) = tax_rows {
        j.push_str(&format!(
            "  \"tax_fixture\": {{\"dataset\": \"tax\", \"rows\": {tr}, \"degree\": 0.15, \
             \"seed\": 2}},\n"
        ));
    }
    j.push_str("  \"benches\": [\n");
    for (i, b) in benches.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"name\": \"{}\", \"iters\": {}, \"secs\": {{\"min\": {:.9}, \
             \"mean\": {:.9}, \"median\": {:.9}, \"max\": {:.9}}}}}{}\n",
            json_escape(b.name),
            b.iters,
            b.min,
            b.mean,
            b.median,
            b.max,
            if i + 1 < benches.len() { "," } else { "" }
        ));
    }
    j.push_str("  ],\n");
    j.push_str("  \"derived\": {\n");
    for (i, (name, v)) in derived.iter().enumerate() {
        j.push_str(&format!(
            "    \"{}\": {{\"value\": {:.3}{}}}{}\n",
            json_escape(name),
            v,
            if is_regressed(name, *v) {
                ", \"regressed\": true"
            } else {
                ""
            },
            if i + 1 < derived.len() { "," } else { "" }
        ));
    }
    j.push_str("  }\n}\n");
    j
}

/// Median of a named bench, for derived ratios: robust to the stray slow
/// iteration that skews a mean on shared CI hardware.
fn median_of(benches: &[BenchStats], name: &str) -> Option<f64> {
    benches
        .iter()
        .find(|b| b.name == name)
        .map(|b| b.median)
        .filter(|&m| m > 0.0)
}

fn main() {
    let cli = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let rows = if cli.quick { 200 } else { 500 };
    eprintln!("bench_json: hospital fixture, {rows} rows, degree 0.15, seed 2");
    let f = fixture(DatasetName::Hospital, rows, 0.15, 2);
    let mut benches = run_benches(&f, cli.quick);

    // Tax-scale round latencies: a second round-latency family over a much
    // larger table and candidate pool, guarded by a wall-clock budget so a
    // slow CI box skips it loudly instead of timing the whole step out.
    let tax_rows = if cli.quick { 2_000 } else { 10_000 };
    let tax_budget: f64 = std::env::var("ET_BENCH_TAX_BUDGET_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if cli.quick { 30.0 } else { 300.0 });
    let mut tax_ran = None;
    eprintln!("bench_json: tax fixture, {tax_rows} rows, degree 0.15, seed 2");
    let t0 = Instant::now();
    let tax = fixture(DatasetName::Tax, tax_rows, 0.15, 2);
    let tax_build = t0.elapsed().as_secs_f64();
    if tax_build > tax_budget {
        eprintln!(
            "  tax fixture build took {tax_build:.1}s (budget {tax_budget:.1}s, \
             ET_BENCH_TAX_BUDGET_SECS); skipping round_latency_*_tax"
        );
    } else {
        benches.push(stats_from("fixture_build_tax", &[tax_build], 1.0));
        benches.extend(round_latency_benches(
            &tax,
            ["round_full_rescore_tax", "round_delta_rescore_tax"],
            20_000,
            cli.quick,
        ));
        tax_ran = Some(tax_rows);
    }

    let mut derived: Vec<(&str, f64)> = Vec::new();
    let ratios = [
        (
            "cached_vs_fresh_speedup",
            "index_build_fresh",
            "index_build_cached",
        ),
        (
            "cached_vs_legacy_speedup",
            "index_build_legacy",
            "index_build_cached",
        ),
        (
            "parallel_vs_serial_speedup",
            "index_build_cached_serial",
            "index_build_cached_parallel",
        ),
        (
            "restrict_vs_rebuild_speedup",
            "subsample_rebuild_rounds",
            "subsample_restrict_rounds",
        ),
        (
            "incremental_vs_rebuild_speedup",
            "subsample_rebuild_rounds",
            "subsample_incremental_rounds",
        ),
        (
            "matrix_score_vs_naive_speedup",
            "scoring_naive_pool",
            "scoring_matrix_score",
        ),
        // Parity, not a speedup claim: the alloc-free entry point exists
        // for the L12 no-alloc hot-path contract, and on small fixtures
        // the allocating path's fresh pages can tie or edge it out. The
        // ratio is still emitted (ci gates it at >= 0.95) but it no longer
        // carries the `_speedup` suffix that would flag sub-1.0 as a
        // regression.
        (
            "alloc_free_score_parity",
            "scoring_matrix_score",
            "scoring_matrix_score_alloc_free",
        ),
        (
            "round_latency_delta_vs_full_speedup",
            "round_full_rescore",
            "round_delta_rescore",
        ),
        (
            "round_latency_delta_vs_full_speedup_tax",
            "round_full_rescore_tax",
            "round_delta_rescore_tax",
        ),
        (
            "topk_vs_sort_select_speedup",
            "round_sort_select",
            "round_topk_select",
        ),
        (
            "fsync_append_cost_ratio",
            "durable_wal_append_fsync",
            "durable_wal_append",
        ),
    ];
    for (name, slow, fast) in ratios {
        if let (Some(s), Some(q)) = (median_of(&benches, slow), median_of(&benches, fast)) {
            derived.push((name, s / q));
        }
    }

    let json = emit_json(&cli, &f, rows, tax_ran, &benches, &derived);
    let write = std::fs::File::create(&cli.out).and_then(|mut fh| fh.write_all(json.as_bytes()));
    match write {
        Ok(()) => {
            for (name, v) in &derived {
                let flag = if is_regressed(name, *v) {
                    "  (regressed)"
                } else {
                    ""
                };
                eprintln!("  {name}: {v:.2}x{flag}");
            }
            println!("wrote {}", cli.out);
        }
        Err(e) => {
            eprintln!("error: cannot write {}: {e}", cli.out);
            std::process::exit(1);
        }
    }

    let mut gate_failed = false;
    for (name, min) in &cli.gates {
        match derived.iter().find(|(n, _)| n == name) {
            Some((_, v)) if v >= min => eprintln!("  gate {name}: {v:.3} >= {min:.3} ok"),
            Some((_, v)) => {
                eprintln!("  gate {name}: {v:.3} < {min:.3} FAILED");
                gate_failed = true;
            }
            None => {
                eprintln!("  gate {name}: no such derived value FAILED");
                gate_failed = true;
            }
        }
    }
    if gate_failed {
        std::process::exit(1);
    }
}
