//! Reproduction driver: regenerates the paper's tables and figures.
//!
//! ```text
//! repro --list               # show every registered experiment
//! repro --exp fig1           # regenerate one artifact
//! repro --all                # regenerate everything
//! repro --all --quick        # smoke-test sizes
//! repro --exp fig4 --runs 10 --rows 300 --iters 30
//! repro ... --out results/   # also write CSV artifacts (default: results/)
//! ```

use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use et_experiments::{all_experiments, experiment_by_id, Experiment, RunOptions};

struct Cli {
    exp: Vec<String>,
    all: bool,
    list: bool,
    quick: bool,
    runs: Option<usize>,
    rows: Option<usize>,
    iterations: Option<usize>,
    out_dir: PathBuf,
}

impl Cli {
    /// Resolves the run options: `--quick` sets the base profile, explicit
    /// size flags override it regardless of argument order.
    fn options(&self) -> RunOptions {
        let mut opts = if self.quick {
            RunOptions::quick()
        } else {
            RunOptions::default()
        };
        if let Some(r) = self.runs {
            opts.runs = r;
        }
        if let Some(r) = self.rows {
            opts.rows = r;
        }
        if let Some(i) = self.iterations {
            opts.iterations = i;
        }
        opts
    }
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        exp: Vec::new(),
        all: false,
        list: false,
        quick: false,
        runs: None,
        rows: None,
        iterations: None,
        out_dir: PathBuf::from("results"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => cli.list = true,
            "--all" => cli.all = true,
            "--quick" => cli.quick = true,
            "--exp" => {
                let id = args.next().ok_or("--exp needs an experiment id")?;
                cli.exp.push(id);
            }
            "--runs" => {
                cli.runs = Some(
                    args.next()
                        .ok_or("--runs needs a number")?
                        .parse()
                        .map_err(|e| format!("--runs: {e}"))?,
                );
            }
            "--rows" => {
                cli.rows = Some(
                    args.next()
                        .ok_or("--rows needs a number")?
                        .parse()
                        .map_err(|e| format!("--rows: {e}"))?,
                );
            }
            "--iters" => {
                cli.iterations = Some(
                    args.next()
                        .ok_or("--iters needs a number")?
                        .parse()
                        .map_err(|e| format!("--iters: {e}"))?,
                );
            }
            "--out" => {
                cli.out_dir = PathBuf::from(args.next().ok_or("--out needs a directory")?);
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--list] [--all] [--exp ID]... [--quick] \
                     [--runs N] [--rows N] [--iters N] [--out DIR]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(cli)
}

fn main() {
    let cli = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    if cli.list || (!cli.all && cli.exp.is_empty()) {
        println!("{:<24} {:<12} title", "id", "paper");
        for e in all_experiments() {
            println!("{:<24} {:<12} {}", e.id, e.paper_ref, e.title);
        }
        if !cli.list {
            println!("\nrun with --exp <id> or --all");
        }
        return;
    }

    let experiments: Vec<Experiment> = if cli.all {
        all_experiments()
    } else {
        cli.exp
            .iter()
            .map(|id| {
                experiment_by_id(id).unwrap_or_else(|| {
                    eprintln!("error: unknown experiment `{id}` (see --list)");
                    std::process::exit(2);
                })
            })
            .collect()
    };

    let opts = cli.options();
    for e in experiments {
        let started = Instant::now();
        println!("\n################################################################");
        println!("# {} — {} ({})", e.id, e.title, e.paper_ref);
        println!("# expectation: {}", e.expectation);
        println!("################################################################");
        let out = (e.run)(&opts);
        println!("{}", out.text);
        if !out.csv.is_empty() {
            if let Err(err) = std::fs::create_dir_all(&cli.out_dir) {
                eprintln!("warning: cannot create {:?}: {err}", cli.out_dir);
            } else {
                for (name, content) in &out.csv {
                    let path = cli.out_dir.join(name);
                    match std::fs::File::create(&path)
                        .and_then(|mut f| f.write_all(content.as_bytes()))
                    {
                        Ok(()) => println!("wrote {}", path.display()),
                        Err(err) => eprintln!("warning: {}: {err}", path.display()),
                    }
                }
            }
        }
        println!("[{} finished in {:.1?}]", e.id, started.elapsed());
    }
}
