//! Stripped partitions and the partition-product TANE core (Huhtala et al.
//! 1999).
//!
//! The paper's unsupervised baseline ("if the dataset is completely clean
//! ... its set of approximate FDs can be learned with an unsupervised
//! method, Huhtala et al.") is TANE. [`crate::discovery`] implements a
//! simple group-by levelwise search; this module implements TANE's actual
//! machinery — *stripped partitions* with partition products and the
//! `e(X)` error measure — giving an independent implementation the test
//! suite cross-checks against, and the g3-based approximation criterion
//! (`e(X) − e(X ∪ {A}) ≤ ε·n`).

use std::collections::HashMap;

use et_data::{AttrId, Table};

use crate::attrset::AttrSet;
use crate::fd::Fd;

/// A *stripped* partition: the equivalence classes of rows agreeing on some
/// attribute set, with singleton classes removed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrippedPartition {
    /// Equivalence classes (each of size >= 2), rows sorted within a class,
    /// classes sorted by first member for canonical form.
    pub classes: Vec<Vec<u32>>,
    /// Number of rows of the underlying relation.
    pub n_rows: usize,
}

impl StrippedPartition {
    /// Builds the stripped partition of a single attribute.
    pub fn of_attr(table: &Table, attr: AttrId) -> Self {
        let mut groups: HashMap<u32, Vec<u32>> = HashMap::new();
        for row in 0..table.nrows() {
            groups
                .entry(table.sym(row, attr))
                .or_default()
                .push(row as u32);
        }
        Self::from_classes(groups.into_values().collect(), table.nrows())
    }

    /// Builds from raw classes, stripping singletons and canonicalising.
    pub fn from_classes(classes: Vec<Vec<u32>>, n_rows: usize) -> Self {
        let mut kept: Vec<Vec<u32>> = classes
            .into_iter()
            .filter(|c| c.len() >= 2)
            .map(|mut c| {
                c.sort_unstable();
                c
            })
            .collect();
        kept.sort_by_key(|c| c[0]);
        Self {
            classes: kept,
            n_rows,
        }
    }

    /// The identity partition over rows that agree on the empty attribute
    /// set (all rows in one class).
    pub fn full(n_rows: usize) -> Self {
        if n_rows < 2 {
            return Self {
                classes: Vec::new(),
                n_rows,
            };
        }
        Self {
            classes: vec![(0..n_rows as u32).collect()],
            n_rows,
        }
    }

    /// TANE's error measure `e(X)`: the minimum number of rows to remove so
    /// that `X`'s classes become unique — `Σ (|class| − 1)` over stripped
    /// classes.
    pub fn error(&self) -> usize {
        self.classes.iter().map(|c| c.len() - 1).sum()
    }

    /// Number of stripped classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True when every class is a singleton (the attribute set is a key).
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// The partition product `self · other`: rows equivalent under *both*
    /// partitions. Linear-time TANE product using a scratch table.
    ///
    /// # Panics
    /// Panics when the partitions cover different row counts.
    pub fn product(&self, other: &StrippedPartition) -> StrippedPartition {
        assert_eq!(
            self.n_rows, other.n_rows,
            "partitions over different relations"
        );
        // row -> class id in `self` (usize::MAX when stripped).
        let mut owner = vec![usize::MAX; self.n_rows];
        for (ci, class) in self.classes.iter().enumerate() {
            for &r in class {
                owner[r as usize] = ci;
            }
        }
        // For each class of `other`, bucket members by their `self` class.
        let mut out: Vec<Vec<u32>> = Vec::new();
        let mut bucket: HashMap<usize, Vec<u32>> = HashMap::new();
        for class in &other.classes {
            bucket.clear();
            for &r in class {
                let o = owner[r as usize];
                if o != usize::MAX {
                    bucket.entry(o).or_default().push(r);
                }
            }
            for (_, members) in bucket.drain() {
                if members.len() >= 2 {
                    out.push(members);
                }
            }
        }
        StrippedPartition::from_classes(out, self.n_rows)
    }

    /// The stripped partition of an attribute set, via repeated products.
    ///
    /// # Panics
    /// Panics on the empty set (use [`StrippedPartition::full`]).
    pub fn of_set(table: &Table, attrs: AttrSet) -> Self {
        let ids: Vec<AttrId> = attrs.to_vec();
        assert!(
            !ids.is_empty(),
            "use StrippedPartition::full for the empty set"
        );
        let mut p = Self::of_attr(table, ids[0]);
        for &a in &ids[1..] {
            p = p.product(&Self::of_attr(table, a));
        }
        p
    }
}

/// A TANE-discovered approximate FD.
#[derive(Debug, Clone)]
pub struct TaneFd {
    /// The dependency.
    pub fd: Fd,
    /// `e(X) − e(X ∪ {A})` — rows that must be removed for the FD to hold,
    /// beyond what X's own duplicates force.
    pub removal_rows: usize,
    /// `removal_rows / n` (the g3 criterion value).
    pub g3: f64,
}

/// Levelwise TANE discovery of minimal approximate FDs under the g3
/// criterion: `X → A` qualifies when `(e(X) − e(X ∪ {A})) / n ≤ epsilon`.
///
/// ```
/// use et_data::gen::airport;
/// use et_fd::discover_tane;
///
/// let ds = airport(120, 1);
/// let found = discover_tane(&ds.table, 2, 0.0);
/// assert!(!found.is_empty());
/// assert!(found.iter().all(|d| d.g3 == 0.0));
/// ```
///
/// Candidates with a qualifying proper-subset LHS are pruned (minimality);
/// key-like LHSs (empty stripped partition) are skipped — every FD from a
/// key is trivially exact and uninformative.
///
/// # Panics
/// Panics on a negative `epsilon`.
pub fn discover_tane(table: &Table, max_lhs: u32, epsilon: f64) -> Vec<TaneFd> {
    assert!(epsilon >= 0.0, "epsilon must be non-negative");
    let n_attrs = table.schema().len() as u16;
    let n = table.nrows().max(1);
    // Cache singleton partitions.
    let singles: Vec<StrippedPartition> = (0..n_attrs)
        .map(|a| StrippedPartition::of_attr(table, a))
        .collect();

    let mut out = Vec::new();
    for rhs in 0..n_attrs {
        let mut qualified: Vec<AttrSet> = Vec::new();
        // Frontier of (lhs, partition) pairs.
        let mut frontier: Vec<(AttrSet, StrippedPartition)> = (0..n_attrs)
            .filter(|&a| a != rhs)
            .map(|a| (AttrSet::singleton(a), singles[a as usize].clone()))
            .collect();
        let mut level = 1u32;
        while !frontier.is_empty() && level <= max_lhs {
            let mut next = Vec::new();
            for (lhs, part) in frontier {
                if qualified.iter().any(|q| q.is_proper_subset_of(lhs)) {
                    continue;
                }
                if part.is_empty() {
                    continue; // lhs is a key: nothing to learn
                }
                let joint = part.product(&singles[rhs as usize]);
                let removal = part.error() - joint.error();
                let g3 = removal as f64 / n as f64;
                if g3 <= epsilon {
                    qualified.push(lhs);
                    out.push(TaneFd {
                        fd: Fd::new(lhs, rhs),
                        removal_rows: removal,
                        g3,
                    });
                    continue;
                }
                let max_attr = lhs.iter().last().unwrap_or(0);
                for a in (max_attr + 1)..n_attrs {
                    if a != rhs {
                        let bigger = part.product(&singles[a as usize]);
                        next.push((lhs.with(a), bigger));
                    }
                }
            }
            frontier = next;
            level += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use et_data::gen::{airport, omdb};
    use et_data::table::paper_table1;
    use proptest::prelude::*;

    #[test]
    fn partition_of_team() {
        let t = paper_table1();
        let p = StrippedPartition::of_attr(&t, 1); // Team
                                                   // Lakers {0,1}, Bulls {2,3}; Clippers singleton stripped.
        assert_eq!(p.classes, vec![vec![0, 1], vec![2, 3]]);
        assert_eq!(p.error(), 2);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn product_refines() {
        let t = paper_table1();
        let team = StrippedPartition::of_attr(&t, 1);
        let city = StrippedPartition::of_attr(&t, 2);
        let both = team.product(&city);
        // (Team, City) classes: only Bulls/Chicago {2,3} survives.
        assert_eq!(both.classes, vec![vec![2, 3]]);
        // Product is commutative on stripped partitions.
        assert_eq!(city.product(&team), both);
    }

    #[test]
    fn full_partition_error() {
        let p = StrippedPartition::full(5);
        assert_eq!(p.error(), 4);
        assert!(StrippedPartition::full(1).is_empty());
    }

    #[test]
    fn key_attribute_strips_to_empty() {
        let t = paper_table1();
        let p = StrippedPartition::of_attr(&t, 0); // Player is a key
        assert!(p.is_empty());
        assert_eq!(p.error(), 0);
    }

    #[test]
    fn tane_error_semantics_match_g3() {
        // e(X) - e(XA) over the Team -> City pair: removal of one row
        // repairs it, matching measures::g2_g3's g3 = 1/5.
        let t = paper_table1();
        let team = StrippedPartition::of_attr(&t, 1);
        let joint = team.product(&StrippedPartition::of_attr(&t, 2));
        let removal = team.error() - joint.error();
        assert_eq!(removal, 1);
        let m = crate::measures::g2_g3(&t, &Fd::from_attrs([1], 2));
        assert!((m.g3 - removal as f64 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn tane_finds_generator_fds() {
        let ds = airport(200, 4);
        let found = discover_tane(&ds.table, 2, 0.0);
        for spec in &ds.exact_fds {
            let fd = Fd::from_spec(spec);
            let covered = found.iter().any(|d| d.fd == fd || d.fd.implies(&fd));
            assert!(
                covered,
                "{} not found by TANE",
                fd.display(ds.table.schema())
            );
        }
        for d in &found {
            assert_eq!(d.g3, 0.0);
            assert_eq!(d.removal_rows, 0);
        }
    }

    #[test]
    fn tane_agrees_with_groupby_discovery_on_exact_fds() {
        // Two independent implementations must find semantically equivalent
        // exact-FD sets.
        let ds = omdb(150, 6);
        let tane: Vec<Fd> = discover_tane(&ds.table, 2, 0.0)
            .into_iter()
            .map(|d| d.fd)
            .collect();
        let groupby: Vec<Fd> = crate::discovery::discover(
            &ds.table,
            &crate::discovery::DiscoveryConfig {
                max_lhs: 2,
                max_violation_rate: 0.0,
                min_support: 1,
            },
        )
        .into_iter()
        .map(|d| d.fd)
        .collect();
        // group-by discovery includes key-LHS FDs (zero at-risk pairs);
        // TANE skips keys. Compare on the overlap domain: every TANE FD
        // must be discovered (or implied) by group-by, and every group-by
        // FD with a non-key LHS must be found by TANE.
        for fd in &tane {
            assert!(
                groupby.iter().any(|g| g == fd || g.implies(fd)),
                "TANE found {fd} that group-by missed"
            );
        }
        for fd in &groupby {
            let key_lhs = StrippedPartition::of_set(&ds.table, fd.lhs).is_empty();
            if !key_lhs {
                assert!(
                    tane.iter().any(|t| t == fd || t.implies(fd)),
                    "group-by found {fd} that TANE missed"
                );
            }
        }
    }

    #[test]
    fn tane_approximate_recovers_injected_fds() {
        let mut ds = airport(250, 7);
        let specs = ds.exact_fds.clone();
        let _ = et_data::inject_errors(
            &mut ds.table,
            &specs,
            &[],
            &et_data::InjectConfig::with_degree(0.08, 3),
        );
        let strict = discover_tane(&ds.table, 2, 0.0);
        let tolerant = discover_tane(&ds.table, 2, 0.10);
        let hits = |list: &[TaneFd]| {
            specs
                .iter()
                .map(Fd::from_spec)
                .filter(|fd| list.iter().any(|d| d.fd == *fd || d.fd.implies(fd)))
                .count()
        };
        assert!(hits(&tolerant) >= hits(&strict));
        assert_eq!(
            hits(&tolerant),
            specs.len(),
            "g3 tolerance recovers all FDs"
        );
    }

    proptest! {
        #[test]
        fn product_error_monotone(rows in proptest::collection::vec((0u8..4, 0u8..4), 2..40)) {
            let mut b = et_data::Table::builder(et_data::Schema::new(["x", "y"]));
            for (x, y) in &rows {
                b.push_row(&[format!("x{x}"), format!("y{y}")]);
            }
            let t = b.finish();
            let px = StrippedPartition::of_attr(&t, 0);
            let py = StrippedPartition::of_attr(&t, 1);
            let prod = px.product(&py);
            // Refinement can only reduce the error and the class sizes.
            prop_assert!(prod.error() <= px.error());
            prop_assert!(prod.error() <= py.error());
            for c in &prod.classes {
                prop_assert!(c.len() >= 2);
            }
            // Product is commutative.
            prop_assert_eq!(py.product(&px), prod);
        }
    }
}
