//! Classical FD inference: attribute-set closure, implication, and minimal
//! covers (Armstrong's axioms, operationalised).
//!
//! The paper leans on implication informally ("if FD f1 is a super-set of
//! FD f2, f2 is implied by f1"); this module provides the full machinery so
//! learned FD sets can be normalized, deduplicated and compared
//! semantically — e.g. when reporting what a session's belief amounts to.

use crate::attrset::AttrSet;
use crate::fd::Fd;

/// The closure of `attrs` under `fds`: every attribute functionally
/// determined by `attrs`.
pub fn closure(attrs: AttrSet, fds: &[Fd]) -> AttrSet {
    let mut closed = attrs;
    loop {
        let mut changed = false;
        for fd in fds {
            if fd.lhs.is_subset_of(closed) && !closed.contains(fd.rhs) {
                closed = closed.with(fd.rhs);
                changed = true;
            }
        }
        if !changed {
            return closed;
        }
    }
}

/// True when `fds ⊨ candidate` (the candidate follows from the set by
/// Armstrong's axioms).
pub fn implies(fds: &[Fd], candidate: &Fd) -> bool {
    closure(candidate.lhs, fds).contains(candidate.rhs)
}

/// True when the two FD sets are semantically equivalent (each implies
/// every member of the other).
pub fn equivalent(a: &[Fd], b: &[Fd]) -> bool {
    a.iter().all(|fd| implies(b, fd)) && b.iter().all(|fd| implies(a, fd))
}

/// Computes a minimal cover: a semantically equivalent FD set with no
/// redundant FD and no redundant LHS attribute.
///
/// (Normalized single-attribute RHS is an invariant of [`Fd`] already.)
pub fn minimal_cover(fds: &[Fd]) -> Vec<Fd> {
    // 1. Left-reduce: drop extraneous LHS attributes. An attribute is
    // extraneous when the remaining LHS already determines the RHS under
    // the full set.
    let mut cover: Vec<Fd> = fds.to_vec();
    cover.sort_unstable();
    cover.dedup();
    let mut reduced = Vec::with_capacity(cover.len());
    for fd in &cover {
        let mut lhs = fd.lhs;
        for a in fd.lhs.iter() {
            let candidate = lhs.without(a);
            if !candidate.is_empty() && closure(candidate, &cover).contains(fd.rhs) {
                lhs = candidate;
            }
        }
        reduced.push(Fd::new(lhs, fd.rhs));
    }
    reduced.sort_unstable();
    reduced.dedup();

    // 2. Right-reduce: remove each FD that the *remaining* set still
    // implies, working on the live set so drops compound correctly.
    let mut i = 0;
    while i < reduced.len() {
        let fd = reduced[i];
        let rest: Vec<Fd> = reduced
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, f)| *f)
            .collect();
        if implies(&rest, &fd) {
            reduced.remove(i);
        } else {
            i += 1;
        }
    }
    reduced
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fd(lhs: &[u16], rhs: u16) -> Fd {
        Fd::from_attrs(lhs.iter().copied(), rhs)
    }

    #[test]
    fn closure_follows_chains() {
        // A -> B, B -> C: closure(A) = {A, B, C}.
        let fds = [fd(&[0], 1), fd(&[1], 2)];
        let c = closure(AttrSet::singleton(0), &fds);
        assert_eq!(c.to_vec(), vec![0, 1, 2]);
        // closure(C) = {C}.
        let c = closure(AttrSet::singleton(2), &fds);
        assert_eq!(c.to_vec(), vec![2]);
    }

    #[test]
    fn implication_transitivity() {
        let fds = [fd(&[0], 1), fd(&[1], 2)];
        assert!(implies(&fds, &fd(&[0], 2)), "A -> C by transitivity");
        assert!(!implies(&fds, &fd(&[2], 0)));
        // Augmentation: AB -> C.
        assert!(implies(&fds, &fd(&[0, 3], 2)));
    }

    #[test]
    fn equivalence_detects_reformulations() {
        let a = [fd(&[0], 1), fd(&[0], 2)];
        let b = [fd(&[0], 2), fd(&[0], 1)];
        assert!(equivalent(&a, &b));
        let c = [fd(&[0], 1)];
        assert!(!equivalent(&a, &c));
    }

    #[test]
    fn cover_drops_redundant_fd() {
        // A -> B, B -> C, A -> C: the last is implied.
        let fds = [fd(&[0], 1), fd(&[1], 2), fd(&[0], 2)];
        let cover = minimal_cover(&fds);
        assert!(equivalent(&cover, &fds));
        assert_eq!(cover.len(), 2, "{cover:?}");
        assert!(!cover.contains(&fd(&[0], 2)));
    }

    #[test]
    fn cover_left_reduces() {
        // A -> B plus AB -> C: B is extraneous in AB -> C.
        let fds = [fd(&[0], 1), fd(&[0, 1], 2)];
        let cover = minimal_cover(&fds);
        assert!(equivalent(&cover, &fds));
        assert!(cover.contains(&fd(&[0], 2)), "{cover:?}");
        assert!(!cover.iter().any(|f| f.lhs.len() > 1));
    }

    #[test]
    fn cover_of_minimal_set_is_itself() {
        let fds = [fd(&[0], 1), fd(&[2], 3)];
        let mut cover = minimal_cover(&fds);
        cover.sort_unstable();
        let mut expect = fds.to_vec();
        expect.sort_unstable();
        assert_eq!(cover, expect);
    }

    #[test]
    fn cover_dedups() {
        let fds = [fd(&[0], 1), fd(&[0], 1)];
        assert_eq!(minimal_cover(&fds).len(), 1);
    }
}
