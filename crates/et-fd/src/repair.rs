//! Repair proposals from approximate FDs.
//!
//! "This learned approximate FDs can be used for detecting errors in
//! unlabeled or future tuples" (§A.1) — and, one step further, for
//! proposing *repairs*: within each mixed LHS group of a believed FD, the
//! majority RHS value is the consensus and minority cells are candidates
//! for replacement (the classic majority-vote repair of the cleaning
//! literature the paper cites — Holoclean, Livshits et al.).

use et_data::{AttrId, Table};

use crate::fd::Fd;
use crate::space::HypothesisSpace;

/// One proposed cell repair.
#[derive(Debug, Clone, PartialEq)]
pub struct Repair {
    /// Row of the suspicious cell.
    pub row: usize,
    /// Attribute of the suspicious cell.
    pub attr: AttrId,
    /// Current (suspect) value.
    pub current: String,
    /// Majority-consensus replacement.
    pub suggested: String,
    /// The FD justifying the proposal.
    pub fd: Fd,
    /// Supporting fraction: majority-bucket size / group size. Higher is a
    /// stronger consensus.
    pub support: f64,
}

/// Proposes repairs for every believed FD (`confidences[f] >=
/// min_confidence`): minority cells in mixed groups are repaired to the
/// group's unique majority value. Groups whose majority is tied propose
/// nothing (no consensus).
///
/// Proposals are sorted by descending support, then row/attr for
/// determinism.
///
/// # Panics
/// Panics when `confidences` does not have one entry per FD of `space`.
pub fn propose_repairs(
    table: &Table,
    space: &HypothesisSpace,
    confidences: &[f64],
    min_confidence: f64,
) -> Vec<Repair> {
    assert_eq!(
        confidences.len(),
        space.len(),
        "confidence vector does not match hypothesis space"
    );
    let mut out = Vec::new();
    for (fi, fd) in space.iter() {
        if confidences[fi] < min_confidence {
            continue;
        }
        let lhs: Vec<AttrId> = fd.lhs_vec();
        let grouped = table.group_by(&lhs);
        for group in &grouped.groups {
            if group.len() < 2 {
                continue;
            }
            let mut buckets: Vec<(u32, Vec<u32>)> = Vec::new();
            for &row in group {
                let s = table.sym(row as usize, fd.rhs);
                match buckets.iter_mut().find(|(sym, _)| *sym == s) {
                    Some((_, rows)) => rows.push(row),
                    None => buckets.push((s, vec![row])),
                }
            }
            if buckets.len() < 2 {
                continue;
            }
            let max = buckets.iter().map(|(_, r)| r.len()).max().unwrap_or(0);
            let majority: Vec<&(u32, Vec<u32>)> =
                buckets.iter().filter(|(_, r)| r.len() == max).collect();
            if majority.len() != 1 {
                continue; // tie: no consensus
            }
            let (maj_sym, maj_rows) = majority[0];
            let suggested = table.text(maj_rows[0] as usize, fd.rhs).to_owned();
            let support = max as f64 / group.len() as f64;
            for (sym, rows) in &buckets {
                if sym == maj_sym {
                    continue;
                }
                for &row in rows {
                    out.push(Repair {
                        row: row as usize,
                        attr: fd.rhs,
                        current: table.text(row as usize, fd.rhs).to_owned(),
                        suggested: suggested.clone(),
                        fd,
                        support,
                    });
                }
            }
        }
    }
    out.sort_by(|a, b| {
        b.support
            .total_cmp(&a.support)
            .then(a.row.cmp(&b.row))
            .then(a.attr.cmp(&b.attr))
    });
    out
}

/// Applies repairs to the table (later proposals never overwrite earlier,
/// higher-support ones for the same cell). Returns the number applied.
pub fn apply_repairs(table: &mut Table, repairs: &[Repair]) -> usize {
    let mut touched = std::collections::HashSet::new();
    let mut applied = 0;
    for r in repairs {
        if touched.insert((r.row, r.attr)) {
            table.set_text(r.row, r.attr, &r.suggested);
            applied += 1;
        }
    }
    applied
}

#[cfg(test)]
mod tests {
    use super::*;
    use et_data::gen::airport;
    use et_data::table::paper_table1;
    use et_data::{inject_errors, InjectConfig};

    #[test]
    fn no_consensus_in_even_split() {
        // Table 1's Lakers group splits 1-1 on City: tie, no proposal.
        let t = paper_table1();
        let space = HypothesisSpace::from_fds([Fd::from_attrs([1], 2)]);
        let repairs = propose_repairs(&t, &space, &[0.99], 0.5);
        assert!(repairs.is_empty(), "{repairs:?}");
    }

    #[test]
    fn majority_repairs_fix_injected_errors() {
        let mut ds = airport(250, 8);
        let truth = ds.exact_fds.clone();
        let clean = ds.table.clone();
        let inj = inject_errors(
            &mut ds.table,
            &truth,
            &[],
            &InjectConfig::with_degree(0.10, 4),
        );
        let fds: Vec<Fd> = truth.iter().map(Fd::from_spec).collect();
        let space = HypothesisSpace::from_fds(fds);
        let conf = vec![0.95; space.len()];
        let repairs = propose_repairs(&ds.table, &space, &conf, 0.5);
        assert!(!repairs.is_empty());
        // Most proposals should target genuinely dirty cells.
        let on_dirty = repairs.iter().filter(|r| inj.dirty_rows[r.row]).count();
        assert!(
            on_dirty * 2 > repairs.len(),
            "{on_dirty}/{} proposals on dirty rows",
            repairs.len()
        );
        // Applying them should reduce the violation degree.
        let before = et_data::violation_degree(&ds.table, &truth);
        let mut repaired = ds.table.clone();
        let applied = apply_repairs(&mut repaired, &repairs);
        assert!(applied > 0);
        let after = et_data::violation_degree(&repaired, &truth);
        assert!(after < before, "degree {before:.3} -> {after:.3}");
        // And many repaired cells should match the original clean values.
        let restored = repairs
            .iter()
            .filter(|r| repaired.text(r.row, r.attr) == clean.text(r.row, r.attr))
            .count();
        assert!(
            restored * 2 > repairs.len(),
            "{restored}/{} restored to ground truth",
            repairs.len()
        );
    }

    #[test]
    fn disbelieved_fds_propose_nothing() {
        let mut ds = airport(150, 9);
        let truth = ds.exact_fds.clone();
        let _ = inject_errors(
            &mut ds.table,
            &truth,
            &[],
            &InjectConfig::with_degree(0.10, 5),
        );
        let fds: Vec<Fd> = truth.iter().map(Fd::from_spec).collect();
        let space = HypothesisSpace::from_fds(fds);
        let conf = vec![0.2; space.len()];
        assert!(propose_repairs(&ds.table, &space, &conf, 0.5).is_empty());
    }

    #[test]
    fn proposals_sorted_by_support() {
        let mut ds = airport(250, 10);
        let truth = ds.exact_fds.clone();
        let _ = inject_errors(
            &mut ds.table,
            &truth,
            &[],
            &InjectConfig::with_degree(0.15, 6),
        );
        let fds: Vec<Fd> = truth.iter().map(Fd::from_spec).collect();
        let space = HypothesisSpace::from_fds(fds);
        let conf = vec![0.95; space.len()];
        let repairs = propose_repairs(&ds.table, &space, &conf, 0.5);
        for w in repairs.windows(2) {
            assert!(w[0].support >= w[1].support);
        }
    }

    #[test]
    fn apply_respects_first_proposal_per_cell() {
        let mut t = paper_table1();
        let repairs = vec![
            Repair {
                row: 0,
                attr: 2,
                current: "L.A.".into(),
                suggested: "Chicago".into(),
                fd: Fd::from_attrs([1], 2),
                support: 0.9,
            },
            Repair {
                row: 0,
                attr: 2,
                current: "L.A.".into(),
                suggested: "Boston".into(),
                fd: Fd::from_attrs([1], 2),
                support: 0.5,
            },
        ];
        let applied = apply_repairs(&mut t, &repairs);
        assert_eq!(applied, 1);
        assert_eq!(t.text(0, 2), "Chicago");
    }
}
