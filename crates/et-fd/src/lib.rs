//! Functional-dependency substrate.
//!
//! Everything the exploratory-training game needs to reason about
//! (approximate) functional dependencies:
//!
//! * [`AttrSet`] — a bitmask attribute set with lattice operations.
//! * [`Fd`] — minimal/non-trivial/normalized FDs, plus the subset/superset
//!   relations the paper uses for priors and the "+" evaluation metrics.
//! * [`HypothesisSpace`] — enumeration and capping of the candidate FD set
//!   (the paper's empirical study uses 38 approximate FDs per dataset, each
//!   with at most four attributes).
//! * [`g1`] — the scaled g1 approximation measure (Kivinen & Mannila),
//!   matching the paper's Example 1 exactly.
//! * [`violations`] — pair relations, per-tuple violation flags, and
//!   cell-level violation sets.
//! * [`discovery`] — a levelwise (TANE-style) discovery of minimal
//!   approximate FDs under a g1 threshold.
//! * [`detect`] — FD-based error detection: belief-weighted per-tuple dirty
//!   probabilities (a violating pair of an FD with confidence `c` is dirty
//!   with probability `c`, mirroring the paper's `1 - m` construction).

#![warn(missing_docs)]

pub mod attrset;
pub mod cover;
#[macro_use]
pub mod invariant;
pub mod cache;
pub mod delta;
pub mod detect;
pub mod discovery;
pub mod fd;
pub mod g1;
pub mod incremental;
pub mod keys;
pub mod measures;
pub mod partitions;
pub mod relmatrix;
pub mod repair;
pub mod space;
pub mod violations;

pub use attrset::AttrSet;
pub use cache::{PartitionCache, NO_CLASS};
pub use cover::{closure, equivalent, implies, minimal_cover};
pub use delta::DeltaScorer;
pub use detect::{
    binary_entropy, pair_dirty_probs, pair_dirty_probs_with, predict_labels, tuple_dirty_prob,
    tuple_dirty_prob_with, DetectParams, Indicator,
};
pub use fd::{Fd, FdRelation};
pub use g1::{g1_many, g1_many_with, g1_of, G1};
pub use incremental::SubsampleIndex;
pub use keys::{discover_keys, is_key, Ucc};
pub use measures::{g2_g3, ApproxMeasures};
pub use partitions::{discover_tane, StrippedPartition, TaneFd};
pub use relmatrix::{violation_factors, violation_factors_into, PairScores, RelationMatrix};
pub use repair::{apply_repairs, propose_repairs, Repair};
pub use space::HypothesisSpace;
pub use violations::{
    cell_violations, pair_relation, PairRelation, SpaceRelations, ViolationIndex,
};
