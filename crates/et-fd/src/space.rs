//! Hypothesis spaces: the candidate FD sets agents hold beliefs over.
//!
//! The paper's empirical study fixes, per dataset, a space of 38 approximate
//! FDs with at most four attributes each; the agents' beliefs are
//! distributions over the confidence of every FD in this space.
//! [`HypothesisSpace::enumerate`] builds the full normalized lattice up to a
//! size bound; [`HypothesisSpace::capped`] reproduces the paper's setup by
//! keeping `cap` supported candidates strided across the violation-rate
//! spectrum plus guaranteed room for explicitly pinned FDs.

use std::collections::HashMap;

use et_data::Table;

use crate::attrset::{subsets_up_to, AttrSet};
use crate::cache::PartitionCache;
use crate::fd::Fd;
use crate::g1::g1_many_with;

/// An immutable, indexable set of candidate FDs.
#[derive(Debug, Clone)]
pub struct HypothesisSpace {
    fds: Vec<Fd>,
    index: HashMap<Fd, usize>,
}

impl HypothesisSpace {
    /// Builds a space from an explicit FD list (duplicates removed, order
    /// preserved).
    ///
    /// # Panics
    /// Panics on an empty FD list.
    pub fn from_fds<I: IntoIterator<Item = Fd>>(fds: I) -> Self {
        let mut list = Vec::new();
        let mut index = HashMap::new();
        for fd in fds {
            if let std::collections::hash_map::Entry::Vacant(e) = index.entry(fd) {
                e.insert(list.len());
                list.push(fd);
            }
        }
        assert!(!list.is_empty(), "hypothesis space must not be empty");
        Self { fds: list, index }
    }

    /// Enumerates every normalized, non-trivial FD over `n_attrs` attributes
    /// with at most `max_fd_attrs` total attributes (LHS + RHS).
    ///
    /// The paper uses `max_fd_attrs = 4`.
    ///
    /// # Panics
    /// Panics unless `n_attrs >= 2` and `max_fd_attrs >= 2`.
    pub fn enumerate(n_attrs: u16, max_fd_attrs: u32) -> Self {
        assert!(n_attrs >= 2, "need at least two attributes to form an FD");
        assert!(max_fd_attrs >= 2, "an FD mentions at least two attributes");
        let universe = AttrSet::from_attrs(0..n_attrs);
        let mut fds = Vec::new();
        for rhs in 0..n_attrs {
            let rest = universe.without(rhs);
            for lhs in subsets_up_to(rest, max_fd_attrs - 1) {
                fds.push(Fd::new(lhs, rhs));
            }
        }
        Self::from_fds(fds)
    }

    /// Reproduces the paper's capped hypothesis space: enumerate candidates
    /// up to `max_fd_attrs`, drop FDs whose LHS has fewer than `min_support`
    /// at-risk pairs on `table` (nothing to learn from), rank the remainder
    /// by ascending violation rate, and keep `cap` FDs *strided across the
    /// quality spectrum* — the space must contain strong, plausible and
    /// weak hypotheses (all-near-exact spaces would make every agent's
    /// belief trivially uniform-high and uncertainty meaningless).
    ///
    /// FDs in `pinned` are always included (the ground-truth targets of an
    /// experiment must be in the space even if injection made them noisy).
    ///
    /// # Panics
    /// Panics when `cap` is smaller than the number of pinned FDs.
    pub fn capped(
        table: &Table,
        max_fd_attrs: u32,
        cap: usize,
        min_support: u64,
        pinned: &[Fd],
    ) -> Self {
        assert!(cap >= pinned.len(), "cap too small for pinned FDs");
        let full = Self::enumerate(table.schema().len() as u16, max_fd_attrs);
        // Score the whole lattice in one pass: candidates with equal
        // determinants (every RHS of one LHS) share a cached partition
        // instead of re-hashing per FD.
        let cache = PartitionCache::new(table);
        let stats = g1_many_with(table, full.fds(), &cache);
        let mut scored: Vec<(Fd, f64)> = Vec::new();
        for (&fd, g) in full.fds().iter().zip(&stats) {
            if pinned.contains(&fd) {
                continue;
            }
            if g.lhs_pairs < min_support {
                continue;
            }
            scored.push((fd, g.violation_rate()));
        }
        scored.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        let keep = cap.saturating_sub(pinned.len()).min(scored.len());
        // Quantile striding over the violation-rate-sorted candidates.
        let strided = (0..keep).map(|i| {
            let pos = if keep <= 1 {
                0
            } else {
                i * (scored.len() - 1) / (keep - 1)
            };
            scored[pos].0
        });
        Self::from_fds(pinned.iter().copied().chain(strided))
    }

    /// Number of FDs in the space.
    pub fn len(&self) -> usize {
        self.fds.len()
    }

    /// True when the space is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.fds.is_empty()
    }

    /// The FDs, in index order.
    pub fn fds(&self) -> &[Fd] {
        &self.fds
    }

    /// The FD at `idx`.
    pub fn fd(&self, idx: usize) -> Fd {
        self.fds[idx]
    }

    /// The index of `fd`, if present.
    pub fn index_of(&self, fd: &Fd) -> Option<usize> {
        self.index.get(fd).copied()
    }

    /// True when `fd` is in the space.
    pub fn contains(&self, fd: &Fd) -> bool {
        self.index.contains_key(fd)
    }

    /// Iterates `(index, Fd)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Fd)> + '_ {
        self.fds.iter().copied().enumerate()
    }

    /// Indices of FDs related (subset/superset/equal) to `fd`.
    pub fn related_to(&self, fd: &Fd) -> Vec<usize> {
        self.iter()
            .filter(|(_, f)| f.is_related_to(fd))
            .map(|(i, _)| i)
            .collect()
    }

    /// The set of attributes mentioned by any FD in the space.
    pub fn attrs_in_use(&self) -> AttrSet {
        self.fds
            .iter()
            .fold(AttrSet::EMPTY, |s, fd| s.union(fd.attrs()))
    }

    /// All LHS attribute-set / RHS combinations, deduplicated by LHS, useful
    /// for building group indexes once per distinct LHS.
    pub fn distinct_lhs(&self) -> Vec<AttrSet> {
        let mut seen = Vec::new();
        for fd in &self.fds {
            if !seen.contains(&fd.lhs) {
                seen.push(fd.lhs);
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use et_data::gen::omdb;

    #[test]
    fn enumeration_counts() {
        // 3 attributes, max 2 attrs per FD: each RHS has 2 singleton LHS
        // choices -> 6 FDs.
        let s = HypothesisSpace::enumerate(3, 2);
        assert_eq!(s.len(), 6);
        // max 3 attrs: each RHS also has C(2,2)=1 two-attr LHS -> 9 FDs.
        let s = HypothesisSpace::enumerate(3, 3);
        assert_eq!(s.len(), 9);
    }

    #[test]
    fn enumeration_paper_scale() {
        // Hospital: 19 attributes, FDs with <= 4 attributes:
        // 19 * (C(18,1) + C(18,2) + C(18,3)) = 19 * 987 = 18753.
        let s = HypothesisSpace::enumerate(19, 4);
        assert_eq!(s.len(), 18_753);
    }

    #[test]
    fn index_roundtrip() {
        let s = HypothesisSpace::enumerate(4, 3);
        for (i, fd) in s.iter() {
            assert_eq!(s.index_of(&fd), Some(i));
            assert!(s.contains(&fd));
        }
        assert_eq!(s.index_of(&Fd::from_attrs([0, 1, 2], 3)), None);
    }

    #[test]
    fn from_fds_dedups() {
        let a = Fd::from_attrs([0], 1);
        let b = Fd::from_attrs([1], 0);
        let s = HypothesisSpace::from_fds([a, b, a]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.fd(0), a);
    }

    #[test]
    fn capped_keeps_pinned_and_cap() {
        let ds = omdb(200, 3);
        let pinned: Vec<Fd> = ds.exact_fds.iter().map(Fd::from_spec).collect();
        let s = HypothesisSpace::capped(&ds.table, 3, 38, 3, &pinned);
        assert_eq!(s.len(), 38, "the paper's 38-FD space");
        for fd in &pinned {
            assert!(s.contains(fd), "pinned FD {fd} missing");
        }
    }

    #[test]
    fn capped_spans_the_quality_spectrum() {
        let ds = omdb(200, 3);
        let s = HypothesisSpace::capped(&ds.table, 3, 12, 3, &[]);
        let rates: Vec<f64> = s
            .fds()
            .iter()
            .map(|fd| crate::g1::g1_of(&ds.table, fd).violation_rate())
            .collect();
        let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = rates.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // Striding keeps both near-exact and badly-violated hypotheses.
        assert!(min <= 0.05, "best FD rate {min}");
        assert!(max >= 0.5, "worst FD rate {max}");
        // Every kept FD meets the support floor.
        for fd in s.fds() {
            assert!(crate::g1::g1_of(&ds.table, fd).lhs_pairs >= 3);
        }
    }

    #[test]
    fn related_to_finds_subsets_and_supersets() {
        let s = HypothesisSpace::enumerate(4, 3);
        let fd = Fd::from_attrs([0], 3);
        let related = s.related_to(&fd);
        // Related: itself, {0,1}->3, {0,2}->3.
        assert_eq!(related.len(), 3);
        for i in related {
            assert!(s.fd(i).is_related_to(&fd));
        }
    }

    #[test]
    fn distinct_lhs_dedups() {
        let s = HypothesisSpace::from_fds([
            Fd::from_attrs([0], 1),
            Fd::from_attrs([0], 2),
            Fd::from_attrs([1], 0),
        ]);
        assert_eq!(s.distinct_lhs().len(), 2);
    }
}
