//! Levelwise discovery of minimal approximate FDs (TANE-style).
//!
//! On completely clean data approximate FDs "can be learned with an
//! unsupervised method" (Huhtala et al. 1999) — this module is that method.
//! The workspace uses it to sanity-check generators (every constructed FD
//! must be discovered), to seed hypothesis spaces, and as the baseline
//! "system without supervision" against which exploratory training is
//! motivated.

use et_data::Table;

use crate::attrset::AttrSet;
use crate::fd::Fd;
use crate::g1::{g1_of, G1};

/// Configuration for [`discover`].
#[derive(Debug, Clone)]
pub struct DiscoveryConfig {
    /// Maximum LHS size explored.
    pub max_lhs: u32,
    /// An FD qualifies when its violation rate (violating / at-risk pairs)
    /// is at most this threshold. `0.0` discovers exact FDs.
    pub max_violation_rate: f64,
    /// Minimum number of at-risk pairs for an FD to count as supported —
    /// key-like LHSs trivially "hold" and are skipped below this floor.
    pub min_support: u64,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        Self {
            max_lhs: 3,
            max_violation_rate: 0.0,
            min_support: 1,
        }
    }
}

/// A discovered minimal approximate FD with its statistics.
#[derive(Debug, Clone)]
pub struct DiscoveredFd {
    /// The dependency.
    pub fd: Fd,
    /// Its pair statistics on the input table.
    pub stats: G1,
}

/// Discovers all minimal, non-trivial, normalized FDs whose violation rate
/// is at most `cfg.max_violation_rate`.
///
/// Levelwise search per RHS attribute: a qualifying LHS stops its branch
/// (supersets would be non-minimal); non-qualifying LHSs are extended by
/// one attribute. Candidates with a qualifying proper-subset LHS reached
/// via another branch are pruned before testing.
pub fn discover(table: &Table, cfg: &DiscoveryConfig) -> Vec<DiscoveredFd> {
    let n_attrs = table.schema().len() as u16;
    let mut out = Vec::new();
    for rhs in 0..n_attrs {
        let mut qualified: Vec<AttrSet> = Vec::new();
        // Level 1 candidates.
        let mut frontier: Vec<AttrSet> = (0..n_attrs)
            .filter(|&a| a != rhs)
            .map(AttrSet::singleton)
            .collect();
        let mut level = 1u32;
        while !frontier.is_empty() && level <= cfg.max_lhs {
            let mut next = Vec::new();
            for lhs in frontier {
                if qualified.iter().any(|q| q.is_proper_subset_of(lhs)) {
                    continue; // non-minimal
                }
                let fd = Fd::new(lhs, rhs);
                let stats = g1_of(table, &fd);
                let supported = stats.lhs_pairs >= cfg.min_support;
                if supported && stats.violation_rate() <= cfg.max_violation_rate {
                    qualified.push(lhs);
                    out.push(DiscoveredFd { fd, stats });
                    continue;
                }
                // Extend with attributes greater than the current max to
                // enumerate each set once.
                let max_attr = lhs.iter().last().unwrap_or(0);
                for a in (max_attr + 1)..n_attrs {
                    if a != rhs {
                        next.push(lhs.with(a));
                    }
                }
            }
            frontier = next;
            level += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use et_data::gen::{airport, omdb};
    use et_data::{inject_errors, InjectConfig};

    #[test]
    fn discovers_generator_fds_on_clean_data() {
        let ds = airport(200, 4);
        let cfg = DiscoveryConfig {
            max_lhs: 2,
            max_violation_rate: 0.0,
            min_support: 3,
        };
        let found = discover(&ds.table, &cfg);
        for spec in &ds.exact_fds {
            let fd = Fd::from_spec(spec);
            let covered = found.iter().any(|d| d.fd == fd || d.fd.implies(&fd));
            assert!(
                covered,
                "{} not discovered (nor implied)",
                fd.display(ds.table.schema())
            );
        }
    }

    #[test]
    fn minimality_enforced() {
        let ds = omdb(200, 4);
        let cfg = DiscoveryConfig {
            max_lhs: 3,
            max_violation_rate: 0.0,
            min_support: 1,
        };
        let found = discover(&ds.table, &cfg);
        for a in &found {
            for b in &found {
                if a.fd != b.fd {
                    assert!(
                        !a.fd.implies(&b.fd),
                        "{} implies {} — non-minimal output",
                        a.fd,
                        b.fd
                    );
                }
            }
        }
    }

    #[test]
    fn tolerance_recovers_fds_after_injection() {
        let mut ds = airport(250, 6);
        let specs = ds.exact_fds.clone();
        let cfg = InjectConfig::with_degree(0.08, 3);
        let _ = inject_errors(&mut ds.table, &specs, &[], &cfg);
        // Exact discovery now misses the scrambled FDs...
        let exact = discover(
            &ds.table,
            &DiscoveryConfig {
                max_lhs: 2,
                max_violation_rate: 0.0,
                min_support: 3,
            },
        );
        let approx = discover(
            &ds.table,
            &DiscoveryConfig {
                max_lhs: 2,
                max_violation_rate: 0.25,
                min_support: 3,
            },
        );
        let hits = |list: &[DiscoveredFd]| {
            specs
                .iter()
                .map(Fd::from_spec)
                .filter(|fd| list.iter().any(|d| d.fd == *fd || d.fd.implies(fd)))
                .count()
        };
        assert!(
            hits(&approx) > hits(&exact) || hits(&exact) == specs.len(),
            "approximate discovery should recover more FDs (exact {}, approx {})",
            hits(&exact),
            hits(&approx)
        );
        assert_eq!(hits(&approx), specs.len());
    }

    #[test]
    fn respects_max_lhs() {
        let ds = omdb(150, 2);
        let cfg = DiscoveryConfig {
            max_lhs: 1,
            max_violation_rate: 0.0,
            min_support: 1,
        };
        for d in discover(&ds.table, &cfg) {
            assert_eq!(d.fd.lhs.len(), 1);
        }
    }
}
