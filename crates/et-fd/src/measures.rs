//! Alternative FD approximation measures: g2 and g3.
//!
//! The paper uses the pair-counting g1 (module [`crate::g1`]); the
//! approximate-dependency literature (Kivinen & Mannila 1992) defines two
//! siblings we provide for cross-checks and ablations:
//!
//! * **g2** — the fraction of *tuples* involved in at least one violating
//!   pair;
//! * **g3** — the minimum fraction of tuples that must be removed for the
//!   FD to hold exactly (computable exactly per group: keep the largest
//!   RHS bucket).

use et_data::{AttrId, Table};

use crate::fd::Fd;

/// Tuple-level measures of one FD over one table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxMeasures {
    /// Fraction of tuples participating in a violating pair (g2).
    pub g2: f64,
    /// Minimum removal fraction for the FD to hold exactly (g3).
    pub g3: f64,
    /// Number of rows.
    pub rows: usize,
}

/// Computes g2 and g3 for `fd` over `table`.
pub fn g2_g3(table: &Table, fd: &Fd) -> ApproxMeasures {
    let n = table.nrows();
    if n == 0 {
        return ApproxMeasures {
            g2: 0.0,
            g3: 0.0,
            rows: 0,
        };
    }
    let lhs: Vec<AttrId> = fd.lhs_vec();
    let grouped = table.group_by(&lhs);
    let mut violating_tuples = 0usize;
    let mut removals = 0usize;
    let mut rhs_counts: Vec<(u32, usize)> = Vec::new();
    for group in &grouped.groups {
        if group.len() < 2 {
            continue;
        }
        rhs_counts.clear();
        for &row in group {
            let s = table.sym(row as usize, fd.rhs);
            match rhs_counts.iter_mut().find(|(sym, _)| *sym == s) {
                Some((_, c)) => *c += 1,
                None => rhs_counts.push((s, 1)),
            }
        }
        if rhs_counts.len() > 1 {
            violating_tuples += group.len();
            let keep = rhs_counts.iter().map(|(_, c)| *c).max().unwrap_or(0);
            removals += group.len() - keep;
        }
    }
    ApproxMeasures {
        g2: violating_tuples as f64 / n as f64,
        g3: removals as f64 / n as f64,
        rows: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use et_data::table::paper_table1;
    use proptest::prelude::*;

    #[test]
    fn paper_table_measures() {
        let t = paper_table1();
        let fd = Fd::from_attrs([1], 2); // Team -> City
        let m = g2_g3(&t, &fd);
        // t1, t2 are the violating tuples: g2 = 2/5.
        assert!((m.g2 - 0.4).abs() < 1e-12);
        // Removing either t1 or t2 repairs the FD: g3 = 1/5.
        assert!((m.g3 - 0.2).abs() < 1e-12);
    }

    #[test]
    fn exact_fd_has_zero_measures() {
        let t = paper_table1();
        let fd = Fd::from_attrs([2, 3], 4);
        let m = g2_g3(&t, &fd);
        assert_eq!(m.g2, 0.0);
        assert_eq!(m.g3, 0.0);
    }

    #[test]
    fn empty_table() {
        let t = et_data::Table::builder(et_data::Schema::new(["a", "b"])).finish();
        let m = g2_g3(&t, &Fd::from_attrs([0], 1));
        assert_eq!(m.g2, 0.0);
        assert_eq!(m.g3, 0.0);
    }

    proptest! {
        #[test]
        fn g3_bounded_by_g2(rows in proptest::collection::vec((0u8..4, 0u8..3), 2..40)) {
            let mut b = et_data::Table::builder(et_data::Schema::new(["x", "a"]));
            for (x, a) in &rows {
                b.push_row(&[format!("x{x}"), format!("a{a}")]);
            }
            let t = b.finish();
            let m = g2_g3(&t, &Fd::from_attrs([0], 1));
            // Removing tuples repairs at most what g2 flags, and at least
            // one tuple per mixed group stays -> g3 < g2 whenever g2 > 0.
            prop_assert!(m.g3 <= m.g2 + 1e-12);
            prop_assert!((0.0..=1.0).contains(&m.g2));
            prop_assert!((0.0..=1.0).contains(&m.g3));
            if m.g2 > 0.0 {
                prop_assert!(m.g3 < m.g2);
            }
        }

        #[test]
        fn g3_zero_iff_exact(rows in proptest::collection::vec((0u8..3, 0u8..3), 2..30)) {
            let mut b = et_data::Table::builder(et_data::Schema::new(["x", "a"]));
            for (x, a) in &rows {
                b.push_row(&[format!("x{x}"), format!("a{a}")]);
            }
            let t = b.finish();
            let fd = Fd::from_attrs([0], 1);
            let m = g2_g3(&t, &fd);
            let exact = crate::g1::g1_of(&t, &fd).is_exact();
            prop_assert_eq!(m.g3 == 0.0, exact);
        }
    }
}
