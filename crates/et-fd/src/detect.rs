//! FD-based error detection.
//!
//! The paper converts approximate-FD structure into per-tuple dirty
//! probabilities (§A.1 "Detecting Errors"): for an FD with scaled violation
//! measure `m`, a *violating* pair is dirty with probability `1 − m`, a
//! *satisfying* pair with probability `m`. With belief confidence
//! `c ≈ 1 − m` (the believed probability that the FD holds), a violation of
//! an FD believed with confidence `c` indicates an error with probability
//! ≈ `c`.
//!
//! Beliefs cover a whole hypothesis space, so per-FD indications are
//! combined by **noisy-OR over the violated FDs**:
//!
//! ```text
//! p_dirty(x) = 1 − (1 − base_rate) · Π_{f : x violates f} (1 − c_f^e)
//! ```
//!
//! At tuple granularity only *minority-value* violators are indicted: when
//! a group disagrees on the RHS, majority consensus says the rows carrying
//! the rarer values are the likely errors (pair granularity cannot tell the
//! sides apart — paper Example 2 — but tuple-level detection can and
//! should). Violations *accumulate* evidence of dirtiness; satisfying
//! relations leave the ambient `base_rate` in place (their `m` residual never crosses
//! a labeling threshold anyway). A weighted *average* would instead let a
//! tuple's many satisfied FDs outvote a confident violation — diluting

//! (default 2) makes weakly-believed FDs contribute marginally, so a
//! disbelieved FD cannot implicate tuples; `e = 1`, `base_rate = m`
//! recovers the paper's single-FD formula.

use et_data::Table;

use crate::space::HypothesisSpace;
use crate::violations::{pair_relation, PairRelation, ViolationIndex};

/// How a belief confidence turns into an error indicator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Indicator {
    /// `ind(c) = c` — the paper's raw formula (`1 − m` for a violating
    /// pair of an FD with violation measure `m = 1 − c`).
    Linear,
    /// `ind(c) = σ((c − pivot)/slope)` — a sharp gate: only FDs believed to
    /// hold nearly exactly implicate tuples. Necessary over hypothesis
    /// spaces that deliberately contain weak FDs: a typical tuple violates
    /// *many* of them, and linear indicators would saturate the noisy-OR
    /// (every tuple flagged dirty, precision = base rate).
    Sigmoid {
        /// Confidence at which the indicator is 0.5.
        pivot: f64,
        /// Transition width.
        slope: f64,
    },
}

impl Indicator {
    /// Applies the indicator to a confidence.
    pub fn apply(&self, c: f64) -> f64 {
        match self {
            Indicator::Linear => c.clamp(0.0, 1.0),
            Indicator::Sigmoid { pivot, slope } => 1.0 / (1.0 + ((pivot - c) / slope).exp()),
        }
    }
}

/// Parameters of the noisy-OR detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectParams {
    /// The ambient probability that an arbitrary tuple is dirty.
    pub base_rate: f64,
    /// The confidence-to-indicator transform.
    pub indicator: Indicator,
}

impl Default for DetectParams {
    fn default() -> Self {
        Self {
            base_rate: 0.1,
            indicator: Indicator::Sigmoid {
                pivot: 0.85,
                slope: 0.04,
            },
        }
    }
}

impl DetectParams {
    /// The paper's raw single-FD formula: `p = c` for a violating pair (no
    /// ambient rate, linear confidence).
    pub fn unsmoothed() -> Self {
        Self {
            base_rate: 0.0,
            indicator: Indicator::Linear,
        }
    }
}

/// Noisy-OR combination given the confidences of the violated FDs.
fn noisy_or(violated_confs: impl Iterator<Item = f64>, params: &DetectParams) -> f64 {
    let mut keep_clean = 1.0 - params.base_rate;
    for c in violated_confs {
        keep_clean *= 1.0 - params.indicator.apply(c);
    }
    1.0 - keep_clean
}

/// The belief-weighted probability that `row` is dirty, with default
/// parameters.
pub fn tuple_dirty_prob(index: &ViolationIndex, confidences: &[f64], row: usize) -> f64 {
    tuple_dirty_prob_with(index, confidences, row, &DetectParams::default())
}

/// The belief-weighted probability that `row` is dirty.
///
/// `confidences[f]` is the believed probability that FD `f` of the indexed
/// space holds.
///
/// # Panics
/// Panics when `confidences.len()` differs from the index's FD count.
pub fn tuple_dirty_prob_with(
    index: &ViolationIndex,
    confidences: &[f64],
    row: usize,
    params: &DetectParams,
) -> f64 {
    assert_eq!(
        confidences.len(),
        index.n_fds(),
        "confidence vector does not match hypothesis space"
    );
    noisy_or(
        confidences
            .iter()
            .enumerate()
            .filter(|&(fi, _)| index.tuple_minority(fi, row))
            .map(|(_, &c)| c),
        params,
    )
}

/// Belief-weighted dirty probabilities for both tuples of the pair
/// `(a, b)`, using only the pair's own evidence (the information a trainer
/// inspecting the presented pair has), with default parameters.
///
/// Both tuples of a pair receive the same probability — an FD violation
/// cannot tell which side is erroneous (paper Example 2).
pub fn pair_dirty_probs(
    table: &Table,
    space: &HypothesisSpace,
    confidences: &[f64],
    a: usize,
    b: usize,
) -> (f64, f64) {
    pair_dirty_probs_with(table, space, confidences, a, b, &DetectParams::default())
}

/// [`pair_dirty_probs`] with explicit parameters.
///
/// # Panics
/// Panics when `confidences` does not have one entry per FD of `space`.
pub fn pair_dirty_probs_with(
    table: &Table,
    space: &HypothesisSpace,
    confidences: &[f64],
    a: usize,
    b: usize,
    params: &DetectParams,
) -> (f64, f64) {
    assert_eq!(
        confidences.len(),
        space.len(),
        "confidence vector does not match hypothesis space"
    );
    let p = noisy_or(
        space
            .iter()
            .filter(|(_, fd)| pair_relation(table, fd, a, b) == PairRelation::Violates)
            .map(|(fi, _)| confidences[fi]),
        params,
    );
    (p, p)
}

/// Predicts dirty labels (`true` = dirty) for `rows` by thresholding
/// [`tuple_dirty_prob`] at `0.5`.
pub fn predict_labels(index: &ViolationIndex, confidences: &[f64], rows: &[usize]) -> Vec<bool> {
    rows.iter()
        .map(|&r| tuple_dirty_prob(index, confidences, r) > 0.5)
        .collect()
}

/// Binary entropy of a probability, in nats — the paper's uncertainty
/// measure `entropy(x, θ) = −p ln p − (1−p) ln(1−p)`.
pub fn binary_entropy(p: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
    let mut h = 0.0;
    if p > 0.0 {
        h -= p * p.ln();
    }
    if p < 1.0 {
        h -= (1.0 - p) * (1.0 - p).ln();
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::Fd;
    use et_data::table::paper_table1;
    use proptest::prelude::*;

    fn team_city_space() -> HypothesisSpace {
        HypothesisSpace::from_fds([Fd::from_attrs([1], 2)])
    }

    #[test]
    fn unsmoothed_matches_paper_formula() {
        let t = paper_table1();
        let space = team_city_space();
        let idx = ViolationIndex::build(&t, &space);
        let conf = [0.96];
        let raw = DetectParams::unsmoothed();
        // t1, t2 violate Team -> City: dirty with probability 0.96 = 1 - m.
        assert!((tuple_dirty_prob_with(&idx, &conf, 0, &raw) - 0.96).abs() < 1e-12);
        assert!((tuple_dirty_prob_with(&idx, &conf, 1, &raw) - 0.96).abs() < 1e-12);
        // Satisfying / irrelevant tuples: no violated FD, no ambient rate.
        assert_eq!(tuple_dirty_prob_with(&idx, &conf, 2, &raw), 0.0);
        assert_eq!(tuple_dirty_prob_with(&idx, &conf, 4, &raw), 0.0);
        // With the ambient rate set to the violation measure m, satisfying
        // tuples get the paper's `m` as well.
        let with_m = DetectParams {
            base_rate: 0.04,
            indicator: Indicator::Linear,
        };
        assert!((tuple_dirty_prob_with(&idx, &conf, 2, &with_m) - 0.04).abs() < 1e-12);
    }

    #[test]
    fn violation_beats_satisfactions_elsewhere() {
        // A tuple violating one strong FD while satisfying another strong
        // FD is still dirty — violations must not be averaged away.
        let t = paper_table1();
        let space = HypothesisSpace::from_fds([Fd::from_attrs([1], 2), Fd::from_attrs([2, 3], 4)]);
        let idx = ViolationIndex::build(&t, &space);
        // Row 1 (t2) violates Team -> City and satisfies City,Role -> Apps.
        let p = tuple_dirty_prob(&idx, &[0.9, 0.9], 1);
        assert!(p > 0.5, "violating tuple must stay dirty: {p}");
    }

    #[test]
    fn disbelieved_fd_does_not_implicate() {
        let t = paper_table1();
        let space = team_city_space();
        let idx = ViolationIndex::build(&t, &space);
        // Violating pair of a weakly-believed FD: not dirty.
        let p = tuple_dirty_prob(&idx, &[0.3], 0);
        assert!(p < 0.5, "weak belief cannot implicate: {p}");
        // Satisfying pair of a disbelieved FD: base rate only.
        let p = tuple_dirty_prob(&idx, &[0.15], 2);
        assert!((p - 0.1).abs() < 1e-9);
    }

    #[test]
    fn multiple_violations_accumulate() {
        let t = paper_table1();
        let space = HypothesisSpace::from_fds([Fd::from_attrs([1], 2), Fd::from_attrs([1], 3)]);
        let idx = ViolationIndex::build(&t, &space);
        // Row 0 violates both Team -> City and Team -> Role.
        let single = tuple_dirty_prob(&idx, &[0.6, 0.0], 0);
        let double = tuple_dirty_prob(&idx, &[0.6, 0.6], 0);
        assert!(double > single, "{double} vs {single}");
    }

    #[test]
    fn predict_labels_thresholds() {
        let t = paper_table1();
        let space = team_city_space();
        let idx = ViolationIndex::build(&t, &space);
        let labels = predict_labels(&idx, &[0.9], &[0, 1, 2, 3, 4]);
        assert_eq!(labels, vec![true, true, false, false, false]);
    }

    #[test]
    fn pair_probs_match_paper_example_2() {
        let t = paper_table1();
        let space = team_city_space();
        let raw = DetectParams::unsmoothed();
        let (pa, pb) = pair_dirty_probs_with(&t, &space, &[0.96], 0, 1, &raw);
        assert!((pa - 0.96).abs() < 1e-12);
        assert_eq!(pa, pb);
        let (pc, _) = pair_dirty_probs_with(&t, &space, &[0.96], 2, 3, &raw);
        assert_eq!(pc, 0.0);
        let (pd, _) = pair_dirty_probs_with(&t, &space, &[0.96], 0, 4, &raw);
        assert_eq!(pd, 0.0);
    }

    #[test]
    fn smoothed_pair_probs_decide_like_raw_for_confident_fds() {
        let t = paper_table1();
        let space = team_city_space();
        let (pv, _) = pair_dirty_probs(&t, &space, &[0.96], 0, 1);
        let (ps, _) = pair_dirty_probs(&t, &space, &[0.96], 2, 3);
        assert!(pv > 0.5);
        assert!(ps < 0.5);
        let (pi, _) = pair_dirty_probs(&t, &space, &[0.96], 0, 4);
        assert!((pi - 0.1).abs() < 1e-12, "irrelevant pair -> base rate");
    }

    #[test]
    fn entropy_basics() {
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
        let max = binary_entropy(0.5);
        assert!((max - std::f64::consts::LN_2).abs() < 1e-12);
        assert!(binary_entropy(0.3) < max);
    }

    proptest! {
        #[test]
        fn dirty_prob_bounded(confs in proptest::collection::vec(0.0f64..=1.0, 1..4), row in 0usize..5) {
            let t = paper_table1();
            let fds = [Fd::from_attrs([1], 2), Fd::from_attrs([2,3], 4), Fd::from_attrs([1], 3)];
            let space = HypothesisSpace::from_fds(fds.iter().copied().take(confs.len()));
            let idx = ViolationIndex::build(&t, &space);
            for params in [DetectParams::default(), DetectParams::unsmoothed()] {
                let p = tuple_dirty_prob_with(&idx, &confs, row, &params);
                prop_assert!((0.0..=1.0).contains(&p), "p = {p}");
            }
        }

        #[test]
        fn monotone_in_confidence(c1 in 0.0f64..=1.0, c2 in 0.0f64..=1.0) {
            prop_assume!(c1 <= c2);
            let t = paper_table1();
            let space = HypothesisSpace::from_fds([Fd::from_attrs([1], 2)]);
            let idx = ViolationIndex::build(&t, &space);
            // Row 0 violates the FD: more confidence -> more dirty.
            let p1 = tuple_dirty_prob(&idx, &[c1], 0);
            let p2 = tuple_dirty_prob(&idx, &[c2], 0);
            prop_assert!(p1 <= p2 + 1e-12);
        }

        #[test]
        fn entropy_bounded(p in 0.0f64..=1.0) {
            let h = binary_entropy(p);
            prop_assert!(h >= 0.0);
            prop_assert!(h <= std::f64::consts::LN_2 + 1e-12);
        }
    }
}
