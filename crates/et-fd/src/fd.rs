//! Functional dependencies and the relations between them.
//!
//! The paper restricts attention to FDs that are *minimal*, *non-trivial*
//! (`X ∩ Y = ∅`) and *normalized* (single-attribute RHS), and defines a
//! subset/superset relation used both for prior construction (§A.2,
//! "Configuration of Learning Methods") and for the "+" evaluation metrics:
//! `X -> Z` is a **superset** of `XY -> Z` (it implies it); `XY -> Z` is a
//! **subset** of `X -> Z`.

use std::fmt;

use et_data::{AttrId, FdSpec, Schema};

use crate::attrset::AttrSet;

/// A normalized, non-trivial functional dependency `lhs -> rhs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fd {
    /// Determinant attribute set (non-empty, excludes `rhs`).
    pub lhs: AttrSet,
    /// The single dependent attribute.
    pub rhs: AttrId,
}

/// How two FDs relate under the paper's subset/superset ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FdRelation {
    /// Same FD.
    Equal,
    /// `self` is a superset of the other: same RHS, strictly smaller LHS
    /// (so `self` implies the other).
    Superset,
    /// `self` is a subset of the other: same RHS, strictly larger LHS.
    Subset,
    /// No subset/superset relation.
    Unrelated,
}

impl Fd {
    /// Builds an FD.
    ///
    /// # Panics
    /// Panics when the LHS is empty or contains the RHS.
    pub fn new(lhs: AttrSet, rhs: AttrId) -> Self {
        assert!(!lhs.is_empty(), "FD must have a non-empty LHS");
        assert!(
            !lhs.contains(rhs),
            "FD must be non-trivial (RHS not in LHS)"
        );
        Self { lhs, rhs }
    }

    /// Builds an FD from attribute ids.
    pub fn from_attrs<I: IntoIterator<Item = AttrId>>(lhs: I, rhs: AttrId) -> Self {
        Self::new(AttrSet::from_attrs(lhs), rhs)
    }

    /// Converts an index-based [`FdSpec`] (the `et-data` representation).
    pub fn from_spec(spec: &FdSpec) -> Self {
        Self::new(
            AttrSet::from_indices(spec.lhs.iter().copied()),
            spec.rhs as AttrId,
        )
    }

    /// Converts back to the index-based representation.
    pub fn to_spec(&self) -> FdSpec {
        FdSpec::new(
            self.lhs.iter().map(|a| a as usize).collect(),
            self.rhs as usize,
        )
    }

    /// All attributes mentioned by the FD (LHS ∪ {RHS}).
    pub fn attrs(&self) -> AttrSet {
        self.lhs.with(self.rhs)
    }

    /// Total number of attributes mentioned (the paper caps this at four).
    pub fn size(&self) -> u32 {
        self.attrs().len()
    }

    /// LHS attribute ids as a vector.
    pub fn lhs_vec(&self) -> Vec<AttrId> {
        self.lhs.to_vec()
    }

    /// The paper's subset/superset relation between `self` and `other`.
    pub fn relation_to(&self, other: &Fd) -> FdRelation {
        if self == other {
            FdRelation::Equal
        } else if self.rhs != other.rhs {
            FdRelation::Unrelated
        } else if self.lhs.is_proper_subset_of(other.lhs) {
            FdRelation::Superset
        } else if other.lhs.is_proper_subset_of(self.lhs) {
            FdRelation::Subset
        } else {
            FdRelation::Unrelated
        }
    }

    /// True when `self` logically implies `other` (`self` is a superset of
    /// `other`, or they are equal).
    pub fn implies(&self, other: &Fd) -> bool {
        matches!(
            self.relation_to(other),
            FdRelation::Equal | FdRelation::Superset
        )
    }

    /// True when the FDs are related (equal, subset, or superset). The
    /// paper's priors treat related FDs preferentially and its "+" metrics
    /// accept them as discounted matches.
    pub fn is_related_to(&self, other: &Fd) -> bool {
        !matches!(self.relation_to(other), FdRelation::Unrelated)
    }

    /// Renders using attribute names, e.g. `Team -> City`.
    pub fn display(&self, schema: &Schema) -> String {
        format!("{} -> {}", self.lhs.display(schema), schema.name(self.rhs))
    }
}

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.lhs, self.rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fd(lhs: &[AttrId], rhs: AttrId) -> Fd {
        Fd::from_attrs(lhs.iter().copied(), rhs)
    }

    #[test]
    fn spec_roundtrip() {
        let spec = FdSpec::new(vec![0, 2], 3);
        let f = Fd::from_spec(&spec);
        assert_eq!(f.lhs.to_vec(), vec![0, 2]);
        assert_eq!(f.rhs, 3);
        assert_eq!(f.to_spec(), spec);
    }

    #[test]
    fn paper_superset_semantics() {
        // X -> Z is a superset of XY -> Z.
        let x_z = fd(&[0], 5);
        let xy_z = fd(&[0, 1], 5);
        assert_eq!(x_z.relation_to(&xy_z), FdRelation::Superset);
        assert_eq!(xy_z.relation_to(&x_z), FdRelation::Subset);
        assert!(x_z.implies(&xy_z));
        assert!(!xy_z.implies(&x_z));
        assert!(x_z.is_related_to(&xy_z));
    }

    #[test]
    fn unrelated_cases() {
        let a = fd(&[0], 5);
        let b = fd(&[0], 6); // different RHS
        let c = fd(&[1], 5); // incomparable LHS
        assert_eq!(a.relation_to(&b), FdRelation::Unrelated);
        assert_eq!(a.relation_to(&c), FdRelation::Unrelated);
        assert_eq!(a.relation_to(&a), FdRelation::Equal);
        assert!(a.implies(&a));
    }

    #[test]
    fn size_counts_all_attrs() {
        assert_eq!(fd(&[0, 1, 2], 7).size(), 4);
        assert_eq!(fd(&[3], 7).size(), 2);
    }

    #[test]
    #[should_panic(expected = "non-trivial")]
    fn trivial_rejected() {
        let _ = fd(&[0, 1], 1);
    }

    #[test]
    fn display_with_schema() {
        let schema = Schema::new(["Player", "Team", "City"]);
        assert_eq!(fd(&[1], 2).display(&schema), "Team -> City");
        assert_eq!(fd(&[0, 1], 2).display(&schema), "Player,Team -> City");
    }
}
