//! Bitmask attribute sets.
//!
//! FDs over the paper's datasets involve at most 19 attributes; a `u64`
//! bitmask makes subset tests, unions and lattice walks single instructions.

use std::fmt;

use et_data::{AttrId, Schema};

/// A set of attribute ids, stored as a 64-bit mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct AttrSet(u64);

impl AttrSet {
    /// Maximum representable attribute id.
    pub const MAX_ATTR: AttrId = 63;

    /// The empty set.
    pub const EMPTY: AttrSet = AttrSet(0);

    /// A single-attribute set.
    ///
    /// # Panics
    /// Panics when `a > 63`.
    pub fn singleton(a: AttrId) -> Self {
        assert!(
            a <= Self::MAX_ATTR,
            "attribute id {a} exceeds bitmask width"
        );
        AttrSet(1u64 << a)
    }

    /// Builds a set from attribute ids.
    pub fn from_attrs<I: IntoIterator<Item = AttrId>>(attrs: I) -> Self {
        attrs
            .into_iter()
            .fold(Self::EMPTY, |s, a| s.union(Self::singleton(a)))
    }

    /// Builds a set from `usize` indices (as used by [`et_data::FdSpec`]).
    pub fn from_indices<I: IntoIterator<Item = usize>>(attrs: I) -> Self {
        Self::from_attrs(attrs.into_iter().map(|a| a as AttrId))
    }

    /// Raw mask.
    pub fn mask(self) -> u64 {
        self.0
    }

    /// Number of attributes in the set.
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// True when the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// True when `a` is in the set.
    pub fn contains(self, a: AttrId) -> bool {
        a <= Self::MAX_ATTR && self.0 & (1u64 << a) != 0
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: AttrSet) -> AttrSet {
        AttrSet(self.0 | other.0)
    }

    /// Set intersection.
    #[must_use]
    pub fn intersect(self, other: AttrSet) -> AttrSet {
        AttrSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    #[must_use]
    pub fn difference(self, other: AttrSet) -> AttrSet {
        AttrSet(self.0 & !other.0)
    }

    /// Adds an attribute.
    #[must_use]
    pub fn with(self, a: AttrId) -> AttrSet {
        self.union(Self::singleton(a))
    }

    /// Removes an attribute.
    #[must_use]
    pub fn without(self, a: AttrId) -> AttrSet {
        self.difference(Self::singleton(a))
    }

    /// True when every attribute of `self` is in `other`.
    pub fn is_subset_of(self, other: AttrSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// True when `self` is a subset of `other` and not equal to it.
    pub fn is_proper_subset_of(self, other: AttrSet) -> bool {
        self != other && self.is_subset_of(other)
    }

    /// Iterates over member attribute ids in ascending order.
    pub fn iter(self) -> AttrSetIter {
        AttrSetIter(self.0)
    }

    /// Member ids as a vector (ascending).
    pub fn to_vec(self) -> Vec<AttrId> {
        self.iter().collect()
    }

    /// Renders using attribute names from `schema`, e.g. `{Team,City}`.
    pub fn display(self, schema: &Schema) -> String {
        let names: Vec<&str> = self.iter().map(|a| schema.name(a)).collect();
        names.join(",")
    }
}

impl fmt::Display for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ids: Vec<String> = self.iter().map(|a| a.to_string()).collect();
        write!(f, "{{{}}}", ids.join(","))
    }
}

impl FromIterator<AttrId> for AttrSet {
    fn from_iter<I: IntoIterator<Item = AttrId>>(iter: I) -> Self {
        Self::from_attrs(iter)
    }
}

/// Iterator over the members of an [`AttrSet`].
pub struct AttrSetIter(u64);

impl Iterator for AttrSetIter {
    type Item = AttrId;

    fn next(&mut self) -> Option<AttrId> {
        if self.0 == 0 {
            return None;
        }
        let a = self.0.trailing_zeros() as AttrId;
        self.0 &= self.0 - 1;
        Some(a)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for AttrSetIter {}

/// Enumerates every non-empty subset of `universe` with at most `max_len`
/// attributes, in ascending mask order.
pub fn subsets_up_to(universe: AttrSet, max_len: u32) -> Vec<AttrSet> {
    let attrs = universe.to_vec();
    let mut out = Vec::new();
    // Gosper-style enumeration over the compacted universe.
    let n = attrs.len();
    for mask in 1u64..(1u64 << n) {
        if mask.count_ones() > max_len {
            continue;
        }
        let mut s = AttrSet::EMPTY;
        for (i, &a) in attrs.iter().enumerate() {
            if mask & (1 << i) != 0 {
                s = s.with(a);
            }
        }
        out.push(s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_ops() {
        let s = AttrSet::from_attrs([1, 3, 5]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(3));
        assert!(!s.contains(2));
        assert_eq!(s.to_vec(), vec![1, 3, 5]);
        assert_eq!(s.without(3).to_vec(), vec![1, 5]);
        assert_eq!(s.with(0).len(), 4);
    }

    #[test]
    fn subset_relations() {
        let small = AttrSet::from_attrs([1, 3]);
        let big = AttrSet::from_attrs([1, 3, 5]);
        assert!(small.is_subset_of(big));
        assert!(small.is_proper_subset_of(big));
        assert!(!big.is_subset_of(small));
        assert!(big.is_subset_of(big));
        assert!(!big.is_proper_subset_of(big));
    }

    #[test]
    fn set_algebra() {
        let a = AttrSet::from_attrs([0, 1, 2]);
        let b = AttrSet::from_attrs([2, 3]);
        assert_eq!(a.union(b).to_vec(), vec![0, 1, 2, 3]);
        assert_eq!(a.intersect(b).to_vec(), vec![2]);
        assert_eq!(a.difference(b).to_vec(), vec![0, 1]);
    }

    #[test]
    fn subsets_enumeration() {
        let u = AttrSet::from_attrs([0, 2, 7]);
        let subs = subsets_up_to(u, 2);
        // C(3,1) + C(3,2) = 6
        assert_eq!(subs.len(), 6);
        assert!(subs.contains(&AttrSet::from_attrs([0, 7])));
        assert!(!subs.contains(&u));
        let all = subsets_up_to(u, 3);
        assert_eq!(all.len(), 7);
    }

    #[test]
    fn display_uses_schema_names() {
        let schema = et_data::Schema::new(["a", "b", "c"]);
        let s = AttrSet::from_attrs([0, 2]);
        assert_eq!(s.display(&schema), "a,c");
        assert_eq!(s.to_string(), "{0,2}");
    }

    proptest! {
        #[test]
        fn union_is_commutative_and_monotone(xs in proptest::collection::vec(0u16..32, 0..8),
                                             ys in proptest::collection::vec(0u16..32, 0..8)) {
            let a = AttrSet::from_attrs(xs);
            let b = AttrSet::from_attrs(ys);
            prop_assert_eq!(a.union(b), b.union(a));
            prop_assert!(a.is_subset_of(a.union(b)));
            prop_assert!(b.is_subset_of(a.union(b)));
            prop_assert_eq!(a.union(b).len() + a.intersect(b).len(), a.len() + b.len());
        }

        #[test]
        fn roundtrip_vec(xs in proptest::collection::vec(0u16..60, 0..10)) {
            let s = AttrSet::from_attrs(xs.clone());
            let v = s.to_vec();
            prop_assert_eq!(AttrSet::from_attrs(v.clone()), s);
            // Sorted + deduplicated.
            let mut expect = xs;
            expect.sort_unstable();
            expect.dedup();
            prop_assert_eq!(v, expect);
        }

        #[test]
        fn difference_disjoint(xs in proptest::collection::vec(0u16..32, 0..8),
                               ys in proptest::collection::vec(0u16..32, 0..8)) {
            let a = AttrSet::from_attrs(xs);
            let b = AttrSet::from_attrs(ys);
            prop_assert!(a.difference(b).intersect(b).is_empty());
            prop_assert_eq!(a.difference(b).union(a.intersect(b)), a);
        }
    }
}
