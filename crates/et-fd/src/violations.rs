//! Violation structure: pair relations, per-tuple flags, cell-level
//! violations.
//!
//! FD violations are defined over *pairs* of tuples (paper §A.1), and the
//! data-cleaning literature also identifies them at cell granularity
//! (`C_v`). The exploratory-training game needs, per FD:
//!
//! * the relation of a presented pair to the FD ([`pair_relation`]),
//! * whether a tuple participates in any violating pair
//!   ([`ViolationIndex::tuple_violates`]), and
//! * the g1 statistics ([`ViolationIndex::g1`]).

use std::collections::HashSet;

use et_data::{AttrId, Table};

use crate::fd::Fd;
use crate::g1::G1;
use crate::space::HypothesisSpace;

/// How a pair of tuples relates to one FD.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairRelation {
    /// The tuples disagree on the LHS: the FD says nothing about the pair.
    Irrelevant,
    /// The tuples agree on LHS and RHS: the pair supports the FD.
    Satisfies,
    /// The tuples agree on the LHS but differ on the RHS.
    Violates,
}

/// Classifies the pair `(a, b)` with respect to `fd`.
pub fn pair_relation(table: &Table, fd: &Fd, a: usize, b: usize) -> PairRelation {
    let lhs = fd.lhs_vec();
    if !table.rows_agree_on(a, b, &lhs) {
        PairRelation::Irrelevant
    } else if table.sym(a, fd.rhs) == table.sym(b, fd.rhs) {
        PairRelation::Satisfies
    } else {
        PairRelation::Violates
    }
}

/// Precomputed per-FD attribute lists for allocation-free pair-relation
/// checks over a whole hypothesis space (the evidence-update hot path).
#[derive(Debug, Clone)]
pub struct SpaceRelations {
    lhs: Vec<Vec<AttrId>>,
    rhs: Vec<AttrId>,
}

impl SpaceRelations {
    /// Prepares the helper for `space`.
    pub fn new(space: &HypothesisSpace) -> Self {
        Self {
            lhs: space.fds().iter().map(|fd| fd.lhs_vec()).collect(),
            rhs: space.fds().iter().map(|fd| fd.rhs).collect(),
        }
    }

    /// Number of FDs covered.
    pub fn len(&self) -> usize {
        self.rhs.len()
    }

    /// True when no FDs are covered.
    pub fn is_empty(&self) -> bool {
        self.rhs.is_empty()
    }

    /// The relation of pair `(a, b)` to FD `fi`.
    #[inline]
    pub fn relation(&self, table: &Table, fi: usize, a: usize, b: usize) -> PairRelation {
        if !table.rows_agree_on(a, b, &self.lhs[fi]) {
            PairRelation::Irrelevant
        } else if table.sym(a, self.rhs[fi]) == table.sym(b, self.rhs[fi]) {
            PairRelation::Satisfies
        } else {
            PairRelation::Violates
        }
    }

    /// True when the pair is relevant to (agrees on the LHS of) at least
    /// one FD of the space.
    pub fn relevant_to_any(&self, table: &Table, a: usize, b: usize) -> bool {
        (0..self.len()).any(|fi| self.relation(table, fi, a, b) != PairRelation::Irrelevant)
    }
}

/// Per-FD violation flags and statistics over a fixed table.
///
/// Built once per (table, hypothesis space); lookups are `O(1)`.
#[derive(Debug, Clone)]
pub struct ViolationIndex {
    n_rows: usize,
    /// Per FD: does the tuple participate in >= 1 violating pair?
    violates: Vec<Vec<bool>>,
    /// Per FD: is the tuple in a multi-row LHS group (any at-risk pair)?
    relevant: Vec<Vec<bool>>,
    /// Per FD: is the tuple's RHS value in a *minority* bucket of its mixed
    /// group? Majority consensus is the standard FD-repair heuristic: when
    /// a group disagrees on the RHS, the rows carrying the less-common
    /// values are the likely errors. Ties mark every member.
    minority: Vec<Vec<bool>>,
    /// Per FD: pair statistics.
    stats: Vec<G1>,
}

impl ViolationIndex {
    /// Builds the index for every FD of `space` over `table`.
    ///
    /// Groups are computed once per *distinct LHS* and shared by all FDs
    /// with that determinant.
    pub fn build(table: &Table, space: &HypothesisSpace) -> Self {
        let n = table.nrows();
        let n_fds = space.len();
        let mut violates = vec![vec![false; n]; n_fds];
        let mut relevant = vec![vec![false; n]; n_fds];
        let mut minority = vec![vec![false; n]; n_fds];
        let mut stats = vec![G1::default(); n_fds];

        for lhs in space.distinct_lhs() {
            let lhs_attrs: Vec<AttrId> = lhs.to_vec();
            let grouped = table.group_by(&lhs_attrs);
            let fd_ids: Vec<usize> = space
                .iter()
                .filter(|(_, fd)| fd.lhs == lhs)
                .map(|(i, _)| i)
                .collect();
            for &fi in &fd_ids {
                let rhs = space.fd(fi).rhs;
                let mut violating = 0u64;
                let mut lhs_pairs = 0u64;
                let mut rhs_counts: Vec<(u32, u64)> = Vec::new();
                for group in &grouped.groups {
                    let g = group.len() as u64;
                    if g < 2 {
                        continue;
                    }
                    lhs_pairs += g * (g - 1) / 2;
                    rhs_counts.clear();
                    for &row in group {
                        let s = table.sym(row as usize, rhs);
                        match rhs_counts.iter_mut().find(|(sym, _)| *sym == s) {
                            Some((_, c)) => *c += 1,
                            None => rhs_counts.push((s, 1)),
                        }
                    }
                    let sum_sq: u64 = rhs_counts.iter().map(|(_, c)| c * c).sum();
                    violating += (g * g - sum_sq) / 2;
                    let mixed = rhs_counts.len() > 1;
                    // Majority bucket: unique largest RHS count, if any.
                    let max_count = rhs_counts.iter().map(|(_, c)| *c).max().unwrap_or(0);
                    let max_ties = rhs_counts.iter().filter(|(_, c)| *c == max_count).count();
                    for &row in group {
                        relevant[fi][row as usize] = true;
                        if mixed {
                            // With >= 2 buckets every tuple has a
                            // cross-bucket partner, so all members violate.
                            violates[fi][row as usize] = true;
                            let s = table.sym(row as usize, rhs);
                            let bucket = rhs_counts
                                .iter()
                                .find(|(sym, _)| *sym == s)
                                .map(|(_, c)| *c)
                                .unwrap_or(0);
                            if bucket < max_count || max_ties > 1 {
                                minority[fi][row as usize] = true;
                            }
                        }
                    }
                }
                stats[fi] = G1 {
                    violating_pairs: violating,
                    lhs_pairs,
                    rows: n as u64,
                };
            }
        }

        Self {
            n_rows: n,
            violates,
            relevant,
            minority,
            stats,
        }
    }

    /// Number of rows indexed.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of FDs indexed.
    pub fn n_fds(&self) -> usize {
        self.stats.len()
    }

    /// Does `row` participate in a violating pair of FD `fd_idx`?
    #[inline]
    pub fn tuple_violates(&self, fd_idx: usize, row: usize) -> bool {
        self.violates[fd_idx][row]
    }

    /// Is `row` in a multi-row LHS group of FD `fd_idx`?
    #[inline]
    pub fn tuple_relevant(&self, fd_idx: usize, row: usize) -> bool {
        self.relevant[fd_idx][row]
    }

    /// Does `row` carry a minority RHS value within a mixed group of FD
    /// `fd_idx` (i.e. is it the likely-erroneous side of its violations)?
    #[inline]
    pub fn tuple_minority(&self, fd_idx: usize, row: usize) -> bool {
        self.minority[fd_idx][row]
    }

    /// Pair statistics of FD `fd_idx`.
    pub fn g1(&self, fd_idx: usize) -> &G1 {
        &self.stats[fd_idx]
    }

    /// All pair statistics, FD-indexed.
    pub fn stats(&self) -> &[G1] {
        &self.stats
    }
}

/// The cell-level violation set `C_v` of `fd`: for every violating pair,
/// the LHS and RHS cells of both tuples.
pub fn cell_violations(table: &Table, fd: &Fd) -> HashSet<(usize, AttrId)> {
    let lhs: Vec<AttrId> = fd.lhs_vec();
    let grouped = table.group_by(&lhs);
    let mut cells = HashSet::new();
    for group in &grouped.groups {
        if group.len() < 2 {
            continue;
        }
        for (i, &a) in group.iter().enumerate() {
            for &b in &group[i + 1..] {
                if table.sym(a as usize, fd.rhs) != table.sym(b as usize, fd.rhs) {
                    for row in [a as usize, b as usize] {
                        for &at in &lhs {
                            cells.insert((row, at));
                        }
                        cells.insert((row, fd.rhs));
                    }
                }
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use et_data::table::paper_table1;

    #[test]
    fn pair_relation_paper_example() {
        let t = paper_table1();
        let fd = Fd::from_attrs([1], 2); // Team -> City
        assert_eq!(pair_relation(&t, &fd, 0, 1), PairRelation::Violates);
        assert_eq!(pair_relation(&t, &fd, 2, 3), PairRelation::Satisfies);
        assert_eq!(pair_relation(&t, &fd, 0, 4), PairRelation::Irrelevant);
    }

    #[test]
    fn index_flags_match_pair_relations() {
        let t = paper_table1();
        let space = HypothesisSpace::from_fds([
            Fd::from_attrs([1], 2), // Team -> City
            Fd::from_attrs([2, 3], 4),
        ]);
        let idx = ViolationIndex::build(&t, &space);
        assert_eq!(idx.n_fds(), 2);
        assert_eq!(idx.n_rows(), 5);
        // Team -> City: t1, t2 violate; t3, t4 satisfy; t5 not relevant.
        assert!(idx.tuple_violates(0, 0));
        assert!(idx.tuple_violates(0, 1));
        assert!(!idx.tuple_violates(0, 2));
        assert!(idx.tuple_relevant(0, 2));
        assert!(!idx.tuple_relevant(0, 4));
        // Stats agree with g1_of.
        assert_eq!(*idx.g1(0), crate::g1::g1_of(&t, &space.fd(0)));
        assert_eq!(*idx.g1(1), crate::g1::g1_of(&t, &space.fd(1)));
    }

    #[test]
    fn index_consistency_on_generated_data() {
        let ds = et_data::gen::airport(150, 9);
        let fds: Vec<Fd> = ds.exact_fds.iter().map(Fd::from_spec).collect();
        let space = HypothesisSpace::from_fds(fds);
        let idx = ViolationIndex::build(&ds.table, &space);
        for (fi, fd) in space.iter() {
            assert!(idx.g1(fi).is_exact(), "{} should be exact", fd);
            for row in 0..ds.table.nrows() {
                assert!(!idx.tuple_violates(fi, row));
            }
        }
    }

    #[test]
    fn violates_implies_relevant() {
        let mut ds = et_data::gen::omdb(200, 5);
        let cfg = et_data::InjectConfig::with_degree(0.15, 3);
        let _ = et_data::inject_errors(&mut ds.table, &ds.exact_fds, &[], &cfg);
        let fds: Vec<Fd> = ds.exact_fds.iter().map(Fd::from_spec).collect();
        let space = HypothesisSpace::from_fds(fds);
        let idx = ViolationIndex::build(&ds.table, &space);
        let mut any_violation = false;
        for fi in 0..space.len() {
            for row in 0..ds.table.nrows() {
                if idx.tuple_violates(fi, row) {
                    any_violation = true;
                    assert!(idx.tuple_relevant(fi, row));
                    // Cross-check against pairwise relation.
                    let has_partner = (0..ds.table.nrows()).any(|other| {
                        other != row
                            && pair_relation(&ds.table, &space.fd(fi), row, other)
                                == PairRelation::Violates
                    });
                    assert!(has_partner, "fd {fi} row {row} flagged w/o partner");
                }
            }
        }
        assert!(any_violation, "injection should create violations");
    }

    #[test]
    fn cell_violations_cover_lhs_and_rhs() {
        let t = paper_table1();
        let fd = Fd::from_attrs([1], 2);
        let cells = cell_violations(&t, &fd);
        // Violating pair (t1, t2): Team and City cells of both rows.
        let expect: HashSet<(usize, AttrId)> =
            [(0, 1), (0, 2), (1, 1), (1, 2)].into_iter().collect();
        assert_eq!(cells, expect);
    }
}
