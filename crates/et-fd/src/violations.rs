//! Violation structure: pair relations, per-tuple flags, cell-level
//! violations.
//!
//! FD violations are defined over *pairs* of tuples (paper §A.1), and the
//! data-cleaning literature also identifies them at cell granularity
//! (`C_v`). The exploratory-training game needs, per FD:
//!
//! * the relation of a presented pair to the FD ([`pair_relation`]),
//! * whether a tuple participates in any violating pair
//!   ([`ViolationIndex::tuple_violates`]), and
//! * the g1 statistics ([`ViolationIndex::g1`]).

use std::collections::HashSet;

use et_data::{AttrId, Table};

use crate::cache::{PartitionCache, NO_CLASS};
use crate::fd::Fd;
use crate::g1::{count_symbol_runs, G1};
use crate::space::HypothesisSpace;

/// How a pair of tuples relates to one FD.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairRelation {
    /// The tuples disagree on the LHS: the FD says nothing about the pair.
    Irrelevant,
    /// The tuples agree on LHS and RHS: the pair supports the FD.
    Satisfies,
    /// The tuples agree on the LHS but differ on the RHS.
    Violates,
}

/// Classifies the pair `(a, b)` with respect to `fd`.
pub fn pair_relation(table: &Table, fd: &Fd, a: usize, b: usize) -> PairRelation {
    let lhs = fd.lhs_vec();
    if !table.rows_agree_on(a, b, &lhs) {
        PairRelation::Irrelevant
    } else if table.sym(a, fd.rhs) == table.sym(b, fd.rhs) {
        PairRelation::Satisfies
    } else {
        PairRelation::Violates
    }
}

/// Precomputed per-FD attribute lists for allocation-free pair-relation
/// checks over a whole hypothesis space (the evidence-update hot path).
#[derive(Debug, Clone)]
pub struct SpaceRelations {
    lhs: Vec<Vec<AttrId>>,
    rhs: Vec<AttrId>,
}

impl SpaceRelations {
    /// Prepares the helper for `space`.
    pub fn new(space: &HypothesisSpace) -> Self {
        Self {
            lhs: space.fds().iter().map(|fd| fd.lhs_vec()).collect(),
            rhs: space.fds().iter().map(|fd| fd.rhs).collect(),
        }
    }

    /// Number of FDs covered.
    pub fn len(&self) -> usize {
        self.rhs.len()
    }

    /// True when no FDs are covered.
    pub fn is_empty(&self) -> bool {
        self.rhs.is_empty()
    }

    /// The relation of pair `(a, b)` to FD `fi`.
    #[inline]
    pub fn relation(&self, table: &Table, fi: usize, a: usize, b: usize) -> PairRelation {
        if !table.rows_agree_on(a, b, &self.lhs[fi]) {
            PairRelation::Irrelevant
        } else if table.sym(a, self.rhs[fi]) == table.sym(b, self.rhs[fi]) {
            PairRelation::Satisfies
        } else {
            PairRelation::Violates
        }
    }

    /// True when the pair is relevant to (agrees on the LHS of) at least
    /// one FD of the space.
    pub fn relevant_to_any(&self, table: &Table, a: usize, b: usize) -> bool {
        (0..self.len()).any(|fi| self.relation(table, fi, a, b) != PairRelation::Irrelevant)
    }
}

/// Per-FD violation flags and statistics over a fixed table.
///
/// Built once per (table, hypothesis space); lookups are `O(1)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ViolationIndex {
    pub(crate) n_rows: usize,
    /// Per FD: does the tuple participate in >= 1 violating pair?
    pub(crate) violates: Vec<Vec<bool>>,
    /// Per FD: is the tuple in a multi-row LHS group (any at-risk pair)?
    pub(crate) relevant: Vec<Vec<bool>>,
    /// Per FD: is the tuple's RHS value in a *minority* bucket of its mixed
    /// group? Majority consensus is the standard FD-repair heuristic: when
    /// a group disagrees on the RHS, the rows carrying the less-common
    /// values are the likely errors. Ties mark every member.
    pub(crate) minority: Vec<Vec<bool>>,
    /// Per FD: pair statistics.
    pub(crate) stats: Vec<G1>,
}

/// One FD's freshly computed columns, produced by a per-LHS work item.
pub(crate) struct FdColumns {
    pub(crate) stats: G1,
    pub(crate) violates: Vec<bool>,
    pub(crate) relevant: Vec<bool>,
    pub(crate) minority: Vec<bool>,
}

/// Reusable scratch buffers for per-class counting.
#[derive(Default)]
pub(crate) struct ClassScratch {
    members: Vec<usize>,
    syms: Vec<u32>,
    counts: Vec<(u32, u64)>,
}

/// Counts one class's at-risk and violating pairs: `members` are local row
/// ids, `rhs_sym` maps a local row id to its RHS symbol. Returns
/// `(lhs_pairs, violating_pairs)`; classes below two members contribute
/// nothing.
pub(crate) fn class_pairs(
    members: &[usize],
    rhs_sym: &dyn Fn(usize) -> u32,
    scratch: &mut ClassScratch,
) -> (u64, u64) {
    let g = members.len() as u64;
    if g < 2 {
        return (0, 0);
    }
    scratch.syms.clear();
    scratch.syms.extend(members.iter().map(|&m| rhs_sym(m)));
    count_symbol_runs(&mut scratch.syms, &mut scratch.counts);
    let sum_sq: u64 = scratch.counts.iter().map(|(_, c)| c * c).sum();
    ((g * (g - 1)) / 2, (g * g - sum_sq) / 2)
}

/// Counts one class *and* writes its per-member flags (at the members'
/// local ids). Shared by the fresh, subsample and incremental builders so
/// every path computes bit-identical flags.
#[allow(clippy::too_many_arguments)]
pub(crate) fn index_class(
    members: &[usize],
    rhs_sym: &dyn Fn(usize) -> u32,
    scratch: &mut ClassScratch,
    stats: &mut G1,
    violates: &mut [bool],
    relevant: &mut [bool],
    minority: &mut [bool],
) {
    let (pairs, violating) = class_pairs(members, rhs_sym, scratch);
    if members.len() < 2 {
        return;
    }
    stats.lhs_pairs += pairs;
    stats.violating_pairs += violating;
    let mixed = scratch.counts.len() > 1;
    // Majority bucket: unique largest RHS count, if any.
    let max_count = scratch.counts.iter().map(|(_, c)| *c).max().unwrap_or(0);
    let max_ties = scratch
        .counts
        .iter()
        .filter(|(_, c)| *c == max_count)
        .count();
    for &m in members {
        relevant[m] = true;
        if mixed {
            // With >= 2 buckets every tuple has a cross-bucket partner,
            // so all members violate.
            violates[m] = true;
            let s = rhs_sym(m);
            let bucket = scratch
                .counts
                .binary_search_by_key(&s, |&(sym, _)| sym)
                .ok()
                .map(|i| scratch.counts[i].1)
                .unwrap_or(0);
            if bucket < max_count || max_ties > 1 {
                minority[m] = true;
            }
        }
    }
}

/// Computes the columns of every FD sharing one determinant, from the
/// determinant's cached stripped partition. Stripped (singleton) rows are
/// exactly the rows the legacy `group_by` path skipped, so the result is
/// bit-identical to grouping from scratch.
fn index_one_lhs(
    table: &Table,
    cache: &PartitionCache,
    lhs: crate::attrset::AttrSet,
    fds: &[(usize, AttrId)],
) -> Vec<(usize, FdColumns)> {
    let n = table.nrows();
    let part = cache.partition(table, lhs);
    let mut scratch = ClassScratch::default();
    let mut out = Vec::with_capacity(fds.len());
    for &(fi, rhs) in fds {
        let mut cols = FdColumns {
            stats: G1 {
                violating_pairs: 0,
                lhs_pairs: 0,
                rows: n as u64,
            },
            violates: vec![false; n],
            relevant: vec![false; n],
            minority: vec![false; n],
        };
        let sym = |row: usize| table.sym(row, rhs);
        for class in &part.classes {
            scratch.members.clear();
            scratch.members.extend(class.iter().map(|&r| r as usize));
            let members = std::mem::take(&mut scratch.members);
            index_class(
                &members,
                &sym,
                &mut scratch,
                &mut cols.stats,
                &mut cols.violates,
                &mut cols.relevant,
                &mut cols.minority,
            );
            scratch.members = members;
        }
        out.push((fi, cols));
    }
    out
}

/// The distinct determinants of a space paired with their FD ids and RHS
/// attributes, in first-seen (deterministic) order.
pub(crate) fn fds_by_lhs(
    space: &HypothesisSpace,
) -> Vec<(crate::attrset::AttrSet, Vec<(usize, AttrId)>)> {
    let mut order: Vec<crate::attrset::AttrSet> = Vec::new();
    let mut groups: Vec<Vec<(usize, AttrId)>> = Vec::new();
    for (i, fd) in space.iter() {
        match order.iter().position(|&l| l == fd.lhs) {
            Some(p) => groups[p].push((i, fd.rhs)),
            None => {
                order.push(fd.lhs);
                groups.push(vec![(i, fd.rhs)]);
            }
        }
    }
    order.into_iter().zip(groups).collect()
}

/// Resolves the worker count for a parallel index build: the
/// `ET_INDEX_THREADS` environment variable when set (and parseable),
/// otherwise [`std::thread::available_parallelism`] — gated so small
/// builds stay serial (thread spawn would dominate).
pub(crate) fn index_threads(n_tasks: usize, n_rows: usize) -> usize {
    let configured = std::env::var("ET_INDEX_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&t| t > 0);
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let want = configured.unwrap_or_else(|| {
        // Heuristic: parallelism only pays once the total work (rows x
        // determinants) clears the spawn overhead.
        if n_rows.saturating_mul(n_tasks) < (1 << 15) {
            1
        } else {
            hw
        }
    });
    want.min(n_tasks.max(1))
}

impl ViolationIndex {
    /// Builds the index for every FD of `space` over `table`.
    ///
    /// Groups are computed once per *distinct LHS* (via a transient
    /// [`PartitionCache`]) and shared by all FDs with that determinant;
    /// large builds fan the per-determinant work across threads (see
    /// [`ViolationIndex::build_with_threads`]). Output is identical
    /// regardless of caching or thread count.
    pub fn build(table: &Table, space: &HypothesisSpace) -> Self {
        let cache = PartitionCache::new(table);
        Self::build_with(table, space, &cache)
    }

    /// Builds against a shared [`PartitionCache`], reusing any partitions
    /// already memoized for this table (the per-session / per-experiment
    /// fast path: partitions are computed once, every rebuild only counts).
    ///
    /// # Panics
    /// Panics when `table` does not match the cache's row count.
    pub fn build_with(table: &Table, space: &HypothesisSpace, cache: &PartitionCache) -> Self {
        let by_lhs = fds_by_lhs(space);
        let threads = index_threads(by_lhs.len(), table.nrows());
        Self::build_from_groups(table, space, cache, &by_lhs, threads)
    }

    /// [`ViolationIndex::build_with`] with an explicit worker count
    /// (`threads <= 1` runs serially). The parallel path fans whole
    /// determinants across a [`std::thread::scope`] pool and merges the
    /// per-FD columns by FD index, so the result is bit-identical to the
    /// serial build — every FD's columns are produced by exactly one
    /// worker, and the merge order is the fixed FD order of `space`.
    ///
    /// # Panics
    /// Panics when `table` does not match the cache's row count.
    pub fn build_with_threads(
        table: &Table,
        space: &HypothesisSpace,
        cache: &PartitionCache,
        threads: usize,
    ) -> Self {
        let by_lhs = fds_by_lhs(space);
        Self::build_from_groups(table, space, cache, &by_lhs, threads)
    }

    fn build_from_groups(
        table: &Table,
        space: &HypothesisSpace,
        cache: &PartitionCache,
        by_lhs: &[(crate::attrset::AttrSet, Vec<(usize, AttrId)>)],
        threads: usize,
    ) -> Self {
        let n = table.nrows();
        let n_fds = space.len();
        let mut out = Self::empty(n, n_fds, table.nrows() as u64);
        if threads <= 1 || by_lhs.len() < 2 {
            for (lhs, fds) in by_lhs {
                for (fi, cols) in index_one_lhs(table, cache, *lhs, fds) {
                    out.install(fi, cols);
                }
            }
            return out;
        }
        let workers = threads.min(by_lhs.len());
        let chunk = by_lhs.len().div_ceil(workers);
        let chunked: Vec<Vec<(usize, FdColumns)>> = std::thread::scope(|s| {
            let handles: Vec<_> = by_lhs
                .chunks(chunk)
                .map(|part| {
                    s.spawn(move || {
                        let mut acc = Vec::new();
                        for (lhs, fds) in part {
                            acc.extend(index_one_lhs(table, cache, *lhs, fds));
                        }
                        acc
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(v) => v,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        // Merge in fixed order; each FD index is written exactly once
        // (determinants partition the FD set), so the layout is identical
        // to the serial build.
        for group in chunked {
            for (fi, cols) in group {
                out.install(fi, cols);
            }
        }
        out
    }

    /// An all-clean index skeleton (every flag false, zero pair counts).
    pub(crate) fn empty(n_rows: usize, n_fds: usize, stat_rows: u64) -> Self {
        Self {
            n_rows,
            violates: vec![vec![false; n_rows]; n_fds],
            relevant: vec![vec![false; n_rows]; n_fds],
            minority: vec![vec![false; n_rows]; n_fds],
            stats: vec![
                G1 {
                    violating_pairs: 0,
                    lhs_pairs: 0,
                    rows: stat_rows,
                };
                n_fds
            ],
        }
    }

    fn install(&mut self, fi: usize, cols: FdColumns) {
        self.stats[fi] = cols.stats;
        self.violates[fi] = cols.violates;
        self.relevant[fi] = cols.relevant;
        self.minority[fi] = cols.minority;
    }

    /// Builds the index of the *subsample* `rows` (distinct global row ids,
    /// in presentation order) without re-hashing: each cached full-table
    /// partition is restricted to the sample in `O(|rows|)` via the row →
    /// class lookup. The result is indexed by *local* position (`rows[i]`
    /// is local row `i`) and is bit-identical to
    /// `ViolationIndex::build(&table.subset(rows), space)` — a row stripped
    /// from a full-table partition agrees with no other row on that
    /// determinant, so it cannot form a class inside any subsample.
    ///
    /// # Panics
    /// Panics when `table` does not match the cache's row count or a row id
    /// is out of range. `rows` must not contain duplicates (presented
    /// samples never do).
    pub fn build_subsample(
        table: &Table,
        space: &HypothesisSpace,
        cache: &PartitionCache,
        rows: &[usize],
    ) -> Self {
        let k = rows.len();
        let mut out = Self::empty(k, space.len(), k as u64);
        let mut scratch = ClassScratch::default();
        for (lhs, fds) in fds_by_lhs(space) {
            let owners = cache.row_classes(table, lhs);
            // Bucket sample members by their full-table class id.
            let mut buckets: std::collections::HashMap<usize, Vec<usize>> =
                std::collections::HashMap::new();
            for (local, &global) in rows.iter().enumerate() {
                let class = owners[global];
                if class != NO_CLASS {
                    buckets.entry(class).or_default().push(local);
                }
            }
            let mut classes: Vec<(usize, Vec<usize>)> = buckets.drain().collect();
            classes.sort_unstable_by_key(|&(class, _)| class);
            for &(fi, rhs) in &fds {
                let mut cols = FdColumns {
                    stats: G1 {
                        violating_pairs: 0,
                        lhs_pairs: 0,
                        rows: k as u64,
                    },
                    violates: vec![false; k],
                    relevant: vec![false; k],
                    minority: vec![false; k],
                };
                let sym = |local: usize| table.sym(rows[local], rhs);
                for (_, members) in &classes {
                    index_class(
                        members,
                        &sym,
                        &mut scratch,
                        &mut cols.stats,
                        &mut cols.violates,
                        &mut cols.relevant,
                        &mut cols.minority,
                    );
                }
                out.install(fi, cols);
            }
        }
        out
    }

    /// Number of rows indexed.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of FDs indexed.
    pub fn n_fds(&self) -> usize {
        self.stats.len()
    }

    /// Does `row` participate in a violating pair of FD `fd_idx`?
    #[inline]
    pub fn tuple_violates(&self, fd_idx: usize, row: usize) -> bool {
        self.violates[fd_idx][row]
    }

    /// Is `row` in a multi-row LHS group of FD `fd_idx`?
    #[inline]
    pub fn tuple_relevant(&self, fd_idx: usize, row: usize) -> bool {
        self.relevant[fd_idx][row]
    }

    /// Does `row` carry a minority RHS value within a mixed group of FD
    /// `fd_idx` (i.e. is it the likely-erroneous side of its violations)?
    #[inline]
    pub fn tuple_minority(&self, fd_idx: usize, row: usize) -> bool {
        self.minority[fd_idx][row]
    }

    /// Pair statistics of FD `fd_idx`.
    pub fn g1(&self, fd_idx: usize) -> &G1 {
        &self.stats[fd_idx]
    }

    /// All pair statistics, FD-indexed.
    pub fn stats(&self) -> &[G1] {
        &self.stats
    }
}

/// The cell-level violation set `C_v` of `fd`: for every violating pair,
/// the LHS and RHS cells of both tuples.
pub fn cell_violations(table: &Table, fd: &Fd) -> HashSet<(usize, AttrId)> {
    let lhs: Vec<AttrId> = fd.lhs_vec();
    let grouped = table.group_by(&lhs);
    let mut cells = HashSet::new();
    for group in &grouped.groups {
        if group.len() < 2 {
            continue;
        }
        for (i, &a) in group.iter().enumerate() {
            for &b in &group[i + 1..] {
                if table.sym(a as usize, fd.rhs) != table.sym(b as usize, fd.rhs) {
                    for row in [a as usize, b as usize] {
                        for &at in &lhs {
                            cells.insert((row, at));
                        }
                        cells.insert((row, fd.rhs));
                    }
                }
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use et_data::table::paper_table1;

    #[test]
    fn pair_relation_paper_example() {
        let t = paper_table1();
        let fd = Fd::from_attrs([1], 2); // Team -> City
        assert_eq!(pair_relation(&t, &fd, 0, 1), PairRelation::Violates);
        assert_eq!(pair_relation(&t, &fd, 2, 3), PairRelation::Satisfies);
        assert_eq!(pair_relation(&t, &fd, 0, 4), PairRelation::Irrelevant);
    }

    #[test]
    fn index_flags_match_pair_relations() {
        let t = paper_table1();
        let space = HypothesisSpace::from_fds([
            Fd::from_attrs([1], 2), // Team -> City
            Fd::from_attrs([2, 3], 4),
        ]);
        let idx = ViolationIndex::build(&t, &space);
        assert_eq!(idx.n_fds(), 2);
        assert_eq!(idx.n_rows(), 5);
        // Team -> City: t1, t2 violate; t3, t4 satisfy; t5 not relevant.
        assert!(idx.tuple_violates(0, 0));
        assert!(idx.tuple_violates(0, 1));
        assert!(!idx.tuple_violates(0, 2));
        assert!(idx.tuple_relevant(0, 2));
        assert!(!idx.tuple_relevant(0, 4));
        // Stats agree with g1_of.
        assert_eq!(*idx.g1(0), crate::g1::g1_of(&t, &space.fd(0)));
        assert_eq!(*idx.g1(1), crate::g1::g1_of(&t, &space.fd(1)));
    }

    #[test]
    fn index_consistency_on_generated_data() {
        let ds = et_data::gen::airport(150, 9);
        let fds: Vec<Fd> = ds.exact_fds.iter().map(Fd::from_spec).collect();
        let space = HypothesisSpace::from_fds(fds);
        let idx = ViolationIndex::build(&ds.table, &space);
        for (fi, fd) in space.iter() {
            assert!(idx.g1(fi).is_exact(), "{} should be exact", fd);
            for row in 0..ds.table.nrows() {
                assert!(!idx.tuple_violates(fi, row));
            }
        }
    }

    #[test]
    fn violates_implies_relevant() {
        let mut ds = et_data::gen::omdb(200, 5);
        let cfg = et_data::InjectConfig::with_degree(0.15, 3);
        let _ = et_data::inject_errors(&mut ds.table, &ds.exact_fds, &[], &cfg);
        let fds: Vec<Fd> = ds.exact_fds.iter().map(Fd::from_spec).collect();
        let space = HypothesisSpace::from_fds(fds);
        let idx = ViolationIndex::build(&ds.table, &space);
        let mut any_violation = false;
        for fi in 0..space.len() {
            for row in 0..ds.table.nrows() {
                if idx.tuple_violates(fi, row) {
                    any_violation = true;
                    assert!(idx.tuple_relevant(fi, row));
                    // Cross-check against pairwise relation.
                    let has_partner = (0..ds.table.nrows()).any(|other| {
                        other != row
                            && pair_relation(&ds.table, &space.fd(fi), row, other)
                                == PairRelation::Violates
                    });
                    assert!(has_partner, "fd {fi} row {row} flagged w/o partner");
                }
            }
        }
        assert!(any_violation, "injection should create violations");
    }

    #[test]
    fn cell_violations_cover_lhs_and_rhs() {
        let t = paper_table1();
        let fd = Fd::from_attrs([1], 2);
        let cells = cell_violations(&t, &fd);
        // Violating pair (t1, t2): Team and City cells of both rows.
        let expect: HashSet<(usize, AttrId)> =
            [(0, 1), (0, 2), (1, 1), (1, 2)].into_iter().collect();
        assert_eq!(cells, expect);
    }
}
