//! Incremental subsample refinement: grow a sample's [`ViolationIndex`]
//! without rebuilding it.
//!
//! The session/trainer loops repeatedly index a *cumulative* sample that
//! only ever grows. [`SubsampleIndex`] keeps the sample's per-determinant
//! class buckets between rounds; [`SubsampleIndex::grow`] looks each new
//! row up in the [`PartitionCache`]'s row → class tables (`O(1)` per row
//! per determinant), subtracts the touched classes' old pair counts, and
//! recounts only those classes. Untouched classes — the vast majority in a
//! typical round — are never revisited, yet the result is maintained
//! bit-identical to [`ViolationIndex::build_subsample`] over the same rows
//! (proptest-enforced): pair statistics are integer sums over classes, so
//! subtract-and-recount is exact, and the touched classes' member flags are
//! cleared and rewritten by the same per-class indexing routine
//! (`violations::index_class`) every builder shares.

use std::collections::HashMap;

use et_data::Table;

use crate::attrset::AttrSet;
use crate::cache::{PartitionCache, NO_CLASS};
use crate::space::HypothesisSpace;
use crate::violations::{class_pairs, fds_by_lhs, index_class, ClassScratch, ViolationIndex};

use et_data::AttrId;

/// A growing subsample of a fixed table, with its violation index
/// maintained incrementally.
///
/// Rows are addressed by *global* id when added and by *local* position
/// (first-seen order, duplicates ignored) inside [`SubsampleIndex::index`],
/// matching the layout of [`ViolationIndex::build_subsample`].
#[derive(Debug)]
pub struct SubsampleIndex {
    /// Distinct determinants with their FD ids/RHS attrs, fixed order.
    groups: Vec<(AttrSet, Vec<(usize, AttrId)>)>,
    /// Global row ids of the sample, in first-seen order.
    rows: Vec<usize>,
    /// Global row id → already sampled?
    seen: Vec<bool>,
    /// Per determinant: full-table class id → local members (sample order).
    buckets: Vec<HashMap<usize, Vec<usize>>>,
    /// The maintained index over the current sample (local row ids).
    index: ViolationIndex,
}

impl SubsampleIndex {
    /// An empty sample of `table` under `space`.
    pub fn new(table: &Table, space: &HypothesisSpace) -> Self {
        let groups = fds_by_lhs(space);
        let n_groups = groups.len();
        Self {
            groups,
            rows: Vec::new(),
            seen: vec![false; table.nrows()],
            buckets: vec![HashMap::new(); n_groups],
            index: ViolationIndex::empty(0, space.len(), 0),
        }
    }

    /// The sampled global row ids, in first-seen order.
    pub fn rows(&self) -> &[usize] {
        &self.rows
    }

    /// The maintained index over the current sample (local row ids follow
    /// [`SubsampleIndex::rows`] order).
    pub fn index(&self) -> &ViolationIndex {
        &self.index
    }

    /// Adds `new_rows` (global ids; duplicates and already-sampled rows are
    /// skipped) and refines the index in place. Returns how many rows were
    /// actually new.
    ///
    /// # Panics
    /// Panics when `table`/`cache` do not match the table this sample was
    /// created for, or a row id is out of range.
    pub fn grow(&mut self, table: &Table, cache: &PartitionCache, new_rows: &[usize]) -> usize {
        assert_eq!(
            cache.n_rows(),
            self.seen.len(),
            "subsample is bound to a {}-row table",
            self.seen.len()
        );
        let old_k = self.rows.len();
        for &r in new_rows {
            if !self.seen[r] {
                self.seen[r] = true;
                self.rows.push(r);
            }
        }
        let k = self.rows.len();
        if k == old_k {
            return 0;
        }

        // Widen every per-FD column to the new sample size.
        self.index.n_rows = k;
        for fi in 0..self.index.stats.len() {
            self.index.violates[fi].resize(k, false);
            self.index.relevant[fi].resize(k, false);
            self.index.minority[fi].resize(k, false);
            self.index.stats[fi].rows = k as u64;
        }

        let rows = &self.rows;
        let mut scratch = ClassScratch::default();
        for (gi, (lhs, fds)) in self.groups.iter().enumerate() {
            let owners = cache.row_classes(table, *lhs);
            // Route each new row into its full-table class bucket, noting
            // each touched class's pre-grow member count once.
            let mut touched: Vec<(usize, usize)> = Vec::new();
            for local in old_k..k {
                let class = owners[rows[local]];
                if class == NO_CLASS {
                    continue;
                }
                let members = self.buckets[gi].entry(class).or_default();
                if !touched.iter().any(|&(c, _)| c == class) {
                    touched.push((class, members.len()));
                }
                members.push(local);
            }
            touched.sort_unstable_by_key(|&(class, _)| class);
            for &(fi, rhs) in fds {
                let sym = |local: usize| table.sym(rows[local], rhs);
                for &(class, old_len) in &touched {
                    let members = match self.buckets[gi].get(&class) {
                        Some(m) => m,
                        None => continue,
                    };
                    // Subtract the class's pre-grow contribution and clear
                    // its pre-grow members' flags; minority can flip off
                    // when a new row changes the majority bucket.
                    let (old_pairs, old_viol) =
                        class_pairs(&members[..old_len], &sym, &mut scratch);
                    self.index.stats[fi].lhs_pairs -= old_pairs;
                    self.index.stats[fi].violating_pairs -= old_viol;
                    for &m in &members[..old_len] {
                        self.index.violates[fi][m] = false;
                        self.index.relevant[fi][m] = false;
                        self.index.minority[fi][m] = false;
                    }
                    index_class(
                        members,
                        &sym,
                        &mut scratch,
                        &mut self.index.stats[fi],
                        &mut self.index.violates[fi],
                        &mut self.index.relevant[fi],
                        &mut self.index.minority[fi],
                    );
                }
            }
        }
        k - old_k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::Fd;
    use et_data::table::paper_table1;

    fn space() -> HypothesisSpace {
        HypothesisSpace::from_fds([
            Fd::from_attrs([1], 2), // Team -> City
            Fd::from_attrs([1], 4), // Team -> Apps (same determinant)
            Fd::from_attrs([2, 3], 4),
        ])
    }

    #[test]
    fn grow_matches_fresh_subsample_build() {
        let t = paper_table1();
        let sp = space();
        let cache = PartitionCache::new(&t);
        let mut inc = SubsampleIndex::new(&t, &sp);
        let mut cumulative: Vec<usize> = Vec::new();
        for batch in [vec![0, 2], vec![1, 2, 1], vec![4, 3]] {
            for &r in &batch {
                if !cumulative.contains(&r) {
                    cumulative.push(r);
                }
            }
            inc.grow(&t, &cache, &batch);
            let fresh = ViolationIndex::build_subsample(&t, &sp, &cache, &cumulative);
            assert_eq!(inc.rows(), &cumulative[..]);
            assert_eq!(*inc.index(), fresh);
        }
    }

    #[test]
    fn duplicates_are_ignored() {
        let t = paper_table1();
        let sp = space();
        let cache = PartitionCache::new(&t);
        let mut inc = SubsampleIndex::new(&t, &sp);
        assert_eq!(inc.grow(&t, &cache, &[3, 3, 0]), 2);
        assert_eq!(inc.grow(&t, &cache, &[0, 3]), 0);
        assert_eq!(inc.rows(), &[3, 0]);
    }

    #[test]
    fn matches_subset_table_build() {
        let t = paper_table1();
        let sp = space();
        let cache = PartitionCache::new(&t);
        let mut inc = SubsampleIndex::new(&t, &sp);
        inc.grow(&t, &cache, &[0, 1, 3]);
        let sub = t.subset(&[0, 1, 3]);
        let direct = ViolationIndex::build(&sub, &sp);
        assert_eq!(*inc.index(), direct);
    }
}
