//! Candidate-key (unique column combination) discovery.
//!
//! Keys matter to the exploratory-training substrate for a negative reason:
//! an FD whose LHS is (nearly) a key carries no at-risk pairs and therefore
//! no learnable signal, so hypothesis-space construction and candidate-pair
//! pooling want to know which attribute sets are keys. Discovery is the
//! standard levelwise walk over stripped partitions.

use et_data::Table;

use crate::attrset::AttrSet;
use crate::partitions::StrippedPartition;

/// A discovered (approximate) unique column combination.
#[derive(Debug, Clone, PartialEq)]
pub struct Ucc {
    /// The attribute set.
    pub attrs: AttrSet,
    /// Rows that must be removed for the set to become unique, as a
    /// fraction of the relation (0 = exact key).
    pub g3: f64,
}

/// Discovers all minimal attribute sets of size at most `max_attrs` whose
/// duplication error is at most `epsilon` (0 finds exact keys).
///
/// # Panics
/// Panics on a negative `epsilon`.
pub fn discover_keys(table: &Table, max_attrs: u32, epsilon: f64) -> Vec<Ucc> {
    assert!(epsilon >= 0.0);
    let n_attrs = table.schema().len() as u16;
    let n = table.nrows().max(1);
    let singles: Vec<StrippedPartition> = (0..n_attrs)
        .map(|a| StrippedPartition::of_attr(table, a))
        .collect();

    let mut found: Vec<Ucc> = Vec::new();
    let mut frontier: Vec<(AttrSet, StrippedPartition)> = (0..n_attrs)
        .map(|a| (AttrSet::singleton(a), singles[a as usize].clone()))
        .collect();
    let mut level = 1u32;
    while !frontier.is_empty() && level <= max_attrs {
        let mut next = Vec::new();
        for (attrs, part) in frontier {
            if found.iter().any(|u| u.attrs.is_proper_subset_of(attrs)) {
                continue; // non-minimal
            }
            let g3 = part.error() as f64 / n as f64;
            if g3 <= epsilon {
                found.push(Ucc { attrs, g3 });
                continue;
            }
            let max_attr = attrs.iter().last().unwrap_or(0);
            for a in (max_attr + 1)..n_attrs {
                next.push((attrs.with(a), part.product(&singles[a as usize])));
            }
        }
        frontier = next;
        level += 1;
    }
    found
}

/// True when `attrs` is an exact key of `table`.
pub fn is_key(table: &Table, attrs: AttrSet) -> bool {
    if attrs.is_empty() {
        return table.nrows() < 2;
    }
    StrippedPartition::of_set(table, attrs).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use et_data::table::paper_table1;

    #[test]
    fn player_is_the_only_single_key() {
        let t = paper_table1();
        let keys = discover_keys(&t, 1, 0.0);
        assert_eq!(keys.len(), 1);
        assert_eq!(keys[0].attrs, AttrSet::singleton(0));
        assert_eq!(keys[0].g3, 0.0);
        assert!(is_key(&t, AttrSet::singleton(0)));
        assert!(!is_key(&t, AttrSet::singleton(1)));
    }

    #[test]
    fn composite_keys_are_minimal() {
        let t = paper_table1();
        let keys = discover_keys(&t, 3, 0.0);
        // Player {0} is a key; no superset of it may appear.
        for k in &keys {
            if k.attrs != AttrSet::singleton(0) {
                assert!(
                    !AttrSet::singleton(0).is_proper_subset_of(k.attrs),
                    "non-minimal key {:?}",
                    k.attrs
                );
            }
        }
        // (City, Role) separates all five rows except (Chicago, PF) x2 ->
        // not an exact key; (Team, Role) is: check directly.
        assert!(is_key(&t, AttrSet::from_attrs([1, 3])));
        assert!(!is_key(&t, AttrSet::from_attrs([2, 3])));
    }

    #[test]
    fn approximate_keys() {
        let t = paper_table1();
        // (City, Role) has one duplicate pair -> g3 = 1/5; tolerate it.
        let keys = discover_keys(&t, 2, 0.2);
        assert!(keys
            .iter()
            .any(|k| k.attrs == AttrSet::from_attrs([2, 3]) && k.g3 > 0.0));
    }

    #[test]
    fn generated_dataset_keys() {
        let ds = et_data::gen::tax(200, 3);
        // No single attribute should be a key in a 200-row Tax table
        // (cardinalities are all far below 200)...
        let singles = discover_keys(&ds.table, 1, 0.0);
        assert!(
            singles.is_empty(),
            "unexpected single-attribute key: {singles:?}"
        );
        // ...and every discovered key must verify.
        for k in discover_keys(&ds.table, 3, 0.0) {
            assert!(is_key(&ds.table, k.attrs));
        }
    }

    #[test]
    fn empty_set_key_semantics() {
        let t = paper_table1();
        assert!(
            !is_key(&t, AttrSet::EMPTY),
            "5 rows cannot be keyed by {{}}"
        );
    }
}
