//! Session-lifetime delta-rescoring cache over a [`RelationMatrix`].
//!
//! A round's belief update nudges a handful of FD confidences, yet the
//! strategies re-fold every candidate pair from scratch — twice per round
//! (policy accounting, then selection). A [`DeltaScorer`] keeps the last
//! [`PairScores`] per [`DetectParams`] together with the exact factor
//! vector that produced them; a rescore request diffs the new factors
//! against the cached ones ([`RelationMatrix::changed_factor_mask`]) and
//! re-folds only the pairs whose packed relation words intersect the
//! changed-FD mask ([`RelationMatrix::rescore_delta`]).
//!
//! # The delta invariant
//!
//! For every warm slot, `slot.factors` is bit-for-bit the factor vector
//! under which `slot.scores` was last computed. A pair's noisy-OR score
//! depends only on the factors of the FDs it violates, so any pair whose
//! violates words miss the changed mask would re-fold to the value it
//! already holds — the skip is bit-exact by construction, not by epsilon.
//! An identical request (same confidences, same params — e.g. the second
//! scoring pass of the same round) diffs to an empty mask and returns the
//! cached scores untouched.
//!
//! The cache never persists: it is rebuilt lazily after recovery, and
//! because the served scores are bit-identical to the full pass, recovered
//! sessions replay the same trajectories.

use std::sync::Arc;

use crate::detect::DetectParams;
use crate::relmatrix::{violation_factors_into, PairScores, RelationMatrix};

/// Slots kept per scorer: the strategies use at most two
/// parameterisations (raw and smoothed); a couple spare slots absorb
/// ablation configs without unbounded growth.
const MAX_SLOTS: usize = 4;

/// One cached parameterisation: the scores and the factor vector they
/// were computed under.
#[derive(Debug, Clone)]
struct Slot {
    params: DetectParams,
    factors: Vec<f64>,
    scores: PairScores,
}

/// Per-session delta-rescoring cache: owns its [`RelationMatrix`] handle,
/// a bounded set of per-[`DetectParams`] score slots, and the scratch the
/// delta path needs (new-factor buffer, changed-FD mask) so steady-state
/// rescores allocate nothing.
#[derive(Debug, Clone)]
pub struct DeltaScorer {
    matrix: Arc<RelationMatrix>,
    slots: Vec<Slot>,
    scratch_factors: Vec<f64>,
    changed: Vec<u64>,
}

impl DeltaScorer {
    /// A cold scorer over `matrix`: every parameterisation's first request
    /// pays one full [`RelationMatrix::score_all_into`] pass.
    pub fn new(matrix: Arc<RelationMatrix>) -> Self {
        let n_fds = matrix.n_fds();
        let width = matrix.words_per_pair();
        Self {
            matrix,
            slots: Vec::with_capacity(MAX_SLOTS),
            scratch_factors: vec![0.0; n_fds],
            changed: vec![0; width],
        }
    }

    /// The matrix this scorer caches over (identity-checked by callers
    /// that carry their own matrix reference).
    pub fn matrix(&self) -> &RelationMatrix {
        &self.matrix
    }

    /// Batch scores for `confidences` under `params`, bit-identical to
    /// `self.matrix().score_all(confidences, params)`.
    ///
    /// Warm slots re-fold only the pairs violating an FD whose factor
    /// changed since the previous request; an unchanged request returns
    /// the cached scores without touching a pair. Cold slots (first
    /// request for a parameterisation) run the full pass once; at most
    /// `MAX_SLOTS` parameterisations are retained, evicting the oldest.
    ///
    /// # Panics
    /// Panics when `confidences` does not have one entry per FD of the
    /// underlying matrix.
    pub fn scores_for(&mut self, confidences: &[f64], params: &DetectParams) -> &PairScores {
        violation_factors_into(confidences, params, &mut self.scratch_factors);
        if let Some(i) = self.slots.iter().position(|s| s.params == *params) {
            let slot = &mut self.slots[i];
            let any = self.matrix.changed_factor_mask(
                &slot.factors,
                &self.scratch_factors,
                &mut self.changed,
            );
            if any {
                self.matrix.rescore_delta(
                    &self.scratch_factors,
                    params,
                    &self.changed,
                    &mut slot.scores,
                );
                slot.factors.copy_from_slice(&self.scratch_factors);
            }
            return &self.slots[i].scores;
        }
        // Cold slot: one full pass, then cached. Bounded allocation — at
        // most MAX_SLOTS slots per scorer lifetime at any moment.
        if self.slots.len() == MAX_SLOTS {
            self.slots.remove(0);
        }
        let mut factors = vec![0.0; self.matrix.n_fds()];
        let mut scores = PairScores::zeroed(self.matrix.n_pairs());
        self.matrix
            .score_all_into(confidences, params, &mut factors, &mut scores);
        self.slots.push(Slot {
            params: *params,
            factors,
            scores,
        });
        // Index, not `last()`: the push above makes the slot list non-empty
        // and keeps this branch free of unwrap/expect.
        &self.slots[self.slots.len() - 1].scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::PartitionCache;
    use crate::fd::Fd;
    use crate::space::HypothesisSpace;
    use et_data::table::paper_table1;

    fn scorer() -> (DeltaScorer, Arc<RelationMatrix>, usize) {
        let t = paper_table1();
        let sp = HypothesisSpace::from_fds([Fd::from_attrs([1], 2), Fd::from_attrs([2, 3], 4)]);
        let cache = PartitionCache::new(&t);
        let mut pairs = Vec::new();
        for a in 0..t.nrows() {
            for b in (a + 1)..t.nrows() {
                pairs.push((a, b));
            }
        }
        let m = Arc::new(RelationMatrix::build(&t, &sp, &cache, &pairs));
        let n_fds = sp.len();
        (DeltaScorer::new(Arc::clone(&m)), m, n_fds)
    }

    #[test]
    fn matches_full_rescore_across_drifting_confidences() {
        let (mut ds, m, n_fds) = scorer();
        let mut conf = vec![0.9; n_fds];
        for round in 0..8 {
            conf[round % n_fds] = 0.1 + 0.8 * ((round as f64) / 8.0);
            for params in [DetectParams::unsmoothed(), DetectParams::default()] {
                let got = ds.scores_for(&conf, &params).clone();
                assert_eq!(got, m.score_all(&conf, &params), "round {round}");
                // Second identical request: served from cache, still equal.
                assert_eq!(ds.scores_for(&conf, &params), &got, "round {round}");
            }
        }
    }

    #[test]
    fn slot_eviction_keeps_answers_correct() {
        let (mut ds, m, n_fds) = scorer();
        let conf = vec![0.7; n_fds];
        // More parameterisations than slots: the oldest is evicted, and a
        // re-request simply recomputes from cold.
        let params: Vec<DetectParams> = (0..6)
            .map(|i| DetectParams {
                base_rate: f64::from(i) * 0.05,
                ..DetectParams::default()
            })
            .collect();
        for p in &params {
            assert_eq!(ds.scores_for(&conf, p), &m.score_all(&conf, p));
        }
        for p in &params {
            assert_eq!(ds.scores_for(&conf, p), &m.score_all(&conf, p));
        }
    }
}
