//! The partition-cache substrate: memoized stripped partitions per table.
//!
//! Every round of the trainer/learner game needs the violation structure of
//! the *same* table under the *same* hypothesis space — yet the index
//! builders used to re-hash `group_by(lhs)` from scratch per distinct LHS,
//! per round. A [`PartitionCache`] computes each single-attribute stripped
//! partition ([`StrippedPartition::of_attr`]) once and derives every
//! multi-attribute LHS partition by stripped-partition product (the TANE
//! construction, Huhtala et al. 1999), memoized by [`AttrSet`]. Derived
//! artifacts:
//!
//! * [`PartitionCache::partition`] — the stripped partition of an attribute
//!   set, shared as an `Arc` so concurrent index builds clone pointers, not
//!   row lists.
//! * [`PartitionCache::row_classes`] — the row → stripped-class lookup that
//!   makes *subsample restriction* O(|sample|): a cached full-table
//!   partition restricted to a sample's rows never re-hashes the table
//!   (see [`crate::violations::ViolationIndex::build_subsample`]).
//!
//! Concurrency: the cache is `Sync`; lookups take a short-lived mutex and
//! misses are computed *outside* the lock (two racing builders may compute
//! the same partition, but both arrive at the identical canonical form, so
//! last-insert-wins is benign and results stay deterministic).

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

use et_data::Table;

use crate::attrset::AttrSet;
use crate::partitions::StrippedPartition;

/// Sentinel class id for rows stripped out of a partition (singleton rows).
pub const NO_CLASS: usize = usize::MAX;

/// Memoized stripped partitions (and row → class lookups) of one table.
///
/// The cache does not own the table; every method takes it by reference and
/// asserts that the row count still matches, so one cache can be shared by
/// everything deriving structure from the same immutable relation (a
/// session, its trainer, the experiment loops, the wire store).
#[derive(Debug, Default)]
pub struct PartitionCache {
    n_rows: usize,
    parts: Mutex<HashMap<AttrSet, Arc<StrippedPartition>>>,
    owners: Mutex<HashMap<AttrSet, Arc<Vec<usize>>>>,
}

/// Locks a cache map, recovering the data on poisoning (all writes are
/// single `insert` calls, so a poisoned map is still structurally sound).
fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl PartitionCache {
    /// Prepares an empty cache for `table`.
    pub fn new(table: &Table) -> Self {
        Self {
            n_rows: table.nrows(),
            parts: Mutex::new(HashMap::new()),
            owners: Mutex::new(HashMap::new()),
        }
    }

    /// Rows of the table this cache was built for.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of distinct attribute sets currently memoized.
    pub fn len(&self) -> usize {
        lock(&self.parts).len()
    }

    /// True when nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        lock(&self.parts).is_empty()
    }

    /// The stripped partition of `attrs` over `table`, memoized.
    ///
    /// Single attributes hash the column once; larger sets are derived by
    /// partition product over the set's (memoized) maximal proper prefix,
    /// so sets sharing prefixes share work.
    ///
    /// # Panics
    /// Panics when `table` does not have the row count the cache was
    /// created with (the cache is per-table).
    pub fn partition(&self, table: &Table, attrs: AttrSet) -> Arc<StrippedPartition> {
        assert_eq!(
            table.nrows(),
            self.n_rows,
            "partition cache is bound to a {}-row table",
            self.n_rows
        );
        if let Some(p) = lock(&self.parts).get(&attrs) {
            return Arc::clone(p);
        }
        // Miss: compute outside the lock (rule L5 — never hold a guard
        // across real work). Races recompute identical canonical values.
        let computed = match attrs.len() {
            0 => StrippedPartition::full(self.n_rows),
            1 => {
                let mut it = attrs.iter();
                match it.next() {
                    Some(a) => StrippedPartition::of_attr(table, a),
                    None => StrippedPartition::full(self.n_rows),
                }
            }
            _ => {
                let last = attrs.iter().fold(0, |_, a| a);
                let prefix = self.partition(table, attrs.without(last));
                let single = self.partition(table, AttrSet::singleton(last));
                prefix.product(&single)
            }
        };
        let shared = Arc::new(computed);
        lock(&self.parts).insert(attrs, Arc::clone(&shared));
        shared
    }

    /// The row → stripped-class lookup of `attrs` over `table`, memoized:
    /// `lookup[row]` is the index of the row's class in
    /// [`PartitionCache::partition`]`(table, attrs).classes`, or
    /// [`NO_CLASS`] when the row was stripped (it agrees with no other row
    /// on `attrs`).
    ///
    /// # Panics
    /// Panics when `table` does not match the cache's row count.
    pub fn row_classes(&self, table: &Table, attrs: AttrSet) -> Arc<Vec<usize>> {
        if let Some(o) = lock(&self.owners).get(&attrs) {
            return Arc::clone(o);
        }
        let part = self.partition(table, attrs);
        let mut owner = vec![NO_CLASS; self.n_rows];
        for (ci, class) in part.classes.iter().enumerate() {
            for &r in class {
                owner[r as usize] = ci;
            }
        }
        let shared = Arc::new(owner);
        lock(&self.owners).insert(attrs, Arc::clone(&shared));
        shared
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use et_data::table::paper_table1;

    #[test]
    fn partitions_match_direct_computation() {
        let t = paper_table1();
        let cache = PartitionCache::new(&t);
        for attrs in [
            AttrSet::from_attrs([1]),
            AttrSet::from_attrs([2]),
            AttrSet::from_attrs([1, 2]),
            AttrSet::from_attrs([2, 3]),
            AttrSet::from_attrs([1, 2, 3]),
        ] {
            let cached = cache.partition(&t, attrs);
            let direct = StrippedPartition::of_set(&t, attrs);
            assert_eq!(*cached, direct, "{attrs}");
        }
        // Memoized: asking again returns the same allocation.
        let a = cache.partition(&t, AttrSet::from_attrs([1, 2]));
        let b = cache.partition(&t, AttrSet::from_attrs([1, 2]));
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!cache.is_empty());
    }

    #[test]
    fn row_classes_invert_the_partition() {
        let t = paper_table1();
        let cache = PartitionCache::new(&t);
        let attrs = AttrSet::from_attrs([1]); // Team
        let part = cache.partition(&t, attrs);
        let owners = cache.row_classes(&t, attrs);
        assert_eq!(owners.len(), t.nrows());
        for (ci, class) in part.classes.iter().enumerate() {
            for &r in class {
                assert_eq!(owners[r as usize], ci);
            }
        }
        // Row 4 (Clippers) is a singleton: stripped.
        assert_eq!(owners[4], NO_CLASS);
    }

    #[test]
    fn empty_set_is_the_full_partition() {
        let t = paper_table1();
        let cache = PartitionCache::new(&t);
        let p = cache.partition(&t, AttrSet::EMPTY);
        assert_eq!(*p, StrippedPartition::full(t.nrows()));
    }

    #[test]
    #[should_panic(expected = "bound to a")]
    fn rejects_foreign_tables() {
        let t = paper_table1();
        let cache = PartitionCache::new(&t);
        let other = t.subset(&[0, 1]);
        let _ = cache.partition(&other, AttrSet::from_attrs([1]));
    }

    #[test]
    fn shared_across_threads() {
        let t = paper_table1();
        let cache = PartitionCache::new(&t);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let p = cache.partition(&t, AttrSet::from_attrs([1, 2]));
                    assert_eq!(p.classes, vec![vec![2, 3]]);
                });
            }
        });
    }
}
