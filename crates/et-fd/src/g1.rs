//! The g1 approximation measure for FDs (Kivinen & Mannila 1992), in the
//! scaled form the paper uses.
//!
//! For an FD `X -> A` over relation `r`, the paper defines
//!
//! ```text
//! g1(X -> A, r) = |{(t1,t2) | t1[X] = t2[X], t1[A] ≠ t2[A]}| / |r²|
//! ```
//!
//! and its Example 1 computes `g1(Team -> City) = 1/25` on the five-tuple
//! Table 1 — one *unordered* violating pair over `n² = 25`. We match that
//! semantics exactly ([`G1::g1`]) and additionally expose the conditional
//! violation rate among at-risk pairs ([`G1::violation_rate`]), which is the
//! quantity belief updates estimate.

use et_data::{AttrId, Table};

use crate::cache::PartitionCache;
use crate::fd::Fd;

/// Sorts `syms` in place and emits `(symbol, count)` runs in ascending
/// symbol order into `out` (cleared first).
///
/// This replaces the former `O(group · distinct-RHS)` linear-scan counting
/// loop shared by [`g1_of`] and the violation-index builders: sorting a
/// small scratch buffer and run-length counting touches each symbol
/// `O(log g)` times and leaves the counts binary-searchable by symbol.
pub(crate) fn count_symbol_runs(syms: &mut [u32], out: &mut Vec<(u32, u64)>) {
    syms.sort_unstable();
    out.clear();
    for &s in syms.iter() {
        match out.last_mut() {
            Some((sym, c)) if *sym == s => *c += 1,
            _ => out.push((s, 1)),
        }
    }
}

/// Pair statistics of one FD over one table.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct G1 {
    /// Unordered pairs agreeing on the LHS but differing on the RHS.
    pub violating_pairs: u64,
    /// Unordered pairs agreeing on the LHS (at-risk pairs).
    pub lhs_pairs: u64,
    /// Number of rows in the table.
    pub rows: u64,
}

impl G1 {
    /// The paper's scaled g1: unordered violating pairs / n².
    pub fn g1(&self) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        self.violating_pairs as f64 / (self.rows as f64 * self.rows as f64)
    }

    /// Violating pairs as a fraction of at-risk pairs; `0` when no pair is
    /// at risk. This conditional rate is what FP/Bayesian belief updates
    /// estimate, and `1 - violation_rate` is the natural "confidence that
    /// the FD holds".
    pub fn violation_rate(&self) -> f64 {
        if self.lhs_pairs == 0 {
            0.0
        } else {
            self.violating_pairs as f64 / self.lhs_pairs as f64
        }
    }

    /// Confidence that the FD holds: `1 - violation_rate`.
    pub fn confidence(&self) -> f64 {
        1.0 - self.violation_rate()
    }

    /// True when the FD holds exactly (no violating pair).
    pub fn is_exact(&self) -> bool {
        self.violating_pairs == 0
    }
}

/// Computes [`G1`] for `fd` over `table` by partition refinement: group rows
/// by the LHS projection, then count cross-RHS pairs inside each group.
///
/// Runs in `O(n)` hashing time plus `O(groups · distinct RHS per group)`.
///
/// ```
/// use et_data::table::paper_table1;
/// use et_fd::{g1_of, Fd};
///
/// let g = g1_of(&paper_table1(), &Fd::from_attrs([1], 2));
/// assert_eq!(g.violating_pairs, 1); // the Lakers pair
/// assert_eq!(g.lhs_pairs, 2);
/// ```
pub fn g1_of(table: &Table, fd: &Fd) -> G1 {
    let lhs: Vec<AttrId> = fd.lhs_vec();
    let grouped = table.group_by(&lhs);
    let mut violating = 0u64;
    let mut lhs_pairs = 0u64;
    let mut syms: Vec<u32> = Vec::new();
    let mut rhs_counts: Vec<(u32, u64)> = Vec::new();
    for group in &grouped.groups {
        let g = group.len() as u64;
        if g < 2 {
            continue;
        }
        lhs_pairs += g * (g - 1) / 2;
        syms.clear();
        syms.extend(group.iter().map(|&row| table.sym(row as usize, fd.rhs)));
        count_symbol_runs(&mut syms, &mut rhs_counts);
        // Unordered cross-bucket pairs: (g² - Σc²)/2.
        let sum_sq: u64 = rhs_counts.iter().map(|(_, c)| c * c).sum();
        violating += (g * g - sum_sq) / 2;
    }
    let out = G1 {
        violating_pairs: violating,
        lhs_pairs,
        rows: table.nrows() as u64,
    };
    invariant!(
        out.violating_pairs <= out.lhs_pairs,
        "violating pairs {} exceed at-risk pairs {}",
        out.violating_pairs,
        out.lhs_pairs
    );
    invariant!(
        (0.0..=1.0).contains(&out.g1()) && (0.0..=1.0).contains(&out.violation_rate()),
        "g1 measures out of [0,1]: g1 {} rate {}",
        out.g1(),
        out.violation_rate()
    );
    out
}

/// Computes g1 statistics for many FDs in one call, grouping the table once
/// per *distinct LHS* via a transient [`PartitionCache`] so FDs with equal
/// determinants share the partition work.
pub fn g1_many(table: &Table, fds: &[Fd]) -> Vec<G1> {
    let cache = PartitionCache::new(table);
    g1_many_with(table, fds, &cache)
}

/// [`g1_many`] against a caller-supplied (possibly pre-warmed) cache.
///
/// # Panics
/// Panics when `table` does not match the cache's row count.
pub fn g1_many_with(table: &Table, fds: &[Fd], cache: &PartitionCache) -> Vec<G1> {
    let n = table.nrows() as u64;
    let mut out = vec![
        G1 {
            violating_pairs: 0,
            lhs_pairs: 0,
            rows: n,
        };
        fds.len()
    ];
    // Indices grouped by determinant, preserving first-seen LHS order.
    let mut lhs_order: Vec<crate::attrset::AttrSet> = Vec::new();
    let mut by_lhs: std::collections::HashMap<crate::attrset::AttrSet, Vec<usize>> =
        std::collections::HashMap::new();
    for (i, fd) in fds.iter().enumerate() {
        by_lhs
            .entry(fd.lhs)
            .or_insert_with(|| {
                lhs_order.push(fd.lhs);
                Vec::new()
            })
            .push(i);
    }
    let mut syms: Vec<u32> = Vec::new();
    let mut rhs_counts: Vec<(u32, u64)> = Vec::new();
    for lhs in lhs_order {
        let part = cache.partition(table, lhs);
        let lhs_pairs: u64 = part
            .classes
            .iter()
            .map(|c| {
                let g = c.len() as u64;
                g * (g - 1) / 2
            })
            .sum();
        let Some(ids) = by_lhs.get(&lhs) else {
            continue;
        };
        for &fi in ids {
            let rhs = fds[fi].rhs;
            let mut violating = 0u64;
            for class in &part.classes {
                let g = class.len() as u64;
                syms.clear();
                syms.extend(class.iter().map(|&row| table.sym(row as usize, rhs)));
                count_symbol_runs(&mut syms, &mut rhs_counts);
                let sum_sq: u64 = rhs_counts.iter().map(|(_, c)| c * c).sum();
                violating += (g * g - sum_sq) / 2;
            }
            out[fi].violating_pairs = violating;
            out[fi].lhs_pairs = lhs_pairs;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use et_data::table::paper_table1;
    use proptest::prelude::*;

    #[test]
    fn paper_example_1() {
        // g1(Team -> City) over Table 1 is 1/25 = 0.04.
        let t = paper_table1();
        let fd = Fd::from_attrs([1], 2);
        let g = g1_of(&t, &fd);
        assert_eq!(g.violating_pairs, 1);
        assert_eq!(g.lhs_pairs, 2); // {t1,t2} and {t3,t4}
        assert!((g.g1() - 0.04).abs() < 1e-12);
        assert!((g.violation_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn exact_fd_has_zero_g1() {
        let t = paper_table1();
        // City,Role -> Apps: groups (Chicago,PF)={t2,t3} share Apps=4; all
        // other groups are singletons.
        let fd = Fd::from_attrs([2, 3], 4);
        let g = g1_of(&t, &fd);
        assert!(g.is_exact());
        assert_eq!(g.lhs_pairs, 1);
        assert_eq!(g.confidence(), 1.0);
    }

    #[test]
    fn key_like_lhs_has_no_pairs() {
        let t = paper_table1();
        let fd = Fd::from_attrs([0], 1); // Player is a key
        let g = g1_of(&t, &fd);
        assert_eq!(g.lhs_pairs, 0);
        assert_eq!(g.violation_rate(), 0.0);
        assert_eq!(g.g1(), 0.0);
    }

    #[test]
    fn g1_many_matches_individual() {
        let t = paper_table1();
        let fds = vec![Fd::from_attrs([1], 2), Fd::from_attrs([2, 3], 4)];
        let all = g1_many(&t, &fds);
        assert_eq!(all[0], g1_of(&t, &fds[0]));
        assert_eq!(all[1], g1_of(&t, &fds[1]));
    }

    #[test]
    fn empty_table_is_zero() {
        let t = et_data::Table::builder(et_data::Schema::new(["a", "b"])).finish();
        let g = g1_of(&t, &Fd::from_attrs([0], 1));
        assert_eq!(g.g1(), 0.0);
        assert!(g.is_exact());
    }

    /// Brute-force pair enumeration for cross-checking.
    fn g1_brute(table: &Table, fd: &Fd) -> (u64, u64) {
        let lhs = fd.lhs_vec();
        let mut viol = 0;
        let mut risk = 0;
        for a in 0..table.nrows() {
            for b in (a + 1)..table.nrows() {
                if table.rows_agree_on(a, b, &lhs) {
                    risk += 1;
                    if table.sym(a, fd.rhs) != table.sym(b, fd.rhs) {
                        viol += 1;
                    }
                }
            }
        }
        (viol, risk)
    }

    proptest! {
        #[test]
        fn grouped_matches_bruteforce(rows in proptest::collection::vec((0u8..4, 0u8..3, 0u8..3), 0..40)) {
            let mut b = Table::builder(et_data::Schema::new(["x", "y", "a"]));
            for (x, y, a) in &rows {
                b.push_row(&[format!("x{x}"), format!("y{y}"), format!("a{a}")]);
            }
            let t = b.finish();
            for fd in [Fd::from_attrs([0], 2), Fd::from_attrs([0, 1], 2), Fd::from_attrs([1], 0)] {
                let g = g1_of(&t, &fd);
                let (viol, risk) = g1_brute(&t, &fd);
                prop_assert_eq!(g.violating_pairs, viol);
                prop_assert_eq!(g.lhs_pairs, risk);
                prop_assert!(g.g1() >= 0.0 && g.g1() <= 1.0);
                prop_assert!(g.violation_rate() >= 0.0 && g.violation_rate() <= 1.0);
            }
        }
    }
}
