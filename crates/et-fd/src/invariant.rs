//! The feature-gated runtime numeric-invariant layer.
//!
//! The reproduction's quantities live in tight numeric ranges — beliefs
//! finite, confidences and g1 in `[0, 1]`, softmax weights non-negative and
//! summing to ~1, Beta parameters positive. A violation silently corrupts a
//! figure instead of failing a test, so hot paths assert these invariants
//! **only** when the `invariant-checks` feature is active (tests/CI); with
//! the feature off (release builds) the check const-folds away while the
//! condition still type-checks, so the layer cannot rot.
//!
//! `et-belief` and `et-core` forward their own `invariant-checks` features
//! here, so `cargo test --features invariant-checks` arms every layer.

/// Asserts a numeric invariant when the `invariant-checks` feature of the
/// *calling* crate is enabled; otherwise compiles to a never-taken branch
/// that the optimiser removes.
///
/// Statement position only:
///
/// ```
/// use et_fd::invariant;
///
/// let g1 = 0.04_f64;
/// invariant!((0.0..=1.0).contains(&g1), "g1 out of range: {g1}");
/// invariant!(g1.is_finite());
/// ```
#[macro_export]
macro_rules! invariant {
    ($cond:expr, $($arg:tt)+) => {
        if cfg!(feature = "invariant-checks") {
            assert!($cond, $($arg)+);
        }
    };
    ($cond:expr) => {
        $crate::invariant!($cond, "numeric invariant violated: {}", stringify!($cond));
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn passing_invariants_are_silent() {
        invariant!(1.0_f64.is_finite());
        invariant!((0.0..=1.0).contains(&0.5_f64), "conf {}", 0.5_f64);
    }

    #[cfg(feature = "invariant-checks")]
    #[test]
    #[should_panic(expected = "numeric invariant violated")]
    fn armed_invariant_panics_on_violation() {
        invariant!(f64::NAN.is_finite());
    }

    #[cfg(not(feature = "invariant-checks"))]
    #[test]
    fn disarmed_invariant_is_inert() {
        // With the feature off the condition is type-checked but never
        // evaluated at runtime behind a `cfg!` false branch.
        invariant!(f64::NAN.is_finite());
        invariant!(false, "would fire if armed");
    }
}
