//! The round-invariant pair-relation matrix: precomputed, bit-packed
//! relations for batch strategy scoring.
//!
//! Every response strategy scores candidate pairs from the relation of each
//! pair to each FD of the hypothesis space — a quantity that depends only on
//! the (immutable) table, so it never changes within a session. The
//! per-call reference path ([`crate::detect::pair_dirty_probs_with`])
//! re-derives those relations from raw cells on every score: `O(rounds ×
//! candidates × |space| × |attrs|)` work. A [`RelationMatrix`] computes each
//! [`PairRelation`] exactly once and packs it into two bits, after which a
//! whole confidence-vector rescore is a linear pass over packed words.
//!
//! # Layout
//!
//! Relations are stored row-major per pair, 32 FDs per `u64` word. FD `fi`
//! of pair `pid` occupies bits `2·(fi mod 32) .. 2·(fi mod 32)+2` of word
//! `pid · words_per_pair + fi / 32`, coded
//!
//! ```text
//! 0b00 = Irrelevant    0b01 = Satisfies    0b10 = Violates
//! ```
//!
//! so the violated-FD mask of a word is `word & 0xAAAA…A` (the high lane
//! bits) and the relevant-FD count is `popcount((word | word >> 1) &
//! 0x5555…5)` — no per-FD dispatch.
//!
//! # PLI-based derivation
//!
//! Relations are derived from the [`PartitionCache`]'s row → class owner
//! arrays, not from raw cells: two rows agree on an attribute set iff they
//! share a (non-[`NO_CLASS`]) stripped-partition class — a stripped row's
//! value combination is unique to it, so [`NO_CLASS`] rows agree with no
//! other row. The same argument applies to the single-attribute RHS
//! partition, so both halves of [`pair_relation`] reduce to two array
//! lookups per FD. The per-FD owner arrays are memoized in the shared
//! cache, so a session pays for each distinct LHS once across the matrix,
//! every [`crate::ViolationIndex`] build, and the trainer's restrictions.
//!
//! # Deterministic parallelism
//!
//! Large builds fan disjoint pair chunks across a [`std::thread::scope`]
//! pool: each worker fills its own `chunks_mut` slice of the output words,
//! so every word is written by exactly one thread and the assembled buffer
//! is bit-identical to the serial fill by construction (no merge step at
//! all). Worker count follows the same `ET_INDEX_THREADS` /
//! available-parallelism heuristic as the index builds.

use std::sync::Arc;

use et_data::Table;

use crate::attrset::AttrSet;
use crate::cache::{PartitionCache, NO_CLASS};
use crate::detect::{binary_entropy, DetectParams};
use crate::space::HypothesisSpace;
use crate::violations::{index_threads, pair_relation, PairRelation};

/// 2-bit relation codes per 64-bit word.
const FDS_PER_WORD: usize = 32;
/// Lane code for [`PairRelation::Satisfies`] (low bit of the lane).
const CODE_SATISFIES: u64 = 0b01;
/// Lane code for [`PairRelation::Violates`] (high bit of the lane).
const CODE_VIOLATES: u64 = 0b10;
/// High bit of every 2-bit lane: the per-word violated-FD mask.
const VIOLATES_MASK: u64 = 0xAAAA_AAAA_AAAA_AAAA;
/// Low bit of every 2-bit lane: the per-word satisfied-FD mask.
const SATISFIES_MASK: u64 = 0x5555_5555_5555_5555;

/// One FD's cached row→class owner arrays: LHS set and single-attr RHS.
type OwnerPair = (Arc<Vec<usize>>, Arc<Vec<usize>>);

/// Precomputed [`PairRelation`]s of a fixed (table, space, pair-list)
/// triple, 2-bit packed, with batch noisy-OR scoring over the packed words.
///
/// Build once per session ([`RelationMatrix::build`]), then rescore every
/// belief update with [`RelationMatrix::score_all`] — the scoring pass
/// touches only packed words and a precomputed factor table, never the
/// table itself.
#[derive(Debug, Clone, PartialEq)]
pub struct RelationMatrix {
    n_fds: usize,
    words_per_pair: usize,
    /// The pair list, in build order (`pairs[pid]` is pair `pid`).
    pairs: Vec<(usize, usize)>,
    /// `(pair, pid)` sorted by pair, for [`RelationMatrix::pair_id`].
    lookup: Vec<((usize, usize), usize)>,
    /// Packed relations, row-major per pair.
    words: Vec<u64>,
}

/// Batch scores of every pair of a [`RelationMatrix`], aligned by pair id.
#[derive(Debug, Clone, PartialEq)]
pub struct PairScores {
    /// Per-pair noisy-OR dirty probability (both tuples of a pair receive
    /// the same probability — pair evidence cannot tell the sides apart).
    pub dirty: Vec<f64>,
    /// `binary_entropy(dirty[pid])` — the per-tuple entropy of the pair.
    pub entropy: Vec<f64>,
}

impl PairScores {
    /// Pre-sized scratch for [`RelationMatrix::score_all_into`]: both
    /// vectors at length `n_pairs`, zero-filled. Allocate once per round
    /// loop and reuse — the hot-path lint (L12) forbids per-round
    /// allocation downstream of scoring roots.
    pub fn zeroed(n_pairs: usize) -> Self {
        Self {
            dirty: vec![0.0; n_pairs],
            entropy: vec![0.0; n_pairs],
        }
    }
}

/// The per-FD noisy-OR keep-clean factors `1 − indicator(c_f)` for a
/// confidence vector: precompute once, reuse across every pair of a batch.
/// Multiplying the factors of a pair's violated FDs in ascending FD order
/// reproduces [`crate::detect::pair_dirty_probs_with`] bit for bit.
pub fn violation_factors(confidences: &[f64], params: &DetectParams) -> Vec<f64> {
    confidences
        .iter()
        .map(|&c| 1.0 - params.indicator.apply(c))
        .collect()
}

/// In-place variant of [`violation_factors`]: refills a caller-owned
/// buffer (one slot per FD) with bit-identical factors instead of
/// allocating a fresh vector per round.
///
/// # Panics
/// Panics when `out` does not have one slot per confidence.
pub fn violation_factors_into(confidences: &[f64], params: &DetectParams, out: &mut [f64]) {
    assert_eq!(
        out.len(),
        confidences.len(),
        "factor buffer does not match confidence vector"
    );
    for (slot, &c) in out.iter_mut().zip(confidences) {
        *slot = 1.0 - params.indicator.apply(c);
    }
}

impl RelationMatrix {
    /// Builds the matrix for `pairs` over `table` under `space`, reusing
    /// (and warming) the shared partition cache. Thread count follows the
    /// `ET_INDEX_THREADS` / available-parallelism heuristic; the result is
    /// identical for every thread count.
    ///
    /// Pairs may be in any order; each `(a, b)` is looked up by
    /// [`RelationMatrix::pair_id`] in either orientation.
    ///
    /// # Panics
    /// Panics when `table` does not match the cache's row count, or a pair
    /// references a row outside the table.
    pub fn build(
        table: &Table,
        space: &HypothesisSpace,
        cache: &PartitionCache,
        pairs: &[(usize, usize)],
    ) -> Self {
        let threads = index_threads(pairs.len(), space.len().max(1));
        Self::build_with_threads(table, space, cache, pairs, threads)
    }

    /// [`RelationMatrix::build`] with an explicit worker count
    /// (`threads <= 1` runs serially).
    ///
    /// The parallel path splits `pairs` into contiguous chunks and hands
    /// each worker the matching disjoint slice of the output words
    /// (`chunks_mut`), so every word is written by exactly one thread and
    /// the buffer is assembled in pair order without a merge — bit-identical
    /// to the serial fill by construction.
    ///
    /// # Panics
    /// Panics when `table` does not match the cache's row count, or a pair
    /// references a row outside the table.
    pub fn build_with_threads(
        table: &Table,
        space: &HypothesisSpace,
        cache: &PartitionCache,
        pairs: &[(usize, usize)],
        threads: usize,
    ) -> Self {
        let n_fds = space.len();
        let words_per_pair = n_fds.div_ceil(FDS_PER_WORD);
        // Per-FD owner arrays: row → stripped-class id for the LHS set and
        // the single-attribute RHS. Memoized in the shared cache, so FDs
        // with a common determinant share one lookup.
        let owners: Vec<OwnerPair> = space
            .fds()
            .iter()
            .map(|fd| {
                (
                    cache.row_classes(table, fd.lhs),
                    cache.row_classes(table, AttrSet::singleton(fd.rhs)),
                )
            })
            .collect();
        let mut words = vec![0u64; pairs.len() * words_per_pair];
        let fill = |chunk: &[(usize, usize)], out: &mut [u64]| {
            for (pi, &(a, b)) in chunk.iter().enumerate() {
                let base = pi * words_per_pair;
                for (fi, (lhs_owner, rhs_owner)) in owners.iter().enumerate() {
                    let la = lhs_owner[a];
                    if la == NO_CLASS || la != lhs_owner[b] {
                        continue; // Irrelevant = 0b00, words start zeroed.
                    }
                    let ra = rhs_owner[a];
                    let code = if ra != NO_CLASS && ra == rhs_owner[b] {
                        CODE_SATISFIES
                    } else {
                        CODE_VIOLATES
                    };
                    out[base + fi / FDS_PER_WORD] |= code << ((fi % FDS_PER_WORD) * 2);
                }
            }
        };
        if threads <= 1 || pairs.len() < 2 || words_per_pair == 0 {
            fill(pairs, &mut words);
        } else {
            let chunk = pairs.len().div_ceil(threads);
            std::thread::scope(|s| {
                let fill = &fill;
                let handles: Vec<_> = pairs
                    .chunks(chunk)
                    .zip(words.chunks_mut(chunk * words_per_pair))
                    .map(|(pc, wc)| s.spawn(move || fill(pc, wc)))
                    .collect();
                // Join explicitly (not via the scope-exit wait) so the join
                // edge goes through pthread_join, which TSan can see with an
                // uninstrumented std; propagate worker panics unchanged.
                for h in handles {
                    if let Err(payload) = h.join() {
                        std::panic::resume_unwind(payload);
                    }
                }
            });
        }
        let mut lookup: Vec<((usize, usize), usize)> = pairs.iter().copied().zip(0..).collect();
        lookup.sort_unstable();
        Self {
            n_fds,
            words_per_pair,
            pairs: pairs.to_vec(),
            lookup,
            words,
        }
    }

    /// Number of pairs covered.
    pub fn n_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Number of FDs covered.
    pub fn n_fds(&self) -> usize {
        self.n_fds
    }

    /// Packed words per pair (`n_fds.div_ceil(32)`): the width of the
    /// changed-FD masks [`RelationMatrix::changed_factor_mask`] fills and
    /// [`RelationMatrix::rescore_delta`] consumes.
    pub fn words_per_pair(&self) -> usize {
        self.words_per_pair
    }

    /// True when no pairs are covered.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The pair list, in build order (`pairs()[pid]` is pair `pid`).
    pub fn pairs(&self) -> &[(usize, usize)] {
        &self.pairs
    }

    /// The pair id of `(a, b)` (orientation-insensitive), or `None` when
    /// the pair is not covered by this matrix.
    pub fn pair_id(&self, a: usize, b: usize) -> Option<usize> {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.lookup
            .binary_search_by_key(&key, |&(p, _)| p)
            .ok()
            .map(|i| self.lookup[i].1)
    }

    /// The stored relation of pair `pid` to FD `fi` — equal to
    /// [`pair_relation`]`(table, fd, a, b)` for the build inputs.
    ///
    /// # Panics
    /// Panics when `pid` or `fi` is out of range.
    pub fn relation(&self, pid: usize, fi: usize) -> PairRelation {
        assert!(fi < self.n_fds, "FD index {fi} out of range");
        let w = self.words[pid * self.words_per_pair + fi / FDS_PER_WORD];
        match (w >> ((fi % FDS_PER_WORD) * 2)) & 0b11 {
            CODE_SATISFIES => PairRelation::Satisfies,
            CODE_VIOLATES => PairRelation::Violates,
            _ => PairRelation::Irrelevant,
        }
    }

    /// The FDs pair `pid` violates, in ascending FD order (the reference
    /// noisy-OR multiplication order).
    ///
    /// # Panics
    /// Panics when `pid` is out of range.
    pub fn violated_indices(&self, pid: usize) -> impl Iterator<Item = usize> + '_ {
        let row = &self.words[pid * self.words_per_pair..(pid + 1) * self.words_per_pair];
        row.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w & VIOLATES_MASK;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let lane = bits.trailing_zeros() as usize / 2;
                    bits &= bits - 1;
                    Some(wi * FDS_PER_WORD + lane)
                }
            })
        })
    }

    /// How many FDs the pair is relevant to (relation ≠ Irrelevant): the
    /// representativeness weight of density-weighted uncertainty sampling.
    ///
    /// # Panics
    /// Panics when `pid` is out of range.
    pub fn relevant_count(&self, pid: usize) -> usize {
        self.words[pid * self.words_per_pair..(pid + 1) * self.words_per_pair]
            .iter()
            .map(|&w| ((w | (w >> 1)) & SATISFIES_MASK).count_ones() as usize)
            .sum()
    }

    /// Folds the noisy-OR keep-clean products of four pairs at once: a
    /// fixed-width chunk with four independent accumulators, so the
    /// compiler can keep the multiply chains in flight together (and
    /// autovectorize the 4-wide select-multiply) without reassociating any
    /// single pair's product.
    ///
    /// Bit-exact with the scalar [`RelationMatrix::dirty_prob_with_factors`]
    /// fold: lanes are visited in ascending FD order (the union bitscan
    /// yields ascending lanes) and a pair not violating a visited lane
    /// multiplies by `1.0`, which is an exact identity in IEEE-754 — each
    /// pair's own factor sequence and order are unchanged.
    #[inline]
    fn fold4(&self, pids: [usize; 4], factors: &[f64], keep0: f64) -> [f64; 4] {
        let wpp = self.words_per_pair;
        let bases = pids.map(|p| p * wpp);
        let mut keep = [keep0; 4];
        for wi in 0..wpp {
            let w = [
                self.words[bases[0] + wi] & VIOLATES_MASK,
                self.words[bases[1] + wi] & VIOLATES_MASK,
                self.words[bases[2] + wi] & VIOLATES_MASK,
                self.words[bases[3] + wi] & VIOLATES_MASK,
            ];
            let mut union = w[0] | w[1] | w[2] | w[3];
            while union != 0 {
                let lane = union.trailing_zeros() as usize / 2;
                let bit = union & union.wrapping_neg();
                union &= union - 1;
                let f = factors[wi * FDS_PER_WORD + lane];
                for j in 0..4 {
                    keep[j] *= if w[j] & bit != 0 { f } else { 1.0 };
                }
            }
        }
        keep
    }

    /// The noisy-OR dirty probability of pair `pid` given precomputed
    /// keep-clean factors (see [`violation_factors`]). Factors multiply in
    /// ascending FD order — bit-identical to the reference
    /// [`crate::detect::pair_dirty_probs_with`] scan.
    ///
    /// # Panics
    /// Panics when `pid` is out of range or `factors` does not have one
    /// entry per FD.
    pub fn dirty_prob_with_factors(
        &self,
        pid: usize,
        factors: &[f64],
        params: &DetectParams,
    ) -> f64 {
        assert_eq!(
            factors.len(),
            self.n_fds,
            "factor vector does not match hypothesis space"
        );
        let base = pid * self.words_per_pair;
        let mut keep_clean = 1.0 - params.base_rate;
        for wi in 0..self.words_per_pair {
            let mut bits = self.words[base + wi] & VIOLATES_MASK;
            while bits != 0 {
                let lane = bits.trailing_zeros() as usize / 2;
                bits &= bits - 1;
                keep_clean *= factors[wi * FDS_PER_WORD + lane];
            }
        }
        1.0 - keep_clean
    }

    /// Batch scoring: the noisy-OR dirty probability and its binary entropy
    /// for *every* pair, in one pass over the packed words (32 FDs per word,
    /// no per-FD closure dispatch). Bit-identical to calling
    /// [`crate::detect::pair_dirty_probs_with`] + [`binary_entropy`] per
    /// pair with the same `confidences` and `params`.
    ///
    /// # Panics
    /// Panics when `confidences` does not have one entry per FD.
    pub fn score_all(&self, confidences: &[f64], params: &DetectParams) -> PairScores {
        let mut factors = vec![0.0; self.n_fds];
        let mut out = PairScores::zeroed(self.pairs.len());
        self.score_all_into(confidences, params, &mut factors, &mut out);
        out
    }

    /// Allocation-free [`RelationMatrix::score_all`]: refills caller-owned
    /// scratch (`factors` one slot per FD, `out` sized by
    /// [`PairScores::zeroed`]) instead of allocating per call, so a round
    /// loop pays zero heap traffic after the first iteration. Bit-identical
    /// to `score_all`: same factors, same ascending-FD fold, same entropy.
    ///
    /// # Panics
    /// Panics when `confidences` or `factors` do not have one entry per FD,
    /// or `out` is not sized to the pair count.
    pub fn score_all_into(
        &self,
        confidences: &[f64],
        params: &DetectParams,
        factors: &mut [f64],
        out: &mut PairScores,
    ) {
        assert_eq!(
            confidences.len(),
            self.n_fds,
            "confidence vector does not match hypothesis space"
        );
        assert_eq!(
            factors.len(),
            self.n_fds,
            "factor buffer does not match hypothesis space"
        );
        assert_eq!(
            out.dirty.len(),
            self.pairs.len(),
            "score buffer does not match pair count"
        );
        assert_eq!(
            out.entropy.len(),
            self.pairs.len(),
            "score buffer does not match pair count"
        );
        violation_factors_into(confidences, params, factors);
        let keep0 = 1.0 - params.base_rate;
        let n = self.pairs.len();
        let mut pid = 0;
        while pid + 4 <= n {
            let keep = self.fold4([pid, pid + 1, pid + 2, pid + 3], factors, keep0);
            for (j, k) in keep.into_iter().enumerate() {
                let p = 1.0 - k;
                out.dirty[pid + j] = p;
                out.entropy[pid + j] = binary_entropy(p);
            }
            pid += 4;
        }
        while pid < n {
            let p = self.dirty_prob_with_factors(pid, factors, params);
            out.dirty[pid] = p;
            out.entropy[pid] = binary_entropy(p);
            pid += 1;
        }
    }

    /// Diffs two per-FD factor vectors into a changed-FD mask laid out like
    /// the packed violates bits: FD `fi` changed sets bit `2·(fi mod 32)+1`
    /// of word `fi / 32`, so `pair_word & mask != 0` tests "this pair
    /// violates a changed FD" with one AND per word. Returns `true` when any
    /// factor changed. Factors compare by bit pattern (`to_bits`), the same
    /// notion of equality the bit-exactness contract is stated in.
    ///
    /// # Panics
    /// Panics when `old`/`new` do not have one entry per FD or `mask` does
    /// not have one word per packed relation word
    /// (`n_fds.div_ceil(32)` slots).
    pub fn changed_factor_mask(&self, old: &[f64], new: &[f64], mask: &mut [u64]) -> bool {
        assert_eq!(
            old.len(),
            self.n_fds,
            "old factor vector does not match hypothesis space"
        );
        assert_eq!(
            new.len(),
            self.n_fds,
            "new factor vector does not match hypothesis space"
        );
        assert_eq!(
            mask.len(),
            self.words_per_pair,
            "mask buffer does not match packed width"
        );
        for w in mask.iter_mut() {
            *w = 0;
        }
        let mut any = false;
        for fi in 0..self.n_fds {
            if old[fi].to_bits() != new[fi].to_bits() {
                mask[fi / FDS_PER_WORD] |= CODE_VIOLATES << ((fi % FDS_PER_WORD) * 2);
                any = true;
            }
        }
        any
    }

    /// Delta-rescoring: re-folds only the pairs whose packed relation words
    /// intersect `changed` (a mask from
    /// [`RelationMatrix::changed_factor_mask`]), updating `out` in place.
    ///
    /// Contract (the delta invariant): `out` must hold scores produced by
    /// [`RelationMatrix::score_all_into`] (or a previous `rescore_delta`)
    /// under the *same* `params` and a factor vector that differs from
    /// `factors` only at FDs flagged in `changed`. A pair's score depends
    /// solely on the factors of the FDs it violates, so a pair whose
    /// violates words miss the mask would re-fold to the bit-identical
    /// value it already holds — skipping it cannot drift. Re-folded pairs
    /// go through the same chunked fold as the full pass
    /// (`RelationMatrix::fold4` plus the scalar tail), so the delta path
    /// is bit-exact against a full rescore by construction.
    ///
    /// # Panics
    /// Panics when `factors` does not have one entry per FD, `changed` one
    /// word per packed relation word, or `out` one slot per pair.
    pub fn rescore_delta(
        &self,
        factors: &[f64],
        params: &DetectParams,
        changed: &[u64],
        out: &mut PairScores,
    ) {
        assert_eq!(
            factors.len(),
            self.n_fds,
            "factor vector does not match hypothesis space"
        );
        assert_eq!(
            changed.len(),
            self.words_per_pair,
            "changed mask does not match packed width"
        );
        assert_eq!(
            out.dirty.len(),
            self.pairs.len(),
            "score buffer does not match pair count"
        );
        assert_eq!(
            out.entropy.len(),
            self.pairs.len(),
            "score buffer does not match pair count"
        );
        let keep0 = 1.0 - params.base_rate;
        let wpp = self.words_per_pair;
        let mut batch = [0usize; 4];
        let mut filled = 0;
        for pid in 0..self.pairs.len() {
            let base = pid * wpp;
            let mut hit = 0u64;
            for (wi, &mask) in changed.iter().enumerate().take(wpp) {
                hit |= self.words[base + wi] & mask;
            }
            if hit == 0 {
                continue;
            }
            batch[filled] = pid;
            filled += 1;
            if filled == batch.len() {
                let keep = self.fold4(batch, factors, keep0);
                for (j, k) in keep.into_iter().enumerate() {
                    let p = 1.0 - k;
                    out.dirty[batch[j]] = p;
                    out.entropy[batch[j]] = binary_entropy(p);
                }
                filled = 0;
            }
        }
        for &pid in &batch[..filled] {
            let p = self.dirty_prob_with_factors(pid, factors, params);
            out.dirty[pid] = p;
            out.entropy[pid] = binary_entropy(p);
        }
    }

    /// Debug-build invariant: every stored relation equals the raw-cell
    /// [`pair_relation`] (used by tests; O(pairs × FDs × attrs)).
    pub fn verify_against(&self, table: &Table, space: &HypothesisSpace) -> bool {
        self.pairs.iter().enumerate().all(|(pid, &(a, b))| {
            space
                .iter()
                .all(|(fi, fd)| self.relation(pid, fi) == pair_relation(table, &fd, a, b))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::Fd;
    use et_data::table::paper_table1;

    fn space() -> HypothesisSpace {
        HypothesisSpace::from_fds([
            Fd::from_attrs([1], 2),    // Team -> City
            Fd::from_attrs([2, 3], 4), // City,Role -> Apps
        ])
    }

    fn all_pairs(n: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                out.push((a, b));
            }
        }
        out
    }

    #[test]
    fn relations_match_pair_relation() {
        let t = paper_table1();
        let sp = space();
        let cache = PartitionCache::new(&t);
        let pairs = all_pairs(t.nrows());
        let m = RelationMatrix::build(&t, &sp, &cache, &pairs);
        assert!(m.verify_against(&t, &sp));
        // Paper anchors: (t1, t2) violates Team -> City.
        let pid = m.pair_id(0, 1).expect("covered");
        assert_eq!(m.relation(pid, 0), PairRelation::Violates);
        assert_eq!(m.violated_indices(pid).collect::<Vec<_>>(), vec![0]);
        // (t3, t4) satisfies it.
        let pid = m.pair_id(2, 3).expect("covered");
        assert_eq!(m.relation(pid, 0), PairRelation::Satisfies);
        assert_eq!(m.violated_indices(pid).count(), 0);
        assert_eq!(m.relevant_count(pid), 1);
    }

    #[test]
    fn pair_id_is_orientation_insensitive() {
        let t = paper_table1();
        let cache = PartitionCache::new(&t);
        let m = RelationMatrix::build(&t, &space(), &cache, &[(0, 1), (2, 3)]);
        assert_eq!(m.pair_id(1, 0), m.pair_id(0, 1));
        assert_eq!(m.pair_id(0, 4), None);
        assert_eq!(m.n_pairs(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    fn score_all_matches_reference() {
        let t = paper_table1();
        let sp = space();
        let cache = PartitionCache::new(&t);
        let pairs = all_pairs(t.nrows());
        let m = RelationMatrix::build(&t, &sp, &cache, &pairs);
        let conf = [0.96, 0.55];
        for params in [DetectParams::unsmoothed(), DetectParams::default()] {
            let scores = m.score_all(&conf, &params);
            for (pid, &(a, b)) in pairs.iter().enumerate() {
                let (pa, _) = crate::detect::pair_dirty_probs_with(&t, &sp, &conf, a, b, &params);
                assert_eq!(scores.dirty[pid], pa, "pair ({a},{b})");
                assert_eq!(scores.entropy[pid], binary_entropy(pa));
            }
        }
    }

    #[test]
    fn score_all_into_is_bit_identical_and_reusable() {
        let t = paper_table1();
        let sp = space();
        let cache = PartitionCache::new(&t);
        let pairs = all_pairs(t.nrows());
        let m = RelationMatrix::build(&t, &sp, &cache, &pairs);
        // Scratch allocated once, reused across rounds with changing
        // confidences — every round must match the allocating path bit
        // for bit, including stale-value overwrites.
        let mut factors = vec![0.0; sp.len()];
        let mut scores = PairScores::zeroed(pairs.len());
        for round in 0..3 {
            let shift = f64::from(round) * 0.17;
            let conf = [0.96 - shift, 0.55 + shift];
            for params in [DetectParams::unsmoothed(), DetectParams::default()] {
                m.score_all_into(&conf, &params, &mut factors, &mut scores);
                assert_eq!(scores, m.score_all(&conf, &params), "round {round}");
                assert_eq!(factors, violation_factors(&conf, &params), "round {round}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "score buffer does not match pair count")]
    fn score_all_into_rejects_missized_scratch() {
        let t = paper_table1();
        let sp = space();
        let cache = PartitionCache::new(&t);
        let pairs = all_pairs(t.nrows());
        let m = RelationMatrix::build(&t, &sp, &cache, &pairs);
        let mut factors = vec![0.0; sp.len()];
        let mut scores = PairScores::zeroed(pairs.len() - 1);
        m.score_all_into(
            &[0.5, 0.5],
            &DetectParams::default(),
            &mut factors,
            &mut scores,
        );
    }

    #[test]
    fn changed_factor_mask_flags_exactly_the_diff() {
        let t = paper_table1();
        let sp = space();
        let cache = PartitionCache::new(&t);
        let m = RelationMatrix::build(&t, &sp, &cache, &all_pairs(t.nrows()));
        let mut mask = vec![u64::MAX; m.words_per_pair()];
        let old = [0.3, 0.7];
        assert!(!m.changed_factor_mask(&old, &old, &mut mask));
        assert!(mask.iter().all(|&w| w == 0), "mask is cleared on no-diff");
        // FD 1 changes: bit 2·1+1 = 3 of word 0.
        assert!(m.changed_factor_mask(&old, &[0.3, 0.6], &mut mask));
        assert_eq!(mask, vec![0b1000]);
        // A bit-level change counts even when the values compare equal
        // numerically never happens for distinct bits; 0.0 vs -0.0 does.
        assert!(m.changed_factor_mask(&[0.0, 0.7], &[-0.0, 0.7], &mut mask));
        assert_eq!(mask, vec![0b10]);
    }

    #[test]
    fn rescore_delta_matches_full_rescore() {
        let t = paper_table1();
        let sp = space();
        let cache = PartitionCache::new(&t);
        let pairs = all_pairs(t.nrows());
        let m = RelationMatrix::build(&t, &sp, &cache, &pairs);
        for params in [DetectParams::unsmoothed(), DetectParams::default()] {
            let mut factors = vec![0.0; sp.len()];
            let mut scores = PairScores::zeroed(pairs.len());
            let mut conf = vec![0.96, 0.55];
            m.score_all_into(&conf, &params, &mut factors, &mut scores);
            let mut mask = vec![0u64; m.words_per_pair()];
            // Nudge one FD at a time; the delta path must stay bit-equal to
            // a from-scratch rescore after every step.
            for round in 0..6 {
                conf[round % 2] = (conf[round % 2] * 0.83).max(0.05);
                let new_factors = violation_factors(&conf, &params);
                let any = m.changed_factor_mask(&factors, &new_factors, &mut mask);
                assert!(any, "the nudge changed a factor");
                m.rescore_delta(&new_factors, &params, &mask, &mut scores);
                factors.copy_from_slice(&new_factors);
                assert_eq!(scores, m.score_all(&conf, &params), "round {round}");
            }
        }
    }

    #[test]
    fn rescore_delta_empty_mask_is_a_no_op() {
        let t = paper_table1();
        let sp = space();
        let cache = PartitionCache::new(&t);
        let pairs = all_pairs(t.nrows());
        let m = RelationMatrix::build(&t, &sp, &cache, &pairs);
        let params = DetectParams::default();
        let conf = [0.9, 0.4];
        let mut factors = vec![0.0; sp.len()];
        let mut scores = PairScores::zeroed(pairs.len());
        m.score_all_into(&conf, &params, &mut factors, &mut scores);
        let before = scores.clone();
        let mask = vec![0u64; m.words_per_pair()];
        // Garbage factors with an empty mask: nothing may be touched.
        m.rescore_delta(&[0.123; 2], &params, &mask, &mut scores);
        assert_eq!(scores, before);
    }

    #[test]
    #[should_panic(expected = "changed mask does not match packed width")]
    fn rescore_delta_rejects_missized_mask() {
        let t = paper_table1();
        let cache = PartitionCache::new(&t);
        let m = RelationMatrix::build(&t, &space(), &cache, &[(0, 1)]);
        let mut scores = PairScores::zeroed(1);
        m.rescore_delta(&[0.5, 0.5], &DetectParams::default(), &[], &mut scores);
    }

    #[test]
    fn empty_pair_list() {
        let t = paper_table1();
        let cache = PartitionCache::new(&t);
        let m = RelationMatrix::build(&t, &space(), &cache, &[]);
        assert!(m.is_empty());
        assert_eq!(m.n_fds(), 2);
        assert!(m
            .score_all(&[0.5, 0.5], &DetectParams::default())
            .dirty
            .is_empty());
    }

    #[test]
    fn parallel_build_matches_serial() {
        let t = paper_table1();
        let sp = space();
        let cache = PartitionCache::new(&t);
        let pairs = all_pairs(t.nrows());
        let serial = RelationMatrix::build_with_threads(&t, &sp, &cache, &pairs, 1);
        for threads in [2, 3, 8] {
            let par = RelationMatrix::build_with_threads(&t, &sp, &cache, &pairs, threads);
            assert_eq!(serial, par, "{threads} threads");
        }
    }
}
