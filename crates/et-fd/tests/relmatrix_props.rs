//! Property tests pinning the [`RelationMatrix`] scoring substrate to the
//! per-pair reference path: packed relations must equal the raw-cell
//! [`pair_relation`] brute force, batch `score_all` must be bit-for-bit
//! equal to the `pair_dirty_probs_with`/`binary_entropy` scan, and the
//! parallel build must equal the serial one.

use std::sync::Arc;

use proptest::prelude::*;

use et_data::{Schema, Table};
use et_fd::{
    binary_entropy, pair_dirty_probs_with, pair_relation, violation_factors, DeltaScorer,
    DetectParams, Fd, HypothesisSpace, PairScores, PartitionCache, RelationMatrix,
};

/// Arbitrary small tables over three low-cardinality columns: enough to
/// produce singleton, clean and mixed LHS groups.
fn arb_rows() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    proptest::collection::vec((0u8..4, 0u8..3, 0u8..3), 0..48)
}

fn table_of(rows: &[(u8, u8, u8)]) -> Table {
    let mut b = Table::builder(Schema::new(["x", "y", "a"]));
    for (x, y, a) in rows {
        b.push_row(&[format!("x{x}"), format!("y{y}"), format!("a{a}")]);
    }
    b.finish()
}

fn space() -> HypothesisSpace {
    HypothesisSpace::from_fds([
        Fd::from_attrs([0], 2),
        Fd::from_attrs([0], 1),    // shares determinant {x}
        Fd::from_attrs([0, 1], 2), // derived by partition product
        Fd::from_attrs([1], 0),
        Fd::from_attrs([1, 2], 0),
    ])
}

fn all_pairs(n: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            out.push((a, b));
        }
    }
    out
}

/// A confidence vector of the space's width from arbitrary bytes.
fn arb_confidences() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0u8..=255, 5)
        .prop_map(|bytes| bytes.into_iter().map(|b| f64::from(b) / 255.0).collect())
}

/// A sequence of sparse confidence updates: each step optionally replaces
/// some FDs' confidences (`(true, v)`) and leaves the rest untouched —
/// the shapes a labeling session produces (empty diffs, single-FD nudges,
/// wide jumps).
fn arb_update_seq() -> impl Strategy<Value = Vec<Vec<(bool, u8)>>> {
    proptest::collection::vec(
        proptest::collection::vec((any::<bool>(), 0u8..=255), 5),
        1..8,
    )
}

proptest! {
    /// Every stored relation equals the raw-cell brute force, for every
    /// pair and FD; `violated_indices` and `relevant_count` agree with the
    /// per-FD scan.
    #[test]
    fn relations_equal_brute_force(rows in arb_rows()) {
        let t = table_of(&rows);
        let sp = space();
        let cache = PartitionCache::new(&t);
        let pairs = all_pairs(t.nrows());
        let m = RelationMatrix::build(&t, &sp, &cache, &pairs);
        prop_assert_eq!(m.n_pairs(), pairs.len());
        prop_assert_eq!(m.n_fds(), sp.len());
        for (pid, &(a, b)) in pairs.iter().enumerate() {
            prop_assert_eq!(m.pair_id(a, b), Some(pid));
            prop_assert_eq!(m.pair_id(b, a), Some(pid));
            let mut violated = Vec::new();
            let mut relevant = 0usize;
            for (fi, fd) in sp.iter() {
                let want = pair_relation(&t, &fd, a, b);
                prop_assert_eq!(m.relation(pid, fi), want, "pair ({},{}) fd {}", a, b, fi);
                if want == et_fd::PairRelation::Violates {
                    violated.push(fi);
                }
                if want != et_fd::PairRelation::Irrelevant {
                    relevant += 1;
                }
            }
            prop_assert_eq!(m.violated_indices(pid).collect::<Vec<_>>(), violated);
            prop_assert_eq!(m.relevant_count(pid), relevant);
        }
    }

    /// Batch `score_all` is bit-for-bit equal to the per-pair reference
    /// path, for both parameterisations the strategies use (raw and
    /// smoothed) under arbitrary confidence vectors.
    #[test]
    fn score_all_equals_reference(rows in arb_rows(), conf in arb_confidences()) {
        let t = table_of(&rows);
        let sp = space();
        let cache = PartitionCache::new(&t);
        let pairs = all_pairs(t.nrows());
        let m = RelationMatrix::build(&t, &sp, &cache, &pairs);
        for params in [DetectParams::unsmoothed(), DetectParams::default()] {
            let scores = m.score_all(&conf, &params);
            let factors = violation_factors(&conf, &params);
            for (pid, &(a, b)) in pairs.iter().enumerate() {
                let (pa, pb) = pair_dirty_probs_with(&t, &sp, &conf, a, b, &params);
                // The pair's two tuples share one probability by definition.
                prop_assert_eq!(pa.to_bits(), pb.to_bits());
                prop_assert_eq!(scores.dirty[pid].to_bits(), pa.to_bits(),
                    "dirty prob diverged for pair ({},{})", a, b);
                prop_assert_eq!(
                    scores.entropy[pid].to_bits(),
                    binary_entropy(pa).to_bits()
                );
                prop_assert_eq!(
                    m.dirty_prob_with_factors(pid, &factors, &params).to_bits(),
                    pa.to_bits()
                );
            }
        }
    }

    /// A [`DeltaScorer`] driven through an arbitrary sequence of sparse
    /// confidence updates stays bit-for-bit equal to a fresh full rescore
    /// at every step, for both parameterisations the strategies use
    /// (exercising slot reuse, empty diffs, single-FD nudges and wide
    /// jumps in one run).
    #[test]
    fn delta_scorer_equals_full_rescore(rows in arb_rows(), updates in arb_update_seq()) {
        let t = table_of(&rows);
        let sp = space();
        let cache = PartitionCache::new(&t);
        let pairs = all_pairs(t.nrows());
        let m = Arc::new(RelationMatrix::build(&t, &sp, &cache, &pairs));
        let mut delta = DeltaScorer::new(Arc::clone(&m));
        let mut conf = vec![0.5; sp.len()];
        for step in updates {
            for (fi, (touch, b)) in step.into_iter().enumerate() {
                if touch {
                    conf[fi] = f64::from(b) / 255.0;
                }
            }
            for params in [DetectParams::unsmoothed(), DetectParams::default()] {
                let want = m.score_all(&conf, &params);
                let got = delta.scores_for(&conf, &params);
                for pid in 0..pairs.len() {
                    prop_assert_eq!(got.dirty[pid].to_bits(), want.dirty[pid].to_bits(),
                        "dirty diverged at pair {}", pid);
                    prop_assert_eq!(got.entropy[pid].to_bits(), want.entropy[pid].to_bits(),
                        "entropy diverged at pair {}", pid);
                }
            }
        }
    }

    /// `rescore_delta` under an adversarial mask: flagging a *superset* of
    /// the FDs that actually changed must still land exactly on the full
    /// rescore (extra mask bits only widen the refolded pair set), and the
    /// exact mask from `changed_factor_mask` must as well.
    #[test]
    fn rescore_delta_superset_mask_is_exact(
        rows in arb_rows(),
        old_conf in arb_confidences(),
        new_conf in arb_confidences(),
        extra in proptest::collection::vec(any::<bool>(), 5),
    ) {
        let t = table_of(&rows);
        let sp = space();
        let cache = PartitionCache::new(&t);
        let pairs = all_pairs(t.nrows());
        let m = RelationMatrix::build(&t, &sp, &cache, &pairs);
        let params = DetectParams::unsmoothed();

        let mut old_factors = vec![0.0; sp.len()];
        let mut scores = PairScores::zeroed(pairs.len());
        m.score_all_into(&old_conf, &params, &mut old_factors, &mut scores);

        let mut new_factors = vec![0.0; sp.len()];
        let mut want = PairScores::zeroed(pairs.len());
        m.score_all_into(&new_conf, &params, &mut new_factors, &mut want);

        let mut mask = vec![0u64; m.words_per_pair()];
        let any = m.changed_factor_mask(&old_factors, &new_factors, &mut mask);
        prop_assert_eq!(any, mask.iter().any(|&w| w != 0));
        // Widen the mask with arbitrary extra FDs; correctness must hold.
        for (fi, e) in extra.into_iter().enumerate() {
            if e {
                mask[fi / 32] |= 0b10u64 << ((fi % 32) * 2);
            }
        }
        m.rescore_delta(&new_factors, &params, &mask, &mut scores);
        for pid in 0..pairs.len() {
            prop_assert_eq!(scores.dirty[pid].to_bits(), want.dirty[pid].to_bits());
            prop_assert_eq!(scores.entropy[pid].to_bits(), want.entropy[pid].to_bits());
        }
    }

    /// Parallel builds are equal to the serial build for every thread
    /// count, including the auto-selected one.
    #[test]
    fn parallel_build_equals_serial(rows in arb_rows()) {
        let t = table_of(&rows);
        let sp = space();
        let cache = PartitionCache::new(&t);
        let pairs = all_pairs(t.nrows());
        let serial = RelationMatrix::build_with_threads(&t, &sp, &cache, &pairs, 1);
        for threads in [2, 3, 7] {
            let par = RelationMatrix::build_with_threads(&t, &sp, &cache, &pairs, threads);
            prop_assert_eq!(&serial, &par, "{} threads diverged", threads);
        }
        prop_assert_eq!(&serial, &RelationMatrix::build(&t, &sp, &cache, &pairs));
    }
}
