//! Property tests pinning the partition-cache substrate to the legacy
//! semantics: cached, subsample, incremental and parallel index builds must
//! be *exactly* equal — same `G1` integer statistics, same
//! `violates`/`relevant`/`minority` flags — to a fresh serial build.

use proptest::prelude::*;

use et_data::{Schema, Table};
use et_fd::{
    pair_relation, Fd, HypothesisSpace, PairRelation, PartitionCache, SubsampleIndex,
    ViolationIndex,
};

/// Arbitrary small tables over three low-cardinality columns: enough to
/// produce singleton, clean and mixed LHS groups.
fn arb_rows() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    proptest::collection::vec((0u8..4, 0u8..3, 0u8..3), 0..48)
}

fn table_of(rows: &[(u8, u8, u8)]) -> Table {
    let mut b = Table::builder(Schema::new(["x", "y", "a"]));
    for (x, y, a) in rows {
        b.push_row(&[format!("x{x}"), format!("y{y}"), format!("a{a}")]);
    }
    b.finish()
}

fn space() -> HypothesisSpace {
    HypothesisSpace::from_fds([
        Fd::from_attrs([0], 2),
        Fd::from_attrs([0], 1),    // shares determinant {x}
        Fd::from_attrs([0, 1], 2), // derived by partition product
        Fd::from_attrs([1], 0),
        Fd::from_attrs([1, 2], 0),
    ])
}

/// Distinct in-range sample rows derived from arbitrary indices.
fn sample_from(picks: &[usize], n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    for &p in picks {
        if n == 0 {
            break;
        }
        let r = p % n;
        if !out.contains(&r) {
            out.push(r);
        }
    }
    out
}

fn assert_indexes_equal(a: &ViolationIndex, b: &ViolationIndex) {
    assert_eq!(a.n_rows(), b.n_rows());
    assert_eq!(a.n_fds(), b.n_fds());
    assert_eq!(a.stats(), b.stats());
    for fi in 0..a.n_fds() {
        for row in 0..a.n_rows() {
            assert_eq!(a.tuple_violates(fi, row), b.tuple_violates(fi, row));
            assert_eq!(a.tuple_relevant(fi, row), b.tuple_relevant(fi, row));
            assert_eq!(a.tuple_minority(fi, row), b.tuple_minority(fi, row));
        }
    }
    assert_eq!(a, b);
}

proptest! {
    /// Cached and explicitly-parallel builds equal the fresh serial build.
    #[test]
    fn cached_and_parallel_equal_fresh(rows in arb_rows()) {
        let t = table_of(&rows);
        let sp = space();
        let fresh = ViolationIndex::build(&t, &sp);
        let cache = PartitionCache::new(&t);
        let cached = ViolationIndex::build_with(&t, &sp, &cache);
        assert_indexes_equal(&fresh, &cached);
        // Rebuild against the now-warm cache: still identical.
        let warm = ViolationIndex::build_with(&t, &sp, &cache);
        assert_indexes_equal(&fresh, &warm);
        for threads in [1, 2, 3, 7] {
            let par = ViolationIndex::build_with_threads(&t, &sp, &cache, threads);
            assert_indexes_equal(&fresh, &par);
        }
    }

    /// The O(|sample|) subsample restriction equals building from scratch
    /// over the materialized subset table.
    #[test]
    fn subsample_equals_subset_build(rows in arb_rows(),
                                     picks in proptest::collection::vec(0usize..64, 0..24)) {
        let t = table_of(&rows);
        let sp = space();
        let cache = PartitionCache::new(&t);
        let sample = sample_from(&picks, t.nrows());
        let restricted = ViolationIndex::build_subsample(&t, &sp, &cache, &sample);
        let direct = ViolationIndex::build(&t.subset(&sample), &sp);
        assert_indexes_equal(&restricted, &direct);
    }

    /// Growing a subsample incrementally in arbitrary batches equals a
    /// fresh subsample build over the cumulative rows at every step.
    #[test]
    fn incremental_growth_equals_fresh(rows in arb_rows(),
                                       batches in proptest::collection::vec(
                                           proptest::collection::vec(0usize..64, 0..8), 0..5)) {
        let t = table_of(&rows);
        let sp = space();
        let cache = PartitionCache::new(&t);
        let mut inc = SubsampleIndex::new(&t, &sp);
        let mut cumulative: Vec<usize> = Vec::new();
        for batch in &batches {
            if t.nrows() == 0 {
                break;
            }
            let mapped: Vec<usize> = batch.iter().map(|&p| p % t.nrows()).collect();
            for &r in &mapped {
                if !cumulative.contains(&r) {
                    cumulative.push(r);
                }
            }
            inc.grow(&t, &cache, &mapped);
            prop_assert_eq!(inc.rows(), &cumulative[..]);
            let fresh = ViolationIndex::build_subsample(&t, &sp, &cache, &cumulative);
            assert_indexes_equal(inc.index(), &fresh);
        }
    }

    /// Brute-force anchor: cached flags and stats match pair enumeration.
    #[test]
    fn cached_flags_match_bruteforce(rows in arb_rows()) {
        let t = table_of(&rows);
        let sp = space();
        let cache = PartitionCache::new(&t);
        let idx = ViolationIndex::build_with(&t, &sp, &cache);
        for (fi, fd) in sp.iter() {
            let mut viol = 0u64;
            let mut risk = 0u64;
            for a in 0..t.nrows() {
                let mut violates = false;
                let mut relevant = false;
                for b in 0..t.nrows() {
                    if a == b {
                        continue;
                    }
                    match pair_relation(&t, &fd, a, b) {
                        PairRelation::Violates => {
                            violates = true;
                            relevant = true;
                        }
                        PairRelation::Satisfies => relevant = true,
                        PairRelation::Irrelevant => {}
                    }
                }
                prop_assert_eq!(idx.tuple_violates(fi, a), violates);
                prop_assert_eq!(idx.tuple_relevant(fi, a), relevant);
                for b in (a + 1)..t.nrows() {
                    match pair_relation(&t, &fd, a, b) {
                        PairRelation::Violates => {
                            viol += 1;
                            risk += 1;
                        }
                        PairRelation::Satisfies => risk += 1,
                        PairRelation::Irrelevant => {}
                    }
                }
            }
            prop_assert_eq!(idx.g1(fi).violating_pairs, viol);
            prop_assert_eq!(idx.g1(fi).lhs_pairs, risk);
        }
    }
}
