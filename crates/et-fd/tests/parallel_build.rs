//! Deterministic parallel-build tests, also exercised under ThreadSanitizer
//! by `scripts/ci.sh`: concurrent index builds over one shared
//! [`PartitionCache`] must be data-race free and bit-identical to serial.

use std::sync::Arc;

use et_fd::{Fd, HypothesisSpace, PartitionCache, RelationMatrix, ViolationIndex};

fn fixture() -> (et_data::Table, HypothesisSpace) {
    let mut ds = et_data::gen::hospital(240, 7);
    let cfg = et_data::InjectConfig::with_degree(0.15, 11);
    let _ = et_data::inject_errors(&mut ds.table, &ds.exact_fds, &[], &cfg);
    let pinned: Vec<Fd> = ds.exact_fds.iter().map(Fd::from_spec).collect();
    let space = HypothesisSpace::capped(&ds.table, 3, 24, 3, &pinned);
    (ds.table, space)
}

#[test]
fn parallel_build_is_bit_identical_to_serial() {
    let (table, space) = fixture();
    let cache = PartitionCache::new(&table);
    let serial = ViolationIndex::build_with_threads(&table, &space, &cache, 1);
    for threads in [2, 4, 8] {
        let par = ViolationIndex::build_with_threads(&table, &space, &cache, threads);
        assert_eq!(serial, par, "{threads}-thread build diverged");
    }
    // The auto-selected path too (whatever available_parallelism resolves).
    assert_eq!(serial, ViolationIndex::build_with(&table, &space, &cache));
}

#[test]
fn concurrent_builders_share_one_cache() {
    let (table, space) = fixture();
    let table = Arc::new(table);
    let cache = Arc::new(PartitionCache::new(&table));
    let serial = ViolationIndex::build_with_threads(&table, &space, &cache, 1);
    // Hammer the same cold cache from many threads at once: races on the
    // memo maps must neither corrupt nor change results. Handles are joined
    // explicitly (not left to the scope-exit wait) so the join edge goes
    // through pthread_join, which TSan can see with an uninstrumented std.
    std::thread::scope(|s| {
        let handles: Vec<_> = [1, 2, 4, 1, 2, 4]
            .into_iter()
            .map(|threads| {
                let table = Arc::clone(&table);
                let cache = Arc::clone(&cache);
                let space = &space;
                let serial = &serial;
                s.spawn(move || {
                    let idx = ViolationIndex::build_with_threads(&table, space, &cache, threads);
                    assert_eq!(*serial, idx);
                })
            })
            .collect();
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
}

/// All a<b pairs over a row prefix — a dense pool for the matrix builds.
fn prefix_pairs(n: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            out.push((a, b));
        }
    }
    out
}

#[test]
fn matrix_parallel_build_is_bit_identical_to_serial() {
    let (table, space) = fixture();
    let cache = PartitionCache::new(&table);
    let pairs = prefix_pairs(64.min(table.nrows()));
    let serial = RelationMatrix::build_with_threads(&table, &space, &cache, &pairs, 1);
    for threads in [2, 4, 8] {
        let par = RelationMatrix::build_with_threads(&table, &space, &cache, &pairs, threads);
        assert_eq!(serial, par, "{threads}-thread matrix build diverged");
    }
    assert_eq!(
        serial,
        RelationMatrix::build(&table, &space, &cache, &pairs)
    );
}

#[test]
fn concurrent_matrix_builders_share_one_cache() {
    let (table, space) = fixture();
    let table = Arc::new(table);
    let cache = Arc::new(PartitionCache::new(&table));
    let pairs = prefix_pairs(48.min(table.nrows()));
    let serial = RelationMatrix::build_with_threads(&table, &space, &cache, &pairs, 1);
    // Hammer the same cold cache from many threads at once: races on the
    // memo maps must neither corrupt nor change results. Handles are joined
    // explicitly (not left to the scope-exit wait) so the join edge goes
    // through pthread_join, which TSan can see with an uninstrumented std.
    std::thread::scope(|s| {
        let handles: Vec<_> = [1, 2, 4, 1, 2, 4]
            .into_iter()
            .map(|threads| {
                let table = Arc::clone(&table);
                let cache = Arc::clone(&cache);
                let space = &space;
                let pairs = &pairs;
                let serial = &serial;
                s.spawn(move || {
                    let m =
                        RelationMatrix::build_with_threads(&table, space, &cache, pairs, threads);
                    assert_eq!(*serial, m);
                })
            })
            .collect();
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
}

#[test]
fn subsample_restriction_from_concurrent_threads() {
    let (table, space) = fixture();
    let cache = PartitionCache::new(&table);
    let samples: Vec<Vec<usize>> = (0..6)
        .map(|k| (k..table.nrows()).step_by(k + 2).collect())
        .collect();
    let expected: Vec<ViolationIndex> = samples
        .iter()
        .map(|s| ViolationIndex::build(&table.subset(s), &space))
        .collect();
    std::thread::scope(|sc| {
        let handles: Vec<_> = samples
            .iter()
            .zip(&expected)
            .map(|(sample, want)| {
                let cache = &cache;
                let table = &table;
                let space = &space;
                sc.spawn(move || {
                    let got = ViolationIndex::build_subsample(table, space, cache, sample);
                    assert_eq!(*want, got);
                })
            })
            .collect();
        // Explicit pthread_join edges, visible to TSan (see above).
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
}
