//! Divergences and calibration between beliefs.
//!
//! MAE (in [`crate::Belief::mae`]) is the paper's convergence metric;
//! distribution-aware alternatives sharpen the analysis: two agents can
//! share means while disagreeing wildly in certainty.

use crate::belief::Belief;
use crate::beta::Beta;

/// KL divergence `KL(p || q)` between two Beta distributions, in nats.
///
/// Computed via the standard closed form with digamma/log-beta evaluated
/// numerically.
pub fn beta_kl(p: &Beta, q: &Beta) -> f64 {
    ln_beta(q.alpha, q.beta) - ln_beta(p.alpha, p.beta)
        + (p.alpha - q.alpha) * digamma(p.alpha)
        + (p.beta - q.beta) * digamma(p.beta)
        + (q.alpha - p.alpha + q.beta - p.beta) * digamma(p.alpha + p.beta)
}

/// Mean per-FD KL divergence between two beliefs over the same space.
///
/// # Panics
/// Panics when the beliefs cover different space sizes.
pub fn belief_kl(p: &Belief, q: &Belief) -> f64 {
    assert_eq!(p.len(), q.len(), "beliefs must share a hypothesis space");
    let sum: f64 = (0..p.len()).map(|i| beta_kl(p.dist(i), q.dist(i))).sum();
    sum / p.len() as f64
}

/// Symmetrised divergence `(KL(p||q) + KL(q||p)) / 2` per FD.
pub fn belief_j(p: &Belief, q: &Belief) -> f64 {
    (belief_kl(p, q) + belief_kl(q, p)) / 2.0
}

/// Calibration of a belief against outcomes: the mean squared difference
/// between each FD's confidence and its ground-truth indicator (a Brier
/// score over the hypothesis space; 0 is perfect).
///
/// # Panics
/// Panics when `truth.len()` differs from the belief size.
pub fn brier_score(belief: &Belief, truth: &[bool]) -> f64 {
    assert_eq!(truth.len(), belief.len(), "ground truth must align");
    let sum: f64 = truth
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            let target = if t { 1.0 } else { 0.0 };
            let d = belief.confidence(i) - target;
            d * d
        })
        .sum();
    sum / truth.len() as f64
}

/// Natural log of the Beta function, via `ln Γ`.
fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// Lanczos approximation of `ln Γ(x)` (g = 7, n = 9), accurate to ~1e-13
/// for positive arguments.
fn ln_gamma(x: f64) -> f64 {
    debug_assert!(x > 0.0, "ln_gamma needs a positive argument");
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Digamma ψ(x) via the recurrence + asymptotic series.
fn digamma(mut x: f64) -> f64 {
    debug_assert!(x > 0.0, "digamma needs a positive argument");
    let mut acc = 0.0;
    while x < 10.0 {
        acc -= 1.0 / x;
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    acc + x.ln() - 0.5 * inv - inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 / 252.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use et_fd::{Fd, HypothesisSpace};
    use proptest::prelude::*;
    use std::sync::Arc;

    fn space2() -> Arc<HypothesisSpace> {
        Arc::new(HypothesisSpace::from_fds([
            Fd::from_attrs([0], 1),
            Fd::from_attrs([1], 0),
        ]))
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = Γ(2) = 1, Γ(5) = 24.
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        // Γ(1/2) = sqrt(pi).
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn digamma_known_values() {
        // ψ(1) = -γ (Euler–Mascheroni).
        assert!((digamma(1.0) + 0.577_215_664_901_532_9).abs() < 1e-10);
        // ψ(x+1) = ψ(x) + 1/x.
        assert!((digamma(3.5) - digamma(2.5) - 1.0 / 2.5).abs() < 1e-10);
    }

    #[test]
    fn kl_zero_iff_identical() {
        let p = Beta::new(3.0, 5.0);
        assert!(beta_kl(&p, &p).abs() < 1e-10);
        let q = Beta::new(5.0, 3.0);
        assert!(beta_kl(&p, &q) > 0.01);
    }

    #[test]
    fn belief_divergences() {
        let s = space2();
        let p = Belief::constant(s.clone(), Beta::new(8.0, 2.0));
        let q = Belief::constant(s, Beta::new(2.0, 8.0));
        assert!(belief_kl(&p, &p).abs() < 1e-10);
        assert!(belief_kl(&p, &q) > 0.5);
        // J-divergence is symmetric.
        assert!((belief_j(&p, &q) - belief_j(&q, &p)).abs() < 1e-12);
    }

    #[test]
    fn brier_rewards_calibration() {
        let s = space2();
        let sharp = Belief::new(s.clone(), vec![Beta::new(99.0, 1.0), Beta::new(1.0, 99.0)]);
        let fuzzy = Belief::constant(s, Beta::new(1.0, 1.0));
        let truth = [true, false];
        assert!(brier_score(&sharp, &truth) < 0.01);
        assert!((brier_score(&fuzzy, &truth) - 0.25).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn kl_non_negative(a1 in 0.5f64..20.0, b1 in 0.5f64..20.0,
                           a2 in 0.5f64..20.0, b2 in 0.5f64..20.0) {
            let p = Beta::new(a1, b1);
            let q = Beta::new(a2, b2);
            prop_assert!(beta_kl(&p, &q) >= -1e-9, "KL = {}", beta_kl(&p, &q));
        }

        #[test]
        fn ln_gamma_recurrence(x in 0.1f64..30.0) {
            // Γ(x+1) = x Γ(x).
            let lhs = ln_gamma(x + 1.0);
            let rhs = x.ln() + ln_gamma(x);
            prop_assert!((lhs - rhs).abs() < 1e-8, "x = {x}: {lhs} vs {rhs}");
        }

        // Log-uniform sweeps over the full supported parameter range
        // (1e-6..1e6): the special functions and the KL built from them must
        // stay finite everywhere, including the tiny-shape reflection branch
        // and the asymptotic tail.
        #[test]
        fn ln_gamma_finite_over_range(e in -6.0f64..6.0) {
            let x = 10f64.powf(e);
            prop_assert!(ln_gamma(x).is_finite(), "ln_gamma({x}) = {}", ln_gamma(x));
        }

        #[test]
        fn digamma_finite_over_range(e in -6.0f64..6.0) {
            let x = 10f64.powf(e);
            prop_assert!(digamma(x).is_finite(), "digamma({x}) = {}", digamma(x));
        }

        #[test]
        fn beta_kl_finite_over_range(ea1 in -6.0f64..6.0, eb1 in -6.0f64..6.0,
                                     ea2 in -6.0f64..6.0, eb2 in -6.0f64..6.0) {
            let p = Beta::new(10f64.powf(ea1), 10f64.powf(eb1));
            let q = Beta::new(10f64.powf(ea2), 10f64.powf(eb2));
            let kl = beta_kl(&p, &q);
            prop_assert!(kl.is_finite(), "KL({p:?} || {q:?}) = {kl}");
            prop_assert!(kl >= -1e-6, "KL must be (numerically) non-negative: {kl}");
        }

        #[test]
        fn belief_self_kl_is_zero(ea in -6.0f64..6.0, eb in -6.0f64..6.0) {
            let s = space2();
            let p = Belief::constant(s, Beta::new(10f64.powf(ea), 10f64.powf(eb)));
            let d = belief_kl(&p, &p);
            prop_assert!(d.abs() < 1e-8, "KL(p||p) = {d}");
        }
    }
}
