//! The fictitious-play / Bayesian evidence rule.
//!
//! Both agents update their belief from the same interaction record — the
//! presented pairs plus the (trainer's) clean/dirty labels — with the rule:
//!
//! * pair **satisfies** FD, both tuples labeled clean → the FD held on
//!   clean data: `α += clean_weight`;
//! * pair **violates** FD, both tuples labeled clean → a genuine exception
//!   among clean data: `β += clean_weight`;
//! * pair **violates** FD, some tuple labeled dirty → the violation is
//!   *explained away* by the error: weak support `α += explained_weight`;
//! * pair **satisfies** FD but carries a dirty label → ambiguous, no update;
//! * pair **irrelevant** to the FD → no update.
//!
//! This is fictitious play in the sense of the paper §3: the belief's
//! confidence for an FD converges to the empirical frequency with which the
//! FD is consistent with the labeled evidence. The trainer applies the rule
//! with its *own* labels (it updates, then labels, per §C.1 "Interactions"),
//! the learner with the labels it *receives* — so a learner sampling
//! informative pairs closes the belief gap faster, which is exactly what
//! Figures 1 and 3–6 measure.

use et_data::Table;
use et_fd::{PairRelation, SpaceRelations};

use crate::belief::Belief;

/// Weights of the evidence rule.
#[derive(Debug, Clone, Copy)]
pub struct EvidenceConfig {
    /// Evidence carried by a clean-clean pair (default 1.0).
    pub clean_weight: f64,
    /// Support carried by a violating pair explained by a dirty label
    /// (default 0.25 — weaker, since the error also breaks other FDs).
    pub explained_weight: f64,
}

impl Default for EvidenceConfig {
    fn default() -> Self {
        Self {
            clean_weight: 1.0,
            explained_weight: 0.05,
        }
    }
}

/// A presented pair with the trainer's labels (`true` = dirty).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabeledPair {
    /// First row id.
    pub a: usize,
    /// Second row id.
    pub b: usize,
    /// Label of `a` (`true` = dirty).
    pub dirty_a: bool,
    /// Label of `b` (`true` = dirty).
    pub dirty_b: bool,
}

impl LabeledPair {
    /// True when either tuple is labeled dirty.
    pub fn any_dirty(&self) -> bool {
        self.dirty_a || self.dirty_b
    }
}

/// Applies the evidence rule for one labeled pair to every FD of the
/// belief's hypothesis space.
pub fn update_from_labeled_pair(
    belief: &mut Belief,
    table: &Table,
    pair: &LabeledPair,
    cfg: &EvidenceConfig,
) {
    let rel = SpaceRelations::new(belief.space());
    apply_labeled(belief, &rel, table, pair, cfg);
}

/// Applies [`update_from_labeled_pair`] for a whole interaction, sharing
/// the per-FD relation scratch across pairs.
pub fn update_from_labeled_pairs(
    belief: &mut Belief,
    table: &Table,
    pairs: &[LabeledPair],
    cfg: &EvidenceConfig,
) {
    let rel = SpaceRelations::new(belief.space());
    for p in pairs {
        apply_labeled(belief, &rel, table, p, cfg);
    }
}

fn apply_labeled(
    belief: &mut Belief,
    rel: &SpaceRelations,
    table: &Table,
    pair: &LabeledPair,
    cfg: &EvidenceConfig,
) {
    for fi in 0..rel.len() {
        match rel.relation(table, fi, pair.a, pair.b) {
            PairRelation::Irrelevant => {}
            PairRelation::Satisfies => {
                if !pair.any_dirty() {
                    belief.observe(fi, cfg.clean_weight, 0.0);
                }
            }
            PairRelation::Violates => {
                if pair.any_dirty() {
                    belief.observe(fi, cfg.explained_weight, 0.0);
                } else {
                    belief.observe(fi, 0.0, cfg.clean_weight);
                }
            }
        }
    }
}

/// Label-free fictitious-play update from raw pair relations: every observed
/// at-risk pair counts `weight` toward an FD's satisfaction (`α`) or
/// violation (`β`) tally.
///
/// This is the *trainer-side* update: an annotator inspecting presented
/// samples estimates, per FD, "how often does this FD hold on the data I
/// have seen?" — exactly the user study's "FD that holds with the fewest
/// exceptions" judgment. (The learner cannot use it to track the trainer's
/// belief directly; it learns from the labels via
/// [`update_from_labeled_pair`].)
///
/// # Panics
/// Panics on a negative `weight`.
pub fn update_from_pair_relations(
    belief: &mut Belief,
    table: &Table,
    pairs: &[(usize, usize)],
    weight: f64,
) {
    assert!(weight >= 0.0, "evidence weight must be non-negative");
    let rel = SpaceRelations::new(belief.space());
    for &(a, b) in pairs {
        for fi in 0..rel.len() {
            match rel.relation(table, fi, a, b) {
                PairRelation::Irrelevant => {}
                PairRelation::Satisfies => belief.observe(fi, weight, 0.0),
                PairRelation::Violates => belief.observe(fi, 0.0, weight),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beta::Beta;
    use et_data::table::paper_table1;
    use et_fd::{Fd, HypothesisSpace};
    use std::sync::Arc;

    fn setup() -> (Belief, Table) {
        let space = Arc::new(HypothesisSpace::from_fds([
            Fd::from_attrs([1], 2),    // Team -> City (violated by (t1,t2))
            Fd::from_attrs([2, 3], 4), // City,Role -> Apps (satisfied by (t2,t3))
        ]));
        (Belief::constant(space, Beta::new(2.0, 2.0)), paper_table1())
    }

    #[test]
    fn clean_satisfying_pair_supports() {
        let (mut b, t) = setup();
        let before = b.confidence(1);
        update_from_labeled_pair(
            &mut b,
            &t,
            &LabeledPair {
                a: 1,
                b: 2,
                dirty_a: false,
                dirty_b: false,
            },
            &EvidenceConfig::default(),
        );
        assert!(b.confidence(1) > before, "satisfying clean pair supports");
    }

    #[test]
    fn clean_violating_pair_contradicts() {
        let (mut b, t) = setup();
        let before = b.confidence(0);
        update_from_labeled_pair(
            &mut b,
            &t,
            &LabeledPair {
                a: 0,
                b: 1,
                dirty_a: false,
                dirty_b: false,
            },
            &EvidenceConfig::default(),
        );
        assert!(
            b.confidence(0) < before,
            "unexplained violation contradicts"
        );
    }

    #[test]
    fn explained_violation_weakly_supports() {
        let (mut b, t) = setup();
        let before = b.confidence(0);
        update_from_labeled_pair(
            &mut b,
            &t,
            &LabeledPair {
                a: 0,
                b: 1,
                dirty_a: true,
                dirty_b: false,
            },
            &EvidenceConfig::default(),
        );
        let after = b.confidence(0);
        assert!(after > before, "explained violation supports");
        // ... but weakly: less than a full clean observation would.
        let (mut strong, t2) = setup();
        update_from_labeled_pair(
            &mut strong,
            &t2,
            &LabeledPair {
                a: 2,
                b: 3,
                dirty_a: false,
                dirty_b: false,
            },
            &EvidenceConfig::default(),
        );
        // fd0 relation for (t3,t4) is Violates? No: Bulls share City -> satisfies.
        assert!(strong.confidence(0) - before > after - before);
    }

    #[test]
    fn irrelevant_pair_is_noop() {
        let (mut b, t) = setup();
        let before = b.confidences();
        // t1 (Lakers) vs t5 (Clippers): different Team and different
        // (City, Role) -> irrelevant to both FDs.
        update_from_labeled_pair(
            &mut b,
            &t,
            &LabeledPair {
                a: 0,
                b: 4,
                dirty_a: false,
                dirty_b: true,
            },
            &EvidenceConfig::default(),
        );
        assert_eq!(b.confidences(), before);
    }

    #[test]
    fn dirty_satisfying_pair_is_noop() {
        let (mut b, t) = setup();
        let before = b.confidences();
        // (t3, t4): Bulls share City (satisfies fd0); dirty label -> skip.
        update_from_labeled_pair(
            &mut b,
            &t,
            &LabeledPair {
                a: 2,
                b: 3,
                dirty_a: true,
                dirty_b: false,
            },
            &EvidenceConfig::default(),
        );
        assert_eq!(b.confidences(), before);
    }

    #[test]
    fn relation_update_estimates_satisfaction_rate() {
        let (_, t) = setup();
        let space = Arc::new(HypothesisSpace::from_fds([
            Fd::from_attrs([1], 2),    // Team -> City: 1 of 2 at-risk pairs violates
            Fd::from_attrs([2, 3], 4), // City,Role -> Apps: its 1 pair satisfies
        ]));
        let mut b = Belief::constant(space, Beta::new(1.0, 1.0));
        let pairs: Vec<(usize, usize)> = vec![(0, 1), (2, 3), (1, 2)];
        for _ in 0..100 {
            update_from_pair_relations(&mut b, &t, &pairs, 1.0);
        }
        // Team -> City: one satisfying, one violating pair -> c -> 0.5.
        assert!((b.confidence(0) - 0.5).abs() < 0.05, "{}", b.confidence(0));
        // City,Role -> Apps: only satisfying evidence -> c -> 1.
        assert!(b.confidence(1) > 0.95);
    }

    #[test]
    fn relation_update_ignores_irrelevant_pairs() {
        let (_, t) = setup();
        let space = Arc::new(HypothesisSpace::from_fds([Fd::from_attrs([1], 2)]));
        let mut b = Belief::constant(space, Beta::new(3.0, 3.0));
        let before = b.confidences();
        update_from_pair_relations(&mut b, &t, &[(0, 4)], 1.0);
        assert_eq!(b.confidences(), before);
    }

    #[test]
    fn identical_evidence_streams_converge() {
        // Two agents with different priors processing the same labeled
        // pairs approach each other — the mechanism behind MAE convergence.
        let (_, t) = setup();
        let space = Arc::new(HypothesisSpace::from_fds([
            Fd::from_attrs([1], 2),
            Fd::from_attrs([2, 3], 4),
        ]));
        let mut trainer = Belief::constant(space.clone(), Beta::new(8.0, 2.0));
        let mut learner = Belief::constant(space, Beta::new(2.0, 8.0));
        let initial = trainer.mae(&learner);
        let pairs = [
            LabeledPair {
                a: 0,
                b: 1,
                dirty_a: true,
                dirty_b: false,
            },
            LabeledPair {
                a: 2,
                b: 3,
                dirty_a: false,
                dirty_b: false,
            },
            LabeledPair {
                a: 1,
                b: 2,
                dirty_a: false,
                dirty_b: false,
            },
        ];
        let cfg = EvidenceConfig::default();
        for _ in 0..50 {
            update_from_labeled_pairs(&mut trainer, &t, &pairs, &cfg);
            update_from_labeled_pairs(&mut learner, &t, &pairs, &cfg);
        }
        let final_mae = trainer.mae(&learner);
        assert!(
            final_mae < initial * 0.2,
            "MAE should shrink: {initial} -> {final_mae}"
        );
    }
}
