//! Beta distributions over FD confidences.
//!
//! The paper builds each prior "beta distribution for that FD" from a mean
//! and a standard deviation (§A.2): `μ = α/(α+β)` and
//! `σ² = αβ / ((α+β)²(α+β+1))`, inverted here in
//! [`Beta::from_mean_std`]. Bayesian/FP updating adds observed
//! successes/failures to `α`/`β`.

use et_fd::invariant;
use rand::Rng;

/// A Beta(α, β) distribution.
///
/// ```
/// use et_belief::Beta;
///
/// // The paper's user-FD prior: mean 0.85, sigma 0.05.
/// let mut b = Beta::from_mean_std(0.85, 0.05);
/// assert!((b.mean() - 0.85).abs() < 1e-9);
/// b.observe(3.0, 1.0); // three supporting, one contradicting observation
/// assert!(b.mean() < 0.85 + 0.05);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Beta {
    /// Success pseudo-count (> 0).
    pub alpha: f64,
    /// Failure pseudo-count (> 0).
    pub beta: f64,
}

impl Beta {
    /// Creates Beta(α, β).
    ///
    /// # Panics
    /// Panics unless both parameters are positive and finite.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha.is_finite() && beta > 0.0 && beta.is_finite(),
            "Beta parameters must be positive and finite, got ({alpha}, {beta})"
        );
        Self { alpha, beta }
    }

    /// The uniform distribution Beta(1, 1).
    pub fn uniform() -> Self {
        Self::new(1.0, 1.0)
    }

    /// Inverts the mean/variance equations of the Beta distribution, the
    /// construction the paper uses for all priors (mean per prior family,
    /// σ = 0.05).
    ///
    /// The mean is clamped into `[0.01, 0.99]` and the standard deviation
    /// shrunk if needed so the parameters stay valid (`σ² < μ(1−μ)`).
    pub fn from_mean_std(mean: f64, std: f64) -> Self {
        let mu = mean.clamp(0.01, 0.99);
        let max_var = mu * (1.0 - mu);
        let var = (std * std).min(max_var * 0.99).max(1e-9);
        // ν = μ(1−μ)/σ² − 1 (total pseudo-count).
        let nu = max_var / var - 1.0;
        Self::new(mu * nu, (1.0 - mu) * nu)
    }

    /// The mean α/(α+β).
    pub fn mean(&self) -> f64 {
        self.alpha / (self.alpha + self.beta)
    }

    /// The variance αβ/((α+β)²(α+β+1)).
    pub fn variance(&self) -> f64 {
        let s = self.alpha + self.beta;
        self.alpha * self.beta / (s * s * (s + 1.0))
    }

    /// The standard deviation.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Total pseudo-count α+β (the prior's "weight" against new evidence).
    pub fn pseudo_count(&self) -> f64 {
        self.alpha + self.beta
    }

    /// Bayesian update with (possibly fractional) observed successes and
    /// failures.
    ///
    /// # Panics
    /// Panics on negative evidence.
    pub fn observe(&mut self, successes: f64, failures: f64) {
        assert!(
            successes >= 0.0 && failures >= 0.0,
            "evidence must be non-negative"
        );
        self.alpha += successes;
        self.beta += failures;
        invariant!(
            self.alpha > 0.0 && self.alpha.is_finite() && self.beta > 0.0 && self.beta.is_finite(),
            "Beta parameters left the positive finite range after observe: ({}, {})",
            self.alpha,
            self.beta
        );
    }

    /// Scales both pseudo-counts, preserving the mean while changing the
    /// distribution's weight (used to tune prior strength in experiments).
    ///
    /// # Panics
    /// Panics unless `factor` is positive.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        Self::new(self.alpha * factor, self.beta * factor)
    }

    /// Draws a sample via two Gamma draws (Marsaglia–Tsang), enabling
    /// Thompson-sampling response strategies.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let x = gamma_sample(self.alpha, rng);
        let y = gamma_sample(self.beta, rng);
        // Both draws can underflow to zero for tiny shapes; fall back to the
        // midpoint rather than dividing 0/0.
        let out = if x + y <= 0.0 { 0.5 } else { x / (x + y) };
        invariant!(
            (0.0..=1.0).contains(&out),
            "Beta sample {out} escaped [0, 1]"
        );
        out
    }
}

/// Gamma(shape, 1) sampling by Marsaglia & Tsang's squeeze method, with the
/// standard boost for shape < 1.
fn gamma_sample<R: Rng + ?Sized>(shape: f64, rng: &mut R) -> f64 {
    debug_assert!(shape > 0.0);
    if shape < 1.0 {
        // Gamma(a) = Gamma(a+1) * U^(1/a).
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return gamma_sample(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // Standard normal via Box–Muller.
        let (u1, u2): (f64, f64) = (rng.gen::<f64>().max(f64::MIN_POSITIVE), rng.gen());
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = (1.0 + c * z).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        if u.ln() < 0.5 * z * z + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mean_variance_roundtrip_paper_config() {
        // The paper's user-FD prior: mean 0.85, σ 0.05.
        let b = Beta::from_mean_std(0.85, 0.05);
        assert!((b.mean() - 0.85).abs() < 1e-9);
        assert!((b.std() - 0.05).abs() < 1e-9);
        // ν = .85*.15/.0025 − 1 = 50.
        assert!((b.pseudo_count() - 50.0).abs() < 1e-6);
    }

    #[test]
    fn observe_moves_mean() {
        let mut b = Beta::uniform();
        b.observe(8.0, 2.0);
        assert!((b.mean() - 0.75).abs() < 1e-12); // (1+8)/(2+10)
        b.observe(0.0, 20.0);
        assert!(b.mean() < 0.3);
    }

    #[test]
    fn scaled_preserves_mean() {
        let b = Beta::from_mean_std(0.7, 0.05);
        let s = b.scaled(0.2);
        assert!((s.mean() - b.mean()).abs() < 1e-12);
        assert!((s.pseudo_count() - b.pseudo_count() * 0.2).abs() < 1e-9);
        assert!(s.std() > b.std(), "weaker prior is wider");
    }

    #[test]
    fn from_mean_std_clamps_invalid() {
        // σ too large for the mean: must still produce a valid Beta.
        let b = Beta::from_mean_std(0.99, 0.5);
        assert!(b.alpha > 0.0 && b.beta > 0.0);
        // Extreme means clamp.
        let b = Beta::from_mean_std(0.0, 0.05);
        assert!(b.mean() >= 0.01 - 1e-9);
        let b = Beta::from_mean_std(1.0, 0.05);
        assert!(b.mean() <= 0.99 + 1e-9);
    }

    #[test]
    fn samples_concentrate_around_mean() {
        let b = Beta::from_mean_std(0.8, 0.05);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 4000;
        let mean: f64 = (0..n).map(|_| b.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.8).abs() < 0.01, "sample mean {mean}");
    }

    #[test]
    fn samples_from_small_shape_valid() {
        let b = Beta::new(0.3, 0.4);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let x = b.sample(&mut rng);
            assert!((0.0..=1.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_params() {
        let _ = Beta::new(0.0, 1.0);
    }

    proptest! {
        #[test]
        fn roundtrip_valid_region(mean in 0.05f64..0.95, std in 0.01f64..0.1) {
            prop_assume!(std * std < mean * (1.0 - mean) * 0.9);
            let b = Beta::from_mean_std(mean, std);
            prop_assert!((b.mean() - mean).abs() < 1e-6);
            prop_assert!((b.std() - std).abs() < 1e-6);
        }

        #[test]
        fn observe_monotone(succ in 0.0f64..20.0, fail in 0.0f64..20.0) {
            let base = Beta::from_mean_std(0.5, 0.1);
            let mut up = base;
            up.observe(succ, 0.0);
            let mut down = base;
            down.observe(0.0, fail);
            prop_assert!(up.mean() >= base.mean() - 1e-12);
            prop_assert!(down.mean() <= base.mean() + 1e-12);
        }

        #[test]
        fn variance_shrinks_with_evidence(e in 1.0f64..50.0) {
            let base = Beta::from_mean_std(0.5, 0.1);
            let mut b = base;
            b.observe(e / 2.0, e / 2.0);
            prop_assert!(b.variance() < base.variance());
        }
    }
}
