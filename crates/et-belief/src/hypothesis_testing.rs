//! Hypothesis testing — the paper's alternative model of human learning
//! (§3): hold one hypothesis; every interaction, test it against the
//! *recent* data (the preceding interaction's samples, per §A.2); if it
//! fails to explain enough of that data, switch to the hypothesis that
//! performs best on the window.

use et_data::Table;
use et_fd::{pair_relation, Fd, HypothesisSpace, PairRelation};
use std::sync::Arc;

use crate::update::LabeledPair;

/// How a hypothesis is scored against the recent window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScoreMode {
    /// Fraction of at-risk pairs the FD *satisfies* — "the FD that holds
    /// over the observed data with the fewest exceptions" (the user-study
    /// task, where the agent inspects the data itself). Labels are ignored.
    DataSatisfaction,
    /// Fraction of relevant pairs where the FD's violation prediction
    /// matches the labels (violating pair ⇔ some dirty label) — used when
    /// modeling *another* agent's declared hypothesis from their labels.
    LabelConsistency,
}

/// A hypothesis-testing learner over a hypothesis space.
#[derive(Debug, Clone)]
pub struct HypothesisTester {
    space: Arc<HypothesisSpace>,
    current: usize,
    /// Minimum score on the recent window below which the current
    /// hypothesis is rejected.
    pub tolerance: f64,
    mode: ScoreMode,
    window: Vec<LabeledPair>,
}

impl HypothesisTester {
    /// Starts at `initial` (an index into `space`).
    ///
    /// # Panics
    /// Panics when `initial` is not an index into `space`.
    pub fn new(
        space: Arc<HypothesisSpace>,
        initial: usize,
        tolerance: f64,
        mode: ScoreMode,
    ) -> Self {
        assert!(initial < space.len(), "initial hypothesis out of range");
        assert!(
            (0.0..=1.0).contains(&tolerance),
            "tolerance must be in [0, 1]"
        );
        Self {
            space,
            current: initial,
            tolerance,
            mode,
            window: Vec::new(),
        }
    }

    /// The current hypothesis index.
    pub fn current_index(&self) -> usize {
        self.current
    }

    /// The current hypothesis FD.
    pub fn current_fd(&self) -> Fd {
        self.space.fd(self.current)
    }

    /// The shared hypothesis space.
    pub fn space(&self) -> &Arc<HypothesisSpace> {
        &self.space
    }

    /// Scores hypothesis `idx` on the current window; `None` when the
    /// window contains no pair relevant to the FD.
    pub fn score(&self, table: &Table, idx: usize) -> Option<f64> {
        let fd = self.space.fd(idx);
        let mut relevant = 0u32;
        let mut good = 0u32;
        for p in &self.window {
            let rel = pair_relation(table, &fd, p.a, p.b);
            if rel == PairRelation::Irrelevant {
                continue;
            }
            relevant += 1;
            let ok = match self.mode {
                ScoreMode::DataSatisfaction => rel == PairRelation::Satisfies,
                ScoreMode::LabelConsistency => (rel == PairRelation::Violates) == p.any_dirty(),
            };
            if ok {
                good += 1;
            }
        }
        (relevant > 0).then(|| f64::from(good) / f64::from(relevant))
    }

    /// One hypothesis-testing step: replace the window with the latest
    /// interaction's pairs, test the current hypothesis, and switch to the
    /// best-scoring hypothesis if the current one falls below tolerance.
    ///
    /// Returns `true` when the hypothesis changed.
    pub fn observe_interaction(&mut self, table: &Table, pairs: &[LabeledPair]) -> bool {
        self.window.clear();
        self.window.extend_from_slice(pairs);
        let current_score = self.score(table, self.current);
        let keep = match current_score {
            None => true, // nothing relevant observed: no grounds to reject
            Some(s) => s >= self.tolerance,
        };
        if keep {
            return false;
        }
        // Reject: move to the best hypothesis on the window (ties keep the
        // lowest index for determinism; the incumbent wins ties).
        let mut best = self.current;
        let mut best_score = current_score.unwrap_or(0.0);
        for idx in 0..self.space.len() {
            if idx == self.current {
                continue;
            }
            if let Some(s) = self.score(table, idx) {
                if s > best_score + 1e-12 {
                    best = idx;
                    best_score = s;
                }
            }
        }
        let changed = best != self.current;
        self.current = best;
        changed
    }

    /// Ranks all hypotheses by their window score, descending (unsatisfiable
    /// hypotheses last). Used as the HT *predictor* in the user-study
    /// analysis (MRR over top-k).
    pub fn ranked(&self, table: &Table) -> Vec<usize> {
        let mut scored: Vec<(usize, f64)> = (0..self.space.len())
            .map(|i| (i, self.score(table, i).unwrap_or(-1.0)))
            .collect();
        // Current hypothesis wins ties (stickiness).
        scored.sort_by(|a, b| {
            b.1.total_cmp(&a.1)
                .then_with(|| (a.0 != self.current).cmp(&(b.0 != self.current)))
                .then(a.0.cmp(&b.0))
        });
        scored.into_iter().map(|(i, _)| i).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use et_data::table::paper_table1;

    fn space() -> Arc<HypothesisSpace> {
        Arc::new(HypothesisSpace::from_fds([
            Fd::from_attrs([1], 2),    // Team -> City: 1 of 2 at-risk pairs satisfies
            Fd::from_attrs([2, 3], 4), // City,Role -> Apps: satisfied
            Fd::from_attrs([1], 4),    // Team -> Apps
        ]))
    }

    fn clean(a: usize, b: usize) -> LabeledPair {
        LabeledPair {
            a,
            b,
            dirty_a: false,
            dirty_b: false,
        }
    }

    #[test]
    fn keeps_hypothesis_above_tolerance() {
        let t = paper_table1();
        let mut ht = HypothesisTester::new(space(), 1, 0.6, ScoreMode::DataSatisfaction);
        // (t2,t3) satisfies City,Role -> Apps.
        let changed = ht.observe_interaction(&t, &[clean(1, 2)]);
        assert!(!changed);
        assert_eq!(ht.current_index(), 1);
    }

    #[test]
    fn rejects_and_switches_to_best() {
        let t = paper_table1();
        // Start believing Team -> City; show it the violating Lakers pair
        // plus evidence for City,Role -> Apps.
        let mut ht = HypothesisTester::new(space(), 0, 0.6, ScoreMode::DataSatisfaction);
        let changed = ht.observe_interaction(&t, &[clean(0, 1), clean(1, 2)]);
        assert!(changed);
        assert_eq!(ht.current_index(), 1, "switches to the satisfied FD");
    }

    #[test]
    fn no_relevant_evidence_keeps_hypothesis() {
        let t = paper_table1();
        let mut ht = HypothesisTester::new(space(), 0, 0.9, ScoreMode::DataSatisfaction);
        // (t1, t5): irrelevant to every FD in the space.
        let changed = ht.observe_interaction(&t, &[clean(0, 4)]);
        assert!(!changed);
    }

    #[test]
    fn label_consistency_mode() {
        let t = paper_table1();
        let mut ht = HypothesisTester::new(space(), 0, 0.9, ScoreMode::LabelConsistency);
        // The Lakers violation is labeled dirty: consistent with Team -> City.
        let changed = ht.observe_interaction(
            &t,
            &[LabeledPair {
                a: 0,
                b: 1,
                dirty_a: true,
                dirty_b: true,
            }],
        );
        assert!(!changed, "explained violation is consistent");
        assert_eq!(ht.score(&t, 0), Some(1.0));
        // The same pair labeled clean is inconsistent.
        let changed = ht.observe_interaction(&t, &[clean(0, 1)]);
        assert!(changed || ht.score(&t, 0) == Some(0.0));
    }

    #[test]
    fn ranked_puts_best_first() {
        let t = paper_table1();
        let mut ht = HypothesisTester::new(space(), 2, 0.6, ScoreMode::DataSatisfaction);
        let _ = ht.observe_interaction(&t, &[clean(0, 1), clean(1, 2), clean(2, 3)]);
        let ranked = ht.ranked(&t);
        assert_eq!(ranked.len(), 3);
        // City,Role -> Apps has perfect satisfaction on the window.
        assert_eq!(ranked[0], ht.current_index());
    }

    #[test]
    fn window_is_replaced_not_accumulated() {
        let t = paper_table1();
        let mut ht = HypothesisTester::new(space(), 0, 0.6, ScoreMode::DataSatisfaction);
        let _ = ht.observe_interaction(&t, &[clean(0, 1)]); // violation seen
        let _ = ht.observe_interaction(&t, &[clean(2, 3)]); // Bulls satisfy
                                                            // Window now only contains the satisfying pair.
        assert_eq!(ht.score(&t, 0), Some(1.0));
    }
}
