//! Belief snapshots: dump and restore a belief as CSV text.
//!
//! Sessions can checkpoint agent state for later analysis (which FDs moved,
//! when) without any serialization dependency.

use std::sync::Arc;

use et_fd::{Fd, HypothesisSpace};

use crate::belief::Belief;
use crate::beta::Beta;

/// Serialises a belief as CSV: `fd,alpha,beta,mean`.
///
/// The FD is rendered in an index form with `+`-joined determinants
/// (`0+2->3`) so the field is comma-free and schema-independent.
pub fn to_csv(belief: &Belief) -> String {
    let mut out = String::from("fd,alpha,beta,mean\n");
    for (i, fd) in belief.space().iter() {
        let d = belief.dist(i);
        let lhs: Vec<String> = fd.lhs.iter().map(|a| a.to_string()).collect();
        out.push_str(&format!(
            "{}->{},{},{},{}\n",
            lhs.join("+"),
            fd.rhs,
            d.alpha,
            d.beta,
            d.mean()
        ));
    }
    out
}

/// Errors raised by [`from_csv`].
#[derive(Debug, Clone, PartialEq)]
pub enum BeliefParseError {
    /// Missing or malformed header.
    Header,
    /// A record was malformed.
    Record {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
}

impl std::fmt::Display for BeliefParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BeliefParseError::Header => write!(f, "missing belief CSV header"),
            BeliefParseError::Record { line, reason } => {
                write!(f, "line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for BeliefParseError {}

/// Restores a belief from [`to_csv`] output. The hypothesis space is
/// reconstructed from the FD column (order preserved).
pub fn from_csv(text: &str) -> Result<Belief, BeliefParseError> {
    let mut lines = text.lines();
    let header = lines.next().ok_or(BeliefParseError::Header)?;
    if header.trim() != "fd,alpha,beta,mean" {
        return Err(BeliefParseError::Header);
    }
    let mut fds = Vec::new();
    let mut params = Vec::new();
    for (i, line) in lines.enumerate() {
        let line_no = i + 2;
        if line.trim().is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split(',').collect();
        if parts.len() != 4 {
            return Err(BeliefParseError::Record {
                line: line_no,
                reason: format!("expected 4 fields, got {}", parts.len()),
            });
        }
        let fd = parse_fd(parts[0]).ok_or_else(|| BeliefParseError::Record {
            line: line_no,
            reason: format!("bad FD `{}`", parts[0]),
        })?;
        let alpha: f64 = parts[1].parse().map_err(|e| BeliefParseError::Record {
            line: line_no,
            reason: format!("alpha: {e}"),
        })?;
        let beta: f64 = parts[2].parse().map_err(|e| BeliefParseError::Record {
            line: line_no,
            reason: format!("beta: {e}"),
        })?;
        if alpha <= 0.0 || beta <= 0.0 {
            return Err(BeliefParseError::Record {
                line: line_no,
                reason: "non-positive Beta parameters".into(),
            });
        }
        fds.push(fd);
        params.push(Beta::new(alpha, beta));
    }
    if fds.is_empty() {
        return Err(BeliefParseError::Header);
    }
    let space = Arc::new(HypothesisSpace::from_fds(fds));
    Ok(Belief::new(space, params))
}

/// Parses the `0+2->3` rendering used by [`to_csv`].
fn parse_fd(text: &str) -> Option<Fd> {
    let (lhs, rhs) = text.split_once("->")?;
    let attrs: Option<Vec<u16>> = lhs
        .trim()
        .split('+')
        .map(|a| a.trim().parse::<u16>().ok())
        .collect();
    let rhs: u16 = rhs.trim().parse().ok()?;
    let attrs = attrs?;
    if attrs.is_empty() {
        return None;
    }
    Some(Fd::from_attrs(attrs, rhs))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_belief() -> Belief {
        let space = Arc::new(HypothesisSpace::from_fds([
            Fd::from_attrs([0], 1),
            Fd::from_attrs([0, 2], 3),
        ]));
        Belief::new(space, vec![Beta::new(3.5, 1.5), Beta::new(10.0, 40.0)])
    }

    #[test]
    fn roundtrip() -> Result<(), BeliefParseError> {
        let b = sample_belief();
        let csv = to_csv(&b);
        let b2 = from_csv(&csv)?;
        assert_eq!(b2.len(), b.len());
        for i in 0..b.len() {
            assert_eq!(b2.space().fd(i), b.space().fd(i));
            assert!((b2.dist(i).alpha - b.dist(i).alpha).abs() < 1e-12);
            assert!((b2.dist(i).beta - b.dist(i).beta).abs() < 1e-12);
        }
        Ok(())
    }

    #[test]
    fn rejects_bad_header() {
        assert_eq!(from_csv("nope\n").unwrap_err(), BeliefParseError::Header);
        assert_eq!(from_csv("").unwrap_err(), BeliefParseError::Header);
    }

    #[test]
    fn rejects_bad_records() {
        let bad = "fd,alpha,beta,mean\n0->1,x,2,0.5\n";
        assert!(matches!(
            from_csv(bad).unwrap_err(),
            BeliefParseError::Record { line: 2, .. }
        ));
        let neg = "fd,alpha,beta,mean\n0->1,-1,2,0.5\n";
        assert!(matches!(
            from_csv(neg).unwrap_err(),
            BeliefParseError::Record { .. }
        ));
        let short = "fd,alpha,beta,mean\n0->1,1\n";
        assert!(from_csv(short).is_err());
    }

    #[test]
    fn parse_fd_forms() {
        assert_eq!(parse_fd("0->1"), Some(Fd::from_attrs([0], 1)));
        assert_eq!(parse_fd("0+2->3"), Some(Fd::from_attrs([0, 2], 3)));
        assert_eq!(parse_fd(" 0 + 2 -> 3 "), Some(Fd::from_attrs([0, 2], 3)));
        assert_eq!(parse_fd("junk"), None);
        assert_eq!(parse_fd("->1"), None);
    }
}
