//! Prior beliefs — the four families of the paper's empirical study plus
//! the user-study prior construction of §A.2.
//!
//! * **Uniform-d** — every FD starts at confidence `d` (the study uses
//!   `Uniform-0.9` for the uninformed learner).
//! * **Random** — every FD's confidence is drawn uniformly from `[0, 1]`.
//! * **Data-estimate** — confidence is `1 − violation rate` computed on the
//!   (dirty) unlabeled dataset, i.e. the prior of a learner that treats the
//!   data as clean — "often used in practice".
//! * **UserSpecified** — the user-study prior: the declared FD gets mean
//!   ε = 0.85, subset/superset-related FDs 0.8, everything else 0.15, all
//!   with σ = 0.05.

use std::sync::Arc;

use et_data::Table;
use et_fd::{g1_of, Fd, HypothesisSpace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::belief::Belief;
use crate::beta::Beta;

/// Which prior family to build.
#[derive(Debug, Clone)]
pub enum PriorSpec {
    /// All FDs at confidence `d`.
    Uniform {
        /// The shared confidence.
        d: f64,
    },
    /// Per-FD confidence drawn uniformly from `[0, 1]`.
    Random {
        /// RNG seed.
        seed: u64,
    },
    /// Confidence = `1 − violation rate` on the unlabeled data.
    DataEstimate,
    /// The §A.2 user prior around a declared FD.
    UserSpecified {
        /// The FD the user declared most plausible.
        fd: Fd,
    },
}

/// Numeric knobs of prior construction; defaults are the paper's (§A.2).
#[derive(Debug, Clone)]
pub struct PriorConfig {
    /// Standard deviation of every prior Beta (paper: 0.05).
    pub std: f64,
    /// Mean for the user's declared FD (paper: ε = 0.85).
    pub user_fd_mean: f64,
    /// Mean for subset/superset-related FDs (paper: 0.8).
    pub related_mean: f64,
    /// Mean for all other FDs (paper: 0.15).
    pub other_mean: f64,
    /// Scale applied to pseudo-counts after mean/σ inversion: < 1 weakens
    /// the prior against evidence without changing its means. `1.0`
    /// reproduces the paper's σ exactly.
    pub strength: f64,
}

impl Default for PriorConfig {
    fn default() -> Self {
        Self {
            std: 0.05,
            user_fd_mean: 0.85,
            related_mean: 0.8,
            other_mean: 0.15,
            strength: 1.0,
        }
    }
}

impl PriorConfig {
    /// A weaker-prior configuration for fast-converging demos/tests.
    pub fn weak() -> Self {
        Self {
            strength: 0.2,
            ..Self::default()
        }
    }
}

/// Builds a belief from a prior family.
///
/// `table` is only inspected by [`PriorSpec::DataEstimate`]; other families
/// ignore it.
pub fn build_prior(
    spec: &PriorSpec,
    cfg: &PriorConfig,
    space: &Arc<HypothesisSpace>,
    table: &Table,
) -> Belief {
    let beta_for = |mean: f64| Beta::from_mean_std(mean, cfg.std).scaled(cfg.strength);
    let params: Vec<Beta> = match spec {
        PriorSpec::Uniform { d } => (0..space.len()).map(|_| beta_for(*d)).collect(),
        PriorSpec::Random { seed } => {
            let mut rng = StdRng::seed_from_u64(*seed ^ 0x5851_f42d_4c95_7f2d);
            (0..space.len())
                .map(|_| beta_for(rng.gen_range(0.0..=1.0)))
                .collect()
        }
        PriorSpec::DataEstimate => space
            .fds()
            .iter()
            .map(|fd| beta_for(g1_of(table, fd).confidence()))
            .collect(),
        PriorSpec::UserSpecified { fd } => space
            .fds()
            .iter()
            .map(|candidate| {
                let mean = if candidate == fd {
                    cfg.user_fd_mean
                } else if candidate.is_related_to(fd) {
                    cfg.related_mean
                } else {
                    cfg.other_mean
                };
                beta_for(mean)
            })
            .collect(),
    };
    Belief::new(space.clone(), params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use et_data::gen::omdb;
    use et_data::{inject_errors, InjectConfig};

    fn setup() -> (Arc<HypothesisSpace>, Table) {
        let mut ds = omdb(200, 5);
        let specs = ds.exact_fds.clone();
        let _ = inject_errors(
            &mut ds.table,
            &specs,
            &[],
            &InjectConfig::with_degree(0.10, 1),
        );
        let pinned: Vec<Fd> = specs.iter().map(Fd::from_spec).collect();
        let space = Arc::new(HypothesisSpace::capped(&ds.table, 3, 20, 3, &pinned));
        (space, ds.table)
    }

    #[test]
    fn uniform_prior() {
        let (space, table) = setup();
        let b = build_prior(
            &PriorSpec::Uniform { d: 0.9 },
            &PriorConfig::default(),
            &space,
            &table,
        );
        for i in 0..b.len() {
            assert!((b.confidence(i) - 0.9).abs() < 1e-9);
        }
    }

    #[test]
    fn random_prior_deterministic_and_varied() {
        let (space, table) = setup();
        let cfg = PriorConfig::default();
        let a = build_prior(&PriorSpec::Random { seed: 3 }, &cfg, &space, &table);
        let b = build_prior(&PriorSpec::Random { seed: 3 }, &cfg, &space, &table);
        let c = build_prior(&PriorSpec::Random { seed: 4 }, &cfg, &space, &table);
        assert_eq!(a.confidences(), b.confidences());
        assert_ne!(a.confidences(), c.confidences());
        let spread = a
            .confidences()
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
            - a.confidences()
                .iter()
                .cloned()
                .fold(f64::INFINITY, f64::min);
        assert!(spread > 0.3, "random prior should vary, spread {spread}");
    }

    #[test]
    fn data_estimate_tracks_violation_rates() {
        let (space, table) = setup();
        let b = build_prior(
            &PriorSpec::DataEstimate,
            &PriorConfig::default(),
            &space,
            &table,
        );
        for (i, fd) in space.iter() {
            let expect = g1_of(&table, &fd).confidence().clamp(0.01, 0.99);
            assert!(
                (b.confidence(i) - expect).abs() < 0.02,
                "fd {fd}: {} vs {expect}",
                b.confidence(i)
            );
        }
    }

    #[test]
    fn user_prior_matches_paper_means() {
        let (space, table) = setup();
        let declared = space.fd(0);
        let b = build_prior(
            &PriorSpec::UserSpecified { fd: declared },
            &PriorConfig::default(),
            &space,
            &table,
        );
        assert!((b.confidence(0) - 0.85).abs() < 1e-9);
        for (i, fd) in space.iter().skip(1) {
            let expect = if fd.is_related_to(&declared) {
                0.8
            } else {
                0.15
            };
            assert!(
                (b.confidence(i) - expect).abs() < 1e-9,
                "fd {fd} mean {}",
                b.confidence(i)
            );
        }
        // Declared FD should be the prior's top hypothesis.
        assert_eq!(b.top_fd().0, 0);
    }

    #[test]
    fn strength_scales_pseudo_counts() {
        let (space, table) = setup();
        let strong = build_prior(
            &PriorSpec::Uniform { d: 0.5 },
            &PriorConfig::default(),
            &space,
            &table,
        );
        let weak = build_prior(
            &PriorSpec::Uniform { d: 0.5 },
            &PriorConfig::weak(),
            &space,
            &table,
        );
        assert!(weak.dist(0).pseudo_count() < strong.dist(0).pseudo_count());
        assert!((weak.confidence(0) - strong.confidence(0)).abs() < 1e-9);
    }
}
