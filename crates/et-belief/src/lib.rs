//! Belief substrate: how agents represent and revise what they know.
//!
//! Both agents of the exploratory-training game maintain a *belief* — a
//! distribution over the confidence of every FD in a hypothesis space
//! (paper §2, §C.1). Following the paper's configuration:
//!
//! * [`Beta`] — each FD's confidence is a Beta distribution, constructed
//!   from mean/standard-deviation exactly as §A.2 does (ε = 0.85 for the
//!   user's declared FD, 0.15 for unrelated FDs, 0.8 for subset/superset
//!   FDs, σ = 0.05).
//! * [`Belief`] — the FD-indexed vector of Betas with ranking, MAE distance
//!   (the convergence metric of Figures 1, 3–6), and update plumbing.
//! * [`priors`] — the four prior families of the empirical study
//!   (Uniform-d, Random, Data-estimate, user-specified).
//! * [`update`] — the shared FP/Bayesian evidence rule: clean satisfying
//!   pairs support an FD, clean violating pairs count against it, violations
//!   explained by a dirty label weakly support it.
//! * [`hypothesis_testing`] — the paper's alternative human-learning model:
//!   keep the current hypothesis until it fails to explain recent data, then
//!   switch to the best-scoring alternative.

#![warn(missing_docs)]

pub mod belief;
pub mod beta;
pub mod divergence;
pub mod hypothesis_testing;
pub mod io;
pub mod priors;
pub mod update;

pub use belief::Belief;
pub use beta::Beta;
pub use divergence::{belief_j, belief_kl, beta_kl, brier_score};
pub use hypothesis_testing::{HypothesisTester, ScoreMode};
pub use priors::{build_prior, PriorConfig, PriorSpec};
pub use update::{
    update_from_labeled_pair, update_from_labeled_pairs, update_from_pair_relations,
    EvidenceConfig, LabeledPair,
};
