//! Agent beliefs: one Beta per FD of a shared hypothesis space.

use std::sync::Arc;

use et_fd::{invariant, Fd, HypothesisSpace};

use crate::beta::Beta;

/// An agent's belief about the target model: for every FD of the hypothesis
/// space, a Beta distribution over the probability that the FD holds.
#[derive(Debug, Clone)]
pub struct Belief {
    space: Arc<HypothesisSpace>,
    params: Vec<Beta>,
}

impl Belief {
    /// Builds a belief from explicit per-FD distributions.
    ///
    /// # Panics
    /// Panics when `params.len()` differs from the space size.
    pub fn new(space: Arc<HypothesisSpace>, params: Vec<Beta>) -> Self {
        assert_eq!(
            params.len(),
            space.len(),
            "one Beta per hypothesis-space FD required"
        );
        Self { space, params }
    }

    /// A belief assigning every FD the same distribution.
    pub fn constant(space: Arc<HypothesisSpace>, b: Beta) -> Self {
        let params = vec![b; space.len()];
        Self { space, params }
    }

    /// The shared hypothesis space.
    pub fn space(&self) -> &Arc<HypothesisSpace> {
        &self.space
    }

    /// Number of FDs covered.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when the belief covers no FDs (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// The distribution for FD `idx`.
    pub fn dist(&self, idx: usize) -> &Beta {
        &self.params[idx]
    }

    /// Mutable distribution for FD `idx`.
    pub fn dist_mut(&mut self, idx: usize) -> &mut Beta {
        &mut self.params[idx]
    }

    /// The believed confidence (posterior mean) that FD `idx` holds.
    pub fn confidence(&self, idx: usize) -> f64 {
        self.params[idx].mean()
    }

    /// The full confidence vector, FD-indexed.
    pub fn confidences(&self) -> Vec<f64> {
        self.params.iter().map(Beta::mean).collect()
    }

    /// Risk-adjusted confidences: `mean − z·std`, clamped to `[0, 1]`.
    ///
    /// Acting (labeling, detecting) on the lower credible bound makes
    /// barely-evidenced hypotheses — whose posteriors are still wide —
    /// carry little weight, while well-observed FDs are hardly discounted.
    ///
    /// # Panics
    /// Panics on a negative `z`.
    pub fn lower_confidence_bounds(&self, z: f64) -> Vec<f64> {
        assert!(z >= 0.0, "z must be non-negative");
        self.params
            .iter()
            .map(|b| (b.mean() - z * b.std()).clamp(0.0, 1.0))
            .collect()
    }

    /// Bayesian evidence for FD `idx`: `successes` supporting observations,
    /// `failures` contradicting ones.
    pub fn observe(&mut self, idx: usize, successes: f64, failures: f64) {
        self.params[idx].observe(successes, failures);
        invariant!(
            (0.0..=1.0).contains(&self.params[idx].mean()),
            "confidence for FD {idx} escaped [0, 1] after observe"
        );
    }

    /// Discounts every distribution's pseudo-counts by `lambda` ∈ (0, 1] —
    /// *discounted fictitious play* (Fudenberg & Levine; Young 2004):
    /// recent observations dominate, old evidence decays geometrically.
    /// Means are preserved; certainty shrinks. The paper's introduction
    /// motivates exactly this for annotators facing "rapid and frequent
    /// data evolution".
    ///
    /// # Panics
    /// Panics when `lambda` is outside `(0, 1]`.
    pub fn discount(&mut self, lambda: f64) {
        assert!(
            lambda > 0.0 && lambda <= 1.0,
            "discount factor must be in (0, 1], got {lambda}"
        );
        if lambda >= 1.0 {
            return;
        }
        for p in &mut self.params {
            // Keep a minimal floor so the Beta stays proper.
            let scaled = p.scaled(lambda);
            *p = crate::beta::Beta::new(scaled.alpha.max(0.05), scaled.beta.max(0.05));
        }
        invariant!(
            self.params.iter().all(|p| p.alpha > 0.0
                && p.beta > 0.0
                && p.alpha.is_finite()
                && p.beta.is_finite()),
            "discount left an improper Beta"
        );
    }

    /// The `k` most-confident FDs as `(index, confidence)`, descending, ties
    /// broken by index for determinism.
    pub fn top_k(&self, k: usize) -> Vec<(usize, f64)> {
        let mut ranked: Vec<(usize, f64)> =
            self.params.iter().map(Beta::mean).enumerate().collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked
    }

    /// The single most-confident FD.
    pub fn top_fd(&self) -> (usize, Fd) {
        let (idx, _) = self.top_k(1)[0];
        (idx, self.space.fd(idx))
    }

    /// The 1-based rank of FD `idx` when FDs are sorted by descending
    /// confidence (the `p` of the paper's Reciprocal Rank metric).
    pub fn rank_of(&self, idx: usize) -> usize {
        let c = self.confidence(idx);
        1 + self
            .params
            .iter()
            .map(Beta::mean)
            .enumerate()
            .filter(|&(i, m)| m > c || (m == c && i < idx))
            .count()
    }

    /// Mean absolute error between two beliefs' confidence vectors — the
    /// convergence metric of the paper's Figures 1 and 3–6.
    ///
    /// # Panics
    /// Panics when the beliefs cover different space sizes.
    pub fn mae(&self, other: &Belief) -> f64 {
        assert_eq!(
            self.len(),
            other.len(),
            "beliefs must share a hypothesis space"
        );
        let sum: f64 = self
            .params
            .iter()
            .zip(&other.params)
            .map(|(a, b)| (a.mean() - b.mean()).abs())
            .sum();
        sum / self.len() as f64
    }

    /// Largest confidence move between two snapshots of (presumably) the
    /// same agent's belief — used for stability/equilibrium detection.
    ///
    /// # Panics
    /// Panics when the beliefs cover different space sizes.
    pub fn max_drift(&self, other: &Belief) -> f64 {
        assert_eq!(self.len(), other.len());
        self.params
            .iter()
            .zip(&other.params)
            .map(|(a, b)| (a.mean() - b.mean()).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use et_fd::Fd;

    fn space3() -> Arc<HypothesisSpace> {
        Arc::new(HypothesisSpace::from_fds([
            Fd::from_attrs([0], 1),
            Fd::from_attrs([0], 2),
            Fd::from_attrs([1], 2),
        ]))
    }

    #[test]
    fn confidence_and_ranking() {
        let s = space3();
        let b = Belief::new(
            s,
            vec![
                Beta::from_mean_std(0.2, 0.05),
                Beta::from_mean_std(0.9, 0.05),
                Beta::from_mean_std(0.5, 0.05),
            ],
        );
        assert!((b.confidence(1) - 0.9).abs() < 1e-9);
        let top = b.top_k(2);
        assert_eq!(top[0].0, 1);
        assert_eq!(top[1].0, 2);
        assert_eq!(b.rank_of(1), 1);
        assert_eq!(b.rank_of(2), 2);
        assert_eq!(b.rank_of(0), 3);
        assert_eq!(b.top_fd().0, 1);
    }

    #[test]
    fn rank_ties_break_by_index() {
        let s = space3();
        let b = Belief::constant(s, Beta::uniform());
        assert_eq!(b.rank_of(0), 1);
        assert_eq!(b.rank_of(1), 2);
        assert_eq!(b.rank_of(2), 3);
    }

    #[test]
    fn mae_and_drift() {
        let s = space3();
        let a = Belief::constant(s.clone(), Beta::from_mean_std(0.5, 0.05));
        let mut b = a.clone();
        assert_eq!(a.mae(&b), 0.0);
        b.observe(0, 100.0, 0.0); // push fd0 confidence up
        let mae = a.mae(&b);
        assert!(mae > 0.0 && mae < 0.2);
        assert!(a.max_drift(&b) > mae, "max >= mean on a single change");
    }

    #[test]
    fn observe_changes_only_target() {
        let s = space3();
        let mut b = Belief::constant(s, Beta::uniform());
        b.observe(1, 5.0, 0.0);
        assert!(b.confidence(1) > b.confidence(0));
        assert_eq!(b.confidence(0), b.confidence(2));
    }

    #[test]
    #[should_panic(expected = "one Beta per")]
    fn size_mismatch_rejected() {
        let s = space3();
        let _ = Belief::new(s, vec![Beta::uniform()]);
    }
}

#[cfg(test)]
mod discount_tests {
    use super::*;
    use crate::beta::Beta;
    use et_fd::{Fd, HypothesisSpace};

    #[test]
    fn discount_preserves_means_and_widens() {
        let space = Arc::new(HypothesisSpace::from_fds([
            Fd::from_attrs([0], 1),
            Fd::from_attrs([1], 0),
        ]));
        let mut b = Belief::new(space, vec![Beta::new(80.0, 20.0), Beta::new(5.0, 15.0)]);
        let means = b.confidences();
        let var_before: Vec<f64> = (0..2).map(|i| b.dist(i).variance()).collect();
        b.discount(0.5);
        for (m, m2) in means.iter().zip(b.confidences()) {
            assert!((m - m2).abs() < 1e-9, "mean moved: {m} -> {m2}");
        }
        for (i, v) in var_before.iter().enumerate() {
            assert!(b.dist(i).variance() > *v, "variance should grow");
        }
        // Repeated discounting floors out instead of dying.
        for _ in 0..50 {
            b.discount(0.5);
        }
        assert!(b.dist(0).alpha >= 0.05 && b.dist(0).beta >= 0.05);
    }

    #[test]
    fn unit_discount_is_noop() {
        let space = Arc::new(HypothesisSpace::from_fds([Fd::from_attrs([0], 1)]));
        let mut b = Belief::new(space, vec![Beta::new(3.0, 7.0)]);
        b.discount(1.0);
        assert_eq!(b.dist(0).alpha, 3.0);
        assert_eq!(b.dist(0).beta, 7.0);
    }

    #[test]
    #[should_panic(expected = "discount factor")]
    fn invalid_discount_rejected() {
        let space = Arc::new(HypothesisSpace::from_fds([Fd::from_attrs([0], 1)]));
        let mut b = Belief::new(space, vec![Beta::uniform()]);
        b.discount(0.0);
    }
}
