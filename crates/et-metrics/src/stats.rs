//! Statistical utilities for experiment reporting: bootstrap confidence
//! intervals over per-seed results and rank correlation between method
//! orderings.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A bootstrap percentile confidence interval for the mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapCi {
    /// Sample mean.
    pub mean: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
}

/// Percentile-bootstrap CI of the mean of `samples` at the given
/// `confidence` (e.g. 0.95), using `resamples` bootstrap draws.
///
/// # Panics
/// Panics on empty input or a confidence outside `(0, 1)`.
pub fn bootstrap_mean_ci(
    samples: &[f64],
    confidence: f64,
    resamples: usize,
    seed: u64,
) -> BootstrapCi {
    assert!(!samples.is_empty(), "need at least one sample");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1)"
    );
    assert!(resamples >= 10, "too few resamples");
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0b4c_a1f0_5eed_0001);
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let m: f64 = (0..samples.len())
            .map(|_| samples[rng.gen_range(0..samples.len())])
            .sum::<f64>()
            / samples.len() as f64;
        means.push(m);
    }
    means.sort_by(f64::total_cmp);
    let alpha = (1.0 - confidence) / 2.0;
    let lo_idx = ((resamples as f64 * alpha) as usize).min(resamples - 1);
    let hi_idx = ((resamples as f64 * (1.0 - alpha)) as usize).min(resamples - 1);
    BootstrapCi {
        mean,
        lo: means[lo_idx],
        hi: means[hi_idx],
    }
}

/// Kendall's τ-a between two equal-length score vectors: how consistently
/// two metrics (or two runs) order the same items. 1 = identical order,
/// −1 = reversed, 0 = unrelated. Tied pairs count as discordant-neutral
/// (τ-a denominator).
///
/// # Panics
/// Panics when the slices differ in length or have fewer than two items.
pub fn kendall_tau(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vectors must align");
    assert!(a.len() >= 2, "need at least two items to rank");
    let n = a.len();
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let da = a[i] - a[j];
            let db = b[i] - b[j];
            let s = da * db;
            if s > 0.0 {
                concordant += 1;
            } else if s < 0.0 {
                discordant += 1;
            }
        }
    }
    let total = (n * (n - 1) / 2) as f64;
    (concordant - discordant) as f64 / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ci_brackets_the_mean() {
        let samples = [0.2, 0.25, 0.22, 0.28, 0.21, 0.24];
        let ci = bootstrap_mean_ci(&samples, 0.95, 2000, 1);
        assert!(ci.lo <= ci.mean && ci.mean <= ci.hi);
        assert!(ci.lo >= 0.2 - 1e-12 && ci.hi <= 0.28 + 1e-12);
    }

    #[test]
    fn ci_narrows_with_tight_data() {
        let tight = [0.5, 0.5, 0.5, 0.5];
        let ci = bootstrap_mean_ci(&tight, 0.95, 500, 2);
        assert!((ci.hi - ci.lo).abs() < 1e-12);
        assert_eq!(ci.mean, 0.5);
    }

    #[test]
    fn ci_deterministic_per_seed() {
        let samples = [1.0, 2.0, 3.0, 4.0];
        let a = bootstrap_mean_ci(&samples, 0.9, 500, 7);
        let b = bootstrap_mean_ci(&samples, 0.9, 500, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn tau_extremes() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert!((kendall_tau(&a, &b) - 1.0).abs() < 1e-12);
        let rev = [4.0, 3.0, 2.0, 1.0];
        assert!((kendall_tau(&a, &rev) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn tau_partial_agreement() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 3.0, 2.0];
        // 2 concordant, 1 discordant of 3 pairs.
        assert!((kendall_tau(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn tau_bounded_and_symmetric(
            a in proptest::collection::vec(-10.0f64..10.0, 2..20),
            seed in any::<u64>()
        ) {
            // Build b as a seeded shuffle-ish transform of a.
            let b: Vec<f64> = a.iter().enumerate()
                .map(|(i, v)| v * if (seed >> (i % 60)) & 1 == 1 { 1.0 } else { -1.0 })
                .collect();
            let t = kendall_tau(&a, &b);
            prop_assert!((-1.0..=1.0).contains(&t));
            prop_assert!((kendall_tau(&b, &a) - t).abs() < 1e-12);
            prop_assert!((kendall_tau(&a, &a) - 1.0).abs() < 1e-12
                         || a.windows(2).any(|w| w[0] == w[1]));
        }

        #[test]
        fn ci_always_brackets(samples in proptest::collection::vec(0.0f64..1.0, 2..15)) {
            let ci = bootstrap_mean_ci(&samples, 0.9, 200, 3);
            prop_assert!(ci.lo <= ci.mean + 1e-9);
            prop_assert!(ci.hi >= ci.mean - 1e-9);
        }
    }
}
