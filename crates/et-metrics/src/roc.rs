//! Threshold-free detector evaluation: ROC AUC and average precision.
//!
//! Figure 7 thresholds the detector at 0.5; ranking metrics evaluate the
//! scores themselves, which is how modern error-detection work (HoloDetect
//! et al.) reports quality and removes the threshold knob from comparisons.

/// Area under the ROC curve for scores against binary ground truth
/// (`true` = positive/dirty). Computed via the Mann–Whitney statistic with
/// midrank tie handling. Returns 0.5 when either class is empty
/// (no ranking information).
///
/// # Panics
/// Panics when the slices differ in length.
pub fn roc_auc(scores: &[f64], truth: &[bool]) -> f64 {
    assert_eq!(scores.len(), truth.len(), "scores/labels length mismatch");
    let pos = truth.iter().filter(|&&t| t).count();
    let neg = truth.len() - pos;
    if pos == 0 || neg == 0 {
        return 0.5;
    }
    // Midranks.
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let mut ranks = vec![0.0; scores.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = midrank;
        }
        i = j + 1;
    }
    let rank_sum: f64 = truth
        .iter()
        .zip(&ranks)
        .filter(|(&t, _)| t)
        .map(|(_, &r)| r)
        .sum();
    (rank_sum - pos as f64 * (pos as f64 + 1.0) / 2.0) / (pos as f64 * neg as f64)
}

/// Average precision (area under the precision–recall curve, step-wise):
/// the mean of precision values at each true positive, walking thresholds
/// from the highest score down. Returns 0 when there are no positives.
///
/// # Panics
/// Panics when the slices differ in length.
pub fn average_precision(scores: &[f64], truth: &[bool]) -> f64 {
    assert_eq!(scores.len(), truth.len(), "scores/labels length mismatch");
    let pos = truth.iter().filter(|&&t| t).count();
    if pos == 0 {
        return 0.0;
    }
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    // Descending score; ties broken by putting negatives first so ties are
    // scored pessimistically (deterministic lower bound).
    idx.sort_by(|&a, &b| {
        scores[b]
            .total_cmp(&scores[a])
            .then_with(|| truth[a].cmp(&truth[b]))
    });
    let mut tp = 0usize;
    let mut seen = 0usize;
    let mut ap = 0.0;
    for &i in &idx {
        seen += 1;
        if truth[i] {
            tp += 1;
            ap += tp as f64 / seen as f64;
        }
    }
    ap / pos as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_separation() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let truth = [true, true, false, false];
        assert_eq!(roc_auc(&scores, &truth), 1.0);
        assert_eq!(average_precision(&scores, &truth), 1.0);
    }

    #[test]
    fn inverted_separation() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let truth = [true, true, false, false];
        assert_eq!(roc_auc(&scores, &truth), 0.0);
    }

    #[test]
    fn constant_scores_are_chance() {
        let scores = [0.5; 6];
        let truth = [true, false, true, false, true, false];
        assert!((roc_auc(&scores, &truth) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn known_partial_auc() {
        // One inversion among 2x2: AUC = 3/4.
        let scores = [0.9, 0.4, 0.6, 0.1];
        let truth = [true, true, false, false];
        assert!((roc_auc(&scores, &truth) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn degenerate_classes() {
        assert_eq!(roc_auc(&[0.5, 0.7], &[true, true]), 0.5);
        assert_eq!(roc_auc(&[0.5, 0.7], &[false, false]), 0.5);
        assert_eq!(average_precision(&[0.5], &[false]), 0.0);
    }

    #[test]
    fn ap_penalises_early_false_positives() {
        let good = average_precision(&[0.9, 0.8, 0.1], &[true, false, false]);
        let bad = average_precision(&[0.8, 0.9, 0.1], &[true, false, false]);
        assert!(good > bad);
        assert_eq!(good, 1.0);
        assert_eq!(bad, 0.5);
    }

    proptest! {
        #[test]
        fn auc_bounded_and_flip_symmetric(
            scores in proptest::collection::vec(0.0f64..1.0, 2..40),
            seed in any::<u64>()
        ) {
            let truth: Vec<bool> = scores.iter().enumerate()
                .map(|(i, _)| (seed >> (i % 60)) & 1 == 1).collect();
            let auc = roc_auc(&scores, &truth);
            prop_assert!((0.0..=1.0).contains(&auc));
            // Negating the scores flips the AUC around 0.5 (when both
            // classes are present).
            let pos = truth.iter().filter(|&&t| t).count();
            if pos > 0 && pos < truth.len() {
                let negated: Vec<f64> = scores.iter().map(|s| -s).collect();
                prop_assert!((roc_auc(&negated, &truth) - (1.0 - auc)).abs() < 1e-9);
            }
        }

        #[test]
        fn ap_bounded(scores in proptest::collection::vec(0.0f64..1.0, 1..30),
                      seed in any::<u64>()) {
            let truth: Vec<bool> = scores.iter().enumerate()
                .map(|(i, _)| (seed >> (i % 60)) & 1 == 1).collect();
            let ap = average_precision(&scores, &truth);
            prop_assert!((0.0..=1.0).contains(&ap));
        }
    }
}
