//! Evaluation metrics for the exploratory-training experiments.
//!
//! * [`confusion`] — tuple-labeling precision/recall/F1 (Figure 7's metric:
//!   F1 of the learner's labeling on a 30% held-out test set).
//! * [`fd_f1`] — the F1 score of an FD against ground-truth clean tuples
//!   (§A.2), used by Table 3 (average f1-change between rounds) and the "+"
//!   discounting of Figure 2.
//! * [`rank`] — Reciprocal Rank and MRR@k, exact and subset/superset-
//!   discounted ("+") variants (Figure 2's metric).
//! * [`series`] — per-iteration series aggregation over seeds (mean ± std),
//!   plus convergence summaries (iterations-to-threshold, AUC) used when
//!   comparing the sampling methods of Figures 1 and 3–6.

#![warn(missing_docs)]

pub mod confusion;
pub mod fd_f1;
pub mod rank;
pub mod roc;
pub mod series;
pub mod stats;

pub use confusion::ConfusionMatrix;
pub use fd_f1::{fd_f1_score, FdScore};
pub use rank::{mrr, reciprocal_rank, reciprocal_rank_plus, RankOutcome};
pub use roc::{average_precision, roc_auc};
pub use series::{aggregate, auc, iterations_to_threshold, SeriesStats};
pub use stats::{bootstrap_mean_ci, kendall_tau, BootstrapCi};
