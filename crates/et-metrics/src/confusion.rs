//! Binary confusion matrices for dirty-tuple detection.
//!
//! Convention: *dirty* is the positive class, matching the paper's error-
//! detection evaluation.

/// Counts of a binary classifier's outcomes.
///
/// ```
/// use et_metrics::ConfusionMatrix;
///
/// let m = ConfusionMatrix::from_predictions(
///     &[true, true, false],  // predicted
///     &[true, false, false], // actual
/// );
/// assert_eq!(m.precision(), 0.5);
/// assert_eq!(m.recall(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfusionMatrix {
    /// Predicted dirty, actually dirty.
    pub tp: u64,
    /// Predicted dirty, actually clean.
    pub fp: u64,
    /// Predicted clean, actually dirty.
    pub fn_: u64,
    /// Predicted clean, actually clean.
    pub tn: u64,
}

impl ConfusionMatrix {
    /// Tallies predictions against ground truth (`true` = dirty).
    ///
    /// # Panics
    /// Panics when the slices differ in length.
    pub fn from_predictions(predicted: &[bool], actual: &[bool]) -> Self {
        assert_eq!(
            predicted.len(),
            actual.len(),
            "prediction/ground-truth length mismatch"
        );
        let mut m = Self::default();
        for (&p, &a) in predicted.iter().zip(actual) {
            match (p, a) {
                (true, true) => m.tp += 1,
                (true, false) => m.fp += 1,
                (false, true) => m.fn_ += 1,
                (false, false) => m.tn += 1,
            }
        }
        m
    }

    /// Adds another matrix's counts.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
        self.tn += other.tn;
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.fn_ + self.tn
    }

    /// Precision of the dirty class; `0` when nothing was predicted dirty.
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Recall of the dirty class; `0` when nothing is actually dirty.
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// Harmonic mean of precision and recall; `0` when both are `0`.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r <= 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.total())
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn tallies_correctly() {
        let pred = [true, true, false, false, true];
        let act = [true, false, true, false, true];
        let m = ConfusionMatrix::from_predictions(&pred, &act);
        assert_eq!(
            m,
            ConfusionMatrix {
                tp: 2,
                fp: 1,
                fn_: 1,
                tn: 1
            }
        );
        assert!((m.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.f1() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.accuracy() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases_are_zero_not_nan() {
        let empty = ConfusionMatrix::default();
        assert_eq!(empty.precision(), 0.0);
        assert_eq!(empty.recall(), 0.0);
        assert_eq!(empty.f1(), 0.0);
        assert_eq!(empty.accuracy(), 0.0);
        // All-clean predictions on all-clean data: no dirty class at all.
        let m = ConfusionMatrix::from_predictions(&[false; 4], &[false; 4]);
        assert_eq!(m.f1(), 0.0);
        assert_eq!(m.accuracy(), 1.0);
    }

    #[test]
    fn perfect_prediction() {
        let act = [true, false, true];
        let m = ConfusionMatrix::from_predictions(&act, &act);
        assert_eq!(m.f1(), 1.0);
        assert_eq!(m.accuracy(), 1.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ConfusionMatrix::from_predictions(&[true], &[true]);
        let b = ConfusionMatrix::from_predictions(&[false], &[true]);
        a.merge(&b);
        assert_eq!(a.tp, 1);
        assert_eq!(a.fn_, 1);
        assert_eq!(a.total(), 2);
    }

    proptest! {
        #[test]
        fn metrics_bounded(pred in proptest::collection::vec(any::<bool>(), 0..50),
                           seed in any::<u64>()) {
            let actual: Vec<bool> = pred.iter().enumerate()
                .map(|(i, _)| (seed >> (i % 64)) & 1 == 1).collect();
            let m = ConfusionMatrix::from_predictions(&pred, &actual);
            for v in [m.precision(), m.recall(), m.f1(), m.accuracy()] {
                prop_assert!((0.0..=1.0).contains(&v));
            }
            prop_assert_eq!(m.total() as usize, pred.len());
            // F1 lies between min and max of precision/recall when defined.
            if m.precision() > 0.0 && m.recall() > 0.0 {
                let lo = m.precision().min(m.recall());
                let hi = m.precision().max(m.recall());
                prop_assert!(m.f1() >= lo - 1e-12 && m.f1() <= hi + 1e-12);
            }
        }
    }
}
