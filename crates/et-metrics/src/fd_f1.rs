//! F1 score of an FD against ground-truth clean tuples (§A.2).
//!
//! Let `c(f)` be the set of tuples *compliant* with FD `f` (participating
//! in no violating pair) and `c_g` the ground-truth clean tuples. The paper
//! defines `precision = |c(f) ∩ c_g| / |c(f)|`; its recall formula reads
//! `|c(f)| / |c_g|`, which we take as a typo for the standard
//! `|c(f) ∩ c_g| / |c_g|` (the printed form can exceed 1). Both are
//! exposed; the F1 used across the workspace is the standard one.

use et_data::Table;
use et_fd::{Fd, HypothesisSpace, ViolationIndex};

/// Precision/recall/F1 of one FD against ground-truth clean tuples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FdScore {
    /// `|c(f) ∩ c_g| / |c(f)|`.
    pub precision: f64,
    /// Standard recall `|c(f) ∩ c_g| / |c_g|`.
    pub recall: f64,
    /// The paper's literal recall formula `|c(f)| / |c_g|` (may exceed 1).
    pub recall_paper: f64,
    /// Harmonic mean of `precision` and `recall`.
    pub f1: f64,
}

/// Scores `fd` on `table` against ground truth `clean` (`clean[row]` =
/// true when the row is genuinely clean).
///
/// # Panics
/// Panics when `clean.len() != table.nrows()`.
pub fn fd_f1_score(table: &Table, fd: &Fd, clean: &[bool]) -> FdScore {
    assert_eq!(clean.len(), table.nrows(), "ground-truth length mismatch");
    let space = HypothesisSpace::from_fds([*fd]);
    let idx = ViolationIndex::build(table, &space);
    let mut compliant = 0u64;
    let mut compliant_clean = 0u64;
    let mut clean_total = 0u64;
    #[allow(clippy::needless_range_loop)] // `row` feeds both the index and `clean`
    for row in 0..table.nrows() {
        let is_compliant = !idx.tuple_violates(0, row);
        if is_compliant {
            compliant += 1;
            if clean[row] {
                compliant_clean += 1;
            }
        }
        if clean[row] {
            clean_total += 1;
        }
    }
    let precision = div(compliant_clean, compliant);
    let recall = div(compliant_clean, clean_total);
    let recall_paper = div(compliant, clean_total);
    let f1 = if precision + recall <= 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    FdScore {
        precision,
        recall,
        recall_paper,
        f1,
    }
}

fn div(a: u64, b: u64) -> f64 {
    if b == 0 {
        0.0
    } else {
        a as f64 / b as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use et_data::gen::omdb;
    use et_data::table::paper_table1;
    use et_data::{inject_errors, InjectConfig};

    #[test]
    fn paper_table_scores() {
        let t = paper_table1();
        let fd = Fd::from_attrs([1], 2); // Team -> City; t1, t2 violate
                                         // Suppose t2 is the genuinely dirty tuple.
        let clean = [true, false, true, true, true];
        let s = fd_f1_score(&t, &fd, &clean);
        // c(f) = {t3, t4, t5} plus t1? t1 violates (pairs with t2) -> no.
        // c(f) = {t3, t4, t5}, all clean.
        assert_eq!(s.precision, 1.0);
        assert!((s.recall - 3.0 / 4.0).abs() < 1e-12);
        assert!((s.recall_paper - 3.0 / 4.0).abs() < 1e-12);
        assert!((s.f1 - 2.0 * 0.75 / 1.75).abs() < 1e-12);
    }

    #[test]
    fn true_fd_scores_high_after_injection() {
        let mut ds = omdb(250, 7);
        let specs = ds.exact_fds.clone();
        let inj = inject_errors(
            &mut ds.table,
            &specs,
            &[],
            &InjectConfig::with_degree(0.15, 2),
        );
        let clean: Vec<bool> = inj.dirty_rows.iter().map(|&d| !d).collect();
        let true_fd = Fd::from_spec(&specs[1]); // rating -> type
        let s = fd_f1_score(&ds.table, &true_fd, &clean);
        // Most compliant tuples of the true FD are genuinely clean. The
        // exact precision is stream-dependent — every violating pair also
        // drags the *clean* rows of its LHS group out of the compliant set —
        // so only a loose floor is asserted here; the sharp, structural
        // claim is the ordering against a junk FD below.
        assert!(s.precision > 0.5, "precision {}", s.precision);
        // ...but recall is group-structure-dependent (one dirty tuple makes
        // its whole LHS group non-compliant), so only relative ordering
        // against a junk FD is asserted below.
        // A junk FD should score lower.
        let schema = ds.table.schema();
        let (Some(language), Some(genre)) = (schema.id_of("language"), schema.id_of("genre"))
        else {
            panic!("omdb schema is missing expected columns");
        };
        let junk = Fd::from_attrs([language], genre);
        let junk_score = fd_f1_score(&ds.table, &junk, &clean);
        assert!(
            junk_score.f1 < s.f1,
            "junk {} vs true {}",
            junk_score.f1,
            s.f1
        );
    }

    #[test]
    fn all_dirty_ground_truth() {
        let t = paper_table1();
        let fd = Fd::from_attrs([1], 2);
        let s = fd_f1_score(&t, &fd, &[false; 5]);
        assert_eq!(s.precision, 0.0);
        assert_eq!(s.recall, 0.0);
        assert_eq!(s.f1, 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_ground_truth_length() {
        let t = paper_table1();
        let _ = fd_f1_score(&t, &Fd::from_attrs([1], 2), &[true; 3]);
    }
}
