//! Reciprocal Rank and MRR (§A.2 "Evaluation Metric").
//!
//! A learning model predicts, each interaction, a ranked top-k list of FDs;
//! if the user's declared FD sits at position `p ≤ k`, the Reciprocal Rank
//! is `1/p` (else 0). MRR averages RR over interactions. The "+" variants
//! also accept subset/superset FDs, discounted by the F1-score difference
//! with the declared FD.

use et_fd::Fd;

/// The outcome of matching one ranked prediction list against a declared FD.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankOutcome {
    /// 1-based position of the (possibly related) match, if any within k.
    pub position: Option<usize>,
    /// The credited reciprocal rank (0 when no match).
    pub rr: f64,
}

/// Exact-match Reciprocal Rank: `1/p` when `truth` appears at 1-based
/// position `p` within the first `k` entries of `ranked`, else 0.
pub fn reciprocal_rank(ranked: &[Fd], truth: &Fd, k: usize) -> RankOutcome {
    for (i, fd) in ranked.iter().take(k).enumerate() {
        if fd == truth {
            return RankOutcome {
                position: Some(i + 1),
                rr: 1.0 / (i + 1) as f64,
            };
        }
    }
    RankOutcome {
        position: None,
        rr: 0.0,
    }
}

/// The "+" Reciprocal Rank: the first top-k entry that equals `truth` *or*
/// is a subset/superset of it scores `discount/p`, where exact matches have
/// `discount = 1` and related matches are discounted by the absolute F1
/// difference (`discount = 1 − |f1(candidate) − f1(truth)|`).
///
/// `f1_of` supplies the F1 score of an FD against the ground-truth labeled
/// data (see [`crate::fd_f1`]).
pub fn reciprocal_rank_plus(
    ranked: &[Fd],
    truth: &Fd,
    k: usize,
    mut f1_of: impl FnMut(&Fd) -> f64,
) -> RankOutcome {
    for (i, fd) in ranked.iter().take(k).enumerate() {
        if fd == truth {
            return RankOutcome {
                position: Some(i + 1),
                rr: 1.0 / (i + 1) as f64,
            };
        }
        if fd.is_related_to(truth) {
            let discount = 1.0 - (f1_of(fd) - f1_of(truth)).abs();
            return RankOutcome {
                position: Some(i + 1),
                rr: discount.max(0.0) / (i + 1) as f64,
            };
        }
    }
    RankOutcome {
        position: None,
        rr: 0.0,
    }
}

/// Mean of reciprocal ranks over interactions; 0 for an empty slice.
pub fn mrr(rrs: &[f64]) -> f64 {
    if rrs.is_empty() {
        0.0
    } else {
        rrs.iter().sum::<f64>() / rrs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fd(lhs: &[u16], rhs: u16) -> Fd {
        Fd::from_attrs(lhs.iter().copied(), rhs)
    }

    #[test]
    fn exact_rank_positions() {
        let truth = fd(&[0], 2);
        let ranked = vec![fd(&[1], 2), truth, fd(&[0], 1)];
        let out = reciprocal_rank(&ranked, &truth, 5);
        assert_eq!(out.position, Some(2));
        assert!((out.rr - 0.5).abs() < 1e-12);
    }

    #[test]
    fn beyond_k_scores_zero() {
        let truth = fd(&[0], 2);
        let ranked = vec![fd(&[1], 2), fd(&[0], 1), truth];
        let out = reciprocal_rank(&ranked, &truth, 2);
        assert_eq!(out.position, None);
        assert_eq!(out.rr, 0.0);
    }

    #[test]
    fn plus_accepts_related_with_discount() {
        let truth = fd(&[0], 2);
        let superset = fd(&[0, 1], 2); // subset FD of truth per the paper
        let ranked = vec![superset, truth];
        // Exact match at position 2 would give 0.5; the related FD at
        // position 1 gives the discounted 1 * (1 - |0.9 - 0.7|) = 0.8.
        let out = reciprocal_rank_plus(&ranked, &truth, 5, |f| if *f == truth { 0.9 } else { 0.7 });
        assert_eq!(out.position, Some(1));
        assert!((out.rr - 0.8).abs() < 1e-12);
    }

    #[test]
    fn plus_prefers_exact_when_first() {
        let truth = fd(&[0], 2);
        let ranked = vec![truth, fd(&[0, 1], 2)];
        let out = reciprocal_rank_plus(&ranked, &truth, 5, |_| 0.5);
        assert_eq!(out.rr, 1.0);
    }

    #[test]
    fn plus_ignores_unrelated() {
        let truth = fd(&[0], 2);
        let ranked = vec![fd(&[1], 3), fd(&[1], 2)];
        // {1} -> 2 is unrelated to {0} -> 2 (incomparable LHS).
        let out = reciprocal_rank_plus(&ranked, &truth, 5, |_| 1.0);
        assert_eq!(out.rr, 0.0);
    }

    #[test]
    fn plus_discount_floors_at_zero() {
        let truth = fd(&[0], 2);
        let ranked = vec![fd(&[0, 1], 2)];
        let out = reciprocal_rank_plus(&ranked, &truth, 5, |f| {
            if *f == truth {
                1.0
            } else {
                -0.5 // pathological scorer; discount clamps
            }
        });
        assert!(out.rr >= 0.0);
    }

    #[test]
    fn mrr_averages() {
        assert_eq!(mrr(&[]), 0.0);
        assert!((mrr(&[1.0, 0.5, 0.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn plus_never_below_exact_when_f1_equal() {
        // With zero F1 difference (discount 1) the "+" metric only adds
        // acceptable matches, so rr+ >= rr. (A related match ranked above
        // the exact one with a large F1 gap can legitimately score lower.)
        let truth = fd(&[0], 2);
        let lists = [
            vec![fd(&[1], 2), truth],
            vec![fd(&[0, 1], 2), fd(&[1], 3)],
            vec![fd(&[1], 3), fd(&[2], 3)],
        ];
        for ranked in &lists {
            let exact = reciprocal_rank(ranked, &truth, 5).rr;
            let plus = reciprocal_rank_plus(ranked, &truth, 5, |_| 0.9).rr;
            assert!(plus >= exact - 1e-12, "{ranked:?}");
        }
    }
}
