//! Per-iteration series aggregation across seeds.
//!
//! Every figure of the empirical study is a per-iteration curve (MAE or F1)
//! averaged over repeated runs; this module provides the mean ± std
//! aggregation plus two scalar summaries used to compare sampling methods:
//! the first iteration at which a curve crosses a threshold, and the area
//! under the curve (lower AUC = faster MAE convergence).

/// Mean and standard deviation per iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesStats {
    /// Per-iteration means.
    pub mean: Vec<f64>,
    /// Per-iteration (population) standard deviations.
    pub std: Vec<f64>,
    /// Number of runs aggregated.
    pub runs: usize,
}

impl SeriesStats {
    /// Series length.
    pub fn len(&self) -> usize {
        self.mean.len()
    }

    /// True when the series is empty.
    pub fn is_empty(&self) -> bool {
        self.mean.is_empty()
    }

    /// The final mean value.
    ///
    /// # Panics
    /// Panics on an empty series.
    pub fn last_mean(&self) -> f64 {
        assert!(!self.is_empty(), "last_mean of an empty series");
        self.mean[self.mean.len() - 1]
    }
}

/// Aggregates equally-long runs into per-iteration mean ± std.
///
/// # Panics
/// Panics when runs have different lengths or no runs are given.
pub fn aggregate(runs: &[Vec<f64>]) -> SeriesStats {
    assert!(!runs.is_empty(), "need at least one run");
    let len = runs[0].len();
    for (i, r) in runs.iter().enumerate() {
        assert_eq!(r.len(), len, "run {i} has length {} != {len}", r.len());
    }
    let n = runs.len() as f64;
    let mut mean = vec![0.0; len];
    for r in runs {
        for (m, v) in mean.iter_mut().zip(r) {
            *m += v;
        }
    }
    for m in &mut mean {
        *m /= n;
    }
    let mut std = vec![0.0; len];
    for r in runs {
        for ((s, v), m) in std.iter_mut().zip(r).zip(&mean) {
            *s += (v - m) * (v - m);
        }
    }
    for s in &mut std {
        *s = (*s / n).sqrt();
    }
    SeriesStats {
        mean,
        std,
        runs: runs.len(),
    }
}

/// The first (0-based) iteration at which the series drops to or below
/// `threshold`; `None` when it never does. For MAE curves this is the
/// paper's "number of interactions required to learn a common belief".
pub fn iterations_to_threshold(series: &[f64], threshold: f64) -> Option<usize> {
    series.iter().position(|&v| v <= threshold)
}

/// Trapezoidal area under the curve over unit-spaced iterations. Lower is
/// better for MAE curves (faster, deeper convergence).
pub fn auc(series: &[f64]) -> f64 {
    if series.len() < 2 {
        return series.first().copied().unwrap_or(0.0);
    }
    series.windows(2).map(|w| (w[0] + w[1]) / 2.0).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn aggregate_mean_std() {
        let runs = vec![vec![1.0, 2.0], vec![3.0, 2.0]];
        let s = aggregate(&runs);
        assert_eq!(s.mean, vec![2.0, 2.0]);
        assert_eq!(s.std, vec![1.0, 0.0]);
        assert_eq!(s.runs, 2);
        assert_eq!(s.last_mean(), 2.0);
    }

    #[test]
    #[should_panic(expected = "length")]
    fn ragged_runs_rejected() {
        let _ = aggregate(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn threshold_crossing() {
        let s = [0.5, 0.4, 0.2, 0.25, 0.1];
        assert_eq!(iterations_to_threshold(&s, 0.25), Some(2));
        assert_eq!(iterations_to_threshold(&s, 0.05), None);
        assert_eq!(iterations_to_threshold(&s, 0.5), Some(0));
    }

    #[test]
    fn auc_trapezoid() {
        assert_eq!(auc(&[]), 0.0);
        assert_eq!(auc(&[3.0]), 3.0);
        assert!((auc(&[1.0, 0.0]) - 0.5).abs() < 1e-12);
        assert!((auc(&[1.0, 1.0, 1.0]) - 2.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn mean_within_run_envelope(runs in proptest::collection::vec(
            proptest::collection::vec(0.0f64..1.0, 5), 1..6)) {
            let s = aggregate(&runs);
            for i in 0..5 {
                let lo = runs.iter().map(|r| r[i]).fold(f64::INFINITY, f64::min);
                let hi = runs.iter().map(|r| r[i]).fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(s.mean[i] >= lo - 1e-12 && s.mean[i] <= hi + 1e-12);
                prop_assert!(s.std[i] >= 0.0);
                prop_assert!(s.std[i] <= (hi - lo) + 1e-12);
            }
        }

        #[test]
        fn auc_monotone_in_values(a in proptest::collection::vec(0.0f64..1.0, 2..10)) {
            let b: Vec<f64> = a.iter().map(|v| v + 0.5).collect();
            prop_assert!(auc(&b) > auc(&a));
        }
    }
}
