//! Simulated annotators.
//!
//! Each participant owns an *internal* learning rule — the thing the
//! paper's user study tries to identify from the outside:
//!
//! * [`LearningRule::Fp`] — fictitious play / Bayesian: a Beta belief per
//!   FD, updated with the shared evidence rule (what the paper found in 18
//!   of 20 participants);
//! * [`LearningRule::HypothesisTesting`] — keep one hypothesis until the
//!   recent window rejects it.
//!
//! Every iteration the participant inspects the ten presented tuples,
//! updates its internal state, *declares* the FD it currently deems most
//! accurate (the study's ground-truth elicitation), and labels tuples as
//! violations of that declared FD. Decision noise occasionally makes the
//! participant declare its second-best hypothesis — the paper's suggested
//! extension ("considering the probability of noise in decision making")
//! and the source of scenario-2-like non-monotonicity.

use std::sync::Arc;

use et_belief::{
    update_from_pair_relations, Belief, Beta, EvidenceConfig, HypothesisTester, LabeledPair,
    PriorConfig, PriorSpec, ScoreMode,
};
use et_data::Table;
use et_fd::{pair_relation, Fd, HypothesisSpace, PairRelation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The participant's internal learning rule.
#[derive(Debug, Clone)]
pub enum LearningRule {
    /// Fictitious play / Bayesian updating.
    Fp {
        /// Evidence weights for the belief update.
        evidence: EvidenceConfig,
    },
    /// Hypothesis testing with the given rejection tolerance.
    HypothesisTesting {
        /// Minimum satisfaction score on the recent window.
        tolerance: f64,
    },
}

/// Configuration of one simulated participant.
#[derive(Debug, Clone)]
pub struct ParticipantConfig {
    /// The internal learning rule.
    pub rule: LearningRule,
    /// The FD the participant initially believes, or `None` for "not sure"
    /// (uniform prior, as the study interface allows).
    pub initial_belief: Option<Fd>,
    /// Probability of declaring the second-best hypothesis instead of the
    /// best in any iteration.
    pub decision_noise: f64,
    /// Per-participant RNG seed.
    pub seed: u64,
}

/// What a participant produces for one presented sample.
#[derive(Debug, Clone)]
pub struct ParticipantResponse {
    /// The FD the participant declares most accurate this iteration.
    pub declared: Fd,
    /// Pairwise labels over the presented sample (only pairs relevant to at
    /// least one hypothesis-space FD are recorded).
    pub labeled_pairs: Vec<LabeledPair>,
    /// Per-tuple dirty labels, aligned with the presented rows.
    pub tuple_labels: Vec<bool>,
}

enum State {
    Fp {
        belief: Belief,
        evidence: EvidenceConfig,
    },
    Ht(HypothesisTester),
}

/// A simulated annotator over one scenario's hypothesis space.
pub struct Participant {
    state: State,
    space: Arc<HypothesisSpace>,
    noise: f64,
    rng: StdRng,
}

impl Participant {
    /// Builds the participant for a scenario hypothesis space.
    ///
    /// FP participants get the paper's §A.2 prior around their declared
    /// initial FD (ε = 0.85 / related 0.8 / others 0.15, σ = 0.05, weakened
    /// so ten short iterations can move it); "not sure" participants start
    /// uniform.
    pub fn new(cfg: &ParticipantConfig, space: Arc<HypothesisSpace>, table: &Table) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed ^ 0x6a09_e667_f3bc_c908);
        let state = match &cfg.rule {
            LearningRule::Fp { evidence } => {
                let prior_cfg = PriorConfig {
                    strength: 0.15,
                    ..PriorConfig::default()
                };
                let belief = match &cfg.initial_belief {
                    Some(fd) => build_user_prior(fd, &prior_cfg, &space, table),
                    None => Belief::constant(
                        space.clone(),
                        Beta::from_mean_std(0.5, prior_cfg.std).scaled(prior_cfg.strength),
                    ),
                };
                State::Fp {
                    belief,
                    evidence: *evidence,
                }
            }
            LearningRule::HypothesisTesting { tolerance } => {
                let initial = cfg
                    .initial_belief
                    .as_ref()
                    .and_then(|fd| space.index_of(fd))
                    .unwrap_or(0);
                State::Ht(HypothesisTester::new(
                    space.clone(),
                    initial,
                    *tolerance,
                    ScoreMode::DataSatisfaction,
                ))
            }
        };
        Self {
            state,
            space,
            noise: cfg.decision_noise,
            rng,
        }
    }

    /// True when the participant's internal rule is FP/Bayesian.
    pub fn is_fp(&self) -> bool {
        matches!(self.state, State::Fp { .. })
    }

    /// Observes the presented sample, updates the internal rule, declares
    /// an FD, and labels the tuples.
    pub fn respond(&mut self, table: &Table, rows: &[usize]) -> ParticipantResponse {
        // All relevant pairs within the sample — what the participant can
        // actually inspect.
        let sample_pairs = relevant_pairs(table, &self.space, rows);

        // 1. Update the internal rule from the observations.
        match &mut self.state {
            State::Fp { belief, evidence } => {
                // The annotator inspects the sample and tallies, per FD, how
                // often it held — label-free fictitious play on the data.
                update_from_pair_relations(belief, table, &sample_pairs, evidence.clean_weight);
            }
            State::Ht(ht) => {
                let current = ht.current_fd();
                let labeled: Vec<LabeledPair> = sample_pairs
                    .iter()
                    .map(|&(a, b)| {
                        let violates =
                            pair_relation(table, &current, a, b) == PairRelation::Violates;
                        LabeledPair {
                            a,
                            b,
                            dirty_a: violates,
                            dirty_b: violates,
                        }
                    })
                    .collect();
                let _ = ht.observe_interaction(table, &labeled);
            }
        }

        // 2. Declare the currently-best hypothesis; decision noise
        // occasionally declares another top-4 contender instead — the
        // "probability of noise in decision making" extension the paper
        // suggests (§A.3), and the source of non-monotone trajectories.
        let ranked = self.ranked_hypotheses(table);
        let pick = if ranked.len() > 1 && self.rng.gen::<f64>() < self.noise {
            let alt = 1 + self.rng.gen_range(0..3.min(ranked.len() - 1));
            ranked[alt]
        } else {
            ranked[0]
        };
        let declared = self.space.fd(pick);

        // 3. Label the sample as violations of the declared FD.
        let mut tuple_labels = vec![false; rows.len()];
        let mut labeled_pairs = Vec::with_capacity(sample_pairs.len());
        for &(a, b) in &sample_pairs {
            let violates = pair_relation(table, &declared, a, b) == PairRelation::Violates;
            if violates {
                for (i, &r) in rows.iter().enumerate() {
                    if r == a || r == b {
                        tuple_labels[i] = true;
                    }
                }
            }
            labeled_pairs.push(LabeledPair {
                a,
                b,
                dirty_a: violates,
                dirty_b: violates,
            });
        }

        ParticipantResponse {
            declared,
            labeled_pairs,
            tuple_labels,
        }
    }

    /// The participant's current hypothesis ranking (best first).
    fn ranked_hypotheses(&self, table: &Table) -> Vec<usize> {
        match &self.state {
            State::Fp { belief, .. } => belief
                .top_k(belief.len())
                .into_iter()
                .map(|(i, _)| i)
                .collect(),
            State::Ht(ht) => ht.ranked(table),
        }
    }

    /// The participant's current top hypothesis.
    pub fn current_best(&self, table: &Table) -> Fd {
        self.space.fd(self.ranked_hypotheses(table)[0])
    }

    /// Internal FP confidences, when the participant is FP (diagnostics).
    pub fn debug_confidences(&self) -> Option<Vec<f64>> {
        match &self.state {
            State::Fp { belief, .. } => Some(belief.confidences()),
            State::Ht(_) => None,
        }
    }
}

/// Builds the §A.2 user prior (declared FD ε, related 0.8, others 0.15).
fn build_user_prior(
    fd: &Fd,
    cfg: &PriorConfig,
    space: &Arc<HypothesisSpace>,
    table: &Table,
) -> Belief {
    et_belief::build_prior(&PriorSpec::UserSpecified { fd: *fd }, cfg, space, table)
}

/// All within-sample pairs relevant to at least one hypothesis-space FD.
fn relevant_pairs(table: &Table, space: &HypothesisSpace, rows: &[usize]) -> Vec<(usize, usize)> {
    let rel = et_fd::SpaceRelations::new(space);
    let mut out = Vec::new();
    for (i, &a) in rows.iter().enumerate() {
        for &b in &rows[i + 1..] {
            if rel.relevant_to_any(table, a, b) {
                out.push((a.min(b), a.max(b)));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::scenarios;

    fn fp_cfg(seed: u64, initial: Option<Fd>) -> ParticipantConfig {
        ParticipantConfig {
            rule: LearningRule::Fp {
                evidence: EvidenceConfig::default(),
            },
            initial_belief: initial,
            decision_noise: 0.0,
            seed,
        }
    }

    #[test]
    fn fp_participant_learns_target() {
        let s = &scenarios()[4]; // rating -> type, small schema
        let data = s.materialize(300, 0.10, 7);
        let space = Arc::new(s.space());
        // Start out believing the (wrong) alternative.
        let mut p = Participant::new(&fp_cfg(1, Some(s.alternative_fd())), space, &data.table);
        assert!(p.is_fp());
        let mut rng = StdRng::seed_from_u64(2);
        let mut declared_last = None;
        for _ in 0..12 {
            let rows: Vec<usize> = (0..10)
                .map(|_| rng.gen_range(0..data.table.nrows()))
                .collect();
            let resp = p.respond(&data.table, &rows);
            declared_last = Some(resp.declared);
        }
        // After a dozen iterations the declared FD should be the target (or
        // at least related to it).
        let declared = declared_last.unwrap();
        assert!(
            declared == s.target_fd() || declared.is_related_to(&s.target_fd()),
            "declared {declared} vs target {}",
            s.target_fd()
        );
    }

    #[test]
    fn ht_participant_switches_hypotheses() {
        let s = &scenarios()[4];
        let data = s.materialize(300, 0.10, 3);
        let space = Arc::new(s.space());
        let cfg = ParticipantConfig {
            rule: LearningRule::HypothesisTesting { tolerance: 0.8 },
            initial_belief: Some(s.alternative_fd()),
            decision_noise: 0.0,
            seed: 5,
        };
        let mut p = Participant::new(&cfg, space, &data.table);
        assert!(!p.is_fp());
        let mut rng = StdRng::seed_from_u64(6);
        let mut declared = Vec::new();
        for _ in 0..12 {
            let rows: Vec<usize> = (0..10)
                .map(|_| rng.gen_range(0..data.table.nrows()))
                .collect();
            declared.push(p.respond(&data.table, &rows).declared);
        }
        let distinct: std::collections::HashSet<_> = declared.iter().collect();
        assert!(distinct.len() > 1, "HT should abandon the bad alternative");
    }

    #[test]
    fn labels_mark_declared_violations() {
        let s = &scenarios()[0];
        let data = s.materialize(250, 0.20, 9);
        let space = Arc::new(s.space());
        let mut p = Participant::new(&fp_cfg(2, Some(s.target_fd())), space, &data.table);
        let rows: Vec<usize> = (0..20).collect();
        let resp = p.respond(&data.table, &rows);
        // Tuple labels must be consistent with the pairwise labels.
        for lp in &resp.labeled_pairs {
            if lp.dirty_a {
                let i = rows.iter().position(|&r| r == lp.a).unwrap();
                assert!(resp.tuple_labels[i]);
            }
        }
        assert_eq!(resp.tuple_labels.len(), rows.len());
    }

    #[test]
    fn decision_noise_changes_declarations() {
        let s = &scenarios()[4];
        let data = s.materialize(250, 0.10, 4);
        let space = Arc::new(s.space());
        let run = |noise: f64| {
            let cfg = ParticipantConfig {
                rule: LearningRule::Fp {
                    evidence: EvidenceConfig::default(),
                },
                initial_belief: Some(s.target_fd()),
                decision_noise: noise,
                seed: 11,
            };
            let mut p = Participant::new(&cfg, space.clone(), &data.table);
            let mut rng = StdRng::seed_from_u64(12);
            let mut declared = Vec::new();
            for _ in 0..10 {
                let rows: Vec<usize> = (0..10)
                    .map(|_| rng.gen_range(0..data.table.nrows()))
                    .collect();
                declared.push(p.respond(&data.table, &rows).declared);
            }
            declared
        };
        let calm = run(0.0);
        let noisy = run(0.9);
        assert_ne!(calm, noisy, "noise should perturb declarations");
    }

    #[test]
    fn unsure_participant_starts_uniform() {
        let s = &scenarios()[2];
        let data = s.materialize(200, 0.10, 8);
        let space = Arc::new(s.space());
        let p = Participant::new(&fp_cfg(3, None), space.clone(), &data.table);
        // With no evidence, ranking is by index — the participant holds no
        // real preference.
        assert_eq!(p.current_best(&data.table), space.fd(0));
    }
}
