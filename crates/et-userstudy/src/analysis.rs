//! Study analyses: Table 3 and Figure 2.
//!
//! * [`average_f1_change`] — Table 3: the mean absolute change of the
//!   declared hypothesis's F1 score between consecutive rounds. Large
//!   values mean participants genuinely revise their beliefs (not noise).
//! * [`predictor_mrr`] — Figure 2: fit each candidate *learning model*
//!   (FP/Bayesian vs hypothesis testing) to a trajectory's labels and score
//!   how well it predicts the participant's declared FD each iteration
//!   (MRR over the top-5, exact and subset/superset-discounted "+").

use std::sync::Arc;

use et_belief::{
    update_from_labeled_pairs, Belief, Beta, EvidenceConfig, HypothesisTester, PriorConfig,
    PriorSpec, ScoreMode,
};
use et_data::Table;
use et_fd::{Fd, HypothesisSpace};
use et_metrics::{fd_f1_score, mrr, reciprocal_rank, reciprocal_rank_plus};

use crate::study::Trajectory;

/// Which learning model is fitted to the trajectories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredictorKind {
    /// Fictitious play / Bayesian belief over the hypothesis space.
    Bayesian,
    /// Hypothesis testing on the preceding interaction's window.
    HypothesisTesting,
}

impl PredictorKind {
    /// Both predictors, in the paper's reporting order.
    pub const ALL: [PredictorKind; 2] = [PredictorKind::Bayesian, PredictorKind::HypothesisTesting];

    /// Display name.
    pub fn as_str(&self) -> &'static str {
        match self {
            PredictorKind::Bayesian => "Bayesian (FP)",
            PredictorKind::HypothesisTesting => "Hypothesis Testing",
        }
    }
}

/// MRR results for one predictor on one scenario.
#[derive(Debug, Clone)]
pub struct MrrReport {
    /// The fitted model.
    pub predictor: PredictorKind,
    /// Exact-match MRR@k.
    pub mrr_exact: f64,
    /// Subset/superset-discounted MRR@k (the paper's "+" variant).
    pub mrr_plus: f64,
    /// Number of (participant, iteration) predictions scored.
    pub predictions: usize,
}

/// Table 3: mean |F1(declared_t) − F1(declared_{t−1})| across consecutive
/// rounds of every trajectory.
pub fn average_f1_change(trajectories: &[Trajectory]) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for t in trajectories {
        for w in t.iterations.windows(2) {
            sum += (w[1].declared_f1 - w[0].declared_f1).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Figure 2: fits `predictor` to each trajectory and computes MRR@k of the
/// participant's declared FD, exact and "+".
///
/// The predictor only sees what the paper's system sees: the presented
/// samples and the participant's labels — *never* the declared FDs (those
/// are the prediction targets).
pub fn predictor_mrr(
    table: &Table,
    space: &Arc<HypothesisSpace>,
    trajectories: &[Trajectory],
    clean_rows: &[bool],
    predictor: PredictorKind,
    k: usize,
) -> MrrReport {
    let mut exact = Vec::new();
    let mut plus = Vec::new();
    // F1 scores are pure functions of (table, fd); cache across queries.
    let mut f1_cache: std::collections::HashMap<Fd, f64> = std::collections::HashMap::new();
    for traj in trajectories {
        match predictor {
            PredictorKind::Bayesian => {
                let mut belief = initial_belief(traj, space, table);
                for it in &traj.iterations {
                    // Predict from the belief *before* absorbing this
                    // iteration's labels? The paper's model predicts the
                    // hypothesis the user holds *after* seeing the sample —
                    // so update first, then rank.
                    update_from_labeled_pairs(
                        &mut belief,
                        table,
                        &it.labeled_pairs,
                        &EvidenceConfig::default(),
                    );
                    let ranked: Vec<Fd> = belief
                        .top_k(k)
                        .into_iter()
                        .map(|(i, _)| space.fd(i))
                        .collect();
                    score(
                        table,
                        &ranked,
                        &it.declared,
                        k,
                        clean_rows,
                        &mut f1_cache,
                        &mut exact,
                        &mut plus,
                    );
                }
            }
            PredictorKind::HypothesisTesting => {
                let initial = traj
                    .declared_prior
                    .as_ref()
                    .and_then(|fd| space.index_of(fd))
                    .unwrap_or(0);
                let mut ht =
                    HypothesisTester::new(space.clone(), initial, 0.8, ScoreMode::LabelConsistency);
                for it in &traj.iterations {
                    let _ = ht.observe_interaction(table, &it.labeled_pairs);
                    let ranked: Vec<Fd> = ht
                        .ranked(table)
                        .into_iter()
                        .take(k)
                        .map(|i| space.fd(i))
                        .collect();
                    score(
                        table,
                        &ranked,
                        &it.declared,
                        k,
                        clean_rows,
                        &mut f1_cache,
                        &mut exact,
                        &mut plus,
                    );
                }
            }
        }
    }
    MrrReport {
        predictor,
        mrr_exact: mrr(&exact),
        mrr_plus: mrr(&plus),
        predictions: exact.len(),
    }
}

#[allow(clippy::too_many_arguments)]
fn score(
    table: &Table,
    ranked: &[Fd],
    declared: &Fd,
    k: usize,
    clean_rows: &[bool],
    f1_cache: &mut std::collections::HashMap<Fd, f64>,
    exact: &mut Vec<f64>,
    plus: &mut Vec<f64>,
) {
    exact.push(reciprocal_rank(ranked, declared, k).rr);
    plus.push(
        reciprocal_rank_plus(ranked, declared, k, |fd| {
            *f1_cache
                .entry(*fd)
                .or_insert_with(|| fd_f1_score(table, fd, clean_rows).f1)
        })
        .rr,
    );
}

/// Per-participant MRR of one predictor (the paper also groups predictions
/// by participant: "Bayesian (FP) model significantly outperform hypothesis
/// testing for all our participants except for two").
#[derive(Debug, Clone)]
pub struct ParticipantMrr {
    /// Participant id.
    pub participant: usize,
    /// Whether the participant's *internal* rule was FP (simulation ground
    /// truth, unavailable to the predictors).
    pub fp_internal: bool,
    /// Exact MRR@k of the Bayesian predictor on this participant.
    pub bayesian: f64,
    /// Exact MRR@k of the hypothesis-testing predictor.
    pub hypothesis_testing: f64,
}

/// Computes both predictors' MRR@k separately for every participant.
pub fn per_participant_mrr(
    table: &Table,
    space: &Arc<HypothesisSpace>,
    trajectories: &[Trajectory],
    clean_rows: &[bool],
    k: usize,
) -> Vec<ParticipantMrr> {
    trajectories
        .iter()
        .map(|traj| {
            let single = std::slice::from_ref(traj);
            let b = predictor_mrr(table, space, single, clean_rows, PredictorKind::Bayesian, k);
            let h = predictor_mrr(
                table,
                space,
                single,
                clean_rows,
                PredictorKind::HypothesisTesting,
                k,
            );
            ParticipantMrr {
                participant: traj.participant,
                fp_internal: traj.fp_internal,
                bayesian: b.mrr_exact,
                hypothesis_testing: h.mrr_exact,
            }
        })
        .collect()
}

/// How many participants each predictor wins (ties go to Bayesian, which
/// the paper treats as the default model).
pub fn predictor_win_counts(per_participant: &[ParticipantMrr]) -> (usize, usize) {
    let bayes_wins = per_participant
        .iter()
        .filter(|p| p.bayesian >= p.hypothesis_testing)
        .count();
    (bayes_wins, per_participant.len() - bayes_wins)
}

/// The predictor-side prior: the paper seeds FP with the participant's
/// *initially declared* FD (the study interface records it) or a uniform
/// prior when the participant was unsure.
fn initial_belief(traj: &Trajectory, space: &Arc<HypothesisSpace>, table: &Table) -> Belief {
    let cfg = PriorConfig {
        strength: 0.15,
        ..PriorConfig::default()
    };
    match &traj.declared_prior {
        Some(fd) => {
            et_belief::build_prior(&PriorSpec::UserSpecified { fd: *fd }, &cfg, space, table)
        }
        None => Belief::constant(
            space.clone(),
            Beta::from_mean_std(0.5, cfg.std).scaled(cfg.strength),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::scenarios;
    use crate::study::{run_study, StudyConfig};

    fn quick_cfg() -> StudyConfig {
        StudyConfig {
            participants: 8,
            ht_participants: 1,
            rows: 220,
            min_iterations: 6,
            max_iterations: 8,
            seed: 13,
            ..StudyConfig::default()
        }
    }

    #[test]
    fn f1_change_reflects_learning_activity() {
        let s = &scenarios()[4];
        let trajs = run_study(s, &quick_cfg());
        let change = average_f1_change(&trajs);
        assert!(
            change > 0.0,
            "simulated participants should revise hypotheses"
        );
        assert!(change < 1.0);
    }

    #[test]
    fn f1_change_empty_is_zero() {
        assert_eq!(average_f1_change(&[]), 0.0);
    }

    #[test]
    fn per_participant_grouping_matches_paper_shape() {
        let s = &scenarios()[4];
        let cfg = quick_cfg();
        let trajs = run_study(s, &cfg);
        let data = crate::study::study_dataset(s, &cfg);
        let clean = data.clean_rows();
        let space = Arc::new(s.space());
        let per = per_participant_mrr(&data.table, &space, &trajs, &clean, 5);
        assert_eq!(per.len(), trajs.len());
        for p in &per {
            assert!((0.0..=1.0).contains(&p.bayesian));
            assert!((0.0..=1.0).contains(&p.hypothesis_testing));
        }
        let (bayes, ht) = predictor_win_counts(&per);
        assert_eq!(bayes + ht, per.len());
        // Majority-FP population: the Bayesian predictor should win most
        // participants (the paper: all but two of twenty).
        assert!(bayes > ht, "Bayesian wins {bayes} of {}", per.len());
    }

    #[test]
    fn bayesian_predictor_beats_ht_on_fp_population() {
        // With an (almost) all-FP population, the Bayesian predictor should
        // model participants better — the paper's headline user-study
        // finding.
        let s = &scenarios()[4];
        let cfg = quick_cfg();
        let trajs = run_study(s, &cfg);
        let data = crate::study::study_dataset(s, &cfg);
        let clean = data.clean_rows();
        let space = Arc::new(s.space());
        let bayes = predictor_mrr(
            &data.table,
            &space,
            &trajs,
            &clean,
            PredictorKind::Bayesian,
            5,
        );
        let ht = predictor_mrr(
            &data.table,
            &space,
            &trajs,
            &clean,
            PredictorKind::HypothesisTesting,
            5,
        );
        assert_eq!(bayes.predictions, ht.predictions);
        assert!(bayes.predictions > 0);
        assert!(
            bayes.mrr_exact >= ht.mrr_exact,
            "Bayesian {} vs HT {}",
            bayes.mrr_exact,
            ht.mrr_exact
        );
        // "+" never decreases the Bayesian score below its exact score when
        // discounts are mild; at minimum both are valid MRRs.
        for r in [&bayes, &ht] {
            assert!((0.0..=1.0).contains(&r.mrr_exact));
            assert!((0.0..=1.0).contains(&r.mrr_plus));
        }
    }
}
