//! The study runner: the paper's protocol over simulated participants.
//!
//! 20 participants × 5 scenarios; per scenario each participant sees 9–15
//! iterations of ten random tuples, marks violations, and declares their
//! current best FD. Trajectories record everything the analyses need.

use std::sync::Arc;

use et_belief::{EvidenceConfig, LabeledPair};
use et_fd::Fd;
use et_metrics::fd_f1_score;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::participant::{LearningRule, Participant, ParticipantConfig};
use crate::scenario::Scenario;

/// Study-wide configuration; defaults follow §A.2.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Number of participants (paper: 20).
    pub participants: usize,
    /// Number of participants whose internal rule is hypothesis testing
    /// (paper: FP explained all but two participants).
    pub ht_participants: usize,
    /// Tuples shown per iteration (paper: 10).
    pub sample_size: usize,
    /// Minimum iterations per scenario (paper: 9).
    pub min_iterations: usize,
    /// Maximum iterations per scenario (paper: 15).
    pub max_iterations: usize,
    /// Rows generated per scenario dataset.
    pub rows: usize,
    /// Violation degree injected into each scenario dataset.
    pub degree: f64,
    /// Fraction of participants that answer "not sure" for their initial
    /// belief (uniform prior).
    pub unsure_fraction: f64,
    /// Baseline decision noise for every participant.
    pub decision_noise: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for StudyConfig {
    fn default() -> Self {
        Self {
            participants: 20,
            ht_participants: 2,
            sample_size: 10,
            min_iterations: 9,
            max_iterations: 15,
            rows: 300,
            degree: 0.15,
            unsure_fraction: 0.25,
            decision_noise: 0.15,
            seed: 0,
        }
    }
}

/// One iteration of one participant on one scenario.
#[derive(Debug, Clone)]
pub struct IterationRecord {
    /// Rows presented.
    pub shown_rows: Vec<usize>,
    /// Pairwise labels the participant produced.
    pub labeled_pairs: Vec<LabeledPair>,
    /// The FD the participant declared most accurate.
    pub declared: Fd,
    /// F1 of the declared FD against ground-truth clean tuples (the measure
    /// behind Table 3).
    pub declared_f1: f64,
}

/// A participant's full pass over one scenario.
#[derive(Debug, Clone)]
pub struct Trajectory {
    /// Participant number (0-based).
    pub participant: usize,
    /// Scenario id (1–5).
    pub scenario: usize,
    /// Whether the participant's internal rule was FP (vs HT).
    pub fp_internal: bool,
    /// Whether the participant declared an initial belief (vs "not sure").
    pub declared_prior: Option<Fd>,
    /// Per-iteration records.
    pub iterations: Vec<IterationRecord>,
}

/// The RNG every study run derives its randomness from; exposed through
/// [`study_dataset`] so analyses can rebuild the exact dataset a study used.
fn master_rng(scenario: &Scenario, cfg: &StudyConfig) -> StdRng {
    StdRng::seed_from_u64(cfg.seed ^ (scenario.id as u64).wrapping_mul(0xa076_1d64_78bd_642f))
}

/// The exact dataset [`run_study`] materializes for `(scenario, cfg)` —
/// the single source of truth analyses must evaluate against.
pub fn study_dataset(scenario: &Scenario, cfg: &StudyConfig) -> crate::scenario::ScenarioData {
    let mut master = master_rng(scenario, cfg);
    scenario.materialize(cfg.rows, cfg.degree, master.gen())
}

/// Runs the study for one scenario, producing one trajectory per
/// participant. Deterministic in `cfg.seed`.
///
/// # Panics
/// Panics on an inconsistent config: zero participants, more
/// hypothesis-testing participants than participants, or a minimum
/// iteration count above the maximum.
pub fn run_study(scenario: &Scenario, cfg: &StudyConfig) -> Vec<Trajectory> {
    assert!(cfg.participants > 0);
    assert!(cfg.ht_participants <= cfg.participants);
    assert!(cfg.min_iterations <= cfg.max_iterations);
    let mut master = master_rng(scenario, cfg);
    let data = scenario.materialize(cfg.rows, cfg.degree, master.gen());
    let clean = data.clean_rows();
    let space = Arc::new(scenario.space());

    // Which participants run hypothesis testing internally (the paper's
    // "all but two" finding corresponds to ht_participants = 2).
    let mut ids: Vec<usize> = (0..cfg.participants).collect();
    ids.shuffle(&mut master);
    let ht_set: std::collections::HashSet<usize> =
        ids.into_iter().take(cfg.ht_participants).collect();

    let mut out = Vec::with_capacity(cfg.participants);
    for pid in 0..cfg.participants {
        let p_seed: u64 = master.gen();
        let mut rng = StdRng::seed_from_u64(p_seed);

        // Initial belief: unsure, the alternative (plausible but wrong), or
        // occasionally the actual target.
        let declared_prior = if rng.gen::<f64>() < cfg.unsure_fraction {
            None
        } else if rng.gen::<f64>() < 0.25 {
            Some(scenario.target_fd())
        } else {
            Some(scenario.alternative_fd())
        };

        let rule = if ht_set.contains(&pid) {
            LearningRule::HypothesisTesting { tolerance: 0.8 }
        } else {
            LearningRule::Fp {
                evidence: EvidenceConfig::default(),
            }
        };
        let p_cfg = ParticipantConfig {
            rule,
            initial_belief: declared_prior,
            // Scenario difficulty adds to the baseline decision noise
            // (the paper's scenario-2 non-monotonicity).
            decision_noise: (cfg.decision_noise + scenario.confusion).min(0.95),
            seed: p_seed,
        };
        let mut participant = Participant::new(&p_cfg, space.clone(), &data.table);

        let n_iters = rng.gen_range(cfg.min_iterations..=cfg.max_iterations);
        let mut iterations = Vec::with_capacity(n_iters);
        for _ in 0..n_iters {
            let shown_rows: Vec<usize> = sample_rows(&mut rng, data.table.nrows(), cfg.sample_size);
            let resp = participant.respond(&data.table, &shown_rows);
            let declared_f1 = fd_f1_score(&data.table, &resp.declared, &clean).f1;
            iterations.push(IterationRecord {
                shown_rows,
                labeled_pairs: resp.labeled_pairs,
                declared: resp.declared,
                declared_f1,
            });
        }
        out.push(Trajectory {
            participant: pid,
            scenario: scenario.id,
            fp_internal: !ht_set.contains(&pid),
            declared_prior,
            iterations,
        });
    }
    out
}

/// Samples `k` distinct rows uniformly.
fn sample_rows(rng: &mut StdRng, n: usize, k: usize) -> Vec<usize> {
    let mut rows: Vec<usize> = (0..n).collect();
    rows.shuffle(rng);
    rows.truncate(k.min(n));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::scenarios;

    fn quick_cfg() -> StudyConfig {
        StudyConfig {
            participants: 6,
            ht_participants: 1,
            rows: 200,
            min_iterations: 5,
            max_iterations: 7,
            seed: 42,
            ..StudyConfig::default()
        }
    }

    #[test]
    fn study_produces_complete_trajectories() {
        let s = &scenarios()[4];
        let trajs = run_study(s, &quick_cfg());
        assert_eq!(trajs.len(), 6);
        assert_eq!(trajs.iter().filter(|t| !t.fp_internal).count(), 1);
        for t in &trajs {
            assert!((5..=7).contains(&t.iterations.len()));
            for it in &t.iterations {
                assert_eq!(it.shown_rows.len(), 10);
                assert!((0.0..=1.0).contains(&it.declared_f1));
            }
        }
    }

    #[test]
    fn study_is_deterministic() {
        let s = &scenarios()[0];
        let a = run_study(s, &quick_cfg());
        let b = run_study(s, &quick_cfg());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.iterations.len(), y.iterations.len());
            for (ix, iy) in x.iterations.iter().zip(&y.iterations) {
                assert_eq!(ix.declared, iy.declared);
                assert_eq!(ix.shown_rows, iy.shown_rows);
            }
        }
    }

    #[test]
    fn declared_f1_generally_improves() {
        // FP participants should, on average, end closer to the target
        // than they start (human learning!).
        let s = &scenarios()[4];
        let cfg = StudyConfig {
            participants: 10,
            ht_participants: 0,
            rows: 250,
            seed: 7,
            ..StudyConfig::default()
        };
        let trajs = run_study(s, &cfg);
        let first: f64 = trajs
            .iter()
            .map(|t| t.iterations[0].declared_f1)
            .sum::<f64>()
            / trajs.len() as f64;
        let last: f64 = trajs
            .iter()
            .map(|t| t.iterations.last().unwrap().declared_f1)
            .sum::<f64>()
            / trajs.len() as f64;
        assert!(
            last >= first - 0.02,
            "average declared F1 regressed: {first} -> {last}"
        );
    }
}
