//! The five user-study scenarios of Table 2.
//!
//! Each scenario names a small schema over one of the two study domains,
//! a *target* FD set (the FDs that hold over the clean data with the fewest
//! exceptions) and *alternative* FDs a participant might plausibly believe.
//! Violations are injected with the scenario's ratio (`m/n` target-to-
//! alternative): 1/3 for the Airport scenarios, 2/3 for the OMDB ones.

use et_data::gen::{AttrGen, DatasetSpec, GeneratedDataset};
use et_data::{inject_errors, FdSpec, InjectConfig, Injection};
use et_fd::{Fd, HypothesisSpace};

/// One user-study scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario number (1–5, as in Table 2).
    pub id: usize,
    /// Source domain ("Airport" or "OMDB").
    pub domain: &'static str,
    /// Generator for the scenario's clean dataset.
    pub spec: DatasetSpec,
    /// Target FDs (hold exactly on clean data).
    pub targets: Vec<FdSpec>,
    /// Alternative FDs participants might believe.
    pub alternatives: Vec<FdSpec>,
    /// The violation ratio (m, n): m target violations per n alternative
    /// violations.
    pub ratio: (f64, f64),
    /// Extra decision noise participants exhibit on this scenario — the
    /// paper observed "significantly less monotone learning in scenario 2
    /// ... this scenario is rather more difficult than others" (§A.3).
    pub confusion: f64,
}

impl Scenario {
    /// Generates the scenario dataset with injected violations.
    ///
    /// Returns the dirty table, the injection ground truth, and the clean
    /// generated dataset's FDs.
    pub fn materialize(&self, rows: usize, degree: f64, seed: u64) -> ScenarioData {
        let mut ds: GeneratedDataset = self.spec.generate(rows, seed);
        let cfg = InjectConfig {
            degree,
            target_weight: self.ratio.0,
            alt_weight: self.ratio.1,
            seed: seed ^ 0x1f83_d9ab_fb41_bd6b,
            ..InjectConfig::default()
        };
        let injection = inject_errors(&mut ds.table, &self.targets, &self.alternatives, &cfg);
        ScenarioData {
            table: ds.table,
            injection,
        }
    }

    /// The hypothesis space participants reason over: every normalized FD
    /// of the scenario schema with at most four attributes.
    pub fn space(&self) -> HypothesisSpace {
        let n = self.spec.attrs.len() as u16;
        HypothesisSpace::enumerate(n, 4.min(u32::from(n)))
    }

    /// The primary target FD in `et_fd` form.
    pub fn target_fd(&self) -> Fd {
        Fd::from_spec(&self.targets[0])
    }

    /// All target FDs in `et_fd` form.
    pub fn target_fds(&self) -> Vec<Fd> {
        self.targets.iter().map(Fd::from_spec).collect()
    }

    /// The primary alternative FD in `et_fd` form (what a confused
    /// participant starts out believing).
    pub fn alternative_fd(&self) -> Fd {
        Fd::from_spec(&self.alternatives[0])
    }
}

/// A materialized scenario: dirty table plus ground truth.
#[derive(Debug, Clone)]
pub struct ScenarioData {
    /// The dirty table participants annotate.
    pub table: et_data::Table,
    /// Injection ground truth (dirty rows/cells, achieved degree).
    pub injection: Injection,
}

impl ScenarioData {
    /// Ground-truth clean flags per row.
    pub fn clean_rows(&self) -> Vec<bool> {
        self.injection.dirty_rows.iter().map(|&d| !d).collect()
    }
}

/// The five scenarios of Table 2.
///
/// Attribute cardinalities scale with the generated row count; the
/// generator guarantees the target FDs hold exactly on clean data while the
/// alternatives are plausible but violated.
///
/// ```
/// let all = et_userstudy::scenarios();
/// assert_eq!(all.len(), 5);
/// assert_eq!(all[0].ratio, (1.0, 3.0)); // Airport scenarios use 1/3
/// ```
pub fn scenarios() -> Vec<Scenario> {
    vec![
        // #1 Airport: (facilityname, type) -> manager vs
        //             facilityname -> (type, manager).
        // `type` almost-follows from `facilityname`, so the alternatives
        // nearly hold — plausible, but with more exceptions than the target.
        Scenario {
            id: 1,
            domain: "Airport",
            spec: DatasetSpec {
                name: "airport-s1".into(),
                attrs: vec![
                    AttrGen::base("facilityname", 24, 0.8),           // 0
                    AttrGen::noisy_derived("type", vec![0], 3, 0.10), // 1
                    AttrGen::derived("manager", vec![0, 1], 30),      // 2
                ],
            },
            targets: vec![FdSpec::new(vec![0, 1], 2)],
            alternatives: vec![FdSpec::new(vec![0], 1), FdSpec::new(vec![0], 2)],
            ratio: (1.0, 3.0),
            confusion: 0.0,
        },
        // #2 Airport: sitenumber -> (facilityname, owner, manager) vs
        //             facilityname -> (sitenumber, owner, manager).
        Scenario {
            id: 2,
            domain: "Airport",
            spec: DatasetSpec {
                name: "airport-s2".into(),
                attrs: vec![
                    AttrGen::base("sitenumber", 36, 0.8),          // 0
                    AttrGen::derived("facilityname", vec![0], 30), // 1
                    AttrGen::derived("owner", vec![0], 22),        // 2
                    AttrGen::derived("manager", vec![0], 26),      // 3
                ],
            },
            targets: vec![
                FdSpec::new(vec![0], 1),
                FdSpec::new(vec![0], 2),
                FdSpec::new(vec![0], 3),
            ],
            alternatives: vec![FdSpec::new(vec![1], 2), FdSpec::new(vec![1], 3)],
            ratio: (1.0, 3.0),
            // The alternative determinant is a near-function of the target's
            // (facilityname = f(sitenumber) with close cardinalities), which
            // is what made real participants oscillate.
            confusion: 0.30,
        },
        // #3 Airport: manager -> owner vs facilityname -> (owner, manager).
        // `manager` almost-follows from `facilityname`, making the
        // alternatives nearly hold.
        Scenario {
            id: 3,
            domain: "Airport",
            spec: DatasetSpec {
                name: "airport-s3".into(),
                attrs: vec![
                    AttrGen::base("facilityname", 28, 0.6),               // 0
                    AttrGen::derived("owner", vec![2], 18),               // 1
                    AttrGen::noisy_derived("manager", vec![0], 26, 0.08), // 2
                ],
            },
            targets: vec![FdSpec::new(vec![2], 1)],
            alternatives: vec![FdSpec::new(vec![0], 1), FdSpec::new(vec![0], 2)],
            ratio: (1.0, 3.0),
            confusion: 0.0,
        },
        // #4 OMDB: (title, year) -> (type, genre) vs
        //          title -> (year, type, genre). Movies rarely share a
        //          title across years, so title almost-determines year.
        Scenario {
            id: 4,
            domain: "OMDB",
            spec: DatasetSpec {
                name: "omdb-s4".into(),
                attrs: vec![
                    AttrGen::base("title", 40, 1.0),                   // 0
                    AttrGen::noisy_derived("year", vec![0], 20, 0.12), // 1
                    AttrGen::derived("genre", vec![0, 1], 12),         // 2
                    AttrGen::derived("type", vec![0, 1], 2),           // 3
                ],
            },
            targets: vec![FdSpec::new(vec![0, 1], 3), FdSpec::new(vec![0, 1], 2)],
            alternatives: vec![FdSpec::new(vec![0], 1), FdSpec::new(vec![0], 3)],
            ratio: (2.0, 3.0),
            confusion: 0.0,
        },
        // #5 OMDB: rating -> type vs title -> (rating, type). A title
        // almost-determines its rating.
        Scenario {
            id: 5,
            domain: "OMDB",
            spec: DatasetSpec {
                name: "omdb-s5".into(),
                attrs: vec![
                    AttrGen::base("title", 45, 0.9),                    // 0
                    AttrGen::noisy_derived("rating", vec![0], 8, 0.10), // 1
                    AttrGen::derived("type", vec![1], 2),               // 2
                ],
            },
            targets: vec![FdSpec::new(vec![1], 2)],
            alternatives: vec![FdSpec::new(vec![0], 1), FdSpec::new(vec![0], 2)],
            ratio: (2.0, 3.0),
            confusion: 0.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use et_data::violation_degree;

    #[test]
    fn five_scenarios_with_paper_ratios() {
        let all = scenarios();
        assert_eq!(all.len(), 5);
        for (i, s) in all.iter().enumerate() {
            assert_eq!(s.id, i + 1);
        }
        assert_eq!(all[0].ratio, (1.0, 3.0));
        assert_eq!(all[4].ratio, (2.0, 3.0));
        assert_eq!(all[0].domain, "Airport");
        assert_eq!(all[3].domain, "OMDB");
    }

    #[test]
    fn targets_hold_on_clean_data() {
        for s in scenarios() {
            let clean = s.spec.generate(250, 9);
            for t in &s.targets {
                let deg = violation_degree(&clean.table, std::slice::from_ref(t));
                assert_eq!(
                    deg,
                    0.0,
                    "scenario {}: target {} violated on clean data",
                    s.id,
                    t.display(clean.table.schema())
                );
            }
        }
    }

    #[test]
    fn alternatives_are_wrong_but_plausible() {
        for s in scenarios() {
            let clean = s.spec.generate(300, 9);
            for a in &s.alternatives {
                let deg = violation_degree(&clean.table, std::slice::from_ref(a));
                assert!(
                    deg > 0.0,
                    "scenario {}: alternative {} should not hold exactly",
                    s.id,
                    a.display(clean.table.schema())
                );
                assert!(
                    deg < 0.6,
                    "scenario {}: alternative {} too implausible (degree {deg})",
                    s.id,
                    a.display(clean.table.schema())
                );
            }
        }
    }

    #[test]
    fn materialize_injects_requested_violations() {
        let s = &scenarios()[0];
        let data = s.materialize(250, 0.30, 3);
        assert!(data.injection.achieved_degree >= 0.30);
        assert!(data.injection.dirty_row_count() > 0);
        let clean = data.clean_rows();
        assert_eq!(clean.len(), 250);
    }

    #[test]
    fn spaces_contain_targets_and_alternatives() {
        for s in scenarios() {
            let space = s.space();
            for fd in s.target_fds() {
                assert!(space.contains(&fd), "scenario {} missing target", s.id);
            }
            assert!(space.contains(&s.alternative_fd()));
        }
    }
}
