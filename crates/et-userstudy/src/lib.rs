//! The simulated user study (paper §3, Appendix A).
//!
//! The paper ran 20 students through five FD-annotation scenarios over the
//! AIRPORT and OMDB datasets to determine *how humans learn while
//! labeling*, concluding that fictitious play / Bayesian learning explains
//! participants far better than hypothesis testing (Figure 2), and that
//! users' hypotheses move substantially between rounds (Table 3).
//!
//! Without access to the original participants we simulate them
//! (DESIGN.md §2): each synthetic annotator owns an *internal* learning
//! rule drawn from a configurable mixture — FP/Bayesian for most,
//! hypothesis testing for a minority, matching the paper's finding that all
//! but two participants were FP-like — plus decision noise. The study then
//! replays the paper's protocol: 9–15 iterations of ten random tuples,
//! violation marking, and an explicit declared FD per iteration. The
//! analyses of [`analysis`] regenerate Table 3 and Figure 2 from the
//! recorded trajectories.

#![warn(missing_docs)]

pub mod analysis;
pub mod participant;
pub mod scenario;
pub mod study;

pub use analysis::{
    average_f1_change, per_participant_mrr, predictor_mrr, predictor_win_counts, MrrReport,
    ParticipantMrr, PredictorKind,
};
pub use participant::{LearningRule, Participant, ParticipantConfig};
pub use scenario::{scenarios, Scenario};
pub use study::{run_study, study_dataset, IterationRecord, StudyConfig, Trajectory};
