//! Candidate pair pools.
//!
//! The learner's policy is a distribution over examples of the dataset; for
//! FD training the informative examples are pairs of tuples that agree on
//! at least one hypothesis-space LHS (other pairs carry no evidence for any
//! FD). The pool enumerates those pairs once per session — capped by
//! uniform subsampling when the quadratic blowup gets large — and the
//! response strategies then score/sample within it.

use std::collections::HashSet;

use et_data::Table;
use et_fd::{HypothesisSpace, PartitionCache};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::game::PairExample;

/// The set of candidate pairs a session draws examples from.
#[derive(Debug, Clone)]
pub struct CandidatePool {
    pairs: Vec<PairExample>,
}

impl CandidatePool {
    /// Enumerates every pair agreeing on at least one distinct LHS of
    /// `space`; if more than `max_pairs` exist, keeps a uniform reservoir
    /// sample of `max_pairs` (deterministic in `seed`).
    ///
    /// # Panics
    /// Panics when `max_pairs` is zero.
    pub fn build(table: &Table, space: &HypothesisSpace, max_pairs: usize, seed: u64) -> Self {
        let cache = PartitionCache::new(table);
        Self::build_with(table, space, &cache, max_pairs, seed)
    }

    /// [`CandidatePool::build`] over a shared [`PartitionCache`]: walks the
    /// memoized stripped partition of each distinct LHS instead of
    /// re-grouping the table per determinant.
    ///
    /// Bit-identical to the raw `group_by` enumeration (pinned by proptest):
    /// both visit multi-row groups in ascending first-row order with members
    /// ascending — a stripped partition *is* that grouping with singleton
    /// groups removed, and singleton groups contribute no pairs — so the
    /// reservoir sees the same pair sequence and draws the same sample.
    ///
    /// # Panics
    /// Panics when `max_pairs` is zero or `cache` was built for a table
    /// with a different row count.
    pub fn build_with(
        table: &Table,
        space: &HypothesisSpace,
        cache: &PartitionCache,
        max_pairs: usize,
        seed: u64,
    ) -> Self {
        assert!(max_pairs > 0, "pool must allow at least one pair");
        let mut seen: HashSet<PairExample> = HashSet::new();
        let mut reservoir: Vec<PairExample> = Vec::new();
        let mut n_seen = 0usize;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x853c_49e6_748f_ea9b);
        for lhs in space.distinct_lhs() {
            let part = cache.partition(table, lhs);
            for group in &part.classes {
                for (i, &a) in group.iter().enumerate() {
                    for &b in &group[i + 1..] {
                        let p = PairExample::new(a as usize, b as usize);
                        if !seen.insert(p) {
                            continue;
                        }
                        n_seen += 1;
                        if reservoir.len() < max_pairs {
                            reservoir.push(p);
                        } else {
                            let j = rng.gen_range(0..n_seen);
                            if j < max_pairs {
                                reservoir[j] = p;
                            }
                        }
                    }
                }
            }
        }
        reservoir.sort_unstable();
        Self { pairs: reservoir }
    }

    /// Builds a pool from explicit pairs (tests, custom workloads).
    pub fn from_pairs(pairs: Vec<PairExample>) -> Self {
        let mut seen = HashSet::new();
        let mut out: Vec<PairExample> = pairs.into_iter().filter(|p| seen.insert(*p)).collect();
        out.sort_unstable();
        Self { pairs: out }
    }

    /// All pairs, sorted.
    pub fn pairs(&self) -> &[PairExample] {
        &self.pairs
    }

    /// Number of candidate pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Pairs not yet shown to the trainer (the learner provides a fresh
    /// example in each interaction, §2).
    pub fn fresh(&self, shown: &HashSet<PairExample>) -> Vec<PairExample> {
        self.pairs
            .iter()
            .copied()
            .filter(|p| !shown.contains(p))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use et_data::table::paper_table1;
    use et_fd::Fd;

    fn space() -> HypothesisSpace {
        HypothesisSpace::from_fds([
            Fd::from_attrs([1], 2),    // Team groups: {0,1}, {2,3}
            Fd::from_attrs([2, 3], 4), // (City,Role) group: {1,2}
        ])
    }

    #[test]
    fn enumerates_relevant_pairs() {
        let t = paper_table1();
        let pool = CandidatePool::build(&t, &space(), 100, 1);
        let expect = vec![
            PairExample::new(0, 1),
            PairExample::new(1, 2),
            PairExample::new(2, 3),
        ];
        assert_eq!(pool.pairs(), expect.as_slice());
    }

    #[test]
    fn caps_with_reservoir() {
        let t = paper_table1();
        let pool = CandidatePool::build(&t, &space(), 2, 1);
        assert_eq!(pool.len(), 2);
        // Sampled pairs come from the full relevant set.
        let full = CandidatePool::build(&t, &space(), 100, 1);
        for p in pool.pairs() {
            assert!(full.pairs().contains(p));
        }
    }

    #[test]
    fn build_deterministic() {
        let ds = et_data::gen::omdb(150, 2);
        let fds: Vec<Fd> = ds.exact_fds.iter().map(Fd::from_spec).collect();
        let space = HypothesisSpace::from_fds(fds);
        let a = CandidatePool::build(&ds.table, &space, 50, 9);
        let b = CandidatePool::build(&ds.table, &space, 50, 9);
        assert_eq!(a.pairs(), b.pairs());
    }

    #[test]
    fn fresh_filters_shown() {
        let t = paper_table1();
        let pool = CandidatePool::build(&t, &space(), 100, 1);
        let mut shown = HashSet::new();
        shown.insert(PairExample::new(0, 1));
        let fresh = pool.fresh(&shown);
        assert_eq!(fresh.len(), pool.len() - 1);
        assert!(!fresh.contains(&PairExample::new(0, 1)));
    }

    #[test]
    fn from_pairs_dedups_and_sorts() {
        let pool = CandidatePool::from_pairs(vec![
            PairExample::new(3, 1),
            PairExample::new(0, 2),
            PairExample::new(1, 3),
        ]);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.pairs()[0], PairExample::new(0, 2));
    }
}
