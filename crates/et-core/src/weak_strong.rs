//! Weak/strong labeler escalation — the related-work combination the paper
//! calls for ("active learning from weak and strong labelers", Zhang &
//! Chaudhuri 2015; §D suggests exploring such combinations with exploratory
//! training).
//!
//! A *weak* trainer labels every interaction for free; a *strong* trainer
//! is consulted only when the learner's own predictions disagree with the
//! weak labels beyond a threshold — the canonical disagreement-based
//! escalation. Both trainers may themselves be learning (exploratory)
//! annotators.

use std::sync::Arc;

use et_data::{split_rows, Table};
use et_fd::{predict_labels, HypothesisSpace, PartitionCache, RelationMatrix, ViolationIndex};
use et_metrics::ConfusionMatrix;

use crate::candidates::CandidatePool;
use crate::learner::Learner;
use crate::respond::ScoreCtx;
use crate::session::{mae, sample_rows};
use crate::trainer::Trainer;

/// Configuration of a weak/strong session.
#[derive(Debug, Clone)]
pub struct WeakStrongConfig {
    /// Interactions to run.
    pub iterations: usize,
    /// Pairs selected per interaction.
    pub pairs_per_iteration: usize,
    /// Escalate to the strong trainer when the fraction of sample tuples
    /// whose weak label disagrees with the learner's own prediction exceeds
    /// this threshold.
    pub escalation_threshold: f64,
    /// Held-out fraction for F1 evaluation.
    pub test_frac: f64,
    /// Candidate pool cap.
    pub pool_cap: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for WeakStrongConfig {
    fn default() -> Self {
        Self {
            iterations: 30,
            pairs_per_iteration: 5,
            escalation_threshold: 0.2,
            test_frac: 0.3,
            pool_cap: 4000,
            seed: 0,
        }
    }
}

/// Per-iteration record of a weak/strong session.
#[derive(Debug, Clone)]
pub struct WeakStrongIteration {
    /// Interaction number.
    pub t: usize,
    /// Whether the strong trainer was consulted.
    pub escalated: bool,
    /// Disagreement fraction that drove the decision.
    pub disagreement: f64,
    /// MAE between learner and the *strong* trainer's model.
    pub mae_vs_strong: f64,
    /// Learner F1 on the held-out test set.
    pub learner_f1: f64,
}

/// Outcome of [`run_weak_strong`].
#[derive(Debug, Clone)]
pub struct WeakStrongResult {
    /// Per-iteration records.
    pub iterations: Vec<WeakStrongIteration>,
    /// Interactions answered by the weak trainer alone.
    pub weak_only: usize,
    /// Interactions escalated to the strong trainer.
    pub escalations: usize,
}

impl WeakStrongResult {
    /// Fraction of interactions escalated.
    pub fn escalation_rate(&self) -> f64 {
        if self.iterations.is_empty() {
            0.0
        } else {
            self.escalations as f64 / self.iterations.len() as f64
        }
    }
}

/// Runs the escalation protocol.
///
/// # Panics
/// Panics when `dirty_rows` does not have one flag per table row.
pub fn run_weak_strong(
    table: &Table,
    space: Arc<HypothesisSpace>,
    dirty_rows: &[bool],
    weak: &mut dyn Trainer,
    strong: &mut dyn Trainer,
    learner: &mut Learner,
    cfg: &WeakStrongConfig,
) -> WeakStrongResult {
    assert_eq!(dirty_rows.len(), table.nrows());
    let (train_rows, test_rows) = split_rows(table.nrows(), cfg.test_frac, cfg.seed);
    let in_train = {
        let mut mask = vec![false; table.nrows()];
        for &r in &train_rows {
            mask[r] = true;
        }
        mask
    };
    // One cache for the whole protocol: the score build warms it, every
    // per-iteration sample index restricts it.
    let cache = PartitionCache::new(table);
    let test_index = ViolationIndex::build_subsample(table, &space, &cache, &test_rows);
    let test_dirty: Vec<bool> = test_rows.iter().map(|&r| dirty_rows[r]).collect();
    let test_eval: Vec<usize> = (0..test_rows.len()).collect();
    let score_index = ViolationIndex::build_with(table, &space, &cache);

    let pool = CandidatePool::build_with(table, &space, &cache, cfg.pool_cap, cfg.seed);
    let pool = CandidatePool::from_pairs(
        pool.pairs()
            .iter()
            .copied()
            .filter(|p| in_train[p.a] && in_train[p.b])
            .collect(),
    );
    // Round-invariant relations over the pool: precompute once, score every
    // iteration from the packed matrix.
    let pool_pairs: Vec<(usize, usize)> = pool.pairs().iter().map(|p| (p.a, p.b)).collect();
    let matrix = RelationMatrix::build(table, &space, &cache, &pool_pairs);

    let mut iterations = Vec::with_capacity(cfg.iterations);
    let mut weak_only = 0;
    let mut escalations = 0;

    for t in 0..cfg.iterations {
        let ctx = ScoreCtx::new(table)
            .with_index(&score_index)
            .with_matrix(&matrix);
        let pairs = learner.select(ctx, &pool, cfg.pairs_per_iteration);
        if pairs.is_empty() {
            break;
        }
        let sample = sample_rows(&pairs, table.nrows());

        let weak_labels = weak.respond(table, &sample);
        // The learner's own predictions within the sample context.
        let sub_index = ViolationIndex::build_subsample(table, &space, &cache, &sample);
        let local: Vec<usize> = (0..sample.len()).collect();
        let predicted = predict_labels(&sub_index, &learner.confidences(), &local);
        let disagreement = predicted
            .iter()
            .zip(&weak_labels)
            .filter(|(p, w)| p != w)
            .count() as f64
            / sample.len().max(1) as f64;

        let (labels, escalated) = if disagreement > cfg.escalation_threshold {
            escalations += 1;
            (strong.respond(table, &sample), true)
        } else {
            weak_only += 1;
            // Keep the strong trainer's belief in sync with what it would
            // have observed — it still "sees" the data stream (the paper's
            // trainer updates on every presented sample), it just is not
            // asked to label.
            let _ = strong.respond(table, &sample);
            (weak_labels, false)
        };

        learner.absorb_interaction(table, &pairs, &sample, &labels);

        let lc = learner.confidences();
        let learner_pred = predict_labels(&test_index, &lc, &test_eval);
        let m = ConfusionMatrix::from_predictions(&learner_pred, &test_dirty);
        iterations.push(WeakStrongIteration {
            t,
            escalated,
            disagreement,
            mae_vs_strong: mae(&strong.confidences(), &lc),
            learner_f1: m.f1(),
        });
    }

    WeakStrongResult {
        iterations,
        weak_only,
        escalations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::respond::{ResponseStrategy, StrategyKind};
    use crate::trainer::{FpTrainer, NoisyTrainer, OracleTrainer};
    use et_belief::{build_prior, EvidenceConfig, PriorConfig, PriorSpec};
    use et_data::gen::DatasetName;
    use et_data::{inject_errors, InjectConfig};
    use et_fd::Fd;

    fn fixture() -> (Table, Vec<bool>, Arc<HypothesisSpace>, Vec<Fd>) {
        let mut ds = DatasetName::Omdb.generate(160, 21);
        let specs = ds.exact_fds.clone();
        let inj = inject_errors(
            &mut ds.table,
            &specs,
            &[],
            &InjectConfig::with_degree(0.12, 3),
        );
        let truth: Vec<Fd> = specs.iter().map(Fd::from_spec).collect();
        let space = Arc::new(HypothesisSpace::capped(&ds.table, 3, 20, 10, &truth));
        (ds.table, inj.dirty_rows, space, truth)
    }

    fn learner(space: &Arc<HypothesisSpace>, table: &Table) -> Learner {
        let prior = build_prior(
            &PriorSpec::DataEstimate,
            &PriorConfig {
                strength: 0.3,
                ..PriorConfig::default()
            },
            space,
            table,
        );
        Learner::new(
            prior,
            ResponseStrategy::paper(StrategyKind::StochasticBestResponse),
            EvidenceConfig::default(),
            5,
        )
    }

    #[test]
    fn noisy_weak_labeler_triggers_escalations() {
        let (table, dirty, space, truth) = fixture();
        let oracle_conf: Vec<f64> = space
            .fds()
            .iter()
            .map(|fd| if truth.contains(fd) { 0.98 } else { 0.05 })
            .collect();
        // Weak: oracle labels flipped 45% of the time. Strong: clean oracle.
        let mut weak = NoisyTrainer::new(
            OracleTrainer::new(dirty.clone(), oracle_conf.clone()),
            0.45,
            9,
        );
        let mut strong = OracleTrainer::new(dirty.clone(), oracle_conf);
        let mut l = learner(&space, &table);
        let r = run_weak_strong(
            &table,
            space,
            &dirty,
            &mut weak,
            &mut strong,
            &mut l,
            &WeakStrongConfig {
                iterations: 15,
                seed: 2,
                ..WeakStrongConfig::default()
            },
        );
        assert_eq!(r.iterations.len(), 15);
        assert!(
            r.escalations > 0,
            "a 45%-noise weak labeler must trigger escalations"
        );
        assert_eq!(r.escalations + r.weak_only, 15);
        assert!((0.0..=1.0).contains(&r.escalation_rate()));
    }

    #[test]
    fn agreeing_trainers_rarely_escalate() {
        let (table, dirty, space, truth) = fixture();
        let oracle_conf: Vec<f64> = space
            .fds()
            .iter()
            .map(|fd| if truth.contains(fd) { 0.98 } else { 0.05 })
            .collect();
        // Weak = strong = oracle, learner starts from data estimate: after
        // a few interactions predictions align and escalations stay low.
        let mut weak = OracleTrainer::new(dirty.clone(), oracle_conf.clone());
        let mut strong = OracleTrainer::new(dirty.clone(), oracle_conf);
        let mut l = learner(&space, &table);
        let r = run_weak_strong(
            &table,
            space,
            &dirty,
            &mut weak,
            &mut strong,
            &mut l,
            &WeakStrongConfig {
                iterations: 15,
                escalation_threshold: 0.5,
                seed: 3,
                ..WeakStrongConfig::default()
            },
        );
        assert!(
            r.escalation_rate() < 0.5,
            "rate {:.2} too high for agreeing oracles",
            r.escalation_rate()
        );
    }

    #[test]
    fn works_with_learning_trainers_on_both_sides() {
        let (table, dirty, space, _) = fixture();
        let prior_cfg = PriorConfig {
            strength: 0.3,
            ..PriorConfig::default()
        };
        let weak_prior = build_prior(&PriorSpec::Random { seed: 4 }, &prior_cfg, &space, &table);
        let strong_prior = build_prior(&PriorSpec::DataEstimate, &prior_cfg, &space, &table);
        let mut weak = FpTrainer::new(weak_prior, EvidenceConfig::default());
        let mut strong = FpTrainer::new(strong_prior, EvidenceConfig::default());
        let mut l = learner(&space, &table);
        let r = run_weak_strong(
            &table,
            space,
            &dirty,
            &mut weak,
            &mut strong,
            &mut l,
            &WeakStrongConfig {
                iterations: 12,
                seed: 7,
                ..WeakStrongConfig::default()
            },
        );
        assert_eq!(r.iterations.len(), 12);
        for it in &r.iterations {
            assert!((0.0..=1.0).contains(&it.disagreement));
            assert!((0.0..=1.0).contains(&it.mae_vs_strong));
        }
    }
}
