//! Trainer agents — models of the human annotator.
//!
//! The user study (§3, §A) finds that humans training a model are best
//! described by fictitious play / Bayesian learning, so the empirical study
//! "simulates the trainer's learning using FP (Bayesian)" — that is
//! [`FpTrainer`]. [`HtTrainer`] implements the competing hypothesis-testing
//! model; [`StationaryTrainer`] is the fixed-belief annotator classic
//! active learning assumes; [`OracleTrainer`] labels from ground truth
//! (an upper bound); [`NoisyTrainer`] wraps any trainer with i.i.d. label
//! flips (the "fixed small chance of annotation mistakes" of prior work).
//!
//! **Protocol.** Each interaction the trainer receives the full presented
//! *sample* (the paper shows k = 10 tuples), inspects every within-sample
//! tuple pair — that is how an annotator actually spots FD violations —
//! updates its belief, and returns one clean/dirty label per tuple.

use std::sync::Arc;

use et_belief::{
    update_from_pair_relations, Belief, EvidenceConfig, HypothesisTester, LabeledPair,
};
use et_data::Table;
use et_durable::{Dec, DurableError, Enc};
use et_fd::{pair_relation, tuple_dirty_prob, PairRelation, PartitionCache, ViolationIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::journal::{load_belief, save_belief};

/// A trainer: observes a presented sample, (possibly) learns, and labels
/// each tuple of the sample (`true` = dirty).
pub trait Trainer {
    /// Observes the sample (row ids into `table`), updates any internal
    /// state, and returns one label per sample tuple.
    fn respond(&mut self, table: &Table, sample: &[usize]) -> Vec<bool>;

    /// The trainer's current per-FD confidences (the θ^T the learner tries
    /// to match; used by the MAE metric).
    fn confidences(&self) -> Vec<f64>;

    /// Display name.
    fn name(&self) -> String;
}

/// Trainers whose mutable state can be written into a session snapshot and
/// restored bit-exactly — the trainer-side half of [`crate::journal`].
/// Construction-time configuration (thresholds, caches, evidence weights)
/// is *not* saved; recovery rebuilds the trainer from the original spec and
/// only overlays the state that evolves during a session.
pub trait TrainerPersist: Trainer {
    /// Appends the trainer's mutable state to a snapshot payload.
    fn save_state(&self, enc: &mut Enc);

    /// Restores state saved by [`TrainerPersist::save_state`].
    ///
    /// # Errors
    /// [`DurableError::Decode`] on truncated or inconsistent bytes (e.g. a
    /// snapshot taken over a different hypothesis space).
    fn load_state(&mut self, dec: &mut Dec<'_>) -> Result<(), DurableError>;
}

/// All unordered within-sample pairs (as local indices into the sample).
fn local_pairs(n: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            out.push((i, j));
        }
    }
    out
}

/// Labels every tuple of a presented sample by thresholding the belief-
/// weighted dirty probability computed from the sample's own violation
/// structure. The detector's sigmoid indicator already gates out
/// hypotheses the annotator has not firmly accepted.
///
/// With a matching [`PartitionCache`] the sample's index restricts the
/// cached full-table partitions in `O(|sample|)`; otherwise (no cache, a
/// foreign table, or a sample with repeats) it is built from the subset
/// table. Both paths produce bit-identical labels.
fn label_sample(
    table: &Table,
    sample: &[usize],
    belief: &Belief,
    threshold: f64,
    cache: Option<&PartitionCache>,
) -> Vec<bool> {
    let idx = match cache {
        Some(c) if c.n_rows() == table.nrows() && all_distinct(sample, table.nrows()) => {
            ViolationIndex::build_subsample(table, belief.space(), c, sample)
        }
        _ => ViolationIndex::build(&table.subset(sample), belief.space()),
    };
    let conf = belief.confidences();
    (0..sample.len())
        .map(|i| tuple_dirty_prob(&idx, &conf, i) > threshold)
        .collect()
}

/// True when every row id occurs at most once (the subsample restriction
/// requires a duplicate-free sample; presented samples always are).
fn all_distinct(sample: &[usize], n_rows: usize) -> bool {
    let mut seen = vec![false; n_rows];
    sample.iter().all(|&r| {
        let fresh = !seen[r];
        seen[r] = true;
        fresh
    })
}

/// The fictitious-play (Bayesian) trainer the user study validates.
///
/// Each interaction it (1) pairs the newly presented tuples against
/// everything it has seen so far and updates its belief with the raw
/// satisfies/violates relations — the paper's cumulative prediction model
/// `θ_t^T = P^T(θ_{t−1}^T, X^1, …, X^t)`, the annotator estimating which
/// FDs "hold over the observed data with the fewest exceptions" — then
/// (2) labels the sample tuples from the *updated* belief, judging
/// violations within the presented sample (the user study has participants
/// mark violations "in the presented examples"). Labels therefore drift as
/// the trainer's belief evolves: the non-stationarity the paper is about.
#[derive(Debug, Clone)]
pub struct FpTrainer {
    belief: Belief,
    /// Weight of each observed pair relation in the belief update.
    pub observation_weight: f64,
    /// Dirty-probability threshold for labeling (default 0.5).
    pub threshold: f64,
    /// When true, new tuples are also paired against every previously seen
    /// tuple (cumulative `P^T(θ, X^1..X^t)`); when false the update uses the
    /// presented sample only.
    cross_memory: bool,
    /// Per-interaction belief discount (discounted fictitious play); `None`
    /// keeps all evidence forever.
    discount: Option<f64>,
    /// Shared partition cache of the session's table, when attached.
    cache: Option<Arc<PartitionCache>>,
    memory: Vec<usize>,
    in_memory: std::collections::HashSet<usize>,
}

impl FpTrainer {
    /// Builds the trainer from a prior belief.
    pub fn new(prior: Belief, evidence: EvidenceConfig) -> Self {
        Self {
            belief: prior,
            observation_weight: evidence.clean_weight,
            threshold: 0.5,
            cross_memory: false,
            discount: None,
            cache: None,
            memory: Vec::new(),
            in_memory: std::collections::HashSet::new(),
        }
    }

    /// Attaches the session's shared [`PartitionCache`]: sample labeling
    /// then restricts cached full-table partitions instead of re-indexing a
    /// subset table each round. Labels are bit-identical either way, so
    /// this is purely a fast path (see the session cache parity test).
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<PartitionCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Enables cumulative cross-memory evidence (the annotator re-examines
    /// everything seen so far each round).
    #[must_use]
    pub fn with_cross_memory(mut self, on: bool) -> Self {
        self.cross_memory = on;
        self
    }

    /// Enables discounted fictitious play: pseudo-counts decay by `lambda`
    /// every interaction, letting the annotator track evolving data (the
    /// forgetful-annotator extension the paper's introduction motivates).
    ///
    /// # Panics
    /// Panics when `lambda` is outside `(0, 1]`.
    #[must_use]
    pub fn with_discount(mut self, lambda: f64) -> Self {
        assert!(lambda > 0.0 && lambda <= 1.0, "lambda must be in (0, 1]");
        self.discount = Some(lambda);
        self
    }

    /// Read access to the evolving belief.
    pub fn belief(&self) -> &Belief {
        &self.belief
    }

    /// Tuples observed so far.
    pub fn tuples_seen(&self) -> usize {
        self.memory.len()
    }
}

impl Trainer for FpTrainer {
    fn respond(&mut self, table: &Table, sample: &[usize]) -> Vec<bool> {
        // (0) Discounted FP: old evidence decays before new arrives.
        if let Some(lambda) = self.discount {
            self.belief.discount(lambda);
        }
        // (1) Belief update P^T: every not-yet-counted pair touching a new
        // tuple (new-new within the sample, plus new x previously seen).
        let new: Vec<usize> = sample
            .iter()
            .copied()
            .filter(|r| !self.in_memory.contains(r))
            .collect();
        let mut evidence = Vec::with_capacity(sample.len() * sample.len());
        for (i, &a) in sample.iter().enumerate() {
            for &b in &sample[i + 1..] {
                if a != b {
                    evidence.push((a, b));
                }
            }
        }
        // Within-sample pairs between two previously seen tuples were
        // already counted; drop them to keep each pair's evidence single-use.
        if !self.memory.is_empty() {
            evidence
                .retain(|&(a, b)| !(self.in_memory.contains(&a) && self.in_memory.contains(&b)));
        }
        if self.cross_memory {
            for &a in &new {
                for &b in &self.memory {
                    evidence.push((a, b));
                }
            }
        }
        update_from_pair_relations(&mut self.belief, table, &evidence, self.observation_weight);
        for r in new {
            self.memory.push(r);
            self.in_memory.insert(r);
        }
        // (2) Labels under θ_t, judged within the presented sample.
        label_sample(
            table,
            sample,
            &self.belief,
            self.threshold,
            self.cache.as_deref(),
        )
    }

    fn confidences(&self) -> Vec<f64> {
        self.belief.confidences()
    }

    fn name(&self) -> String {
        "FP".into()
    }
}

impl TrainerPersist for FpTrainer {
    fn save_state(&self, enc: &mut Enc) {
        save_belief(enc, &self.belief);
        enc.put_usize(self.memory.len());
        for &r in &self.memory {
            enc.put_usize(r);
        }
    }

    fn load_state(&mut self, dec: &mut Dec<'_>) -> Result<(), DurableError> {
        load_belief(dec, &mut self.belief)?;
        let n = dec.take_usize()?;
        self.memory = Vec::with_capacity(n);
        for _ in 0..n {
            self.memory.push(dec.take_usize()?);
        }
        // `in_memory` is the membership view of `memory`.
        self.in_memory = self.memory.iter().copied().collect();
        Ok(())
    }
}

/// A hypothesis-testing trainer: labels violations of its single current
/// hypothesis, and switches hypothesis when the recent window rejects it.
#[derive(Debug, Clone)]
pub struct HtTrainer {
    tester: HypothesisTester,
    n_fds: usize,
    /// Confidence reported for the held hypothesis in [`Trainer::confidences`].
    pub held_confidence: f64,
    /// Confidence reported for all other FDs.
    pub other_confidence: f64,
}

impl HtTrainer {
    /// Builds from a hypothesis tester (use
    /// [`et_belief::ScoreMode::DataSatisfaction`] for a human-like trainer).
    pub fn new(tester: HypothesisTester) -> Self {
        let n_fds = tester.space().len();
        Self {
            tester,
            n_fds,
            held_confidence: 0.95,
            other_confidence: 0.1,
        }
    }

    /// The currently held hypothesis index.
    pub fn current_index(&self) -> usize {
        self.tester.current_index()
    }
}

impl Trainer for HtTrainer {
    fn respond(&mut self, table: &Table, sample: &[usize]) -> Vec<bool> {
        let sub = table.subset(sample);
        let current = self.tester.current_fd();
        let mut labels = vec![false; sub.nrows()];
        let mut labeled_pairs = Vec::new();
        for (i, j) in local_pairs(sub.nrows()) {
            let violates = pair_relation(&sub, &current, i, j) == PairRelation::Violates;
            if violates {
                labels[i] = true;
                labels[j] = true;
            }
            // The whole sample is the test window; scoring filters per-FD
            // relevance itself.
            labeled_pairs.push(LabeledPair {
                a: i,
                b: j,
                dirty_a: violates,
                dirty_b: violates,
            });
        }
        // Test (and possibly switch) the hypothesis on this interaction.
        let _ = self.tester.observe_interaction(&sub, &labeled_pairs);
        labels
    }

    fn confidences(&self) -> Vec<f64> {
        let mut conf = vec![self.other_confidence; self.n_fds];
        conf[self.tester.current_index()] = self.held_confidence;
        conf
    }

    fn name(&self) -> String {
        "HT".into()
    }
}

/// The stationary annotator assumed by classic active learning: a fixed
/// belief, never updated.
#[derive(Debug, Clone)]
pub struct StationaryTrainer {
    belief: Belief,
    /// Dirty-probability threshold for labeling.
    pub threshold: f64,
    /// Shared partition cache of the session's table, when attached.
    cache: Option<Arc<PartitionCache>>,
}

impl StationaryTrainer {
    /// Builds from the fixed belief.
    pub fn new(belief: Belief) -> Self {
        Self {
            belief,
            threshold: 0.5,
            cache: None,
        }
    }

    /// Attaches a shared [`PartitionCache`] (see [`FpTrainer::with_cache`]).
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<PartitionCache>) -> Self {
        self.cache = Some(cache);
        self
    }
}

impl Trainer for StationaryTrainer {
    fn respond(&mut self, table: &Table, sample: &[usize]) -> Vec<bool> {
        label_sample(
            table,
            sample,
            &self.belief,
            self.threshold,
            self.cache.as_deref(),
        )
    }

    fn confidences(&self) -> Vec<f64> {
        self.belief.confidences()
    }

    fn name(&self) -> String {
        "Stationary".into()
    }
}

impl TrainerPersist for StationaryTrainer {
    fn save_state(&self, _enc: &mut Enc) {
        // A stationary trainer has no mutable state: the belief is fixed at
        // construction and recovery rebuilds it from the spec.
    }

    fn load_state(&mut self, _dec: &mut Dec<'_>) -> Result<(), DurableError> {
        Ok(())
    }
}

/// Labels straight from ground-truth dirty flags (an annotator with perfect
/// knowledge of which tuples are erroneous) — an upper-bound baseline.
#[derive(Debug, Clone)]
pub struct OracleTrainer {
    dirty: Vec<bool>,
    confidences: Vec<f64>,
}

impl OracleTrainer {
    /// `dirty[row]` is the ground truth; `confidences` is the model the
    /// oracle is assumed to hold (e.g. 1.0 on true FDs).
    pub fn new(dirty: Vec<bool>, confidences: Vec<f64>) -> Self {
        Self { dirty, confidences }
    }
}

impl Trainer for OracleTrainer {
    fn respond(&mut self, _table: &Table, sample: &[usize]) -> Vec<bool> {
        sample.iter().map(|&r| self.dirty[r]).collect()
    }

    fn confidences(&self) -> Vec<f64> {
        self.confidences.clone()
    }

    fn name(&self) -> String {
        "Oracle".into()
    }
}

/// Wraps a trainer with i.i.d. label flips — the fixed, stationary noise
/// model prior active-learning work assumes.
pub struct NoisyTrainer<T: Trainer> {
    inner: T,
    flip_prob: f64,
    rng: StdRng,
}

impl<T: Trainer> NoisyTrainer<T> {
    /// Flips each emitted label independently with probability `flip_prob`.
    ///
    /// # Panics
    /// Panics when `flip_prob` is outside `[0, 1]`.
    pub fn new(inner: T, flip_prob: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&flip_prob),
            "flip probability out of range"
        );
        Self {
            inner,
            flip_prob,
            rng: StdRng::seed_from_u64(seed ^ 0x2545_f491_4f6c_dd1d),
        }
    }
}

impl<T: Trainer> Trainer for NoisyTrainer<T> {
    fn respond(&mut self, table: &Table, sample: &[usize]) -> Vec<bool> {
        let mut labels = self.inner.respond(table, sample);
        for l in &mut labels {
            if self.rng.gen::<f64>() < self.flip_prob {
                *l = !*l;
            }
        }
        labels
    }

    fn confidences(&self) -> Vec<f64> {
        self.inner.confidences()
    }

    fn name(&self) -> String {
        format!("{}+noise", self.inner.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use et_belief::{Beta, ScoreMode};
    use et_data::table::paper_table1;
    use et_fd::{Fd, HypothesisSpace};
    use std::sync::Arc;

    fn space() -> Arc<HypothesisSpace> {
        Arc::new(HypothesisSpace::from_fds([
            Fd::from_attrs([1], 2),    // Team -> City
            Fd::from_attrs([2, 3], 4), // City,Role -> Apps
        ]))
    }

    fn confident_belief() -> Belief {
        Belief::constant(space(), Beta::from_mean_std(0.9, 0.05))
    }

    #[test]
    fn fp_trainer_labels_violations_dirty() {
        let t = paper_table1();
        let mut tr = FpTrainer::new(confident_belief(), EvidenceConfig::default());
        // Sample = whole table: the Lakers pair violates Team -> City.
        let labels = tr.respond(&t, &[0, 1, 2, 3, 4]);
        assert!(labels[0] && labels[1], "violating pair dirty");
        assert!(!labels[2] && !labels[3], "satisfying tuples clean");
        assert!(!labels[4], "irrelevant tuple clean");
    }

    #[test]
    fn fp_trainer_learns_from_observations() {
        let t = paper_table1();
        let mut tr = FpTrainer::new(
            Belief::constant(space(), Beta::new(2.0, 2.0)),
            EvidenceConfig::default(),
        );
        let before = tr.confidences();
        for _ in 0..10 {
            let _ = tr.respond(&t, &[2, 3]); // Bulls pair satisfies fd0
        }
        let after = tr.confidences();
        assert!(after[0] > before[0], "satisfying evidence raises fd0");
        assert_eq!(after[1], before[1], "no fd1 evidence in this sample");
    }

    #[test]
    fn fp_trainer_demotes_violated_fd() {
        let t = paper_table1();
        let mut tr = FpTrainer::new(
            Belief::constant(space(), Beta::new(5.0, 5.0)),
            EvidenceConfig::default(),
        );
        for _ in 0..5 {
            let _ = tr.respond(&t, &[0, 1]); // Lakers violation
        }
        assert!(tr.confidences()[0] < 0.5);
    }

    #[test]
    fn ht_trainer_labels_by_hypothesis_and_switches() {
        let t = paper_table1();
        let tester = HypothesisTester::new(space(), 0, 0.6, ScoreMode::DataSatisfaction);
        let mut tr = HtTrainer::new(tester);
        assert_eq!(tr.current_index(), 0);
        // Sample contains the Lakers violation of fd0 and the (t2, t3)
        // support for fd1.
        let labels = tr.respond(&t, &[0, 1, 2]);
        assert!(
            labels[0] && labels[1],
            "violation of held hypothesis marked"
        );
        assert!(!labels[2]);
        // fd0 scored 0 on the window -> rejected in favour of a better FD.
        assert_ne!(tr.current_index(), 0);
        let conf = tr.confidences();
        assert!(conf[tr.current_index()] > conf[0]);
    }

    #[test]
    fn stationary_trainer_never_moves() {
        let t = paper_table1();
        let mut tr = StationaryTrainer::new(confident_belief());
        let before = tr.confidences();
        for _ in 0..5 {
            let _ = tr.respond(&t, &[0, 1]);
        }
        assert_eq!(tr.confidences(), before);
    }

    #[test]
    fn oracle_labels_ground_truth() {
        let t = paper_table1();
        let mut tr = OracleTrainer::new(vec![false, true, false, false, false], vec![1.0, 0.0]);
        let labels = tr.respond(&t, &[0, 1]);
        assert_eq!(labels, vec![false, true]);
    }

    #[test]
    fn noisy_trainer_flips_some_labels() {
        let t = paper_table1();
        let clean = OracleTrainer::new(vec![false; 5], vec![1.0, 1.0]);
        let mut noisy = NoisyTrainer::new(clean, 0.5, 7);
        let mut flips = 0;
        for _ in 0..20 {
            let labels = noisy.respond(&t, &[0, 1]);
            flips += labels.iter().filter(|&&l| l).count();
        }
        assert!(flips > 5 && flips < 35, "flips = {flips}");
        assert_eq!(noisy.name(), "Oracle+noise");
    }

    #[test]
    fn zero_noise_is_transparent() {
        let t = paper_table1();
        let truth = vec![false, true, false, true, false];
        let mut a = OracleTrainer::new(truth.clone(), vec![1.0, 1.0]);
        let mut b = NoisyTrainer::new(OracleTrainer::new(truth, vec![1.0, 1.0]), 0.0, 7);
        let sample = [0usize, 1, 2, 3];
        assert_eq!(a.respond(&t, &sample), b.respond(&t, &sample));
    }
}
