//! The exploratory-training session: the game loop plus per-iteration
//! metrics and convergence tracking.
//!
//! One session reproduces one curve of the paper's figures: `N` iterations
//! (paper: 30) of `k` examples (paper: 10 tuples = 5 pairs), recording per
//! iteration the MAE between trainer and learner models (Figures 1, 3–6)
//! and the F1 of both agents' labeling on a held-out test set (Figure 7).
//!
//! Convergence is tracked per Definition 2 / Proposition 1: the session
//! reports when both agents' beliefs (and the trainer's empirical labeling
//! frequency Φ_t) stop moving.
//!
//! Two drivers share one engine:
//!
//! * [`run_session`] / [`Session::run`] — the closed batch loop the
//!   experiments use: present, label, update, `N` times.
//! * [`SessionState`] — the resumable step API: `present` → (labels arrive
//!   from *anywhere* — the in-process trainer via [`SessionState::label_pending`]
//!   or a remote annotator over the wire) → [`SessionState::apply_labels`].
//!   The batch loop is implemented on top of it, so a step-driven session
//!   with the same seed reproduces the batch metrics bit for bit.

use std::sync::{Arc, OnceLock};

use et_belief::LabeledPair;
use et_data::{split_rows, Table};
use et_fd::{predict_labels, HypothesisSpace, PartitionCache, RelationMatrix, ViolationIndex};
use et_metrics::ConfusionMatrix;

use crate::candidates::CandidatePool;
use crate::game::Interaction;
use crate::journal::SessionJournal;
use crate::learner::Learner;
use crate::payoff::policy_entropy;
use crate::respond::ScoreCtx;
use crate::trainer::{Trainer, TrainerPersist};

/// Session parameters; defaults follow the paper's empirical study.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Number of interactions `N` (paper: 30).
    pub iterations: usize,
    /// Pairs presented per interaction (paper: 10 tuples = 5 pairs).
    pub pairs_per_iteration: usize,
    /// Fraction of rows held out for F1 evaluation (paper: 0.3).
    pub test_frac: f64,
    /// Cap on the candidate pair pool.
    pub pool_cap: usize,
    /// Belief-drift threshold for convergence detection.
    pub eps_drift: f64,
    /// Consecutive low-drift iterations required to declare convergence.
    pub stability_window: usize,
    /// RNG seed (splits, pool subsampling).
    pub seed: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            iterations: 30,
            pairs_per_iteration: 5,
            test_frac: 0.3,
            pool_cap: 4000,
            eps_drift: 0.005,
            stability_window: 5,
            seed: 0,
        }
    }
}

/// Why a [`SessionConfig`] was rejected by [`SessionConfig::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `iterations` was zero: the session would end before it began.
    ZeroIterations,
    /// `pairs_per_iteration` was zero: nothing would ever be presented.
    ZeroPairsPerIteration,
    /// `test_frac` outside the open interval `(0, 1)`: either no held-out
    /// rows to evaluate on, or no training rows to present.
    TestFracOutOfRange(f64),
    /// `pool_cap` was zero: the candidate pool would be empty.
    ZeroPoolCap,
    /// `stability_window` was zero: convergence would be declared at t = 0.
    ZeroStabilityWindow,
    /// `eps_drift` was negative or not finite.
    BadEpsDrift(f64),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroIterations => write!(f, "iterations must be positive"),
            ConfigError::ZeroPairsPerIteration => {
                write!(f, "pairs_per_iteration must be positive")
            }
            ConfigError::TestFracOutOfRange(v) => {
                write!(f, "test_frac must lie in (0, 1), got {v}")
            }
            ConfigError::ZeroPoolCap => write!(f, "pool_cap must be positive"),
            ConfigError::ZeroStabilityWindow => {
                write!(f, "stability_window must be positive")
            }
            ConfigError::BadEpsDrift(v) => {
                write!(f, "eps_drift must be finite and non-negative, got {v}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl SessionConfig {
    /// Checks the configuration for values that would silently produce a
    /// degenerate run (no interactions, empty pools, vacuous convergence).
    ///
    /// # Errors
    /// Returns the first [`ConfigError`] found, in field order.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.iterations == 0 {
            return Err(ConfigError::ZeroIterations);
        }
        if self.pairs_per_iteration == 0 {
            return Err(ConfigError::ZeroPairsPerIteration);
        }
        if !(self.test_frac > 0.0 && self.test_frac < 1.0) {
            return Err(ConfigError::TestFracOutOfRange(self.test_frac));
        }
        if self.pool_cap == 0 {
            return Err(ConfigError::ZeroPoolCap);
        }
        if self.stability_window == 0 {
            return Err(ConfigError::ZeroStabilityWindow);
        }
        if !self.eps_drift.is_finite() || self.eps_drift < 0.0 {
            return Err(ConfigError::BadEpsDrift(self.eps_drift));
        }
        Ok(())
    }
}

/// Why a [`SessionState`] could not be constructed.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// The configuration failed [`SessionConfig::validate`].
    Config(ConfigError),
    /// The ground-truth dirty flags do not align with the table.
    DirtyRowsMismatch {
        /// Rows in the table.
        rows: usize,
        /// Flags supplied.
        flags: usize,
    },
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Config(e) => write!(f, "invalid session config: {e}"),
            SessionError::DirtyRowsMismatch { rows, flags } => write!(
                f,
                "dirty flags must align with the table ({rows} rows, {flags} flags)"
            ),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<ConfigError> for SessionError {
    fn from(e: ConfigError) -> Self {
        SessionError::Config(e)
    }
}

/// A step called out of phase on a [`SessionState`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepError {
    /// `present` was called while labels for the previous presentation are
    /// still outstanding.
    LabelsPending,
    /// `label_pending`/`apply_labels` was called with no presentation
    /// outstanding.
    NothingPending,
    /// `apply_labels` received the wrong number of labels.
    LabelCount {
        /// Tuples in the pending sample.
        expected: usize,
        /// Labels supplied.
        got: usize,
    },
    /// The attached journal could not durably record the labels; the
    /// presentation stays pending so the step can be retried. Labels are
    /// *not* applied: acknowledgement requires durability.
    Journal(String),
}

impl std::fmt::Display for StepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StepError::LabelsPending => {
                write!(f, "labels for the current presentation are still pending")
            }
            StepError::NothingPending => write!(f, "no presentation is pending"),
            StepError::LabelCount { expected, got } => {
                write!(
                    f,
                    "expected {expected} labels (one per sample tuple), got {got}"
                )
            }
            StepError::Journal(e) => write!(f, "journal append failed: {e}"),
        }
    }
}

impl std::error::Error for StepError {}

/// Everything measured after one interaction.
#[derive(Debug, Clone)]
pub struct IterationMetrics {
    /// Interaction number (0-based).
    pub t: usize,
    /// Mean absolute error between trainer and learner confidences.
    pub mae: f64,
    /// F1 of the learner's labeling on the held-out test set.
    pub learner_f1: f64,
    /// Precision of the learner's labeling on the test set.
    pub learner_precision: f64,
    /// Recall of the learner's labeling on the test set.
    pub learner_recall: f64,
    /// F1 of the trainer's model on the test set (reference).
    pub trainer_f1: f64,
    /// Max confidence move of the learner since the last iteration.
    pub learner_drift: f64,
    /// Max confidence move of the trainer since the last iteration.
    pub trainer_drift: f64,
    /// Entropy of the learner's selection policy this iteration.
    pub policy_entropy: f64,
    /// Dirty labels given this iteration.
    pub dirty_labels: usize,
    /// Cumulative empirical dirty-label frequency Φ_t (trainer actions).
    pub phi_dirty: f64,
    /// Fraction of this iteration's labels the learner's pre-update belief
    /// would have predicted identically (agreement → shared belief).
    pub agreement: f64,
}

/// Convergence summary per Definition 2 / Proposition 1.
#[derive(Debug, Clone)]
pub struct ConvergenceReport {
    /// First iteration after which both agents stayed below `eps_drift` for
    /// `stability_window` consecutive iterations.
    pub converged_at: Option<usize>,
    /// Final MAE between the agents' models.
    pub final_mae: f64,
    /// Mean drift (both agents) over the last `stability_window` iterations.
    pub tail_drift: f64,
    /// Largest change of Φ_t over the last `stability_window` iterations.
    pub tail_phi_change: f64,
}

impl ConvergenceReport {
    /// True when a stable point was reached within the session.
    pub fn converged(&self) -> bool {
        self.converged_at.is_some()
    }
}

/// The outcome of a full session.
#[derive(Debug, Clone)]
pub struct SessionResult {
    /// Per-iteration metrics, one entry per executed interaction.
    pub metrics: Vec<IterationMetrics>,
    /// The full interaction history `h_t`.
    pub history: Vec<Interaction>,
    /// Convergence summary.
    pub convergence: ConvergenceReport,
    /// Trainer's final confidences.
    pub trainer_confidences: Vec<f64>,
    /// Learner's final confidences.
    pub learner_confidences: Vec<f64>,
}

impl SessionResult {
    /// The MAE curve (one value per iteration).
    pub fn mae_series(&self) -> Vec<f64> {
        self.metrics.iter().map(|m| m.mae).collect()
    }

    /// The learner-F1 curve.
    pub fn f1_series(&self) -> Vec<f64> {
        self.metrics.iter().map(|m| m.learner_f1).collect()
    }

    /// Per-iteration metrics as CSV (one row per interaction).
    pub fn metrics_csv(&self) -> String {
        let mut out = String::from(
            "iter,mae,learner_f1,learner_precision,learner_recall,trainer_f1,\
             learner_drift,trainer_drift,policy_entropy,dirty_labels,phi_dirty,agreement\n",
        );
        for m in &self.metrics {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{}\n",
                m.t,
                m.mae,
                m.learner_f1,
                m.learner_precision,
                m.learner_recall,
                m.trainer_f1,
                m.learner_drift,
                m.trainer_drift,
                m.policy_entropy,
                m.dirty_labels,
                m.phi_dirty,
                m.agreement
            ));
        }
        out
    }
}

/// One outstanding presentation: the pairs the learner selected and the
/// distinct tuples shown to whoever is labeling.
#[derive(Debug, Clone)]
pub struct PendingInteraction {
    pub(crate) pairs: Vec<crate::game::PairExample>,
    pub(crate) sample: Vec<usize>,
    pub(crate) h_policy: f64,
    pub(crate) predicted: Vec<bool>,
    /// The hosted trainer's labels for this presentation, cached on the
    /// first `label_pending` call so retries (e.g. after a journal append
    /// failure) never make the trainer observe the sample twice.
    pub(crate) hosted: Option<Vec<bool>>,
}

impl PendingInteraction {
    /// The selected pairs (global row ids).
    pub fn pairs(&self) -> &[crate::game::PairExample] {
        &self.pairs
    }

    /// The distinct tuples of the selected pairs, in presentation order.
    pub fn sample(&self) -> &[usize] {
        &self.sample
    }
}

/// A resumable session: the game loop opened up into explicit
/// present → label → update steps.
///
/// The state owns its table and all derived context (held-out evaluation
/// index, dataset-wide scoring index, candidate pool) but *not* the agents —
/// the trainer and learner are passed into each step, so a server can keep
/// them beside the state and a batch driver can keep borrowing its own.
///
/// Step protocol per interaction:
///
/// 1. [`SessionState::present`] — the learner selects pairs; the returned
///    [`PendingInteraction`] holds the sample to label. `Ok(None)` means the
///    session is complete (iteration budget exhausted or candidate pool dry).
/// 2. Labels are produced either by [`SessionState::label_pending`] (the
///    in-process simulated annotator) or externally (a remote annotator).
/// 3. [`SessionState::apply_labels`] — the learner absorbs the labels and
///    the per-iteration metrics are recorded.
///
/// Driving these steps with the same seeds reproduces [`Session::run`]
/// exactly — `run` is implemented on top of this type.
pub struct SessionState {
    table: Table,
    space: Arc<HypothesisSpace>,
    cfg: SessionConfig,
    /// Memoized stripped partitions of `table`, shared with whoever else
    /// derives violation structure from it (trainers, the serve store).
    cache: Arc<PartitionCache>,
    test_index: ViolationIndex,
    test_dirty: Vec<bool>,
    test_eval_rows: Vec<usize>,
    score_index: ViolationIndex,
    pool: CandidatePool,
    /// Lazily built pair-relation matrix over the pool (round-invariant:
    /// relations depend only on the immutable table). Shared by the batch
    /// loop, the step API, and the serve store via `Arc`.
    matrix: OnceLock<Arc<RelationMatrix>>,
    /// Lazily built delta-rescoring cache over `matrix`: the per-FD dirty
    /// diffing and cached [`et_fd::PairScores`] live here, next to the
    /// matrix they cover, so batch runs, the step API, and serve-store
    /// sessions all share the delta path. `RefCell` because strategies
    /// take the scoring context immutably and a session step is
    /// single-threaded; never persisted (pure cache, bit-identical to the
    /// full rescore, so recovery just re-warms it).
    scorer: OnceLock<std::cell::RefCell<et_fd::DeltaScorer>>,
    /// When false, strategies score via the per-call reference path
    /// (parity tests, baseline benchmarks).
    use_matrix: bool,
    pub(crate) metrics: Vec<IterationMetrics>,
    pub(crate) history: Vec<Interaction>,
    pub(crate) prev_trainer: Vec<f64>,
    pub(crate) prev_learner: Vec<f64>,
    pub(crate) labels_total: usize,
    pub(crate) dirty_total: usize,
    pub(crate) t: usize,
    pub(crate) exhausted: bool,
    pub(crate) pending: Option<PendingInteraction>,
    /// Attached durability journal, if any (see [`crate::journal`]).
    pub(crate) journal: Option<SessionJournal>,
    /// Whether the in-process trainer observed the pending sample via
    /// [`SessionState::label_pending`] — recorded in the WAL so recovery
    /// replays the trainer's belief update exactly when (and only when) it
    /// happened live.
    pub(crate) trainer_observed: bool,
}

impl SessionState {
    /// Prepares a resumable session over an owned table.
    ///
    /// The agents are only *read* here (their initial confidences seed the
    /// drift tracking); they are not stored.
    ///
    /// # Errors
    /// Returns [`SessionError::Config`] when the configuration fails
    /// [`SessionConfig::validate`], and [`SessionError::DirtyRowsMismatch`]
    /// when `dirty_rows` does not align with the table.
    pub fn new(
        table: Table,
        space: Arc<HypothesisSpace>,
        dirty_rows: &[bool],
        cfg: SessionConfig,
        trainer: &dyn Trainer,
        learner: &Learner,
    ) -> Result<Self, SessionError> {
        cfg.validate()?;
        if dirty_rows.len() != table.nrows() {
            return Err(SessionError::DirtyRowsMismatch {
                rows: table.nrows(),
                flags: dirty_rows.len(),
            });
        }
        let (train_rows, test_rows) = split_rows(table.nrows(), cfg.test_frac, cfg.seed);
        let in_train = {
            let mut mask = vec![false; table.nrows()];
            for &r in &train_rows {
                mask[r] = true;
            }
            mask
        };

        // One partition cache per session: the full-table build below warms
        // it, and every later subsample restriction (presented samples, the
        // held-out index, a cache-aware trainer) reuses the partitions.
        let cache = Arc::new(PartitionCache::new(&table));

        // Held-out evaluation context: violations within the test subset,
        // derived by restricting the cached full-table partitions.
        let test_index = ViolationIndex::build_subsample(&table, &space, &cache, &test_rows);
        let test_dirty: Vec<bool> = test_rows.iter().map(|&r| dirty_rows[r]).collect();
        let test_eval_rows: Vec<usize> = (0..test_rows.len()).collect();

        // Dataset-wide violation index for strategy scoring (the paper's
        // tuple-level p(clean | θ) is judged against the whole dataset).
        let score_index = ViolationIndex::build_with(&table, &space, &cache);

        // Candidate pool restricted to training rows; enumerated from the
        // cached partitions (bit-identical to the raw group_by scan).
        let pool = CandidatePool::build_with(&table, &space, &cache, cfg.pool_cap, cfg.seed);
        let pool = CandidatePool::from_pairs(
            pool.pairs()
                .iter()
                .copied()
                .filter(|p| in_train[p.a] && in_train[p.b])
                .collect(),
        );

        let prev_trainer = trainer.confidences();
        let prev_learner = learner.confidences();
        let metrics = Vec::with_capacity(cfg.iterations);
        let history = Vec::with_capacity(cfg.iterations);
        Ok(Self {
            table,
            space,
            cfg,
            cache,
            test_index,
            test_dirty,
            test_eval_rows,
            score_index,
            pool,
            matrix: OnceLock::new(),
            scorer: OnceLock::new(),
            use_matrix: true,
            metrics,
            history,
            prev_trainer,
            prev_learner,
            labels_total: 0,
            dirty_total: 0,
            t: 0,
            exhausted: false,
            pending: None,
            journal: None,
            trainer_observed: false,
        })
    }

    /// Attaches a durability journal: from now on every
    /// [`SessionState::apply_labels`] durably appends its label batch
    /// *before* applying it (write-ahead), and
    /// [`SessionState::maybe_snapshot`] persists state at the journal's
    /// cadence. See [`crate::journal`] for the recovery path.
    pub fn attach_journal(&mut self, journal: SessionJournal) {
        self.journal = Some(journal);
    }

    /// The attached journal, if any.
    pub fn journal(&self) -> Option<&SessionJournal> {
        self.journal.as_ref()
    }

    /// Writes a snapshot now, unconditionally, when a journal is attached.
    /// Returns the round the snapshot covers (`iterations_done`).
    ///
    /// # Errors
    /// [`et_durable::DurableError`] when the write fails; the previous
    /// snapshot (if any) is left intact.
    pub fn snapshot_now<T: TrainerPersist>(
        &mut self,
        trainer: &T,
        learner: &Learner,
    ) -> Result<Option<usize>, et_durable::DurableError> {
        if self.journal.is_none() {
            return Ok(None);
        }
        let payload = crate::journal::encode_snapshot(self, trainer, learner);
        if let Some(j) = self.journal.as_mut() {
            j.write_snapshot(self.t as u64, &payload)?;
        }
        Ok(Some(self.t))
    }

    /// Writes a snapshot when one is due: a journal is attached, the
    /// journal's cadence divides `iterations_done`, or the session just
    /// completed. Returns whether a snapshot was written.
    ///
    /// # Errors
    /// [`et_durable::DurableError`] when the write fails.
    pub fn maybe_snapshot<T: TrainerPersist>(
        &mut self,
        trainer: &T,
        learner: &Learner,
    ) -> Result<bool, et_durable::DurableError> {
        let due = match self.journal.as_ref() {
            None => false,
            Some(j) => {
                let every = j.config().snapshot_every;
                (every > 0 && self.t > 0 && self.t.is_multiple_of(every)) || self.is_complete()
            }
        };
        if due {
            self.snapshot_now(trainer, learner)?;
        }
        Ok(due)
    }

    /// Flushes the journal to stable storage regardless of fsync policy
    /// (eviction/shutdown path under `FsyncPolicy::Never`).
    ///
    /// # Errors
    /// [`et_durable::DurableError`] when the sync fails.
    pub fn sync_journal(&mut self) -> Result<(), et_durable::DurableError> {
        match self.journal.as_mut() {
            Some(j) => j.sync(),
            None => Ok(()),
        }
    }

    /// The table this session runs over.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The hypothesis space.
    pub fn space(&self) -> &Arc<HypothesisSpace> {
        &self.space
    }

    /// The session's partition cache: memoized stripped partitions of
    /// [`SessionState::table`]. Share it with anything else indexing the
    /// same table (e.g. [`crate::trainer::FpTrainer::with_cache`]).
    pub fn partition_cache(&self) -> &Arc<PartitionCache> {
        &self.cache
    }

    /// The round-invariant pair-relation matrix over the candidate pool,
    /// built on first use (strategy scoring, serve-store prewarming) and
    /// shared from then on.
    pub fn relation_matrix(&self) -> Arc<RelationMatrix> {
        Arc::clone(self.matrix.get_or_init(|| {
            let pairs: Vec<(usize, usize)> = self.pool.pairs().iter().map(|p| (p.a, p.b)).collect();
            Arc::new(RelationMatrix::build(
                &self.table,
                &self.space,
                &self.cache,
                &pairs,
            ))
        }))
    }

    /// Disables the matrix fast path: strategies score through the per-call
    /// reference implementation instead. Used by parity tests and baseline
    /// benchmarks; results are bit-identical either way.
    #[must_use]
    pub fn with_reference_scoring(mut self) -> Self {
        self.use_matrix = false;
        self
    }

    /// The configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.cfg
    }

    /// Interactions completed so far.
    pub fn iterations_done(&self) -> usize {
        self.t
    }

    /// Per-iteration metrics recorded so far.
    pub fn metrics(&self) -> &[IterationMetrics] {
        &self.metrics
    }

    /// The outstanding presentation, if labels are awaited.
    pub fn pending(&self) -> Option<&PendingInteraction> {
        self.pending.as_ref()
    }

    /// True once the session can make no further progress: the iteration
    /// budget is spent or a `present` call found the candidate pool dry.
    pub fn is_complete(&self) -> bool {
        self.t >= self.cfg.iterations || self.exhausted
    }

    /// Starts the next interaction: the learner selects up to
    /// `pairs_per_iteration` fresh pairs and the presented sample is fixed.
    ///
    /// Returns `Ok(None)` when the session is complete (budget spent or
    /// pool exhausted).
    ///
    /// # Errors
    /// [`StepError::LabelsPending`] when the previous presentation has not
    /// been labeled yet.
    pub fn present(
        &mut self,
        learner: &mut Learner,
    ) -> Result<Option<&PendingInteraction>, StepError> {
        if self.pending.is_some() {
            return Err(StepError::LabelsPending);
        }
        if self.is_complete() {
            return Ok(None);
        }
        let matrix = if self.use_matrix {
            Some(self.relation_matrix())
        } else {
            None
        };
        let mut ctx = ScoreCtx::new(&self.table).with_index(&self.score_index);
        if let Some(m) = matrix.as_ref() {
            ctx = ctx.with_matrix(m);
            let cell = self
                .scorer
                .get_or_init(|| std::cell::RefCell::new(et_fd::DeltaScorer::new(Arc::clone(m))));
            ctx = ctx.with_scorer(cell);
        }
        // One fresh-candidate enumeration serves both the policy accounting
        // and the selection (the shown-set only grows inside `select_from`).
        let fresh = self.pool.fresh(learner.shown());
        // Policy distribution before selection (for entropy accounting).
        let dist = learner.policy_over(ctx, &fresh, self.cfg.pairs_per_iteration);
        let h_policy = policy_entropy(&dist);

        let pairs = learner.select_from(ctx, &fresh, self.cfg.pairs_per_iteration);
        if pairs.is_empty() {
            self.exhausted = true; // pool dry
            return Ok(None);
        }

        // The presented sample: the distinct tuples of the selected
        // pairs (k pairs -> up to 2k tuples, the paper's k = 10).
        let sample = sample_rows(&pairs, self.table.nrows());

        // Learner's pre-update predicted labels on the sample, for the
        // agreement metric. The sample index restricts the cached
        // full-table partitions instead of re-hashing a subset table.
        let learner_conf_pre = learner.confidences();
        let sub_index =
            ViolationIndex::build_subsample(&self.table, &self.space, &self.cache, &sample);
        let local_rows: Vec<usize> = (0..sample.len()).collect();
        let predicted = predict_labels(&sub_index, &learner_conf_pre, &local_rows);

        self.pending = Some(PendingInteraction {
            pairs,
            sample,
            h_policy,
            predicted,
            hosted: None,
        });
        Ok(self.pending.as_ref())
    }

    /// Labels the pending sample with the in-process trainer (the simulated
    /// annotator observes the sample, updates its belief, and labels it).
    /// Does not consume the pending presentation — follow with
    /// [`SessionState::apply_labels`].
    ///
    /// # Errors
    /// [`StepError::NothingPending`] when no presentation is outstanding.
    pub fn label_pending(&mut self, trainer: &mut dyn Trainer) -> Result<Vec<bool>, StepError> {
        let sample = match &self.pending {
            Some(p) => {
                // Idempotent per presentation: a retried call (say, after a
                // journal append failure) returns the cached verdicts
                // instead of letting the trainer observe the sample twice.
                if let Some(hosted) = &p.hosted {
                    return Ok(hosted.clone());
                }
                p.sample.clone()
            }
            None => return Err(StepError::NothingPending),
        };
        let labels = trainer.respond(&self.table, &sample);
        debug_assert_eq!(labels.len(), sample.len());
        self.trainer_observed = true;
        if let Some(p) = self.pending.as_mut() {
            p.hosted = Some(labels.clone());
        }
        Ok(labels)
    }

    /// Completes the interaction: the learner absorbs `labels` (one per
    /// sample tuple), the per-iteration metrics are computed against the
    /// trainer's current model, and the interaction joins the history.
    ///
    /// The labels may come from [`SessionState::label_pending`] (batch
    /// mode) or from an external annotator; in the latter case call
    /// `label_pending` first anyway if the trainer's model should keep
    /// tracking the observed data.
    ///
    /// # Errors
    /// [`StepError::NothingPending`] with no outstanding presentation;
    /// [`StepError::LabelCount`] when `labels` does not align with the
    /// pending sample.
    pub fn apply_labels(
        &mut self,
        trainer: &dyn Trainer,
        learner: &mut Learner,
        labels: &[bool],
    ) -> Result<&IterationMetrics, StepError> {
        let expected = match &self.pending {
            Some(p) => p.sample.len(),
            None => return Err(StepError::NothingPending),
        };
        if labels.len() != expected {
            return Err(StepError::LabelCount {
                expected,
                got: labels.len(),
            });
        }
        // Write-ahead: the labels reach stable storage *before* they are
        // applied, so an acknowledged interaction is always recoverable.
        // On failure the presentation stays pending and no state moved.
        if let (Some(journal), Some(pending)) = (self.journal.as_mut(), self.pending.as_ref()) {
            journal
                .append_labels_parts(
                    self.t as u64,
                    self.trainer_observed,
                    &pending.sample,
                    labels,
                )
                .map_err(|e| StepError::Journal(e.to_string()))?;
        }
        self.trainer_observed = false;
        let Some(pending) = self.pending.take() else {
            return Err(StepError::NothingPending);
        };
        let PendingInteraction {
            pairs,
            sample,
            h_policy,
            predicted,
            hosted: _,
        } = pending;

        // The labeled evidence the learner receives: every within-sample
        // pair relevant to at least one hypothesis-space FD, labeled by
        // the trainer's per-tuple verdicts.
        // Record the within-sample evidence for the history; what the
        // learner actually consumes is governed by its EvidenceScope.
        let labeled = labeled_sample_pairs(&self.table, &self.space, &sample, labels);
        learner.absorb_interaction(&self.table, &pairs, &sample, labels);

        let agreement = if sample.is_empty() {
            1.0
        } else {
            predicted.iter().zip(labels).filter(|(p, a)| p == a).count() as f64
                / sample.len() as f64
        };
        let dirty_now: usize = labels.iter().filter(|&&d| d).count();
        self.dirty_total += dirty_now;
        self.labels_total += sample.len();

        let tc = trainer.confidences();
        let lc = learner.confidences();
        let learner_pred = predict_labels(&self.test_index, &lc, &self.test_eval_rows);
        let trainer_pred = predict_labels(&self.test_index, &tc, &self.test_eval_rows);
        let lm = ConfusionMatrix::from_predictions(&learner_pred, &self.test_dirty);
        let tm = ConfusionMatrix::from_predictions(&trainer_pred, &self.test_dirty);

        self.metrics.push(IterationMetrics {
            t: self.t,
            mae: mae(&tc, &lc),
            learner_f1: lm.f1(),
            learner_precision: lm.precision(),
            learner_recall: lm.recall(),
            trainer_f1: tm.f1(),
            learner_drift: max_abs_diff(&self.prev_learner, &lc),
            trainer_drift: max_abs_diff(&self.prev_trainer, &tc),
            policy_entropy: h_policy,
            dirty_labels: dirty_now,
            phi_dirty: self.dirty_total as f64 / self.labels_total.max(1) as f64,
            agreement,
        });
        self.history.push(Interaction {
            t: self.t,
            selected: pairs,
            sample,
            labels: labels.to_vec(),
            labeled,
        });
        self.prev_trainer = tc;
        self.prev_learner = lc;
        self.t += 1;
        Ok(&self.metrics[self.metrics.len() - 1])
    }

    /// The convergence summary over the iterations executed so far.
    pub fn convergence_so_far(&self) -> ConvergenceReport {
        convergence_report(&self.metrics, &self.cfg)
    }

    /// Finishes the session, consuming the state.
    pub fn into_result(self) -> SessionResult {
        let convergence = convergence_report(&self.metrics, &self.cfg);
        SessionResult {
            convergence,
            trainer_confidences: self.prev_trainer,
            learner_confidences: self.prev_learner,
            metrics: self.metrics,
            history: self.history,
        }
    }
}

/// A prepared session over one dataset.
pub struct Session<'a> {
    table: &'a Table,
    space: Arc<HypothesisSpace>,
    dirty_rows: &'a [bool],
    cfg: SessionConfig,
}

impl<'a> Session<'a> {
    /// Prepares a session.
    ///
    /// # Panics
    /// Panics when `dirty_rows` does not align with the table or the
    /// configuration fails [`SessionConfig::validate`].
    pub fn new(
        table: &'a Table,
        space: Arc<HypothesisSpace>,
        dirty_rows: &'a [bool],
        cfg: SessionConfig,
    ) -> Self {
        assert_eq!(
            dirty_rows.len(),
            table.nrows(),
            "ground-truth dirty flags must align with the table"
        );
        let validated = cfg.validate();
        assert!(validated.is_ok(), "invalid session config: {validated:?}");
        Self {
            table,
            space,
            dirty_rows,
            cfg,
        }
    }

    /// Runs the game between `trainer` and `learner`.
    pub fn run(&self, trainer: &mut dyn Trainer, learner: &mut Learner) -> SessionResult {
        // `new` validated the config and flag alignment, so state
        // construction cannot fail.
        let Ok(mut st) = SessionState::new(
            self.table.clone(),
            self.space.clone(),
            self.dirty_rows,
            self.cfg.clone(),
            trainer,
            learner,
        ) else {
            unreachable!("Session::new validated the configuration")
        };
        while let Ok(Some(_)) = st.present(learner) {
            let Ok(labels) = st.label_pending(trainer) else {
                break;
            };
            if st.apply_labels(trainer, learner, &labels).is_err() {
                break;
            }
        }
        st.into_result()
    }
}

/// Convenience wrapper: prepare and run in one call.
///
/// # Panics
/// Panics when `dirty_rows` does not align with the table or the
/// configuration fails [`SessionConfig::validate`] (see [`Session::new`]).
pub fn run_session(
    table: &Table,
    space: Arc<HypothesisSpace>,
    dirty_rows: &[bool],
    cfg: SessionConfig,
    trainer: &mut dyn Trainer,
    learner: &mut Learner,
) -> SessionResult {
    Session::new(table, space, dirty_rows, cfg).run(trainer, learner)
}

/// The distinct tuples of `pairs` in first-seen order: the sample presented
/// to the annotator (`k` pairs → up to `2k` tuples). A seen-bitmap over row
/// ids keeps collection `O(k)` instead of the quadratic `contains` scan.
pub fn sample_rows(pairs: &[crate::game::PairExample], n_rows: usize) -> Vec<usize> {
    let mut seen = vec![false; n_rows];
    let mut sample: Vec<usize> = Vec::with_capacity(pairs.len() * 2);
    for p in pairs {
        for r in [p.a, p.b] {
            if !seen[r] {
                seen[r] = true;
                sample.push(r);
            }
        }
    }
    sample
}

/// Builds the labeled evidence pairs of one interaction: every within-sample
/// pair relevant to at least one hypothesis-space FD, carrying the trainer's
/// per-tuple labels (global row ids).
fn labeled_sample_pairs(
    table: &Table,
    space: &Arc<HypothesisSpace>,
    sample: &[usize],
    tuple_labels: &[bool],
) -> Vec<LabeledPair> {
    let rel = et_fd::SpaceRelations::new(space);
    let mut out = Vec::new();
    for i in 0..sample.len() {
        for j in (i + 1)..sample.len() {
            let (a, b) = (sample[i], sample[j]);
            if rel.relevant_to_any(table, a, b) {
                out.push(LabeledPair {
                    a,
                    b,
                    dirty_a: tuple_labels[i],
                    dirty_b: tuple_labels[j],
                });
            }
        }
    }
    out
}

/// Mean absolute error between two confidence vectors.
///
/// # Panics
/// Panics when the vectors have different lengths.
pub fn mae(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "confidence vectors must align");
    if a.is_empty() {
        return 0.0;
    }
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() / a.len() as f64
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

fn convergence_report(metrics: &[IterationMetrics], cfg: &SessionConfig) -> ConvergenceReport {
    let w = cfg.stability_window;
    let mut converged_at = None;
    if metrics.len() >= w {
        'outer: for start in 0..=(metrics.len() - w) {
            for m in &metrics[start..start + w] {
                if m.learner_drift > cfg.eps_drift || m.trainer_drift > cfg.eps_drift {
                    continue 'outer;
                }
            }
            converged_at = Some(start);
            break;
        }
    }
    let tail = &metrics[metrics.len().saturating_sub(w)..];
    let tail_drift = if tail.is_empty() {
        0.0
    } else {
        tail.iter()
            .map(|m| (m.learner_drift + m.trainer_drift) / 2.0)
            .sum::<f64>()
            / tail.len() as f64
    };
    let tail_phi_change = tail
        .windows(2)
        .map(|w| (w[0].phi_dirty - w[1].phi_dirty).abs())
        .fold(0.0, f64::max);
    ConvergenceReport {
        converged_at,
        final_mae: metrics.last().map_or(0.0, |m| m.mae),
        tail_drift,
        tail_phi_change,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::respond::{ResponseStrategy, StrategyKind};
    use crate::trainer::FpTrainer;
    use et_belief::{build_prior, Belief, Beta, EvidenceConfig, PriorConfig, PriorSpec};
    use et_data::gen::omdb;
    use et_data::{inject_errors, InjectConfig};
    use et_fd::Fd;

    fn fixture() -> (Table, Vec<bool>, Arc<HypothesisSpace>) {
        let mut ds = omdb(200, 11);
        let specs = ds.exact_fds.clone();
        let inj = inject_errors(
            &mut ds.table,
            &specs,
            &[],
            &InjectConfig::with_degree(0.12, 5),
        );
        let pinned: Vec<Fd> = specs.iter().map(Fd::from_spec).collect();
        let space = Arc::new(HypothesisSpace::capped(&ds.table, 3, 20, 3, &pinned));
        (ds.table, inj.dirty_rows, space)
    }

    use et_data::Table;

    fn agents(
        kind: StrategyKind,
        table: &Table,
        space: &Arc<HypothesisSpace>,
    ) -> (FpTrainer, Learner) {
        let prior_cfg = PriorConfig::weak();
        let trainer_prior = build_prior(&PriorSpec::Random { seed: 3 }, &prior_cfg, space, table);
        let learner_prior = build_prior(&PriorSpec::DataEstimate, &prior_cfg, space, table);
        let trainer = FpTrainer::new(trainer_prior, EvidenceConfig::default());
        let learner = Learner::new(
            learner_prior,
            ResponseStrategy::paper(kind),
            EvidenceConfig::default(),
            7,
        );
        (trainer, learner)
    }

    fn run_with(
        kind: StrategyKind,
        table: &Table,
        dirty: &[bool],
        space: &Arc<HypothesisSpace>,
    ) -> SessionResult {
        let (mut trainer, mut learner) = agents(kind, table, space);
        run_session(
            table,
            space.clone(),
            dirty,
            SessionConfig::default(),
            &mut trainer,
            &mut learner,
        )
    }

    #[test]
    fn session_produces_full_metrics() {
        let (table, dirty, space) = fixture();
        let r = run_with(StrategyKind::Random, &table, &dirty, &space);
        assert_eq!(r.metrics.len(), 30);
        assert_eq!(r.history.len(), 30);
        for m in &r.metrics {
            assert!((0.0..=1.0).contains(&m.mae));
            assert!((0.0..=1.0).contains(&m.learner_f1));
            assert!((0.0..=1.0).contains(&m.agreement));
            assert!(m.policy_entropy >= 0.0);
        }
        assert_eq!(r.trainer_confidences.len(), space.len());
    }

    #[test]
    fn mae_decreases_over_session() {
        let (table, dirty, space) = fixture();
        for kind in StrategyKind::PAPER_METHODS {
            let r = run_with(kind, &table, &dirty, &space);
            let first = r.metrics[0].mae;
            let last = r.convergence.final_mae;
            assert!(
                last < first,
                "{}: MAE should fall ({first} -> {last})",
                kind.as_str()
            );
        }
    }

    #[test]
    fn sessions_are_deterministic() {
        let (table, dirty, space) = fixture();
        let a = run_with(StrategyKind::StochasticBestResponse, &table, &dirty, &space);
        let b = run_with(StrategyKind::StochasticBestResponse, &table, &dirty, &space);
        assert_eq!(a.mae_series(), b.mae_series());
        assert_eq!(a.learner_confidences, b.learner_confidences);
    }

    #[test]
    fn step_api_reproduces_batch_exactly() {
        let (table, dirty, space) = fixture();
        let batch = run_with(StrategyKind::StochasticBestResponse, &table, &dirty, &space);

        let (mut trainer, mut learner) =
            agents(StrategyKind::StochasticBestResponse, &table, &space);
        let mut st = SessionState::new(
            table.clone(),
            space.clone(),
            &dirty,
            SessionConfig::default(),
            &trainer,
            &learner,
        )
        .expect("valid config");
        loop {
            let presented = st.present(&mut learner).expect("in phase");
            if presented.is_none() {
                break;
            }
            let labels = st.label_pending(&mut trainer).expect("pending");
            let _ = st
                .apply_labels(&trainer, &mut learner, &labels)
                .expect("aligned");
        }
        let stepped = st.into_result();
        assert_eq!(batch.mae_series(), stepped.mae_series());
        assert_eq!(batch.learner_confidences, stepped.learner_confidences);
        assert_eq!(batch.trainer_confidences, stepped.trainer_confidences);
        assert_eq!(
            batch.convergence.converged_at,
            stepped.convergence.converged_at
        );
        assert_eq!(batch.history.len(), stepped.history.len());
    }

    #[test]
    fn cache_enabled_replay_is_bit_identical_to_batch() {
        // The et-serve deployment shape: a stepped session whose trainer
        // shares the session's partition cache must reproduce the batch
        // loop (whose trainer labels via subset tables) bit for bit.
        let (table, dirty, space) = fixture();
        let batch = run_with(StrategyKind::StochasticBestResponse, &table, &dirty, &space);

        let (trainer, mut learner) = agents(StrategyKind::StochasticBestResponse, &table, &space);
        let mut st = SessionState::new(
            table.clone(),
            space.clone(),
            &dirty,
            SessionConfig::default(),
            &trainer,
            &learner,
        )
        .expect("valid config");
        let mut trainer = trainer.with_cache(st.partition_cache().clone());
        while st.present(&mut learner).expect("in phase").is_some() {
            let labels = st.label_pending(&mut trainer).expect("pending");
            let _ = st
                .apply_labels(&trainer, &mut learner, &labels)
                .expect("aligned");
        }
        let stepped = st.into_result();
        assert_eq!(batch.mae_series(), stepped.mae_series());
        assert_eq!(batch.f1_series(), stepped.f1_series());
        assert_eq!(batch.learner_confidences, stepped.learner_confidences);
        assert_eq!(batch.trainer_confidences, stepped.trainer_confidences);
        for (a, b) in batch.history.iter().zip(&stepped.history) {
            assert_eq!(a.sample, b.sample);
            assert_eq!(a.labels, b.labels);
        }
    }

    #[test]
    fn matrix_scoring_is_bit_identical_to_reference() {
        // Every strategy kind, matrix fast path (the batch default) vs the
        // per-call reference path (`with_reference_scoring`): same
        // selections, same labels, same metrics, bit for bit.
        let (table, dirty, space) = fixture();
        let cfg = SessionConfig {
            iterations: 12,
            ..SessionConfig::default()
        };
        for kind in StrategyKind::PAPER_METHODS
            .into_iter()
            .chain(StrategyKind::EXTENSIONS)
        {
            let run = |reference: bool| {
                let (mut trainer, mut learner) = agents(kind, &table, &space);
                let mut st = SessionState::new(
                    table.clone(),
                    space.clone(),
                    &dirty,
                    cfg.clone(),
                    &trainer,
                    &learner,
                )
                .expect("valid config");
                if reference {
                    st = st.with_reference_scoring();
                }
                while st.present(&mut learner).expect("in phase").is_some() {
                    let labels = st.label_pending(&mut trainer).expect("pending");
                    let _ = st
                        .apply_labels(&trainer, &mut learner, &labels)
                        .expect("aligned");
                }
                st.into_result()
            };
            let fast = run(false);
            let reference = run(true);
            assert_eq!(
                fast.mae_series(),
                reference.mae_series(),
                "{}: MAE series diverged",
                kind.as_str()
            );
            assert_eq!(fast.learner_confidences, reference.learner_confidences);
            assert_eq!(fast.trainer_confidences, reference.trainer_confidences);
            assert_eq!(fast.history.len(), reference.history.len());
            for (a, b) in fast.history.iter().zip(&reference.history) {
                assert_eq!(a.selected, b.selected, "{}: selections", kind.as_str());
                assert_eq!(a.sample, b.sample);
                assert_eq!(a.labels, b.labels);
            }
            for (a, b) in fast.metrics.iter().zip(&reference.metrics) {
                assert_eq!(
                    a.policy_entropy.to_bits(),
                    b.policy_entropy.to_bits(),
                    "{}: policy entropy",
                    kind.as_str()
                );
            }
        }
    }

    #[test]
    fn step_api_enforces_phases() {
        let (table, dirty, space) = fixture();
        let (mut trainer, mut learner) = agents(StrategyKind::Random, &table, &space);
        let mut st = SessionState::new(
            table,
            space,
            &dirty,
            SessionConfig::default(),
            &trainer,
            &learner,
        )
        .expect("valid config");

        // No pending presentation yet.
        assert_eq!(
            st.label_pending(&mut trainer).err(),
            Some(StepError::NothingPending)
        );
        assert_eq!(
            st.apply_labels(&trainer, &mut learner, &[]).err(),
            Some(StepError::NothingPending)
        );

        let sample_len = {
            let p = st.present(&mut learner).expect("in phase").expect("pairs");
            p.sample().len()
        };
        // Double-present is rejected while labels are outstanding.
        assert_eq!(
            st.present(&mut learner).err(),
            Some(StepError::LabelsPending)
        );
        // Wrong label cardinality is rejected and the presentation survives.
        assert_eq!(
            st.apply_labels(&trainer, &mut learner, &[true]).err(),
            Some(StepError::LabelCount {
                expected: sample_len,
                got: 1
            })
        );
        assert!(st.pending().is_some());
        let labels = st.label_pending(&mut trainer).expect("pending");
        let m = st
            .apply_labels(&trainer, &mut learner, &labels)
            .expect("aligned");
        assert_eq!(m.t, 0);
        assert!(st.pending().is_none());
        assert_eq!(st.iterations_done(), 1);
    }

    #[test]
    fn external_labels_drive_a_session() {
        // An "annotator" that always says clean: the session still advances
        // and records metrics (the remote-annotator path of et-serve).
        let (table, dirty, space) = fixture();
        let (mut trainer, mut learner) = agents(StrategyKind::Random, &table, &space);
        let mut st = SessionState::new(
            table,
            space,
            &dirty,
            SessionConfig {
                iterations: 4,
                ..SessionConfig::default()
            },
            &trainer,
            &learner,
        )
        .expect("valid config");
        while let Some(n) = st
            .present(&mut learner)
            .expect("in phase")
            .map(|p| p.sample().len())
        {
            // Keep the trainer's model tracking the data it observes even
            // though its labels are overridden.
            let _ = st.label_pending(&mut trainer).expect("pending");
            let _ = st
                .apply_labels(&trainer, &mut learner, &vec![false; n])
                .expect("aligned");
        }
        assert_eq!(st.metrics().len(), 4);
        assert!(st.metrics().iter().all(|m| m.dirty_labels == 0));
    }

    #[test]
    fn config_validation_catches_degenerate_values() {
        let ok = SessionConfig::default();
        assert_eq!(ok.validate(), Ok(()));
        let cases = [
            (
                SessionConfig {
                    iterations: 0,
                    ..SessionConfig::default()
                },
                ConfigError::ZeroIterations,
            ),
            (
                SessionConfig {
                    pairs_per_iteration: 0,
                    ..SessionConfig::default()
                },
                ConfigError::ZeroPairsPerIteration,
            ),
            (
                SessionConfig {
                    test_frac: 0.0,
                    ..SessionConfig::default()
                },
                ConfigError::TestFracOutOfRange(0.0),
            ),
            (
                SessionConfig {
                    test_frac: 1.5,
                    ..SessionConfig::default()
                },
                ConfigError::TestFracOutOfRange(1.5),
            ),
            (
                SessionConfig {
                    pool_cap: 0,
                    ..SessionConfig::default()
                },
                ConfigError::ZeroPoolCap,
            ),
            (
                SessionConfig {
                    stability_window: 0,
                    ..SessionConfig::default()
                },
                ConfigError::ZeroStabilityWindow,
            ),
            (
                SessionConfig {
                    eps_drift: -1.0,
                    ..SessionConfig::default()
                },
                ConfigError::BadEpsDrift(-1.0),
            ),
        ];
        for (cfg, want) in cases {
            assert_eq!(cfg.validate(), Err(want.clone()), "{want:?}");
        }
        // NaN test_frac fails the open-interval check.
        assert!(SessionConfig {
            test_frac: f64::NAN,
            ..SessionConfig::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    #[should_panic(expected = "invalid session config")]
    fn run_session_rejects_invalid_config() {
        let (table, dirty, space) = fixture();
        let (mut trainer, mut learner) = agents(StrategyKind::Random, &table, &space);
        let _ = run_session(
            &table,
            space,
            &dirty,
            SessionConfig {
                test_frac: 2.0,
                ..SessionConfig::default()
            },
            &mut trainer,
            &mut learner,
        );
    }

    #[test]
    fn session_state_reports_typed_errors() {
        let (table, dirty, space) = fixture();
        let (trainer, learner) = agents(StrategyKind::Random, &table, &space);
        let bad_cfg = SessionState::new(
            table.clone(),
            space.clone(),
            &dirty,
            SessionConfig {
                iterations: 0,
                ..SessionConfig::default()
            },
            &trainer,
            &learner,
        );
        assert!(matches!(
            bad_cfg.err(),
            Some(SessionError::Config(ConfigError::ZeroIterations))
        ));
        let misaligned = SessionState::new(
            table,
            space,
            &[true],
            SessionConfig::default(),
            &trainer,
            &learner,
        );
        assert!(matches!(
            misaligned.err(),
            Some(SessionError::DirtyRowsMismatch { flags: 1, .. })
        ));
    }

    #[test]
    fn fresh_examples_every_iteration() {
        let (table, dirty, space) = fixture();
        let r = run_with(StrategyKind::UncertaintySampling, &table, &dirty, &space);
        let mut seen = std::collections::HashSet::new();
        for i in &r.history {
            for p in &i.selected {
                assert!(
                    seen.insert(*p),
                    "selected pair repeated across interactions"
                );
            }
        }
    }

    #[test]
    fn mae_helper_basics() {
        assert_eq!(mae(&[0.0, 1.0], &[1.0, 1.0]), 0.5);
        assert_eq!(mae(&[], &[]), 0.0);
    }

    #[test]
    fn identical_agents_converge_immediately() {
        // Trainer and learner with the same prior and a stationary trainer:
        // MAE stays small and the session converges.
        let (table, dirty, space) = fixture();
        let belief = Belief::constant(space.clone(), Beta::from_mean_std(0.7, 0.05));
        let mut trainer = crate::trainer::StationaryTrainer::new(belief.clone());
        let mut learner = Learner::new(
            belief,
            ResponseStrategy::paper(StrategyKind::Random),
            EvidenceConfig::default(),
            3,
        );
        let r = run_session(
            &table,
            space,
            &dirty,
            SessionConfig::default(),
            &mut trainer,
            &mut learner,
        );
        assert!(r.metrics[0].mae < 0.05);
    }
}
