//! The exploratory-training session: the game loop plus per-iteration
//! metrics and convergence tracking.
//!
//! One session reproduces one curve of the paper's figures: `N` iterations
//! (paper: 30) of `k` examples (paper: 10 tuples = 5 pairs), recording per
//! iteration the MAE between trainer and learner models (Figures 1, 3–6)
//! and the F1 of both agents' labeling on a held-out test set (Figure 7).
//!
//! Convergence is tracked per Definition 2 / Proposition 1: the session
//! reports when both agents' beliefs (and the trainer's empirical labeling
//! frequency Φ_t) stop moving.

use std::sync::Arc;

use et_belief::LabeledPair;
use et_data::{split_rows, Table};
use et_fd::{predict_labels, HypothesisSpace, ViolationIndex};
use et_metrics::ConfusionMatrix;

use crate::candidates::CandidatePool;
use crate::game::Interaction;
use crate::learner::Learner;
use crate::payoff::policy_entropy;
use crate::trainer::Trainer;

/// Session parameters; defaults follow the paper's empirical study.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Number of interactions `N` (paper: 30).
    pub iterations: usize,
    /// Pairs presented per interaction (paper: 10 tuples = 5 pairs).
    pub pairs_per_iteration: usize,
    /// Fraction of rows held out for F1 evaluation (paper: 0.3).
    pub test_frac: f64,
    /// Cap on the candidate pair pool.
    pub pool_cap: usize,
    /// Belief-drift threshold for convergence detection.
    pub eps_drift: f64,
    /// Consecutive low-drift iterations required to declare convergence.
    pub stability_window: usize,
    /// RNG seed (splits, pool subsampling).
    pub seed: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            iterations: 30,
            pairs_per_iteration: 5,
            test_frac: 0.3,
            pool_cap: 4000,
            eps_drift: 0.005,
            stability_window: 5,
            seed: 0,
        }
    }
}

/// Everything measured after one interaction.
#[derive(Debug, Clone)]
pub struct IterationMetrics {
    /// Interaction number (0-based).
    pub t: usize,
    /// Mean absolute error between trainer and learner confidences.
    pub mae: f64,
    /// F1 of the learner's labeling on the held-out test set.
    pub learner_f1: f64,
    /// Precision of the learner's labeling on the test set.
    pub learner_precision: f64,
    /// Recall of the learner's labeling on the test set.
    pub learner_recall: f64,
    /// F1 of the trainer's model on the test set (reference).
    pub trainer_f1: f64,
    /// Max confidence move of the learner since the last iteration.
    pub learner_drift: f64,
    /// Max confidence move of the trainer since the last iteration.
    pub trainer_drift: f64,
    /// Entropy of the learner's selection policy this iteration.
    pub policy_entropy: f64,
    /// Dirty labels given this iteration.
    pub dirty_labels: usize,
    /// Cumulative empirical dirty-label frequency Φ_t (trainer actions).
    pub phi_dirty: f64,
    /// Fraction of this iteration's labels the learner's pre-update belief
    /// would have predicted identically (agreement → shared belief).
    pub agreement: f64,
}

/// Convergence summary per Definition 2 / Proposition 1.
#[derive(Debug, Clone)]
pub struct ConvergenceReport {
    /// First iteration after which both agents stayed below `eps_drift` for
    /// `stability_window` consecutive iterations.
    pub converged_at: Option<usize>,
    /// Final MAE between the agents' models.
    pub final_mae: f64,
    /// Mean drift (both agents) over the last `stability_window` iterations.
    pub tail_drift: f64,
    /// Largest change of Φ_t over the last `stability_window` iterations.
    pub tail_phi_change: f64,
}

impl ConvergenceReport {
    /// True when a stable point was reached within the session.
    pub fn converged(&self) -> bool {
        self.converged_at.is_some()
    }
}

/// The outcome of a full session.
#[derive(Debug, Clone)]
pub struct SessionResult {
    /// Per-iteration metrics, one entry per executed interaction.
    pub metrics: Vec<IterationMetrics>,
    /// The full interaction history `h_t`.
    pub history: Vec<Interaction>,
    /// Convergence summary.
    pub convergence: ConvergenceReport,
    /// Trainer's final confidences.
    pub trainer_confidences: Vec<f64>,
    /// Learner's final confidences.
    pub learner_confidences: Vec<f64>,
}

impl SessionResult {
    /// The MAE curve (one value per iteration).
    pub fn mae_series(&self) -> Vec<f64> {
        self.metrics.iter().map(|m| m.mae).collect()
    }

    /// The learner-F1 curve.
    pub fn f1_series(&self) -> Vec<f64> {
        self.metrics.iter().map(|m| m.learner_f1).collect()
    }

    /// Per-iteration metrics as CSV (one row per interaction).
    pub fn metrics_csv(&self) -> String {
        let mut out = String::from(
            "iter,mae,learner_f1,learner_precision,learner_recall,trainer_f1,\
             learner_drift,trainer_drift,policy_entropy,dirty_labels,phi_dirty,agreement\n",
        );
        for m in &self.metrics {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{}\n",
                m.t,
                m.mae,
                m.learner_f1,
                m.learner_precision,
                m.learner_recall,
                m.trainer_f1,
                m.learner_drift,
                m.trainer_drift,
                m.policy_entropy,
                m.dirty_labels,
                m.phi_dirty,
                m.agreement
            ));
        }
        out
    }
}

/// A prepared session over one dataset.
pub struct Session<'a> {
    table: &'a Table,
    space: Arc<HypothesisSpace>,
    dirty_rows: &'a [bool],
    cfg: SessionConfig,
}

impl<'a> Session<'a> {
    /// Prepares a session.
    ///
    /// # Panics
    /// Panics when `dirty_rows` does not align with the table.
    pub fn new(
        table: &'a Table,
        space: Arc<HypothesisSpace>,
        dirty_rows: &'a [bool],
        cfg: SessionConfig,
    ) -> Self {
        assert_eq!(
            dirty_rows.len(),
            table.nrows(),
            "ground-truth dirty flags must align with the table"
        );
        assert!(cfg.iterations > 0 && cfg.pairs_per_iteration > 0);
        Self {
            table,
            space,
            dirty_rows,
            cfg,
        }
    }

    /// Runs the game between `trainer` and `learner`.
    pub fn run(&self, trainer: &mut dyn Trainer, learner: &mut Learner) -> SessionResult {
        let (train_rows, test_rows) =
            split_rows(self.table.nrows(), self.cfg.test_frac, self.cfg.seed);
        let in_train = {
            let mut mask = vec![false; self.table.nrows()];
            for &r in &train_rows {
                mask[r] = true;
            }
            mask
        };

        // Held-out evaluation context: violations within the test subset.
        let test_table = self.table.subset(&test_rows);
        let test_index = ViolationIndex::build(&test_table, &self.space);
        let test_dirty: Vec<bool> = test_rows.iter().map(|&r| self.dirty_rows[r]).collect();
        let test_eval_rows: Vec<usize> = (0..test_rows.len()).collect();

        // Dataset-wide violation index for strategy scoring (the paper's
        // tuple-level p(clean | θ) is judged against the whole dataset).
        let score_index = ViolationIndex::build(self.table, &self.space);

        // Candidate pool restricted to training rows.
        let pool = CandidatePool::build(self.table, &self.space, self.cfg.pool_cap, self.cfg.seed);
        let pool = CandidatePool::from_pairs(
            pool.pairs()
                .iter()
                .copied()
                .filter(|p| in_train[p.a] && in_train[p.b])
                .collect(),
        );

        let mut metrics = Vec::with_capacity(self.cfg.iterations);
        let mut history = Vec::with_capacity(self.cfg.iterations);
        let mut prev_trainer = trainer.confidences();
        let mut prev_learner = learner.confidences();
        let mut labels_total = 0usize;
        let mut dirty_total = 0usize;

        for t in 0..self.cfg.iterations {
            // Policy distribution before selection (for entropy accounting).
            let (_, dist) = learner.policy_over_fresh(
                self.table,
                Some(&score_index),
                &pool,
                self.cfg.pairs_per_iteration,
            );
            let h_policy = policy_entropy(&dist);

            let pairs = learner.select(
                self.table,
                Some(&score_index),
                &pool,
                self.cfg.pairs_per_iteration,
            );
            if pairs.is_empty() {
                break; // pool exhausted
            }

            // The presented sample: the distinct tuples of the selected
            // pairs (k pairs -> up to 2k tuples, the paper's k = 10).
            let mut sample: Vec<usize> = Vec::with_capacity(pairs.len() * 2);
            for p in &pairs {
                for r in [p.a, p.b] {
                    if !sample.contains(&r) {
                        sample.push(r);
                    }
                }
            }

            // Learner's pre-update predicted labels on the sample, for the
            // agreement metric.
            let learner_conf_pre = learner.confidences();
            let sub = self.table.subset(&sample);
            let sub_index = ViolationIndex::build(&sub, &self.space);
            let local_rows: Vec<usize> = (0..sample.len()).collect();
            let predicted = predict_labels(&sub_index, &learner_conf_pre, &local_rows);

            let tuple_labels = trainer.respond(self.table, &sample);
            debug_assert_eq!(tuple_labels.len(), sample.len());

            // The labeled evidence the learner receives: every within-sample
            // pair relevant to at least one hypothesis-space FD, labeled by
            // the trainer's per-tuple verdicts.
            // Record the within-sample evidence for the history; what the
            // learner actually consumes is governed by its EvidenceScope.
            let labeled = labeled_sample_pairs(self.table, &self.space, &sample, &tuple_labels);
            learner.absorb_interaction(self.table, &pairs, &sample, &tuple_labels);

            let agreement = if sample.is_empty() {
                1.0
            } else {
                predicted
                    .iter()
                    .zip(&tuple_labels)
                    .filter(|(p, a)| p == a)
                    .count() as f64
                    / sample.len() as f64
            };
            let dirty_now: usize = tuple_labels.iter().filter(|&&d| d).count();
            dirty_total += dirty_now;
            labels_total += sample.len();

            let tc = trainer.confidences();
            let lc = learner.confidences();
            let learner_pred = predict_labels(&test_index, &lc, &test_eval_rows);
            let trainer_pred = predict_labels(&test_index, &tc, &test_eval_rows);
            let lm = ConfusionMatrix::from_predictions(&learner_pred, &test_dirty);
            let tm = ConfusionMatrix::from_predictions(&trainer_pred, &test_dirty);

            metrics.push(IterationMetrics {
                t,
                mae: mae(&tc, &lc),
                learner_f1: lm.f1(),
                learner_precision: lm.precision(),
                learner_recall: lm.recall(),
                trainer_f1: tm.f1(),
                learner_drift: max_abs_diff(&prev_learner, &lc),
                trainer_drift: max_abs_diff(&prev_trainer, &tc),
                policy_entropy: h_policy,
                dirty_labels: dirty_now,
                phi_dirty: dirty_total as f64 / labels_total.max(1) as f64,
                agreement,
            });
            history.push(Interaction {
                t,
                selected: pairs,
                sample,
                labels: tuple_labels,
                labeled,
            });
            prev_trainer = tc;
            prev_learner = lc;
        }

        let convergence = convergence_report(&metrics, &self.cfg);
        SessionResult {
            convergence,
            trainer_confidences: prev_trainer,
            learner_confidences: prev_learner,
            metrics,
            history,
        }
    }
}

/// Convenience wrapper: prepare and run in one call.
pub fn run_session(
    table: &Table,
    space: Arc<HypothesisSpace>,
    dirty_rows: &[bool],
    cfg: SessionConfig,
    trainer: &mut dyn Trainer,
    learner: &mut Learner,
) -> SessionResult {
    Session::new(table, space, dirty_rows, cfg).run(trainer, learner)
}

/// Builds the labeled evidence pairs of one interaction: every within-sample
/// pair relevant to at least one hypothesis-space FD, carrying the trainer's
/// per-tuple labels (global row ids).
fn labeled_sample_pairs(
    table: &Table,
    space: &Arc<HypothesisSpace>,
    sample: &[usize],
    tuple_labels: &[bool],
) -> Vec<LabeledPair> {
    let rel = et_fd::SpaceRelations::new(space);
    let mut out = Vec::new();
    for i in 0..sample.len() {
        for j in (i + 1)..sample.len() {
            let (a, b) = (sample[i], sample[j]);
            if rel.relevant_to_any(table, a, b) {
                out.push(LabeledPair {
                    a,
                    b,
                    dirty_a: tuple_labels[i],
                    dirty_b: tuple_labels[j],
                });
            }
        }
    }
    out
}

/// Mean absolute error between two confidence vectors.
///
/// # Panics
/// Panics when the vectors have different lengths.
pub fn mae(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "confidence vectors must align");
    if a.is_empty() {
        return 0.0;
    }
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() / a.len() as f64
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

fn convergence_report(metrics: &[IterationMetrics], cfg: &SessionConfig) -> ConvergenceReport {
    let w = cfg.stability_window;
    let mut converged_at = None;
    if metrics.len() >= w {
        'outer: for start in 0..=(metrics.len() - w) {
            for m in &metrics[start..start + w] {
                if m.learner_drift > cfg.eps_drift || m.trainer_drift > cfg.eps_drift {
                    continue 'outer;
                }
            }
            converged_at = Some(start);
            break;
        }
    }
    let tail = &metrics[metrics.len().saturating_sub(w)..];
    let tail_drift = if tail.is_empty() {
        0.0
    } else {
        tail.iter()
            .map(|m| (m.learner_drift + m.trainer_drift) / 2.0)
            .sum::<f64>()
            / tail.len() as f64
    };
    let tail_phi_change = tail
        .windows(2)
        .map(|w| (w[0].phi_dirty - w[1].phi_dirty).abs())
        .fold(0.0, f64::max);
    ConvergenceReport {
        converged_at,
        final_mae: metrics.last().map_or(0.0, |m| m.mae),
        tail_drift,
        tail_phi_change,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::respond::{ResponseStrategy, StrategyKind};
    use crate::trainer::FpTrainer;
    use et_belief::{build_prior, Belief, Beta, EvidenceConfig, PriorConfig, PriorSpec};
    use et_data::gen::omdb;
    use et_data::{inject_errors, InjectConfig};
    use et_fd::Fd;

    fn fixture() -> (Table, Vec<bool>, Arc<HypothesisSpace>) {
        let mut ds = omdb(200, 11);
        let specs = ds.exact_fds.clone();
        let inj = inject_errors(
            &mut ds.table,
            &specs,
            &[],
            &InjectConfig::with_degree(0.12, 5),
        );
        let pinned: Vec<Fd> = specs.iter().map(Fd::from_spec).collect();
        let space = Arc::new(HypothesisSpace::capped(&ds.table, 3, 20, 3, &pinned));
        (ds.table, inj.dirty_rows, space)
    }

    use et_data::Table;

    fn run_with(
        kind: StrategyKind,
        table: &Table,
        dirty: &[bool],
        space: &Arc<HypothesisSpace>,
    ) -> SessionResult {
        let prior_cfg = PriorConfig::weak();
        let trainer_prior = build_prior(&PriorSpec::Random { seed: 3 }, &prior_cfg, space, table);
        let learner_prior = build_prior(&PriorSpec::DataEstimate, &prior_cfg, space, table);
        let mut trainer = FpTrainer::new(trainer_prior, EvidenceConfig::default());
        let mut learner = Learner::new(
            learner_prior,
            ResponseStrategy::paper(kind),
            EvidenceConfig::default(),
            7,
        );
        run_session(
            table,
            space.clone(),
            dirty,
            SessionConfig::default(),
            &mut trainer,
            &mut learner,
        )
    }

    #[test]
    fn session_produces_full_metrics() {
        let (table, dirty, space) = fixture();
        let r = run_with(StrategyKind::Random, &table, &dirty, &space);
        assert_eq!(r.metrics.len(), 30);
        assert_eq!(r.history.len(), 30);
        for m in &r.metrics {
            assert!((0.0..=1.0).contains(&m.mae));
            assert!((0.0..=1.0).contains(&m.learner_f1));
            assert!((0.0..=1.0).contains(&m.agreement));
            assert!(m.policy_entropy >= 0.0);
        }
        assert_eq!(r.trainer_confidences.len(), space.len());
    }

    #[test]
    fn mae_decreases_over_session() {
        let (table, dirty, space) = fixture();
        for kind in StrategyKind::PAPER_METHODS {
            let r = run_with(kind, &table, &dirty, &space);
            let first = r.metrics[0].mae;
            let last = r.convergence.final_mae;
            assert!(
                last < first,
                "{}: MAE should fall ({first} -> {last})",
                kind.as_str()
            );
        }
    }

    #[test]
    fn sessions_are_deterministic() {
        let (table, dirty, space) = fixture();
        let a = run_with(StrategyKind::StochasticBestResponse, &table, &dirty, &space);
        let b = run_with(StrategyKind::StochasticBestResponse, &table, &dirty, &space);
        assert_eq!(a.mae_series(), b.mae_series());
        assert_eq!(a.learner_confidences, b.learner_confidences);
    }

    #[test]
    fn fresh_examples_every_iteration() {
        let (table, dirty, space) = fixture();
        let r = run_with(StrategyKind::UncertaintySampling, &table, &dirty, &space);
        let mut seen = std::collections::HashSet::new();
        for i in &r.history {
            for p in &i.selected {
                assert!(
                    seen.insert(*p),
                    "selected pair repeated across interactions"
                );
            }
        }
    }

    #[test]
    fn mae_helper_basics() {
        assert_eq!(mae(&[0.0, 1.0], &[1.0, 1.0]), 0.5);
        assert_eq!(mae(&[], &[]), 0.0);
    }

    #[test]
    fn identical_agents_converge_immediately() {
        // Trainer and learner with the same prior and a stationary trainer:
        // MAE stays small and the session converges.
        let (table, dirty, space) = fixture();
        let belief = Belief::constant(space.clone(), Beta::from_mean_std(0.7, 0.05));
        let mut trainer = crate::trainer::StationaryTrainer::new(belief.clone());
        let mut learner = Learner::new(
            belief,
            ResponseStrategy::paper(StrategyKind::Random),
            EvidenceConfig::default(),
            3,
        );
        let r = run_session(
            &table,
            space,
            &dirty,
            SessionConfig::default(),
            &mut trainer,
            &mut learner,
        );
        assert!(r.metrics[0].mae < 0.05);
    }
}
