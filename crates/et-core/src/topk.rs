//! Deterministic bounded top-k selection over per-candidate scores.
//!
//! The strategies rank candidates under the strict total order
//! *(score descending, candidate index ascending)* — `f64::total_cmp` on
//! the score, index as the tie-breaker — and keep the best `k`. Sorting
//! the whole score vector and truncating is `O(n log n)`; a size-`k`
//! min-heap under the same order is `O(n log k)` and touches only the
//! running top-k.
//!
//! # Determinism
//!
//! The order is total (indices are distinct, `total_cmp` is total), so the
//! top-k *set* and its sorted sequence are unique. The heap keeps exactly
//! the `k` minimal entries under the internal `Entry`'s `Ord` (which ranks better
//! entries smaller), and [`BoundedTopK::into_sorted_indices`] sorts them
//! ascending under the same order — element-for-element identical to
//! `sort_by(score desc, index asc); truncate(k)`, for every input. A
//! proptest pins the equivalence across all strategy kinds.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scored candidate. `Ord` ranks *better* entries `Less` (higher
/// score first, lower index among equals), so a max-heap of `Entry`
/// surfaces the worst kept element at `peek()` and ascending sort yields
/// selection order.
#[derive(Debug, Clone, Copy)]
struct Entry {
    score: f64,
    idx: usize,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .score
            .total_cmp(&self.score)
            .then(self.idx.cmp(&other.idx))
    }
}

/// A bounded max-heap keeping the `k` best `(score, index)` entries under
/// the deterministic selection order. Capacity is reserved up front, so
/// [`BoundedTopK::insert`] never reallocates.
#[derive(Debug)]
pub struct BoundedTopK {
    k: usize,
    heap: BinaryHeap<Entry>,
}

impl BoundedTopK {
    /// An empty selector that will retain at most `k` entries.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            heap: BinaryHeap::with_capacity(k.saturating_add(1)),
        }
    }

    /// Offers one candidate. Kept iff it ranks above the current worst of
    /// a full heap (strictly better under the total order — ties cannot
    /// occur between distinct indices). `O(log k)`; no allocation.
    pub fn insert(&mut self, idx: usize, score: f64) {
        if self.k == 0 {
            return;
        }
        let e = Entry { score, idx };
        if self.heap.len() < self.k {
            self.heap.push(e);
        } else if let Some(worst) = self.heap.peek() {
            if e < *worst {
                self.heap.pop();
                self.heap.push(e);
            }
        }
    }

    /// The kept indices in selection order (score descending, index
    /// ascending) — identical to a full sort-and-truncate.
    pub fn into_sorted_indices(self) -> Vec<usize> {
        let mut kept = self.heap.into_vec();
        kept.sort_unstable();
        kept.into_iter().map(|e| e.idx).collect()
    }
}

/// The indices of the `k` best scores in selection order: the bounded-heap
/// equivalent of `sort_by(score desc, index asc); truncate(k)`.
pub fn top_k_indices(scores: &[f64], k: usize) -> Vec<usize> {
    let mut heap = BoundedTopK::new(k.min(scores.len()));
    for (idx, &score) in scores.iter().enumerate() {
        heap.insert(idx, score);
    }
    heap.into_sorted_indices()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reference the heap must match for every input.
    fn sort_select(scores: &[f64], k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..scores.len()).collect();
        idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
        idx.truncate(k);
        idx
    }

    #[test]
    fn matches_full_sort_on_ties_and_specials() {
        let cases: Vec<Vec<f64>> = vec![
            vec![],
            vec![1.0],
            vec![0.5, 0.5, 0.5],
            vec![3.0, 1.0, 2.0, 1.0, 3.0],
            vec![f64::NEG_INFINITY, 0.0, -0.0, f64::INFINITY, f64::NAN],
            vec![f64::NAN, f64::NAN, 1.0],
        ];
        for scores in &cases {
            for k in 0..=scores.len() + 2 {
                assert_eq!(
                    top_k_indices(scores, k),
                    sort_select(scores, k.min(scores.len())),
                    "scores {scores:?} k {k}"
                );
            }
        }
    }

    #[test]
    fn deterministic_pseudo_random_sweep() {
        // A seeded LCG sweep over sizes and k: cheap exhaustive-ish cover
        // without pulling the rand shim into this module.
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in [1usize, 2, 3, 7, 33, 100] {
            let scores: Vec<f64> = (0..n).map(|_| (next() % 13) as f64 / 4.0).collect();
            for k in [0, 1, 2, n / 2, n, n + 3] {
                assert_eq!(
                    top_k_indices(&scores, k),
                    sort_select(&scores, k.min(n)),
                    "n {n} k {k}"
                );
            }
        }
    }

    #[test]
    fn zero_k_keeps_nothing() {
        let mut h = BoundedTopK::new(0);
        h.insert(0, 1.0);
        assert!(h.into_sorted_indices().is_empty());
    }
}
