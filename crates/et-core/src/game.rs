//! Game primitives: examples, labels, interactions, histories.

use et_belief::LabeledPair;

/// A clean/dirty label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Label {
    /// The annotator considers the tuple clean.
    Clean,
    /// The annotator considers the tuple erroneous.
    Dirty,
}

impl Label {
    /// `true` when dirty.
    pub fn is_dirty(self) -> bool {
        matches!(self, Label::Dirty)
    }

    /// From a dirty flag.
    pub fn from_dirty(dirty: bool) -> Self {
        if dirty {
            Label::Dirty
        } else {
            Label::Clean
        }
    }
}

/// An example presented to the trainer: a pair of tuples (FD violations are
/// defined over pairs; §C.1 modifies all sampling methods to select pairs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PairExample {
    /// Lower row id.
    pub a: usize,
    /// Higher row id.
    pub b: usize,
}

impl PairExample {
    /// Builds a normalized pair (`a < b`).
    ///
    /// # Panics
    /// Panics when `a == b`.
    pub fn new(a: usize, b: usize) -> Self {
        assert_ne!(a, b, "a pair needs two distinct tuples");
        Self {
            a: a.min(b),
            b: a.max(b),
        }
    }
}

/// One completed interaction: what the learner selected, and the labeled
/// evidence the trainer's per-tuple verdicts induce over the whole sample.
#[derive(Debug, Clone)]
pub struct Interaction {
    /// Interaction number `t` (0-based).
    pub t: usize,
    /// The pairs the learner's policy selected (always fresh).
    pub selected: Vec<PairExample>,
    /// The presented sample: the distinct tuples of the selected pairs.
    pub sample: Vec<usize>,
    /// The trainer's per-tuple labels, aligned with `sample`
    /// (`true` = dirty).
    pub labels: Vec<bool>,
    /// Every within-sample pair relevant to some hypothesis-space FD, with
    /// the trainer's labels.
    pub labeled: Vec<LabeledPair>,
}

impl Interaction {
    /// The labeled evidence pairs as [`PairExample`]s.
    pub fn pairs(&self) -> impl Iterator<Item = PairExample> + '_ {
        self.labeled.iter().map(|l| PairExample::new(l.a, l.b))
    }

    /// Number of tuples shown (2 per pair).
    pub fn tuples_shown(&self) -> usize {
        self.labeled.len() * 2
    }

    /// Number of dirty labels given.
    pub fn dirty_labels(&self) -> usize {
        self.labeled
            .iter()
            .map(|l| usize::from(l.dirty_a) + usize::from(l.dirty_b))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_conversions() {
        assert!(Label::Dirty.is_dirty());
        assert!(!Label::Clean.is_dirty());
        assert_eq!(Label::from_dirty(true), Label::Dirty);
        assert_eq!(Label::from_dirty(false), Label::Clean);
    }

    #[test]
    fn pair_normalizes() {
        let p = PairExample::new(7, 3);
        assert_eq!((p.a, p.b), (3, 7));
        assert_eq!(p, PairExample::new(3, 7));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn degenerate_pair_rejected() {
        let _ = PairExample::new(4, 4);
    }

    #[test]
    fn interaction_counts() {
        let i = Interaction {
            t: 0,
            selected: vec![PairExample::new(0, 1)],
            sample: vec![0, 1, 2, 3],
            labels: vec![true, false, false, false],
            labeled: vec![
                LabeledPair {
                    a: 0,
                    b: 1,
                    dirty_a: true,
                    dirty_b: false,
                },
                LabeledPair {
                    a: 2,
                    b: 3,
                    dirty_a: false,
                    dirty_b: false,
                },
            ],
        };
        assert_eq!(i.tuples_shown(), 4);
        assert_eq!(i.dirty_labels(), 1);
        assert_eq!(i.pairs().count(), 2);
    }
}
