//! Response strategies — how the learner picks which pairs to present.
//!
//! The paper compares:
//!
//! * **Fixed Random Sampling** — uniform over candidates (the baseline);
//! * **Uncertainty Sampling (US)** — the classic active-learning heuristic:
//!   deterministically take the most-uncertain examples;
//! * **Stochastic Best Response** — the proposed strategy: sample
//!   `x ∝ exp(u_a(θ, x) / γ)`, the logit best response of stochastic
//!   fictitious play (Proposition 1's learner);
//! * **Stochastic Uncertainty Sampling** — uncertainty in place of `u_a`
//!   inside the softmax: `x ∝ exp(entropy(x, θ) / γ)` (approximates US as
//!   γ → 0).
//!
//! Two extras round out the design space for ablations: deterministic
//! `Best` (greedy `u_a`, the trainer-side best response of Proposition 1)
//! and `ThompsonSampling` (score under a posterior draw instead of the
//! posterior mean).

use std::cell::{RefCell, RefMut};

use et_belief::Belief;
use et_data::Table;
use et_fd::{
    binary_entropy, invariant, tuple_dirty_prob_with, DeltaScorer, DetectParams, PairScores,
    RelationMatrix, ViolationIndex,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::game::PairExample;
use crate::payoff::{example_confidence, example_uncertainty};
use crate::topk::top_k_indices;

/// Everything a response strategy scores from.
///
/// `table` is always required (the reference scoring path derives pair
/// relations from raw cells); `index` enables [`ScoreBasis::DatasetTuple`]
/// scoring; `matrix` enables the precomputed fast path — strategies score
/// from the bit-packed [`RelationMatrix`] for every candidate it covers and
/// fall back to the per-call reference path, pair by pair, for any it does
/// not. Both paths are bit-identical by construction (pinned by proptest).
#[derive(Debug, Clone, Copy)]
pub struct ScoreCtx<'a> {
    /// The dataset being labeled.
    pub table: &'a Table,
    /// Dataset-wide violation index, for [`ScoreBasis::DatasetTuple`].
    pub index: Option<&'a ViolationIndex>,
    /// Precomputed pair-relation matrix over the candidate pool.
    pub matrix: Option<&'a RelationMatrix>,
    /// Session-lifetime delta-rescoring cache over `matrix`. When present
    /// (and it owns the same matrix), batch scores are served by factor
    /// diff + delta re-fold instead of a from-scratch `score_all` — the
    /// second scoring pass of a round and near-unchanged beliefs become
    /// (near-)free. Scores are bit-identical either way.
    pub scorer: Option<&'a RefCell<DeltaScorer>>,
}

impl<'a> ScoreCtx<'a> {
    /// A context scoring from raw cells only (the reference path).
    pub fn new(table: &'a Table) -> Self {
        Self {
            table,
            index: None,
            matrix: None,
            scorer: None,
        }
    }

    /// Attaches the dataset-wide violation index.
    #[must_use]
    pub fn with_index(mut self, index: &'a ViolationIndex) -> Self {
        self.index = Some(index);
        self
    }

    /// Attaches a precomputed relation matrix (the fast scoring path).
    #[must_use]
    pub fn with_matrix(mut self, matrix: &'a RelationMatrix) -> Self {
        self.matrix = Some(matrix);
        self
    }

    /// Attaches a delta-rescoring cache (used only when it covers the
    /// attached matrix).
    #[must_use]
    pub fn with_scorer(mut self, scorer: &'a RefCell<DeltaScorer>) -> Self {
        self.scorer = Some(scorer);
        self
    }
}

/// Batch scores over `m` for one `(confidences, params)` request: served
/// from the attached [`DeltaScorer`] when it caches this very matrix
/// (delta re-fold, cached across calls), freshly computed otherwise. The
/// two out-parameters anchor the returned borrow in the caller's frame.
fn batch_scores<'a, 'g: 'a>(
    m: &RelationMatrix,
    scorer: Option<&'g RefCell<DeltaScorer>>,
    confidences: &[f64],
    params: &DetectParams,
    owned: &'a mut Option<PairScores>,
    guard: &'a mut Option<RefMut<'g, DeltaScorer>>,
) -> &'a PairScores {
    if let Some(cell) = scorer {
        let g = cell.borrow_mut();
        if std::ptr::eq::<RelationMatrix>(g.matrix(), m) {
            return guard.insert(g).scores_for(confidences, params);
        }
    }
    owned.insert(m.score_all(confidences, params))
}

/// What the per-example scores are computed from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScoreBasis {
    /// Pair-local probabilities: the pair's own violated FDs feed the
    /// score — the paper's `entropy(x, θ_t)` adapted to pair selection
    /// (§C.1 modifies every method to pick pairs). This is the default and
    /// reproduces the paper's Figure 1/3 contrast: a learner with a wrong
    /// prior systematically mis-scores which pairs are uncertain and
    /// deterministic US degrades below Random, while with an informed prior
    /// US is the sharpest method.
    PairLocal,
    /// Dataset-wide tuple probabilities: `p(clean | θ)` of each tuple
    /// judged against the *whole* dataset's violation structure (ablation;
    /// requires a [`ViolationIndex`]).
    DatasetTuple,
}

/// Which selection rule to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// Uniform over candidates (the paper's `Random`).
    Random,
    /// Deterministic top-k by uncertainty (the paper's `US`).
    UncertaintySampling,
    /// Softmax over `u_a / γ` (the paper's `StochasticBR`).
    StochasticBestResponse,
    /// Softmax over `entropy / γ` (the paper's `StochasticUS`).
    StochasticUncertainty,
    /// Deterministic top-k by `u_a` (greedy best response).
    Best,
    /// Greedy `u_a` under a Thompson draw from the belief posterior.
    ThompsonSampling,
    /// Top-k by analytic committee disagreement: the summed posterior
    /// variance of the FDs the pair violates (the closed-form limit of
    /// query-by-committee with Thompson-drawn committee members).
    CommitteeDisagreement,
    /// Uncertainty weighted by representativeness (how many hypotheses the
    /// pair can inform) — the classic density-weighted US variant.
    DensityWeightedUncertainty,
}

impl StrategyKind {
    /// The four methods compared in the paper's empirical study, in its
    /// reporting order.
    pub const PAPER_METHODS: [StrategyKind; 4] = [
        StrategyKind::Random,
        StrategyKind::UncertaintySampling,
        StrategyKind::StochasticBestResponse,
        StrategyKind::StochasticUncertainty,
    ];

    /// Display name matching the paper.
    pub fn as_str(&self) -> &'static str {
        match self {
            StrategyKind::Random => "Random",
            StrategyKind::UncertaintySampling => "US",
            StrategyKind::StochasticBestResponse => "StochasticBR",
            StrategyKind::StochasticUncertainty => "StochasticUS",
            StrategyKind::Best => "Best",
            StrategyKind::ThompsonSampling => "Thompson",
            StrategyKind::CommitteeDisagreement => "Committee",
            StrategyKind::DensityWeightedUncertainty => "DensityUS",
        }
    }

    /// Parses a display name (as produced by [`StrategyKind::as_str`])
    /// back into the strategy; used by external drivers naming strategies
    /// over the wire.
    pub fn from_name(name: &str) -> Option<StrategyKind> {
        let all = [
            StrategyKind::Random,
            StrategyKind::UncertaintySampling,
            StrategyKind::StochasticBestResponse,
            StrategyKind::StochasticUncertainty,
            StrategyKind::Best,
            StrategyKind::ThompsonSampling,
            StrategyKind::CommitteeDisagreement,
            StrategyKind::DensityWeightedUncertainty,
        ];
        all.into_iter().find(|k| k.as_str() == name)
    }

    /// The extension strategies beyond the paper's four (for ablations).
    pub const EXTENSIONS: [StrategyKind; 4] = [
        StrategyKind::Best,
        StrategyKind::ThompsonSampling,
        StrategyKind::CommitteeDisagreement,
        StrategyKind::DensityWeightedUncertainty,
    ];
}

/// A configured response strategy.
#[derive(Debug, Clone, Copy)]
pub struct ResponseStrategy {
    /// The selection rule.
    pub kind: StrategyKind,
    /// Softmax temperature γ (> 0); the paper uses 0.5. Lower is greedier.
    pub gamma: f64,
    /// What the scores are computed from.
    pub basis: ScoreBasis,
}

impl ResponseStrategy {
    /// Builds a strategy; γ must be positive.
    ///
    /// # Panics
    /// Panics when `gamma` is not positive.
    pub fn new(kind: StrategyKind, gamma: f64) -> Self {
        assert!(gamma > 0.0, "gamma must be positive, got {gamma}");
        Self {
            kind,
            gamma,
            basis: ScoreBasis::PairLocal,
        }
    }

    /// The paper's configuration (γ = 0.5, pair-local scoring).
    pub fn paper(kind: StrategyKind) -> Self {
        Self::new(kind, 0.5)
    }

    /// Overrides the score basis (ablation).
    #[must_use]
    pub fn with_basis(mut self, basis: ScoreBasis) -> Self {
        self.basis = basis;
        self
    }

    /// Selects up to `k` distinct pairs from `candidates`.
    ///
    /// Deterministic strategies break score ties by pair order; stochastic
    /// strategies consume `rng`. `ctx` carries the scoring inputs: the
    /// table (always), the dataset-wide violation index used by
    /// [`ScoreBasis::DatasetTuple`], and the optional [`RelationMatrix`]
    /// fast path.
    pub fn select(
        &self,
        ctx: ScoreCtx<'_>,
        belief: &Belief,
        candidates: &[PairExample],
        k: usize,
        rng: &mut StdRng,
    ) -> Vec<PairExample> {
        if candidates.is_empty() || k == 0 {
            return Vec::new();
        }
        let k = k.min(candidates.len());
        match self.kind {
            StrategyKind::Random => {
                let mut pool: Vec<PairExample> = candidates.to_vec();
                pool.shuffle(rng);
                pool.truncate(k);
                pool
            }
            StrategyKind::UncertaintySampling
            | StrategyKind::Best
            | StrategyKind::CommitteeDisagreement
            | StrategyKind::DensityWeightedUncertainty => {
                let scores = self.scores(ctx, belief, candidates, None);
                top_k(candidates, &scores, k)
            }
            StrategyKind::ThompsonSampling => {
                // One posterior draw per interaction: score confidence under
                // the sampled confidence vector.
                let draw: Vec<f64> = (0..belief.len())
                    .map(|i| belief.dist(i).sample(rng))
                    .collect();
                let scores = self.scores(ctx, belief, candidates, Some(&draw));
                top_k(candidates, &scores, k)
            }
            StrategyKind::StochasticBestResponse | StrategyKind::StochasticUncertainty => {
                let scores = self.scores(ctx, belief, candidates, None);
                softmax_sample_without_replacement(candidates, &scores, self.gamma, k, rng)
            }
        }
    }

    /// The policy's selection distribution over `candidates` (used for
    /// payoff accounting and policy-entropy metrics): softmax weights for
    /// stochastic strategies, uniform over the top-k support for
    /// deterministic ones, uniform for `Random`.
    pub fn policy_distribution(
        &self,
        ctx: ScoreCtx<'_>,
        belief: &Belief,
        candidates: &[PairExample],
        k: usize,
    ) -> Vec<f64> {
        let n = candidates.len();
        if n == 0 {
            return Vec::new();
        }
        match self.kind {
            StrategyKind::Random => vec![1.0 / n as f64; n],
            StrategyKind::UncertaintySampling
            | StrategyKind::Best
            | StrategyKind::ThompsonSampling
            | StrategyKind::CommitteeDisagreement
            | StrategyKind::DensityWeightedUncertainty => {
                let scores = self.scores(ctx, belief, candidates, None);
                let chosen = top_k_indices(&scores, k.min(n));
                let w = 1.0 / chosen.len() as f64;
                let mut out = vec![0.0; n];
                for i in chosen {
                    out[i] = w;
                }
                out
            }
            StrategyKind::StochasticBestResponse | StrategyKind::StochasticUncertainty => {
                let scores = self.scores(ctx, belief, candidates, None);
                softmax(&scores, self.gamma)
            }
        }
    }

    /// Raw per-candidate scores for this strategy's criterion.
    ///
    /// When `ctx.matrix` covers a candidate pair, its score comes from the
    /// precomputed packed relations (one batch [`RelationMatrix::score_all`]
    /// pass instead of a per-pair raw-cell scan); uncovered pairs fall back
    /// to the reference path. Both produce bit-identical scores: the matrix
    /// multiplies the same noisy-OR factors in the same ascending-FD order
    /// as [`et_fd::pair_dirty_probs_with`].
    fn scores(
        &self,
        ctx: ScoreCtx<'_>,
        belief: &Belief,
        candidates: &[PairExample],
        thompson_draw: Option<&[f64]>,
    ) -> Vec<f64> {
        if matches!(self.kind, StrategyKind::Random) {
            return vec![0.0; candidates.len()];
        }
        if matches!(self.kind, StrategyKind::CommitteeDisagreement) {
            // Summed posterior variance over the FDs each pair violates;
            // the matrix already knows each covered pair's violated set.
            let mut rel: Option<et_fd::SpaceRelations> = None;
            return candidates
                .iter()
                .map(
                    |p| match ctx.matrix.and_then(|m| Some((m, m.pair_id(p.a, p.b)?))) {
                        Some((m, pid)) => m
                            .violated_indices(pid)
                            .map(|fi| belief.dist(fi).variance())
                            .sum(),
                        None => {
                            let rel = rel
                                .get_or_insert_with(|| et_fd::SpaceRelations::new(belief.space()));
                            (0..rel.len())
                                .filter(|&fi| {
                                    rel.relation(ctx.table, fi, p.a, p.b)
                                        == et_fd::PairRelation::Violates
                                })
                                .map(|fi| belief.dist(fi).variance())
                                .sum()
                        }
                    },
                )
                .collect();
        }
        if matches!(self.kind, StrategyKind::DensityWeightedUncertainty) {
            // Uncertainty x representativeness (relevant-FD count).
            let n_fds = belief.len().max(1) as f64;
            let conf = belief.confidences();
            let (mut owned, mut guard) = (None, None);
            let batch = ctx.matrix.map(|m| {
                batch_scores(
                    m,
                    ctx.scorer,
                    &conf,
                    &DetectParams::unsmoothed(),
                    &mut owned,
                    &mut guard,
                )
            });
            let mut rel: Option<et_fd::SpaceRelations> = None;
            return candidates
                .iter()
                .map(|&p| {
                    let hit = ctx
                        .matrix
                        .zip(batch)
                        .and_then(|(m, b)| Some((m, b, m.pair_id(p.a, p.b)?)));
                    match hit {
                        Some((m, b, pid)) => {
                            let e = b.entropy[pid];
                            (e + e) * (m.relevant_count(pid) as f64 / n_fds)
                        }
                        None => {
                            let rel = rel
                                .get_or_insert_with(|| et_fd::SpaceRelations::new(belief.space()));
                            let relevant = (0..rel.len())
                                .filter(|&fi| {
                                    rel.relation(ctx.table, fi, p.a, p.b)
                                        != et_fd::PairRelation::Irrelevant
                                })
                                .count() as f64;
                            example_uncertainty(ctx.table, belief, p) * (relevant / n_fds)
                        }
                    }
                })
                .collect();
        }
        let conf_holder;
        let conf: &[f64] = match thompson_draw {
            Some(d) => d,
            None => {
                conf_holder = belief.confidences();
                &conf_holder
            }
        };
        match (self.basis, ctx.index) {
            (ScoreBasis::DatasetTuple, Some(index)) => {
                // The paper's per-tuple p(dirty | θ) over the whole dataset.
                let params = DetectParams::default();
                let mut probs = vec![f64::NAN; index.n_rows()];
                let prob = |row: usize, probs: &mut Vec<f64>| {
                    if probs[row].is_nan() {
                        probs[row] = tuple_dirty_prob_with(index, conf, row, &params);
                    }
                    probs[row]
                };
                candidates
                    .iter()
                    .map(|p| {
                        let pa = prob(p.a, &mut probs);
                        let pb = prob(p.b, &mut probs);
                        match self.kind {
                            StrategyKind::UncertaintySampling
                            | StrategyKind::StochasticUncertainty => {
                                binary_entropy(pa) + binary_entropy(pb)
                            }
                            _ => pa.max(1.0 - pa) + pb.max(1.0 - pb),
                        }
                    })
                    .collect()
            }
            _ => {
                // Pair-local scoring (ablation, or no index supplied).
                match self.kind {
                    StrategyKind::UncertaintySampling | StrategyKind::StochasticUncertainty => {
                        // Uncertainty is belief-internal: raw probabilities,
                        // posterior-mean confidences (never the draw).
                        let mean_conf = belief.confidences();
                        let (mut owned, mut guard) = (None, None);
                        let batch = ctx.matrix.map(|m| {
                            batch_scores(
                                m,
                                ctx.scorer,
                                &mean_conf,
                                &DetectParams::unsmoothed(),
                                &mut owned,
                                &mut guard,
                            )
                        });
                        candidates
                            .iter()
                            .map(|&p| {
                                let hit = ctx
                                    .matrix
                                    .zip(batch)
                                    .and_then(|(m, b)| Some((b, m.pair_id(p.a, p.b)?)));
                                match hit {
                                    Some((b, pid)) => {
                                        let e = b.entropy[pid];
                                        e + e
                                    }
                                    None => example_uncertainty(ctx.table, belief, p),
                                }
                            })
                            .collect()
                    }
                    _ => {
                        // Confidence scoring: smoothed under a Thompson draw
                        // (matching `pair_dirty_probs`), raw otherwise
                        // (matching `example_confidence`).
                        let params = if thompson_draw.is_some() {
                            DetectParams::default()
                        } else {
                            DetectParams::unsmoothed()
                        };
                        let (mut owned, mut guard) = (None, None);
                        let batch = ctx.matrix.map(|m| {
                            batch_scores(m, ctx.scorer, conf, &params, &mut owned, &mut guard)
                        });
                        candidates
                            .iter()
                            .map(|&p| {
                                let hit = ctx
                                    .matrix
                                    .zip(batch)
                                    .and_then(|(m, b)| Some((b, m.pair_id(p.a, p.b)?)));
                                match hit {
                                    Some((b, pid)) => {
                                        let d = b.dirty[pid];
                                        let s = d.max(1.0 - d);
                                        s + s
                                    }
                                    None if thompson_draw.is_some() => {
                                        let (pa, pb) = et_fd::pair_dirty_probs(
                                            ctx.table,
                                            belief.space(),
                                            conf,
                                            p.a,
                                            p.b,
                                        );
                                        pa.max(1.0 - pa) + pb.max(1.0 - pb)
                                    }
                                    None => example_confidence(ctx.table, belief, p),
                                }
                            })
                            .collect()
                    }
                }
            }
        }
    }
}

/// Deterministic top-k by score (ties by candidate order): a bounded
/// `O(n log k)` heap ([`crate::topk`]) in place of the historical full
/// sort, with element-for-element identical output.
fn top_k(candidates: &[PairExample], scores: &[f64], k: usize) -> Vec<PairExample> {
    top_k_indices(scores, k)
        .into_iter()
        .map(|i| candidates[i])
        .collect()
}

/// Numerically-stable softmax of `scores / gamma`.
fn softmax(scores: &[f64], gamma: f64) -> Vec<f64> {
    let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut out: Vec<f64> = scores.iter().map(|s| ((s - max) / gamma).exp()).collect();
    let sum: f64 = out.iter().sum();
    for v in &mut out {
        *v /= sum;
    }
    invariant!(
        out.is_empty()
            || (out.iter().all(|w| *w >= 0.0) && (out.iter().sum::<f64>() - 1.0).abs() < 1e-9),
        "softmax weights must be non-negative and sum to ~1"
    );
    out
}

/// Samples `k` distinct candidates with probabilities ∝ softmax weights,
/// renormalising after each draw.
fn softmax_sample_without_replacement(
    candidates: &[PairExample],
    scores: &[f64],
    gamma: f64,
    k: usize,
    rng: &mut StdRng,
) -> Vec<PairExample> {
    let mut weights = softmax(scores, gamma);
    let mut alive: Vec<usize> = (0..candidates.len()).collect();
    let mut out = Vec::with_capacity(k);
    for _ in 0..k {
        let total: f64 = alive.iter().map(|&i| weights[i]).sum();
        if total <= 0.0 || alive.is_empty() {
            break;
        }
        let mut pick = rng.gen::<f64>() * total;
        let mut chosen_pos = alive.len() - 1;
        for (pos, &i) in alive.iter().enumerate() {
            if pick < weights[i] {
                chosen_pos = pos;
                break;
            }
            pick -= weights[i];
        }
        let i = alive.swap_remove(chosen_pos);
        weights[i] = 0.0;
        out.push(candidates[i]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use et_belief::Beta;
    use et_data::table::paper_table1;
    use et_fd::{Fd, HypothesisSpace};
    use rand::SeedableRng;
    use std::sync::Arc;

    fn setup(conf: f64) -> (Table, Belief, Vec<PairExample>) {
        let t = paper_table1();
        let space = Arc::new(HypothesisSpace::from_fds([
            Fd::from_attrs([1], 2),
            Fd::from_attrs([2, 3], 4),
        ]));
        let b = Belief::constant(space, Beta::from_mean_std(conf, 0.05));
        let pool = vec![
            PairExample::new(0, 1), // violates Team -> City
            PairExample::new(1, 2), // satisfies City,Role -> Apps
            PairExample::new(2, 3), // satisfies Team -> City
        ];
        (t, b, pool)
    }

    use et_data::Table;

    #[test]
    fn random_selects_k_distinct() {
        let (t, b, pool) = setup(0.9);
        let s = ResponseStrategy::paper(StrategyKind::Random);
        let mut rng = StdRng::seed_from_u64(1);
        let picked = s.select(ScoreCtx::new(&t), &b, &pool, 2, &mut rng);
        assert_eq!(picked.len(), 2);
        assert_ne!(picked[0], picked[1]);
    }

    #[test]
    fn us_prefers_uncertain_pairs() {
        // With confidence 0.7, a violating pair has p_dirty = .7 (uncertain)
        // while satisfying pairs have p = .3; same entropy. Make them
        // differ: use 0.85 -> violating p=.85 (ent .42), satisfying p=.15
        // (same). Entropies tie... instead compare against an irrelevant-ish
        // candidate through a belief that is confident about one FD only.
        let t = paper_table1();
        let space = Arc::new(HypothesisSpace::from_fds([
            Fd::from_attrs([1], 2),
            Fd::from_attrs([2, 3], 4),
        ]));
        let mut b = Belief::constant(space, Beta::from_mean_std(0.55, 0.05));
        // fd1 very confident -> its satisfying pair (1,2) is low entropy.
        *b.dist_mut(1) = Beta::from_mean_std(0.98, 0.01);
        let pool = vec![PairExample::new(0, 1), PairExample::new(1, 2)];
        let s = ResponseStrategy::paper(StrategyKind::UncertaintySampling);
        let mut rng = StdRng::seed_from_u64(1);
        let picked = s.select(ScoreCtx::new(&t), &b, &pool, 1, &mut rng);
        assert_eq!(picked[0], PairExample::new(0, 1), "ambiguous pair first");
    }

    #[test]
    fn best_prefers_confident_pairs() {
        let t = paper_table1();
        let space = Arc::new(HypothesisSpace::from_fds([
            Fd::from_attrs([1], 2),
            Fd::from_attrs([2, 3], 4),
        ]));
        let mut b = Belief::constant(space, Beta::from_mean_std(0.55, 0.05));
        *b.dist_mut(1) = Beta::from_mean_std(0.98, 0.01);
        let pool = vec![PairExample::new(0, 1), PairExample::new(1, 2)];
        let s = ResponseStrategy::paper(StrategyKind::Best);
        let mut rng = StdRng::seed_from_u64(1);
        let picked = s.select(ScoreCtx::new(&t), &b, &pool, 1, &mut rng);
        assert_eq!(picked[0], PairExample::new(1, 2), "confident pair first");
    }

    #[test]
    fn stochastic_variants_sample_distinct_and_deterministic_in_seed() {
        let (t, b, pool) = setup(0.8);
        for kind in [
            StrategyKind::StochasticBestResponse,
            StrategyKind::StochasticUncertainty,
        ] {
            let s = ResponseStrategy::paper(kind);
            let run = |seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                s.select(ScoreCtx::new(&t), &b, &pool, 2, &mut rng)
            };
            let a = run(5);
            assert_eq!(a.len(), 2);
            assert_ne!(a[0], a[1]);
            assert_eq!(a, run(5), "same seed, same sample");
        }
    }

    #[test]
    fn low_gamma_approaches_greedy() {
        // StochasticUS with tiny gamma behaves like US (paper §4).
        let t = paper_table1();
        let space = Arc::new(HypothesisSpace::from_fds([
            Fd::from_attrs([1], 2),
            Fd::from_attrs([2, 3], 4),
        ]));
        let mut b = Belief::constant(space, Beta::from_mean_std(0.55, 0.05));
        *b.dist_mut(1) = Beta::from_mean_std(0.98, 0.01);
        let pool = vec![PairExample::new(0, 1), PairExample::new(1, 2)];
        let greedy = ResponseStrategy::paper(StrategyKind::UncertaintySampling);
        let stochastic = ResponseStrategy::new(StrategyKind::StochasticUncertainty, 1e-3);
        let mut rng = StdRng::seed_from_u64(3);
        let g = greedy.select(ScoreCtx::new(&t), &b, &pool, 1, &mut rng);
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            assert_eq!(
                stochastic.select(ScoreCtx::new(&t), &b, &pool, 1, &mut rng),
                g
            );
        }
    }

    #[test]
    fn policy_distribution_sums_to_one() {
        let (t, b, pool) = setup(0.8);
        for kind in [
            StrategyKind::Random,
            StrategyKind::UncertaintySampling,
            StrategyKind::StochasticBestResponse,
            StrategyKind::StochasticUncertainty,
            StrategyKind::Best,
        ] {
            let s = ResponseStrategy::paper(kind);
            let d = s.policy_distribution(ScoreCtx::new(&t), &b, &pool, 2);
            let sum: f64 = d.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{kind:?} sums to {sum}");
            assert!(d.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn high_gamma_flattens_softmax() {
        // Need pairs with *different* confidence scores: make one FD much
        // more decided than the other.
        let t = paper_table1();
        let space = Arc::new(HypothesisSpace::from_fds([
            Fd::from_attrs([1], 2),
            Fd::from_attrs([2, 3], 4),
        ]));
        let mut b = Belief::constant(space, Beta::from_mean_std(0.55, 0.05));
        *b.dist_mut(1) = Beta::from_mean_std(0.98, 0.01);
        let pool = vec![
            PairExample::new(0, 1),
            PairExample::new(1, 2),
            PairExample::new(2, 3),
        ];
        let sharp = ResponseStrategy::new(StrategyKind::StochasticBestResponse, 0.05);
        let flat = ResponseStrategy::new(StrategyKind::StochasticBestResponse, 50.0);
        let ds = sharp.policy_distribution(ScoreCtx::new(&t), &b, &pool, 2);
        let df = flat.policy_distribution(ScoreCtx::new(&t), &b, &pool, 2);
        let spread = |d: &[f64]| {
            d.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - d.iter().cloned().fold(f64::INFINITY, f64::min)
        };
        assert!(spread(&ds) > spread(&df));
        // Near-uniform at high temperature.
        assert!(spread(&df) < 0.01);
    }

    #[test]
    fn thompson_selects_k() {
        let (t, b, pool) = setup(0.7);
        let s = ResponseStrategy::paper(StrategyKind::ThompsonSampling);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(s.select(ScoreCtx::new(&t), &b, &pool, 2, &mut rng).len(), 2);
    }

    #[test]
    fn k_larger_than_pool_is_clamped() {
        let (t, b, pool) = setup(0.8);
        let s = ResponseStrategy::paper(StrategyKind::Random);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(
            s.select(ScoreCtx::new(&t), &b, &pool, 99, &mut rng).len(),
            pool.len()
        );
        assert!(s.select(ScoreCtx::new(&t), &b, &[], 2, &mut rng).is_empty());
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;
    use et_belief::{Belief, Beta};
    use et_data::table::paper_table1;
    use et_fd::{Fd, HypothesisSpace};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn setup() -> (et_data::Table, Belief, Vec<PairExample>) {
        let t = paper_table1();
        let space = Arc::new(HypothesisSpace::from_fds([
            Fd::from_attrs([1], 2),
            Fd::from_attrs([2, 3], 4),
        ]));
        let b = Belief::constant(space, Beta::new(2.0, 2.0));
        let pool = vec![
            PairExample::new(0, 1),
            PairExample::new(1, 2),
            PairExample::new(2, 3),
        ];
        (t, b, pool)
    }

    #[test]
    fn committee_prefers_high_variance_violations() {
        let (t, mut b, pool) = setup();
        // Shrink fd0's variance: its violating pair (0,1) should lose to
        // nothing (no other violating pair exists), but its raw score drops.
        let s = ResponseStrategy::paper(StrategyKind::CommitteeDisagreement);
        let mut rng = StdRng::seed_from_u64(1);
        let picked = s.select(ScoreCtx::new(&t), &b, &pool, 1, &mut rng);
        assert_eq!(
            picked[0],
            PairExample::new(0, 1),
            "only violating pair wins"
        );
        // With a near-certain belief in fd0, disagreement collapses.
        *b.dist_mut(0) = Beta::new(500.0, 1.0);
        let scores_sharp = s.policy_distribution(ScoreCtx::new(&t), &b, &pool, 1);
        // Policy still selects one pair, but the winner is unchanged
        // (ties fall to candidate order); the invariant we check is
        // validity of the distribution.
        let sum: f64 = scores_sharp.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn density_weighting_downweights_narrow_pairs() {
        let (t, b, _) = setup();
        // (1,2) is relevant to one FD; craft a pair relevant to... in
        // Table 1 all candidates touch a single FD, so check the scores
        // are finite and the strategy selects k pairs.
        let s = ResponseStrategy::paper(StrategyKind::DensityWeightedUncertainty);
        let mut rng = StdRng::seed_from_u64(2);
        let picked = s.select(
            ScoreCtx::new(&t),
            &b,
            &[PairExample::new(0, 1), PairExample::new(2, 3)],
            2,
            &mut rng,
        );
        assert_eq!(picked.len(), 2);
    }

    #[test]
    fn extension_strategies_are_deterministic() {
        let (t, b, pool) = setup();
        for kind in [
            StrategyKind::CommitteeDisagreement,
            StrategyKind::DensityWeightedUncertainty,
        ] {
            let s = ResponseStrategy::paper(kind);
            let mut r1 = StdRng::seed_from_u64(3);
            let mut r2 = StdRng::seed_from_u64(99);
            // Deterministic strategies ignore the RNG entirely.
            assert_eq!(
                s.select(ScoreCtx::new(&t), &b, &pool, 2, &mut r1),
                s.select(ScoreCtx::new(&t), &b, &pool, 2, &mut r2),
                "{kind:?}"
            );
        }
    }
}
