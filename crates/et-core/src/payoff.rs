//! The game's payoff functions (§2).
//!
//! * Trainer: `u_T(θ, π) = Σ_x θ(π(x) | x)` — the belief-probability of the
//!   labels it gives.
//! * Learner accuracy: `u_a(θ, π) = Σ_x θ(y | x) π(x)` — expected belief-
//!   probability of the trainer's labels under the selection policy.
//! * Learner total: `u_L = u_a − γ Σ_x π(x) ln π(x)` — accuracy plus
//!   γ-weighted policy entropy, rewarding representative, diverse example
//!   sets.

use et_belief::{Belief, LabeledPair};
use et_data::Table;
use et_fd::{
    binary_entropy, pair_dirty_probs_with, violation_factors, DetectParams, RelationMatrix,
};

use crate::game::PairExample;

/// Pair dirty probabilities via the matrix fast path when it covers the
/// pair (precomputed `factors` required), the raw-cell reference scan
/// otherwise. Bit-identical either way: the matrix multiplies the same
/// noisy-OR factors in the same ascending-FD order.
fn pair_probs(
    table: &Table,
    belief: &Belief,
    conf: &[f64],
    fast: Option<(&RelationMatrix, &[f64])>,
    a: usize,
    b: usize,
    params: &DetectParams,
) -> (f64, f64) {
    if let Some((m, f)) = fast {
        if let Some(pid) = m.pair_id(a, b) {
            let p = m.dirty_prob_with_factors(pid, f, params);
            return (p, p);
        }
    }
    pair_dirty_probs_with(table, belief.space(), conf, a, b, params)
}

/// The belief-probability that pair `p` is labeled the way the belief
/// itself would label it: `Σ over the pair's tuples of max(p_dirty,
/// 1 − p_dirty)`. This is the per-example payoff `u_a(θ, x)` the stochastic
/// best response exponentiates.
///
/// Payoff and uncertainty are belief-internal quantities, so they use the
/// paper's raw (unsmoothed) probabilities — an undecided belief must read
/// as maximal uncertainty, not as the ambient base rate.
pub fn example_confidence(table: &Table, belief: &Belief, p: PairExample) -> f64 {
    example_confidence_with(table, belief, None, p)
}

/// [`example_confidence`] with an optional [`RelationMatrix`] fast path.
pub fn example_confidence_with(
    table: &Table,
    belief: &Belief,
    matrix: Option<&RelationMatrix>,
    p: PairExample,
) -> f64 {
    let conf = belief.confidences();
    let raw = DetectParams::unsmoothed();
    let factors = matrix.map(|_| violation_factors(&conf, &raw));
    let fast = matrix.zip(factors.as_deref());
    let (pa, pb) = pair_probs(table, belief, &conf, fast, p.a, p.b, &raw);
    pa.max(1.0 - pa) + pb.max(1.0 - pb)
}

/// The paper's uncertainty measure for an example:
/// `entropy(x, θ) = −p ln p − (1−p) ln(1−p)` summed over the pair's tuples,
/// with `p` the raw belief-weighted dirty probability.
pub fn example_uncertainty(table: &Table, belief: &Belief, p: PairExample) -> f64 {
    example_uncertainty_with(table, belief, None, p)
}

/// [`example_uncertainty`] with an optional [`RelationMatrix`] fast path.
pub fn example_uncertainty_with(
    table: &Table,
    belief: &Belief,
    matrix: Option<&RelationMatrix>,
    p: PairExample,
) -> f64 {
    let conf = belief.confidences();
    let raw = DetectParams::unsmoothed();
    let factors = matrix.map(|_| violation_factors(&conf, &raw));
    let fast = matrix.zip(factors.as_deref());
    let (pa, pb) = pair_probs(table, belief, &conf, fast, p.a, p.b, &raw);
    binary_entropy(pa) + binary_entropy(pb)
}

/// Trainer payoff `u_T`: how strongly the trainer's belief endorses the
/// labels it produced in one interaction.
pub fn trainer_payoff(table: &Table, belief: &Belief, labeled: &[LabeledPair]) -> f64 {
    trainer_payoff_with(table, belief, None, labeled)
}

/// [`trainer_payoff`] with an optional [`RelationMatrix`] fast path: the
/// per-FD factors are computed once for the whole labeled batch.
pub fn trainer_payoff_with(
    table: &Table,
    belief: &Belief,
    matrix: Option<&RelationMatrix>,
    labeled: &[LabeledPair],
) -> f64 {
    let conf = belief.confidences();
    let raw = DetectParams::unsmoothed();
    let factors = matrix.map(|_| violation_factors(&conf, &raw));
    let fast = matrix.zip(factors.as_deref());
    labeled
        .iter()
        .map(|l| {
            let (pa, pb) = pair_probs(table, belief, &conf, fast, l.a, l.b, &raw);
            let ta = if l.dirty_a { pa } else { 1.0 - pa };
            let tb = if l.dirty_b { pb } else { 1.0 - pb };
            ta + tb
        })
        .sum()
}

/// Learner accuracy payoff `u_a`: expected belief-probability of the
/// trainer's labels under the selection distribution `policy` (aligned with
/// `labeled`).
///
/// # Panics
/// Panics when `policy.len() != labeled.len()`.
pub fn learner_accuracy_payoff(
    table: &Table,
    belief: &Belief,
    labeled: &[LabeledPair],
    policy: &[f64],
) -> f64 {
    assert_eq!(policy.len(), labeled.len(), "policy/labeling mismatch");
    let conf = belief.confidences();
    let raw = DetectParams::unsmoothed();
    labeled
        .iter()
        .zip(policy)
        .map(|(l, &pi)| {
            let (pa, pb) = pair_dirty_probs_with(table, belief.space(), &conf, l.a, l.b, &raw);
            let ta = if l.dirty_a { pa } else { 1.0 - pa };
            let tb = if l.dirty_b { pb } else { 1.0 - pb };
            (ta + tb) * pi
        })
        .sum()
}

/// Shannon entropy `−Σ π ln π` of a (sub)distribution.
pub fn policy_entropy(policy: &[f64]) -> f64 {
    policy
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| -p * p.ln())
        .sum()
}

/// The learner's total payoff `u_L = u_a + γ · entropy(π)` (the paper
/// writes `u_a − γ Σ π ln π`; the subtracted term is negative entropy).
pub fn learner_total_payoff(
    table: &Table,
    belief: &Belief,
    labeled: &[LabeledPair],
    policy: &[f64],
    gamma: f64,
) -> f64 {
    learner_accuracy_payoff(table, belief, labeled, policy) + gamma * policy_entropy(policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use et_belief::Beta;
    use et_data::table::paper_table1;
    use et_fd::{Fd, HypothesisSpace};
    use std::sync::Arc;

    fn belief(conf: f64) -> Belief {
        let space = Arc::new(HypothesisSpace::from_fds([Fd::from_attrs([1], 2)]));
        Belief::constant(space, Beta::from_mean_std(conf, 0.05))
    }

    #[test]
    fn confidence_high_for_decided_pairs() {
        let t = paper_table1();
        let b = belief(0.95);
        // Violating pair (0,1): p_dirty ~ .95 for both -> confidence ~1.9.
        let c = example_confidence(&t, &b, PairExample::new(0, 1));
        assert!(c > 1.85, "got {c}");
        // With a near-uniform belief the pair is ambiguous.
        let b50 = belief(0.5);
        let c50 = example_confidence(&t, &b50, PairExample::new(0, 1));
        assert!(c50 < c, "uncertain belief should be less confident");
    }

    #[test]
    fn uncertainty_complements_confidence() {
        let t = paper_table1();
        let decided = belief(0.95);
        let torn = belief(0.5);
        let p = PairExample::new(0, 1);
        assert!(example_uncertainty(&t, &torn, p) > example_uncertainty(&t, &decided, p));
    }

    #[test]
    fn trainer_payoff_rewards_consistent_labels() {
        let t = paper_table1();
        let b = belief(0.9);
        let consistent = [LabeledPair {
            a: 0,
            b: 1,
            dirty_a: true,
            dirty_b: true,
        }];
        let contrarian = [LabeledPair {
            a: 0,
            b: 1,
            dirty_a: false,
            dirty_b: false,
        }];
        assert!(trainer_payoff(&t, &b, &consistent) > trainer_payoff(&t, &b, &contrarian));
    }

    #[test]
    fn policy_entropy_peaks_uniform() {
        let uniform = [0.25; 4];
        let peaked = [0.97, 0.01, 0.01, 0.01];
        assert!(policy_entropy(&uniform) > policy_entropy(&peaked));
        assert_eq!(policy_entropy(&[1.0]), 0.0);
        assert!((policy_entropy(&uniform) - 4.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn total_payoff_adds_entropy_bonus() {
        let t = paper_table1();
        let b = belief(0.9);
        let labeled = [
            LabeledPair {
                a: 0,
                b: 1,
                dirty_a: true,
                dirty_b: true,
            },
            LabeledPair {
                a: 2,
                b: 3,
                dirty_a: false,
                dirty_b: false,
            },
        ];
        let uniform = [0.5, 0.5];
        let ua = learner_accuracy_payoff(&t, &b, &labeled, &uniform);
        let ul = learner_total_payoff(&t, &b, &labeled, &uniform, 0.5);
        assert!((ul - (ua + 0.5 * policy_entropy(&uniform))).abs() < 1e-12);
        // gamma = 0 removes the bonus.
        assert!((learner_total_payoff(&t, &b, &labeled, &uniform, 0.0) - ua).abs() < 1e-12);
    }
}
