//! Session replay: counterfactual reconstruction of learner beliefs.
//!
//! A [`crate::SessionResult`]'s history records exactly what was shown and
//! how it was labeled. Replaying that history through a *different* learner
//! configuration answers "what would a learner with prior/evidence/scope X
//! have concluded from the same interactions?" — separating the effect of
//! the *selection policy* (frozen in the log) from the *prediction model*
//! (varied in the replay). The session log also round-trips through CSV for
//! offline analysis.

use et_belief::{Belief, EvidenceConfig};
use et_data::Table;

use crate::game::{Interaction, PairExample};
use crate::learner::{EvidenceScope, Learner};
use crate::respond::{ResponseStrategy, StrategyKind};

/// Replays a recorded interaction history into a fresh learner built from
/// `prior`, returning its final belief.
///
/// The learner's response strategy is irrelevant during replay (selection
/// is frozen in the log); only its prediction model — evidence rule and
/// scope — matters.
pub fn replay_history(
    table: &Table,
    history: &[Interaction],
    prior: Belief,
    evidence: EvidenceConfig,
    scope: EvidenceScope,
) -> Belief {
    let mut learner = Learner::new(
        prior,
        ResponseStrategy::paper(StrategyKind::Random),
        evidence,
        0,
    )
    .with_evidence_scope(scope);
    for it in history {
        learner.absorb_interaction(table, &it.selected, &it.sample, &it.labels);
    }
    learner.belief().clone()
}

/// Serialises a history as CSV: `iter,kind,payload` rows
/// (`kind` ∈ {selected, tuple}).
pub fn history_to_csv(history: &[Interaction]) -> String {
    let mut out = String::from("iter,kind,a,b,label\n");
    for it in history {
        for p in &it.selected {
            out.push_str(&format!("{},selected,{},{},\n", it.t, p.a, p.b));
        }
        for (row, label) in it.sample.iter().zip(&it.labels) {
            out.push_str(&format!("{},tuple,{},,{}\n", it.t, row, u8::from(*label)));
        }
    }
    out
}

/// Errors raised by [`history_from_csv`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryParseError {
    /// 1-based line.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for HistoryParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for HistoryParseError {}

/// Iteration indices above this are rejected as malformed: gap-filling up
/// to `t` allocates `t` interactions, so an adversarial `iter` field must
/// not be allowed to request an unbounded allocation.
const MAX_CSV_ITER: usize = 1 << 20;

/// Restores a history from [`history_to_csv`] output. The `labeled`
/// evidence-pair field is left empty (replay derives evidence from the
/// sample and labels).
pub fn history_from_csv(text: &str) -> Result<Vec<Interaction>, HistoryParseError> {
    let mut out: Vec<Interaction> = Vec::new();
    for (i, line) in text.lines().enumerate().skip(1) {
        let line_no = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split(',').collect();
        if parts.len() != 5 {
            return Err(HistoryParseError {
                line: line_no,
                reason: format!("expected 5 fields, got {}", parts.len()),
            });
        }
        let t: usize = parts[0].parse().map_err(|e| HistoryParseError {
            line: line_no,
            reason: format!("iter: {e}"),
        })?;
        if t > MAX_CSV_ITER {
            return Err(HistoryParseError {
                line: line_no,
                reason: format!("iter {t} exceeds the {MAX_CSV_ITER} cap"),
            });
        }
        while out.len() <= t {
            let next_t = out.len();
            out.push(Interaction {
                t: next_t,
                selected: Vec::new(),
                sample: Vec::new(),
                labels: Vec::new(),
                labeled: Vec::new(),
            });
        }
        match parts[1] {
            "selected" => {
                let a: usize = parts[2].parse().map_err(|e| HistoryParseError {
                    line: line_no,
                    reason: format!("a: {e}"),
                })?;
                let b: usize = parts[3].parse().map_err(|e| HistoryParseError {
                    line: line_no,
                    reason: format!("b: {e}"),
                })?;
                if a == b {
                    // `PairExample::new` asserts distinct tuples; a
                    // malformed row must error, not panic.
                    return Err(HistoryParseError {
                        line: line_no,
                        reason: format!("selected pair needs two distinct tuples, got ({a}, {b})"),
                    });
                }
                out[t].selected.push(PairExample::new(a, b));
            }
            "tuple" => {
                let row: usize = parts[2].parse().map_err(|e| HistoryParseError {
                    line: line_no,
                    reason: format!("row: {e}"),
                })?;
                let label = match parts[4] {
                    "0" => false,
                    "1" => true,
                    other => {
                        return Err(HistoryParseError {
                            line: line_no,
                            reason: format!("label must be 0/1, got `{other}`"),
                        })
                    }
                };
                out[t].sample.push(row);
                out[t].labels.push(label);
            }
            other => {
                return Err(HistoryParseError {
                    line: line_no,
                    reason: format!("unknown record kind `{other}`"),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{run_session, SessionConfig};
    use crate::trainer::FpTrainer;
    use et_belief::{build_prior, PriorConfig, PriorSpec};
    use et_data::gen::DatasetName;
    use et_data::{inject_errors, InjectConfig};
    use et_fd::{Fd, HypothesisSpace};
    use std::sync::Arc;

    fn fixture() -> (Table, Vec<bool>, Arc<HypothesisSpace>) {
        let mut ds = DatasetName::Omdb.generate(140, 13);
        let specs = ds.exact_fds.clone();
        let inj = inject_errors(
            &mut ds.table,
            &specs,
            &[],
            &InjectConfig::with_degree(0.10, 1),
        );
        let pinned: Vec<Fd> = specs.iter().map(Fd::from_spec).collect();
        let space = Arc::new(HypothesisSpace::capped(&ds.table, 3, 16, 8, &pinned));
        (ds.table, inj.dirty_rows, space)
    }

    fn run_once(
        table: &Table,
        dirty: &[bool],
        space: &Arc<HypothesisSpace>,
    ) -> crate::session::SessionResult {
        let cfg = PriorConfig {
            strength: 0.3,
            ..PriorConfig::default()
        };
        let mut trainer = FpTrainer::new(
            build_prior(&PriorSpec::Random { seed: 2 }, &cfg, space, table),
            EvidenceConfig::default(),
        );
        let mut learner = Learner::new(
            build_prior(&PriorSpec::DataEstimate, &cfg, space, table),
            ResponseStrategy::paper(StrategyKind::StochasticBestResponse),
            EvidenceConfig::default(),
            3,
        );
        run_session(
            table,
            space.clone(),
            dirty,
            SessionConfig {
                iterations: 12,
                seed: 4,
                ..SessionConfig::default()
            },
            &mut trainer,
            &mut learner,
        )
    }

    #[test]
    fn replay_reproduces_the_original_learner() {
        let (table, dirty, space) = fixture();
        let r = run_once(&table, &dirty, &space);
        let cfg = PriorConfig {
            strength: 0.3,
            ..PriorConfig::default()
        };
        let prior = build_prior(&PriorSpec::DataEstimate, &cfg, &space, &table);
        let replayed = replay_history(
            &table,
            &r.history,
            prior,
            EvidenceConfig::default(),
            EvidenceScope::SelectedPairs,
        );
        for (a, b) in replayed.confidences().iter().zip(&r.learner_confidences) {
            assert!((a - b).abs() < 1e-9, "replay diverged: {a} vs {b}");
        }
    }

    #[test]
    fn counterfactual_prior_differs() {
        let (table, dirty, space) = fixture();
        let r = run_once(&table, &dirty, &space);
        let cfg = PriorConfig {
            strength: 0.3,
            ..PriorConfig::default()
        };
        let other_prior = build_prior(&PriorSpec::Uniform { d: 0.9 }, &cfg, &space, &table);
        let replayed = replay_history(
            &table,
            &r.history,
            other_prior,
            EvidenceConfig::default(),
            EvidenceScope::SelectedPairs,
        );
        let diff: f64 = replayed
            .confidences()
            .iter()
            .zip(&r.learner_confidences)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 0.1, "counterfactual prior should change conclusions");
    }

    #[test]
    fn csv_roundtrip_preserves_replay() -> Result<(), HistoryParseError> {
        let (table, dirty, space) = fixture();
        let r = run_once(&table, &dirty, &space);
        let csv = history_to_csv(&r.history);
        let restored = history_from_csv(&csv)?;
        assert_eq!(restored.len(), r.history.len());
        let cfg = PriorConfig {
            strength: 0.3,
            ..PriorConfig::default()
        };
        let p1 = build_prior(&PriorSpec::DataEstimate, &cfg, &space, &table);
        let p2 = p1.clone();
        let a = replay_history(
            &table,
            &r.history,
            p1,
            EvidenceConfig::default(),
            EvidenceScope::SampleWide,
        );
        let b = replay_history(
            &table,
            &restored,
            p2,
            EvidenceConfig::default(),
            EvidenceScope::SampleWide,
        );
        assert_eq!(a.confidences(), b.confidences());
        Ok(())
    }

    #[test]
    fn csv_rejects_malformed_records() -> Result<(), HistoryParseError> {
        assert!(history_from_csv("iter,kind,a,b,label\n0,selected,1\n").is_err());
        assert!(history_from_csv("iter,kind,a,b,label\n0,weird,1,2,0\n").is_err());
        assert!(history_from_csv("iter,kind,a,b,label\n0,tuple,3,,7\n").is_err());
        assert!(history_from_csv("iter,kind,a,b,label\n")?.is_empty());
        Ok(())
    }
}
