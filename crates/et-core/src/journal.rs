//! Session durability: the write-ahead label log, state snapshots, and the
//! bit-identical recovery path.
//!
//! ## Why logging labels is enough
//!
//! A session is a deterministic function of `(seed, config, label
//! sequence)`: presentation order, the learner's RNG stream, the trainer's
//! belief updates — everything downstream of construction is replayable
//! (the step-API and matrix-parity tests pin this). The only inputs that
//! cannot be rederived are the submitted label batches, so those are what
//! the WAL records. Recovery rebuilds the session environment from the
//! original spec, replays the log through the *real* step API
//! (`present` → optional `label_pending` → `apply_labels`), and lands on
//! state bit-identical to the uninterrupted run.
//!
//! ## Why snapshots are only an optimization
//!
//! Replay cost grows with session length, so the journal periodically
//! writes a `encode_snapshot` blob of every mutable field (beliefs, RNG
//! state, histories, the pending presentation). Recovery restores the
//! newest *valid* snapshot and replays only the WAL suffix; a corrupt
//! snapshot (checksum failure) falls back to the next older one, down to
//! full replay. Derived structures — relation matrix, partition cache,
//! candidate pool, violation indexes — are never persisted: they are pure
//! functions of the immutable table and get rebuilt on construction.
//!
//! ## Layout of a session directory
//!
//! ```text
//! <dir>/labels.wal          append-only label batches (et-durable framing)
//! <dir>/snap-<t:020>.bin    state snapshot covering rounds [0, t)
//! ```
//!
//! Callers that host many sessions (et-serve) add their own `meta.bin`
//! beside these to rebuild the environment; this module is agnostic to it.

use std::path::{Path, PathBuf};

use et_belief::{Belief, LabeledPair};
use et_durable::{snapshot, Dec, DurableError, Enc, FsyncPolicy, Wal};

use crate::game::{Interaction, PairExample};
use crate::learner::Learner;
use crate::session::{IterationMetrics, PendingInteraction, SessionState, StepError};
use crate::trainer::{Trainer, TrainerPersist};

/// WAL record type tag for a submitted label batch.
const REC_LABELS: u8 = 1;
/// Snapshot payload format version.
const SNAPSHOT_VERSION: u8 = 1;
/// The WAL filename inside a session directory.
const WAL_FILE: &str = "labels.wal";
/// Valid snapshots retained after a new one lands (the newer one plus one
/// fallback for torn-write corruption).
const SNAPSHOTS_KEPT: usize = 2;

/// How a [`SessionJournal`] persists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalConfig {
    /// When appends and snapshots reach stable storage.
    pub fsync: FsyncPolicy,
    /// Snapshot cadence in interactions (`0` = only on completion).
    pub snapshot_every: usize,
}

impl Default for JournalConfig {
    fn default() -> Self {
        Self {
            fsync: FsyncPolicy::Always,
            snapshot_every: 8,
        }
    }
}

/// One durably logged label batch: everything `apply_labels` consumed that
/// cannot be rederived, plus the sample for replay cross-checking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelRecord {
    /// The interaction this batch completed (0-based).
    pub t: u64,
    /// Whether the in-process trainer observed the sample via
    /// `label_pending` before the labels were applied — replay must repeat
    /// the trainer's belief update exactly when it happened live.
    pub trainer_observed: bool,
    /// The presented sample (row ids); replay verifies its own presentation
    /// reproduces this exactly before applying the labels.
    pub sample: Vec<usize>,
    /// The submitted labels, aligned with `sample`.
    pub labels: Vec<bool>,
}

/// Encodes one label batch from borrowed parts — the frame
/// [`SessionJournal::append_labels_parts`] writes without materialising an
/// owned [`LabelRecord`]. Byte-identical to [`LabelRecord::encode`].
fn encode_labels(t: u64, trainer_observed: bool, sample: &[usize], labels: &[bool]) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.put_u64(t);
    enc.put_bool(trainer_observed);
    enc.put_usize(sample.len());
    for &r in sample {
        enc.put_usize(r);
    }
    enc.put_usize(labels.len());
    for &l in labels {
        enc.put_bool(l);
    }
    enc.into_bytes()
}

impl LabelRecord {
    fn encode(&self) -> Vec<u8> {
        encode_labels(self.t, self.trainer_observed, &self.sample, &self.labels)
    }

    fn decode(payload: &[u8]) -> Result<Self, DurableError> {
        let mut dec = Dec::new(payload);
        let t = dec.take_u64()?;
        let trainer_observed = dec.take_bool()?;
        let n = dec.take_usize()?;
        let mut sample = Vec::with_capacity(n.min(payload.len()));
        for _ in 0..n {
            sample.push(dec.take_usize()?);
        }
        let n = dec.take_usize()?;
        let mut labels = Vec::with_capacity(n.min(payload.len()));
        for _ in 0..n {
            labels.push(dec.take_bool()?);
        }
        dec.finish()?;
        Ok(Self {
            t,
            trainer_observed,
            sample,
            labels,
        })
    }
}

/// The result of [`SessionJournal::open`]: the journal plus everything the
/// existing log held.
#[derive(Debug)]
pub struct JournalOpen {
    /// The journal, ready for appends.
    pub journal: SessionJournal,
    /// All durably recorded label batches, in round order.
    pub records: Vec<LabelRecord>,
    /// Bytes the WAL discarded as a torn tail (0 on a clean file).
    pub truncated_bytes: u64,
}

/// One session's durable storage: its directory, WAL, and snapshot cadence.
#[derive(Debug)]
pub struct SessionJournal {
    dir: PathBuf,
    wal: Wal,
    cfg: JournalConfig,
}

impl SessionJournal {
    /// Creates the journal for a *new* session, creating `dir` as needed.
    ///
    /// # Errors
    /// [`DurableError::Io`] on filesystem failures, and
    /// [`DurableError::Corrupt`] when `dir` already holds label records —
    /// an existing session must go through [`SessionJournal::open`] and
    /// replay, never be silently re-logged.
    pub fn create(dir: &Path, cfg: JournalConfig) -> Result<Self, DurableError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| DurableError::io("create session dir", dir, &e))?;
        let opened = Self::open(dir, cfg)?;
        if !opened.records.is_empty() {
            return Err(DurableError::Corrupt {
                path: dir.join(WAL_FILE),
                offset: 0,
                reason: format!(
                    "journal already holds {} records; recover instead of re-creating",
                    opened.records.len()
                ),
            });
        }
        Ok(opened.journal)
    }

    /// Opens an existing session directory (or an empty one), returning the
    /// journal and every legible record. The WAL's torn tail, if any, is
    /// truncated here.
    ///
    /// # Errors
    /// [`DurableError::Io`] on filesystem failures; [`DurableError::Corrupt`]
    /// when the WAL file is not a WAL; [`DurableError::Decode`] when a
    /// checksummed record fails to parse (format skew).
    pub fn open(dir: &Path, cfg: JournalConfig) -> Result<JournalOpen, DurableError> {
        let opened = Wal::open(&dir.join(WAL_FILE), cfg.fsync)?;
        let mut records = Vec::with_capacity(opened.records.len());
        for rec in &opened.records {
            if rec.rec_type != REC_LABELS {
                return Err(DurableError::decode(format!(
                    "unknown WAL record type {}",
                    rec.rec_type
                )));
            }
            records.push(LabelRecord::decode(&rec.payload)?);
        }
        Ok(JournalOpen {
            journal: SessionJournal {
                dir: dir.to_path_buf(),
                wal: opened.wal,
                cfg,
            },
            records,
            truncated_bytes: opened.truncated_bytes,
        })
    }

    /// Durably appends one label batch (write-ahead; fsynced under
    /// [`FsyncPolicy::Always`]).
    ///
    /// # Errors
    /// [`DurableError::Io`] when the append or sync fails.
    pub fn append_labels(&mut self, record: &LabelRecord) -> Result<(), DurableError> {
        self.wal.append(REC_LABELS, &record.encode())
    }

    /// [`SessionJournal::append_labels`] from borrowed parts: writes the
    /// byte-identical frame without the caller cloning its pending sample
    /// and label slices into an owned [`LabelRecord`] first (the hot-path
    /// lint budget for `apply_labels` charges those clones).
    ///
    /// # Errors
    /// [`DurableError::Io`] when the append or sync fails.
    pub fn append_labels_parts(
        &mut self,
        t: u64,
        trainer_observed: bool,
        sample: &[usize],
        labels: &[bool],
    ) -> Result<(), DurableError> {
        self.wal.append(
            REC_LABELS,
            &encode_labels(t, trainer_observed, sample, labels),
        )
    }

    /// Atomically writes the snapshot covering rounds `[0, t)` and prunes
    /// all but the newest `SNAPSHOTS_KEPT` snapshots.
    ///
    /// # Errors
    /// [`DurableError::Io`] when the write fails (the previous snapshot
    /// survives — writes go through a tmp file + rename).
    pub fn write_snapshot(&mut self, t: u64, payload: &[u8]) -> Result<PathBuf, DurableError> {
        let sync = self.cfg.fsync == FsyncPolicy::Always;
        let path = snapshot::write_atomic(&self.dir, &snapshot::file_name(t), payload, sync)?;
        let listed = snapshot::list(&self.dir)?;
        if let Some(&(keep_from, _)) = listed.get(SNAPSHOTS_KEPT - 1) {
            let _ = snapshot::prune_older_than(&self.dir, keep_from);
        }
        Ok(path)
    }

    /// Forces buffered WAL appends to stable storage regardless of policy.
    ///
    /// # Errors
    /// [`DurableError::Io`] when the sync fails.
    pub fn sync(&mut self) -> Result<(), DurableError> {
        self.wal.sync()
    }

    /// The session directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The journal configuration.
    pub fn config(&self) -> JournalConfig {
        self.cfg
    }
}

/// Appends `belief`'s Beta parameters to a snapshot payload (bit-exact).
pub(crate) fn save_belief(enc: &mut Enc, belief: &Belief) {
    enc.put_usize(belief.len());
    for i in 0..belief.len() {
        let d = belief.dist(i);
        enc.put_f64(d.alpha);
        enc.put_f64(d.beta);
    }
}

/// Restores parameters saved by [`save_belief`] into `belief`, validating
/// the hypothesis-space width and Beta positivity.
pub(crate) fn load_belief(dec: &mut Dec<'_>, belief: &mut Belief) -> Result<(), DurableError> {
    let n = dec.take_usize()?;
    if n != belief.len() {
        return Err(DurableError::decode(format!(
            "belief has {} FDs, snapshot has {n}",
            belief.len()
        )));
    }
    for i in 0..n {
        let alpha = dec.take_f64()?;
        let beta = dec.take_f64()?;
        if !(alpha > 0.0 && alpha.is_finite() && beta > 0.0 && beta.is_finite()) {
            return Err(DurableError::decode(format!(
                "non-positive Beta parameters ({alpha}, {beta}) at FD {i}"
            )));
        }
        let d = belief.dist_mut(i);
        d.alpha = alpha;
        d.beta = beta;
    }
    Ok(())
}

fn save_f64s(enc: &mut Enc, v: &[f64]) {
    enc.put_usize(v.len());
    for &x in v {
        enc.put_f64(x);
    }
}

fn load_f64s(dec: &mut Dec<'_>) -> Result<Vec<f64>, DurableError> {
    let n = dec.take_usize()?;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        out.push(dec.take_f64()?);
    }
    Ok(out)
}

fn save_usizes(enc: &mut Enc, v: &[usize]) {
    enc.put_usize(v.len());
    for &x in v {
        enc.put_usize(x);
    }
}

fn load_usizes(dec: &mut Dec<'_>) -> Result<Vec<usize>, DurableError> {
    let n = dec.take_usize()?;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        out.push(dec.take_usize()?);
    }
    Ok(out)
}

fn save_bools(enc: &mut Enc, v: &[bool]) {
    enc.put_usize(v.len());
    for &x in v {
        enc.put_bool(x);
    }
}

fn load_bools(dec: &mut Dec<'_>) -> Result<Vec<bool>, DurableError> {
    let n = dec.take_usize()?;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        out.push(dec.take_bool()?);
    }
    Ok(out)
}

fn save_pairs(enc: &mut Enc, v: &[PairExample]) {
    enc.put_usize(v.len());
    for p in v {
        enc.put_usize(p.a);
        enc.put_usize(p.b);
    }
}

fn load_pairs(dec: &mut Dec<'_>) -> Result<Vec<PairExample>, DurableError> {
    let n = dec.take_usize()?;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let a = dec.take_usize()?;
        let b = dec.take_usize()?;
        out.push(PairExample { a, b });
    }
    Ok(out)
}

/// Serializes every mutable field of a journaled session — plus the two
/// agents — into one snapshot payload. Everything else (table, indexes,
/// pool, relation matrix, partition cache) is derivable and rebuilt by
/// construction on recovery.
pub(crate) fn encode_snapshot<T: TrainerPersist>(
    state: &SessionState,
    trainer: &T,
    learner: &Learner,
) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.put_u8(SNAPSHOT_VERSION);
    // Config echo: recovery refuses a snapshot taken under different
    // session parameters (it would not be the same deterministic function).
    let cfg = state.config();
    enc.put_usize(cfg.iterations);
    enc.put_usize(cfg.pairs_per_iteration);
    enc.put_f64(cfg.test_frac);
    enc.put_usize(cfg.pool_cap);
    enc.put_f64(cfg.eps_drift);
    enc.put_usize(cfg.stability_window);
    enc.put_u64(cfg.seed);

    enc.put_usize(state.t);
    enc.put_usize(state.labels_total);
    enc.put_usize(state.dirty_total);
    enc.put_bool(state.exhausted);
    save_f64s(&mut enc, &state.prev_trainer);
    save_f64s(&mut enc, &state.prev_learner);

    enc.put_usize(state.metrics.len());
    for m in &state.metrics {
        enc.put_usize(m.t);
        enc.put_f64(m.mae);
        enc.put_f64(m.learner_f1);
        enc.put_f64(m.learner_precision);
        enc.put_f64(m.learner_recall);
        enc.put_f64(m.trainer_f1);
        enc.put_f64(m.learner_drift);
        enc.put_f64(m.trainer_drift);
        enc.put_f64(m.policy_entropy);
        enc.put_usize(m.dirty_labels);
        enc.put_f64(m.phi_dirty);
        enc.put_f64(m.agreement);
    }

    enc.put_usize(state.history.len());
    for i in &state.history {
        enc.put_usize(i.t);
        save_pairs(&mut enc, &i.selected);
        save_usizes(&mut enc, &i.sample);
        save_bools(&mut enc, &i.labels);
        enc.put_usize(i.labeled.len());
        for lp in &i.labeled {
            enc.put_usize(lp.a);
            enc.put_usize(lp.b);
            enc.put_bool(lp.dirty_a);
            enc.put_bool(lp.dirty_b);
        }
    }

    match &state.pending {
        None => enc.put_bool(false),
        Some(p) => {
            enc.put_bool(true);
            save_pairs(&mut enc, &p.pairs);
            save_usizes(&mut enc, &p.sample);
            enc.put_f64(p.h_policy);
            save_bools(&mut enc, &p.predicted);
            match &p.hosted {
                None => enc.put_bool(false),
                Some(hosted) => {
                    enc.put_bool(true);
                    save_bools(&mut enc, hosted);
                }
            }
        }
    }
    // Whether the trainer has already observed the pending sample (limbo
    // between label_pending and apply_labels) — replaying it twice would
    // double-update the trainer's belief.
    enc.put_bool(state.trainer_observed);

    learner.save_durable(&mut enc);
    trainer.save_state(&mut enc);
    enc.into_bytes()
}

/// Restores a payload written by [`encode_snapshot`] into a freshly
/// constructed state and agents. On error the agents may be partially
/// written and must be discarded (recovery constructs fresh ones anyway).
pub(crate) fn restore_snapshot<T: TrainerPersist>(
    state: &mut SessionState,
    payload: &[u8],
    trainer: &mut T,
    learner: &mut Learner,
) -> Result<(), DurableError> {
    let mut dec = Dec::new(payload);
    let version = dec.take_u8()?;
    if version != SNAPSHOT_VERSION {
        return Err(DurableError::decode(format!(
            "snapshot version {version}, expected {SNAPSHOT_VERSION}"
        )));
    }
    let cfg = state.config().clone();
    let echo_iterations = dec.take_usize()?;
    let echo_ppi = dec.take_usize()?;
    let echo_test_frac = dec.take_f64()?;
    let echo_pool_cap = dec.take_usize()?;
    let echo_eps_drift = dec.take_f64()?;
    let echo_window = dec.take_usize()?;
    let echo_seed = dec.take_u64()?;
    if echo_iterations != cfg.iterations
        || echo_ppi != cfg.pairs_per_iteration
        || echo_test_frac.to_bits() != cfg.test_frac.to_bits()
        || echo_pool_cap != cfg.pool_cap
        || echo_eps_drift.to_bits() != cfg.eps_drift.to_bits()
        || echo_window != cfg.stability_window
        || echo_seed != cfg.seed
    {
        return Err(DurableError::decode(
            "snapshot was taken under a different session config".to_string(),
        ));
    }

    let t = dec.take_usize()?;
    let labels_total = dec.take_usize()?;
    let dirty_total = dec.take_usize()?;
    let exhausted = dec.take_bool()?;
    let prev_trainer = load_f64s(&mut dec)?;
    let prev_learner = load_f64s(&mut dec)?;

    let n = dec.take_usize()?;
    let mut metrics = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        metrics.push(IterationMetrics {
            t: dec.take_usize()?,
            mae: dec.take_f64()?,
            learner_f1: dec.take_f64()?,
            learner_precision: dec.take_f64()?,
            learner_recall: dec.take_f64()?,
            trainer_f1: dec.take_f64()?,
            learner_drift: dec.take_f64()?,
            trainer_drift: dec.take_f64()?,
            policy_entropy: dec.take_f64()?,
            dirty_labels: dec.take_usize()?,
            phi_dirty: dec.take_f64()?,
            agreement: dec.take_f64()?,
        });
    }

    let n = dec.take_usize()?;
    let mut history = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let it = dec.take_usize()?;
        let selected = load_pairs(&mut dec)?;
        let sample = load_usizes(&mut dec)?;
        let labels = load_bools(&mut dec)?;
        let nl = dec.take_usize()?;
        let mut labeled = Vec::with_capacity(nl.min(1 << 20));
        for _ in 0..nl {
            let a = dec.take_usize()?;
            let b = dec.take_usize()?;
            let dirty_a = dec.take_bool()?;
            let dirty_b = dec.take_bool()?;
            labeled.push(LabeledPair {
                a,
                b,
                dirty_a,
                dirty_b,
            });
        }
        history.push(Interaction {
            t: it,
            selected,
            sample,
            labels,
            labeled,
        });
    }

    let pending = if dec.take_bool()? {
        let pairs = load_pairs(&mut dec)?;
        let sample = load_usizes(&mut dec)?;
        let h_policy = dec.take_f64()?;
        let predicted = load_bools(&mut dec)?;
        let hosted = if dec.take_bool()? {
            Some(load_bools(&mut dec)?)
        } else {
            None
        };
        Some(PendingInteraction {
            pairs,
            sample,
            h_policy,
            predicted,
            hosted,
        })
    } else {
        None
    };
    let trainer_observed = dec.take_bool()?;

    learner.load_durable(&mut dec)?;
    trainer.load_state(&mut dec)?;
    dec.finish()?;

    state.t = t;
    state.labels_total = labels_total;
    state.dirty_total = dirty_total;
    state.exhausted = exhausted;
    state.prev_trainer = prev_trainer;
    state.prev_learner = prev_learner;
    state.metrics = metrics;
    state.history = history;
    state.pending = pending;
    state.trainer_observed = trainer_observed;
    Ok(())
}

/// What [`recover_session`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoverOutcome {
    /// The round of the snapshot that seeded recovery (`None` = full
    /// replay from round 0).
    pub snapshot_t: Option<u64>,
    /// Label batches replayed from the WAL suffix.
    pub replayed: usize,
    /// Bytes the WAL discarded as a torn tail.
    pub truncated_bytes: u64,
}

/// Why recovery failed.
#[derive(Debug)]
pub enum RecoverError {
    /// Storage-layer failure (IO, corruption, decode).
    Durable(DurableError),
    /// Replaying a logged step failed — the rebuilt environment does not
    /// accept the logged protocol (config/dataset skew).
    Step(StepError),
    /// The log disagrees with deterministic replay: a round gap, a sample
    /// mismatch, or records beyond session completion. The stored session
    /// was produced by a different environment than the one rebuilt.
    Divergence {
        /// The interaction at which replay diverged.
        t: u64,
        /// What disagreed.
        reason: String,
    },
    /// `recover_session` needs a freshly constructed state (no iterations
    /// done, no journal attached).
    StateNotFresh,
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::Durable(e) => write!(f, "durable storage: {e}"),
            RecoverError::Step(e) => write!(f, "replay step: {e}"),
            RecoverError::Divergence { t, reason } => {
                write!(f, "replay diverged from the log at t = {t}: {reason}")
            }
            RecoverError::StateNotFresh => {
                write!(f, "recovery requires a freshly constructed session state")
            }
        }
    }
}

impl std::error::Error for RecoverError {}

impl From<DurableError> for RecoverError {
    fn from(e: DurableError) -> Self {
        RecoverError::Durable(e)
    }
}

impl From<StepError> for RecoverError {
    fn from(e: StepError) -> Self {
        RecoverError::Step(e)
    }
}

/// Recovers a session from its durable directory.
///
/// `state`, `trainer`, and `learner` must be freshly constructed from the
/// session's original `(spec, seed)` — exactly as at first creation. The
/// function restores the newest valid snapshot (falling back on checksum
/// failures, down to none), replays the WAL suffix through the real step
/// API, verifies each replayed presentation against the logged sample, and
/// finally attaches the journal so subsequent steps append as usual.
///
/// Afterwards the triple is bit-identical to the pre-crash session: same
/// beliefs, same RNG streams, same histories, same pending presentation.
///
/// # Errors
/// See [`RecoverError`]; on error the state and agents are unspecified and
/// must be discarded.
pub fn recover_session<T: Trainer + TrainerPersist>(
    dir: &Path,
    cfg: JournalConfig,
    state: &mut SessionState,
    trainer: &mut T,
    learner: &mut Learner,
) -> Result<RecoverOutcome, RecoverError> {
    if state.iterations_done() != 0 || state.journal().is_some() || state.pending.is_some() {
        return Err(RecoverError::StateNotFresh);
    }
    let opened = SessionJournal::open(dir, cfg)?;
    let mut outcome = RecoverOutcome {
        snapshot_t: None,
        replayed: 0,
        truncated_bytes: opened.truncated_bytes,
    };

    // Newest valid snapshot wins; a checksum-corrupt snapshot falls back to
    // the next older one (more WAL replay, same final state). A snapshot
    // that *validates* but fails to decode is fatal — that is format skew,
    // not a torn write.
    for (t, path) in snapshot::list(dir)? {
        let payload = match snapshot::read(&path) {
            Ok(p) => p,
            Err(_) => continue,
        };
        restore_snapshot(state, &payload, trainer, learner)?;
        outcome.snapshot_t = Some(t);
        break;
    }

    for record in &opened.records {
        let t_now = state.iterations_done() as u64;
        if record.t < t_now {
            continue; // covered by the snapshot
        }
        if record.t > t_now {
            return Err(RecoverError::Divergence {
                t: record.t,
                reason: format!("round gap: log jumps from {t_now} to {}", record.t),
            });
        }
        if state.pending.is_none() {
            match state.present(learner)? {
                Some(_) => {}
                None => {
                    return Err(RecoverError::Divergence {
                        t: record.t,
                        reason: "session completed before the log ran out".to_string(),
                    })
                }
            }
        }
        let sample_matches = state
            .pending
            .as_ref()
            .is_some_and(|p| p.sample == record.sample);
        if !sample_matches {
            return Err(RecoverError::Divergence {
                t: record.t,
                reason: "replayed presentation disagrees with the logged sample".to_string(),
            });
        }
        if record.trainer_observed {
            let _ = state.label_pending(trainer)?;
        }
        let _ = state.apply_labels(trainer, learner, &record.labels)?;
        outcome.replayed += 1;
    }

    state.journal = Some(opened.journal);
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_record_round_trips() {
        let rec = LabelRecord {
            t: 9,
            trainer_observed: true,
            sample: vec![4, 0, 17],
            labels: vec![true, false, true],
        };
        assert_eq!(LabelRecord::decode(&rec.encode()).expect("decode"), rec);
    }

    #[test]
    fn label_record_rejects_garbage() {
        let rec = LabelRecord {
            t: 1,
            trainer_observed: false,
            sample: vec![2],
            labels: vec![false],
        };
        let bytes = rec.encode();
        for cut in 0..bytes.len() {
            assert!(LabelRecord::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut extended = bytes;
        extended.push(0);
        assert!(LabelRecord::decode(&extended).is_err(), "trailing byte");
    }

    #[test]
    fn journal_create_refuses_existing_records() {
        let mut dir = std::env::temp_dir();
        dir.push(format!(
            "et-core-journal-create-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut j = SessionJournal::create(&dir, JournalConfig::default()).expect("create");
        j.append_labels(&LabelRecord {
            t: 0,
            trainer_observed: true,
            sample: vec![1, 2],
            labels: vec![false, true],
        })
        .expect("append");
        drop(j);
        assert!(matches!(
            SessionJournal::create(&dir, JournalConfig::default()),
            Err(DurableError::Corrupt { .. })
        ));
        let reopened = SessionJournal::open(&dir, JournalConfig::default()).expect("open");
        assert_eq!(reopened.records.len(), 1);
        assert_eq!(reopened.records[0].sample, vec![1, 2]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Full snapshot/recovery behavior is covered end-to-end by
    // `tests/recovery_bit_identity.rs` (all 8 strategy kinds) and the
    // et-serve crash-injection harness.
}
