//! The active learner agent.
//!
//! The learner owns a belief over the hypothesis space, a prediction model
//! (the FP/Bayesian evidence rule of [`et_belief::update`]) and a response
//! strategy ([`crate::respond`]). Each interaction it selects fresh pairs,
//! hands them to the trainer, and absorbs the returned labels.

use std::collections::HashSet;

use et_belief::{update_from_labeled_pairs, Belief, EvidenceConfig, LabeledPair};
use et_data::Table;
use et_durable::{Dec, DurableError, Enc};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::candidates::CandidatePool;
use crate::game::PairExample;
use crate::respond::{ResponseStrategy, ScoreCtx};

/// How much of an interaction the learner's prediction model consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvidenceScope {
    /// Only the k selected examples and their labels — the paper's
    /// `P^L(θ, X^t, Y^t)` with `X^t` the chosen pairs. Selection quality
    /// fully determines what the learner can learn (default).
    SelectedPairs,
    /// Every within-sample pair, labeled by the trainer's per-tuple
    /// verdicts (the annotator's whole screen as evidence).
    SampleWide,
    /// `SampleWide` plus pairs between new tuples and the labeled memory.
    SampleWideWithMemory,
}

/// The learner agent.
#[derive(Debug, Clone)]
pub struct Learner {
    belief: Belief,
    strategy: ResponseStrategy,
    evidence: EvidenceConfig,
    shown: HashSet<PairExample>,
    /// Labeled tuples in first-seen order.
    memory: Vec<usize>,
    /// Latest label per labeled tuple (`true` = dirty). Labels can be
    /// *revised* when the trainer re-encounters a tuple — but evidence pairs
    /// already consumed are not re-litigated, which is exactly how stale
    /// early labels poison a learner (the paper's motivation).
    labels: std::collections::HashMap<usize, bool>,
    scope: EvidenceScope,
    rng: StdRng,
}

impl Learner {
    /// Builds a learner from its prior belief and response strategy.
    pub fn new(
        prior: Belief,
        strategy: ResponseStrategy,
        evidence: EvidenceConfig,
        seed: u64,
    ) -> Self {
        Self {
            belief: prior,
            strategy,
            evidence,
            shown: HashSet::new(),
            memory: Vec::new(),
            labels: std::collections::HashMap::new(),
            scope: EvidenceScope::SelectedPairs,
            rng: StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Overrides how much of each interaction feeds the prediction model
    /// (ablation axis; the default is the paper's selected-pairs protocol).
    #[must_use]
    pub fn with_evidence_scope(mut self, scope: EvidenceScope) -> Self {
        self.scope = scope;
        self
    }

    /// The configured evidence scope.
    pub fn evidence_scope(&self) -> EvidenceScope {
        self.scope
    }

    /// The evolving belief.
    pub fn belief(&self) -> &Belief {
        &self.belief
    }

    /// Current per-FD confidences.
    pub fn confidences(&self) -> Vec<f64> {
        self.belief.confidences()
    }

    /// The configured response strategy.
    pub fn strategy(&self) -> ResponseStrategy {
        self.strategy
    }

    /// Pairs presented so far.
    pub fn shown(&self) -> &HashSet<PairExample> {
        &self.shown
    }

    /// Selects up to `k` fresh pairs from the pool according to the
    /// response strategy (`π_t^L = R^L(θ_t^L)`) and records them as shown.
    ///
    /// Returns an empty vector when the pool is exhausted.
    pub fn select(
        &mut self,
        ctx: ScoreCtx<'_>,
        pool: &CandidatePool,
        k: usize,
    ) -> Vec<PairExample> {
        let fresh = pool.fresh(&self.shown);
        self.select_from(ctx, &fresh, k)
    }

    /// [`Learner::select`] over an explicit fresh-candidate list (already
    /// filtered against [`Learner::shown`]): lets a round that also does
    /// policy accounting enumerate the fresh set once instead of once per
    /// call. Records the picks as shown.
    pub fn select_from(
        &mut self,
        ctx: ScoreCtx<'_>,
        fresh: &[PairExample],
        k: usize,
    ) -> Vec<PairExample> {
        let picked = self
            .strategy
            .select(ctx, &self.belief, fresh, k, &mut self.rng);
        self.shown.extend(picked.iter().copied());
        picked
    }

    /// The learner's current policy distribution over the fresh candidates
    /// (for payoff/entropy accounting).
    pub fn policy_over_fresh(
        &self,
        ctx: ScoreCtx<'_>,
        pool: &CandidatePool,
        k: usize,
    ) -> (Vec<PairExample>, Vec<f64>) {
        let fresh = pool.fresh(&self.shown);
        let dist = self.policy_over(ctx, &fresh, k);
        (fresh, dist)
    }

    /// [`Learner::policy_over_fresh`] over an explicit fresh-candidate
    /// list (the counterpart of [`Learner::select_from`]).
    pub fn policy_over(&self, ctx: ScoreCtx<'_>, fresh: &[PairExample], k: usize) -> Vec<f64> {
        self.strategy
            .policy_distribution(ctx, &self.belief, fresh, k)
    }

    /// Absorbs one interaction: the selected pairs, the presented sample,
    /// and the trainer's per-tuple labels
    /// (`θ_t^L = P^L(θ_{t-1}^L, X^t, Y^t)`).
    ///
    /// The configured [`EvidenceScope`] decides how much of it feeds the
    /// belief update.
    ///
    /// # Panics
    /// Panics when `labels.len() != sample.len()`.
    pub fn absorb_interaction(
        &mut self,
        table: &Table,
        selected: &[PairExample],
        sample: &[usize],
        labels: &[bool],
    ) {
        assert_eq!(sample.len(), labels.len(), "one label per sample tuple");
        let new: Vec<usize> = sample
            .iter()
            .copied()
            .filter(|r| !self.labels.contains_key(r))
            .collect();
        // Record/refresh labels first so this interaction's evidence uses
        // the current verdicts.
        for (&r, &l) in sample.iter().zip(labels) {
            self.labels.insert(r, l);
        }
        let mut evidence: Vec<LabeledPair> = Vec::new();
        match self.scope {
            EvidenceScope::SelectedPairs => {
                for p in selected {
                    evidence.push(self.labeled_pair(p.a, p.b));
                }
            }
            EvidenceScope::SampleWide | EvidenceScope::SampleWideWithMemory => {
                for (i, &a) in sample.iter().enumerate() {
                    for &b in &sample[i + 1..] {
                        if a != b {
                            evidence.push(self.labeled_pair(a, b));
                        }
                    }
                }
                if self.scope == EvidenceScope::SampleWideWithMemory {
                    for &a in &new {
                        for &b in &self.memory {
                            evidence.push(self.labeled_pair(a, b));
                        }
                    }
                }
            }
        }
        update_from_labeled_pairs(&mut self.belief, table, &evidence, &self.evidence);
        self.memory.extend(new);
    }

    /// Direct pair-level absorption (tests, custom protocols); does not
    /// touch the tuple-label memory.
    pub fn absorb(&mut self, table: &Table, labeled: &[LabeledPair]) {
        update_from_labeled_pairs(&mut self.belief, table, labeled, &self.evidence);
    }

    /// Number of labeled tuples remembered.
    pub fn tuples_labeled(&self) -> usize {
        self.memory.len()
    }

    /// Appends the learner's mutable state (belief parameters, RNG stream,
    /// shown set, labeled-tuple memory) to a snapshot payload. Hash
    /// collections are emitted in sorted order so identical learners always
    /// produce identical bytes.
    pub(crate) fn save_durable(&self, enc: &mut Enc) {
        crate::journal::save_belief(enc, &self.belief);
        for w in self.rng.state() {
            enc.put_u64(w);
        }
        let mut shown: Vec<PairExample> = self.shown.iter().copied().collect();
        shown.sort_unstable();
        enc.put_usize(shown.len());
        for p in shown {
            enc.put_usize(p.a);
            enc.put_usize(p.b);
        }
        enc.put_usize(self.memory.len());
        for &r in &self.memory {
            enc.put_usize(r);
        }
        let mut labels: Vec<(usize, bool)> = self.labels.iter().map(|(&k, &v)| (k, v)).collect();
        labels.sort_unstable_by_key(|e| e.0);
        enc.put_usize(labels.len());
        for (r, l) in labels {
            enc.put_usize(r);
            enc.put_bool(l);
        }
    }

    /// Restores state saved by [`Learner::save_durable`]. The learner must
    /// have been constructed over the same hypothesis space.
    pub(crate) fn load_durable(&mut self, dec: &mut Dec<'_>) -> Result<(), DurableError> {
        crate::journal::load_belief(dec, &mut self.belief)?;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = dec.take_u64()?;
        }
        self.rng = StdRng::from_state(s);
        let n_shown = dec.take_usize()?;
        self.shown = HashSet::with_capacity(n_shown);
        for _ in 0..n_shown {
            let a = dec.take_usize()?;
            let b = dec.take_usize()?;
            self.shown.insert(PairExample { a, b });
        }
        let n_memory = dec.take_usize()?;
        self.memory = Vec::with_capacity(n_memory);
        for _ in 0..n_memory {
            self.memory.push(dec.take_usize()?);
        }
        let n_labels = dec.take_usize()?;
        self.labels = std::collections::HashMap::with_capacity(n_labels);
        for _ in 0..n_labels {
            let r = dec.take_usize()?;
            let l = dec.take_bool()?;
            self.labels.insert(r, l);
        }
        Ok(())
    }

    fn labeled_pair(&self, a: usize, b: usize) -> LabeledPair {
        LabeledPair {
            a,
            b,
            dirty_a: self.labels[&a],
            dirty_b: self.labels[&b],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::respond::StrategyKind;
    use et_belief::Beta;
    use et_data::table::paper_table1;
    use et_fd::{Fd, HypothesisSpace};
    use std::sync::Arc;

    fn setup() -> (Table, Learner, CandidatePool) {
        let t = paper_table1();
        let space = Arc::new(HypothesisSpace::from_fds([
            Fd::from_attrs([1], 2),
            Fd::from_attrs([2, 3], 4),
        ]));
        let belief = Belief::constant(space.clone(), Beta::new(2.0, 2.0));
        let learner = Learner::new(
            belief,
            ResponseStrategy::paper(StrategyKind::Random),
            EvidenceConfig::default(),
            1,
        );
        let pool = CandidatePool::build(&t, &space, 100, 1);
        (t, learner, pool)
    }

    use et_data::Table;

    #[test]
    fn never_repeats_pairs() {
        let (t, mut learner, pool) = setup();
        let mut seen = HashSet::new();
        loop {
            let picked = learner.select(ScoreCtx::new(&t), &pool, 1);
            if picked.is_empty() {
                break;
            }
            for p in picked {
                assert!(seen.insert(p), "pair {p:?} repeated");
            }
        }
        assert_eq!(seen.len(), pool.len(), "eventually shows every pair");
    }

    #[test]
    fn absorb_moves_belief() {
        let (t, mut learner, _) = setup();
        let before = learner.confidences();
        learner.absorb(
            &t,
            &[LabeledPair {
                a: 2,
                b: 3,
                dirty_a: false,
                dirty_b: false,
            }],
        );
        let after = learner.confidences();
        assert!(after[0] > before[0], "clean satisfying pair supports fd0");
        assert_eq!(after[1], before[1], "irrelevant to fd1");
    }

    #[test]
    fn policy_over_fresh_respects_shown() {
        let (t, mut learner, pool) = setup();
        let _ = learner.select(ScoreCtx::new(&t), &pool, 1);
        let (fresh, dist) = learner.policy_over_fresh(ScoreCtx::new(&t), &pool, 2);
        assert_eq!(fresh.len(), pool.len() - 1);
        assert_eq!(dist.len(), fresh.len());
    }
}
