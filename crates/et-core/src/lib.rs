//! The exploratory-training game (the paper's core contribution).
//!
//! Exploratory training models interactive labeling as a two-player game of
//! identical interest between a **trainer** (the human annotator, who
//! *learns about the data while labeling*) and a **learner** (the active-
//! learning system). Each interaction `t`:
//!
//! 1. the learner's *response model* selects `k` examples — pairs of tuples
//!    (§C.1) — according to its policy `π_t^L = R^L(θ_t^L)`;
//! 2. the trainer observes the examples, updates its belief
//!    `θ_t^T = P^T(θ_{t-1}^T, X^1..X^t)`, and labels them with its policy
//!    `π_t^T = R^T(θ_t^T)`;
//! 3. the learner consumes the labels and updates its belief
//!    `θ_t^L = P^L(θ_{t-1}^L, X^t, Y^t)`.
//!
//! Modules:
//!
//! * [`game`] — interaction records, histories, labels.
//! * [`payoff`] — the payoff functions `u_T`, `u_a` and the entropy-
//!   regularised learner payoff `u_L = u_a − γ Σ π ln π` (§2).
//! * [`respond`] — response strategies: `Random`, `UncertaintySampling`,
//!   the paper's `StochasticBestResponse` and
//!   `StochasticUncertaintySampling` (softmax with temperature γ), plus a
//!   deterministic `Best` and a Thompson-sampling extension.
//! * [`trainer`] — trainer agents: the FP/Bayesian trainer the user study
//!   validates, a hypothesis-testing trainer, a stationary
//!   (perfect-knowledge) trainer, and a label-noise wrapper.
//! * [`learner`] — the active learner: belief + prediction model + response
//!   strategy.
//! * [`session`] — the game loop with per-iteration metrics (MAE, held-out
//!   F1) and convergence/equilibrium tracking (Definition 2 /
//!   Proposition 1).
//! * [`candidates`] — the candidate pair pool each interaction draws from.

#![warn(missing_docs)]

pub mod candidates;
pub mod game;
pub mod journal;
pub mod learner;
pub mod payoff;
pub mod replay;
pub mod respond;
pub mod session;
pub mod topk;
pub mod trainer;
pub mod weak_strong;

pub use candidates::CandidatePool;
pub use et_fd::{PartitionCache, RelationMatrix};
pub use game::{Interaction, Label, PairExample};
pub use journal::{
    recover_session, JournalConfig, LabelRecord, RecoverError, RecoverOutcome, SessionJournal,
};
pub use learner::{EvidenceScope, Learner};
pub use replay::{history_from_csv, history_to_csv, replay_history};
pub use respond::{ResponseStrategy, ScoreBasis, ScoreCtx, StrategyKind};
pub use session::{
    run_session, sample_rows, ConfigError, ConvergenceReport, IterationMetrics, PendingInteraction,
    Session, SessionConfig, SessionError, SessionResult, SessionState, StepError,
};
pub use topk::{top_k_indices, BoundedTopK};
pub use trainer::{FpTrainer, HtTrainer, NoisyTrainer, StationaryTrainer, Trainer};
pub use weak_strong::{run_weak_strong, WeakStrongConfig, WeakStrongResult};
