//! Property tests for the session-log CSV codec in `et_core::replay`:
//! arbitrary histories round-trip through `history_to_csv` →
//! `history_from_csv` unchanged, and malformed, mutated, or truncated input
//! always yields a typed `HistoryParseError`, never a panic.

use et_core::{history_from_csv, history_to_csv, Interaction, PairExample};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds an arbitrary history the way sessions do: every interaction has
/// at least one tuple row (CSV gap-filling reconstructs empty interactions,
/// but a *trailing* all-empty interaction is unrepresentable in the file,
/// so generation mirrors real logs where each round presents something).
/// The `labeled` field stays empty — `history_from_csv` documents that it
/// does not restore evidence pairs.
fn arb_history(rng: &mut StdRng) -> Vec<Interaction> {
    let rounds = rng.gen_range(0..8usize);
    (0..rounds)
        .map(|t| {
            let n_selected = rng.gen_range(0..4usize);
            let selected = (0..n_selected)
                .map(|_| {
                    let a = rng.gen_range(0..500usize);
                    let mut b = rng.gen_range(0..500usize);
                    if a == b {
                        b = (b + 1) % 500;
                    }
                    PairExample::new(a, b)
                })
                .collect();
            let n_tuples = rng.gen_range(1..6usize);
            let sample: Vec<usize> = (0..n_tuples).map(|_| rng.gen_range(0..500usize)).collect();
            let labels: Vec<bool> = (0..n_tuples).map(|_| rng.gen_bool(0.3)).collect();
            Interaction {
                t,
                selected,
                sample,
                labels,
                labeled: Vec::new(),
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// to_csv(h) parses back to exactly h.
    #[test]
    fn histories_round_trip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let history = arb_history(&mut rng);
        let csv = history_to_csv(&history);
        let restored = match history_from_csv(&csv) {
            Ok(h) => h,
            Err(e) => return Err(proptest::TestCaseError::fail(format!(
                "round-trip parse failed: {e}\n{csv}"
            ))),
        };
        prop_assert_eq!(restored.len(), history.len());
        for (got, want) in restored.iter().zip(&history) {
            prop_assert_eq!(got.t, want.t);
            prop_assert_eq!(&got.selected, &want.selected);
            prop_assert_eq!(&got.sample, &want.sample);
            prop_assert_eq!(&got.labels, &want.labels);
            prop_assert!(got.labeled.is_empty(), "labeled is never restored");
        }
    }

    /// Arbitrary ASCII garbage never panics the parser.
    #[test]
    fn malformed_ascii_never_panics(bytes in proptest::collection::vec(0x20u8..0x7F, 0..96)) {
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let _ = history_from_csv(&text); // any Result is fine; panics fail
    }

    /// Single-character corruption of a valid file never panics: it either
    /// still parses (the flip hit a digit) or reports a typed error.
    #[test]
    fn mutated_valid_csv_never_panics(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let history = arb_history(&mut rng);
        let csv = history_to_csv(&history);
        let chars: Vec<char> = csv.chars().collect();
        if chars.is_empty() {
            return Ok(());
        }
        for _ in 0..8 {
            let pos = rng.gen_range(0..chars.len());
            let replacement = match rng.gen_range(0..5) {
                0 => ',',
                1 => '\n',
                2 => 'x',
                3 => '-',
                _ => char::from(rng.gen_range(0x20u8..0x7F)),
            };
            let mut mutated = chars.clone();
            mutated[pos] = replacement;
            let _ = history_from_csv(&mutated.into_iter().collect::<String>());
        }
    }

    /// Every prefix of a valid file parses or errors — no panics on
    /// truncation (a half-written log from a crashed export).
    #[test]
    fn truncations_never_panic(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let csv = history_to_csv(&arb_history(&mut rng));
        for cut in 0..csv.len() {
            if csv.is_char_boundary(cut) {
                let _ = history_from_csv(&csv[..cut]);
            }
        }
    }

    /// An adversarial `iter` field is rejected, not gap-filled: the parser
    /// must never attempt an allocation proportional to an attacker-chosen
    /// index.
    #[test]
    fn oversized_iter_is_an_error_not_an_allocation(extra in 1u64..1_000_000) {
        let t = (1u64 << 20) + extra;
        let csv = format!("iter,kind,a,b,label\n{t},tuple,3,,1\n");
        let err = history_from_csv(&csv).expect_err("oversized iter must fail");
        prop_assert!(err.reason.contains("cap"), "unexpected reason: {}", err.reason);
    }
}
