//! Property tests pinning [`CandidatePool::build_with`] (partition-cache
//! enumeration) to the legacy `table.group_by` scan: same pair sequence,
//! same reservoir draws, bit-identical pool — including under reservoir
//! pressure (small `max_pairs`).

use std::collections::HashSet;

use proptest::prelude::*;

use et_core::{CandidatePool, PairExample};
use et_data::{AttrId, Schema, Table};
use et_fd::{Fd, HypothesisSpace, PartitionCache};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn arb_rows() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    proptest::collection::vec((0u8..4, 0u8..3, 0u8..3), 1..48)
}

fn table_of(rows: &[(u8, u8, u8)]) -> Table {
    let mut b = Table::builder(Schema::new(["x", "y", "a"]));
    for (x, y, a) in rows {
        b.push_row(&[format!("x{x}"), format!("y{y}"), format!("a{a}")]);
    }
    b.finish()
}

fn space() -> HypothesisSpace {
    HypothesisSpace::from_fds([
        Fd::from_attrs([0], 2),
        Fd::from_attrs([0], 1),    // duplicate determinant {x}
        Fd::from_attrs([0, 1], 2), // multi-attribute LHS
        Fd::from_attrs([1], 0),
        Fd::from_attrs([1, 2], 0),
    ])
}

/// The pre-PR raw enumeration, reimplemented verbatim: `group_by` per
/// distinct LHS, skip singleton groups, reservoir-sample with the same
/// seeded RNG. [`CandidatePool::build_with`] must reproduce it exactly.
fn legacy_build(
    table: &Table,
    space: &HypothesisSpace,
    max_pairs: usize,
    seed: u64,
) -> Vec<PairExample> {
    let mut seen: HashSet<PairExample> = HashSet::new();
    let mut reservoir: Vec<PairExample> = Vec::new();
    let mut n_seen = 0usize;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x853c_49e6_748f_ea9b);
    for lhs in space.distinct_lhs() {
        let attrs: Vec<AttrId> = lhs.to_vec();
        let grouped = table.group_by(&attrs);
        for group in &grouped.groups {
            if group.len() < 2 {
                continue;
            }
            for (i, &a) in group.iter().enumerate() {
                for &b in &group[i + 1..] {
                    let p = PairExample::new(a as usize, b as usize);
                    if !seen.insert(p) {
                        continue;
                    }
                    n_seen += 1;
                    if reservoir.len() < max_pairs {
                        reservoir.push(p);
                    } else {
                        let j = rng.gen_range(0..n_seen);
                        if j < max_pairs {
                            reservoir[j] = p;
                        }
                    }
                }
            }
        }
    }
    reservoir.sort_unstable();
    reservoir
}

proptest! {
    /// Cache-backed enumeration is bit-identical to the legacy group_by
    /// scan, with and without reservoir pressure, for arbitrary seeds.
    #[test]
    fn build_with_equals_legacy(
        rows in arb_rows(),
        seed in 0u64..1024,
        cap in prop_oneof![Just(2usize), Just(5), Just(17), Just(10_000)],
    ) {
        let t = table_of(&rows);
        let sp = space();
        let cache = PartitionCache::new(&t);
        let want = legacy_build(&t, &sp, cap, seed);
        let got = CandidatePool::build_with(&t, &sp, &cache, cap, seed);
        prop_assert_eq!(got.pairs(), want.as_slice());
        // The transient-cache convenience path too.
        let direct = CandidatePool::build(&t, &sp, cap, seed);
        prop_assert_eq!(direct.pairs(), want.as_slice());
    }
}
