//! Crash recovery is bit-identical to never crashing.
//!
//! For every strategy kind: a session journaled to disk, interrupted
//! mid-stream (state dropped, only the WAL + snapshots survive), recovered
//! via [`et_core::recover_session`], and driven to completion must produce
//! the exact same result — metric for metric, bit for bit — as the same
//! session run uninterrupted with no journal at all.

// Test harness: expect over error plumbing.
#![allow(clippy::expect_used)]

use std::path::PathBuf;
use std::sync::Arc;

use et_belief::{build_prior, EvidenceConfig, PriorConfig, PriorSpec};
use et_core::{
    recover_session, FpTrainer, JournalConfig, Learner, ResponseStrategy, SessionConfig,
    SessionJournal, SessionResult, SessionState, StrategyKind,
};
use et_data::gen::omdb;
use et_data::{inject_errors, InjectConfig, Table};
use et_durable::FsyncPolicy;
use et_fd::{Fd, HypothesisSpace};

fn tempdir(tag: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("et-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fixture() -> (Table, Vec<bool>, Arc<HypothesisSpace>) {
    let mut ds = omdb(200, 11);
    let specs = ds.exact_fds.clone();
    let inj = inject_errors(
        &mut ds.table,
        &specs,
        &[],
        &InjectConfig::with_degree(0.12, 5),
    );
    let pinned: Vec<Fd> = specs.iter().map(Fd::from_spec).collect();
    let space = Arc::new(HypothesisSpace::capped(&ds.table, 3, 20, 3, &pinned));
    (ds.table, inj.dirty_rows, space)
}

fn agents(kind: StrategyKind, table: &Table, space: &Arc<HypothesisSpace>) -> (FpTrainer, Learner) {
    let prior_cfg = PriorConfig::weak();
    let trainer_prior = build_prior(&PriorSpec::Random { seed: 3 }, &prior_cfg, space, table);
    let learner_prior = build_prior(&PriorSpec::DataEstimate, &prior_cfg, space, table);
    let trainer = FpTrainer::new(trainer_prior, EvidenceConfig::default());
    let learner = Learner::new(
        learner_prior,
        ResponseStrategy::paper(kind),
        EvidenceConfig::default(),
        7,
    );
    (trainer, learner)
}

fn session_cfg() -> SessionConfig {
    SessionConfig {
        iterations: 12,
        ..SessionConfig::default()
    }
}

fn journal_cfg() -> JournalConfig {
    JournalConfig {
        // Never: these tests assert logical replay, not storage durability
        // (the kill -9 harness in et-serve covers fsync semantics), and
        // skipping fdatasync keeps 8 strategy kinds fast.
        fsync: FsyncPolicy::Never,
        // Small cadence so a 12-iteration run exercises snapshot + suffix
        // replay, not just one of them.
        snapshot_every: 3,
    }
}

fn fresh_state(
    kind: StrategyKind,
    table: &Table,
    dirty: &[bool],
    space: &Arc<HypothesisSpace>,
) -> (SessionState, FpTrainer, Learner) {
    let (trainer, learner) = agents(kind, table, space);
    let state = SessionState::new(
        table.clone(),
        space.clone(),
        dirty,
        session_cfg(),
        &trainer,
        &learner,
    )
    .expect("valid config");
    (state, trainer, learner)
}

/// Drives `state` to completion, snapshotting on cadence like a real host.
fn drive_to_completion(state: &mut SessionState, trainer: &mut FpTrainer, learner: &mut Learner) {
    loop {
        if state.pending().is_none() && state.present(learner).expect("present").is_none() {
            break;
        }
        let labels = state.label_pending(trainer).expect("pending");
        let _ = state
            .apply_labels(trainer, learner, &labels)
            .expect("aligned");
        state.maybe_snapshot(trainer, learner).expect("snapshot");
    }
}

fn baseline(
    kind: StrategyKind,
    table: &Table,
    dirty: &[bool],
    space: &Arc<HypothesisSpace>,
) -> SessionResult {
    let (mut state, mut trainer, mut learner) = fresh_state(kind, table, dirty, space);
    drive_to_completion(&mut state, &mut trainer, &mut learner);
    state.into_result()
}

fn assert_bit_identical(kind: StrategyKind, got: &SessionResult, want: &SessionResult) {
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(&got.mae_series()),
        bits(&want.mae_series()),
        "{}: MAE series diverged",
        kind.as_str()
    );
    assert_eq!(
        bits(&got.trainer_confidences),
        bits(&want.trainer_confidences),
        "{}: trainer confidences diverged",
        kind.as_str()
    );
    assert_eq!(
        bits(&got.learner_confidences),
        bits(&want.learner_confidences),
        "{}: learner confidences diverged",
        kind.as_str()
    );
    assert_eq!(
        got.history.len(),
        want.history.len(),
        "{}: history length diverged",
        kind.as_str()
    );
    for (g, w) in got.history.iter().zip(&want.history) {
        assert_eq!(g.t, w.t, "{}: interaction index", kind.as_str());
        assert_eq!(g.selected, w.selected, "{}: selected pairs", kind.as_str());
        assert_eq!(g.sample, w.sample, "{}: presented sample", kind.as_str());
        assert_eq!(g.labels, w.labels, "{}: labels", kind.as_str());
        assert_eq!(g.labeled, w.labeled, "{}: labeled pairs", kind.as_str());
    }
    assert_eq!(
        got.metrics.len(),
        want.metrics.len(),
        "{}: metrics length diverged",
        kind.as_str()
    );
    for (g, w) in got.metrics.iter().zip(&want.metrics) {
        assert_eq!(
            g.policy_entropy.to_bits(),
            w.policy_entropy.to_bits(),
            "{}: policy entropy at t = {}",
            kind.as_str(),
            g.t
        );
        assert_eq!(
            g.learner_f1.to_bits(),
            w.learner_f1.to_bits(),
            "{}: learner F1 at t = {}",
            kind.as_str(),
            g.t
        );
        assert_eq!(
            g.agreement.to_bits(),
            w.agreement.to_bits(),
            "{}: agreement at t = {}",
            kind.as_str(),
            g.t
        );
    }
    assert_eq!(
        got.convergence.converged_at,
        want.convergence.converged_at,
        "{}: convergence round diverged",
        kind.as_str()
    );
    assert_eq!(
        got.convergence.final_mae.to_bits(),
        want.convergence.final_mae.to_bits(),
        "{}: final MAE diverged",
        kind.as_str()
    );
}

#[test]
fn recovered_mid_stream_is_bit_identical_across_all_strategies() {
    let (table, dirty, space) = fixture();
    for kind in StrategyKind::PAPER_METHODS
        .into_iter()
        .chain(StrategyKind::EXTENSIONS)
    {
        let want = baseline(kind, &table, &dirty, &space);

        let dir = tempdir(&format!("mid-{}", kind.as_str()));
        // Phase 1: journaled session, interrupted after 5 interactions —
        // past one snapshot (t = 3) so recovery exercises snapshot restore
        // *plus* WAL-suffix replay.
        {
            let (mut state, mut trainer, mut learner) = fresh_state(kind, &table, &dirty, &space);
            let journal = SessionJournal::create(&dir, journal_cfg()).expect("create journal");
            state.attach_journal(journal);
            for _ in 0..5 {
                assert!(state.present(&mut learner).expect("present").is_some());
                let labels = state.label_pending(&mut trainer).expect("pending");
                let _ = state
                    .apply_labels(&trainer, &mut learner, &labels)
                    .expect("aligned");
                state.maybe_snapshot(&trainer, &learner).expect("snapshot");
            }
            state.sync_journal().expect("sync");
            // Crash: state, trainer, learner all dropped here.
        }

        // Phase 2: recover from disk into fresh state + agents, finish.
        let (mut state, mut trainer, mut learner) = fresh_state(kind, &table, &dirty, &space);
        let outcome = recover_session(&dir, journal_cfg(), &mut state, &mut trainer, &mut learner)
            .expect("recover");
        assert_eq!(
            outcome.snapshot_t,
            Some(3),
            "{}: expected restore from the t = 3 snapshot",
            kind.as_str()
        );
        assert_eq!(
            outcome.replayed,
            2,
            "{}: expected 2 replayed WAL records",
            kind.as_str()
        );
        assert_eq!(outcome.truncated_bytes, 0, "{}: clean WAL", kind.as_str());
        assert_eq!(state.iterations_done(), 5, "{}", kind.as_str());
        drive_to_completion(&mut state, &mut trainer, &mut learner);
        let got = state.into_result();

        assert_bit_identical(kind, &got, &want);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn recovery_with_pending_presentation_in_snapshot() {
    // Crash while labels are awaited, after a snapshot captured the pending
    // presentation: recovery must restore the exact outstanding sample.
    let (table, dirty, space) = fixture();
    let kind = StrategyKind::StochasticBestResponse;
    let want = baseline(kind, &table, &dirty, &space);

    let dir = tempdir("pending");
    let pending_sample;
    {
        let (mut state, mut trainer, mut learner) = fresh_state(kind, &table, &dirty, &space);
        let journal = SessionJournal::create(&dir, journal_cfg()).expect("create journal");
        state.attach_journal(journal);
        for _ in 0..4 {
            assert!(state.present(&mut learner).expect("present").is_some());
            let labels = state.label_pending(&mut trainer).expect("pending");
            let _ = state
                .apply_labels(&trainer, &mut learner, &labels)
                .expect("aligned");
        }
        // Present round 5 but never label it; snapshot the limbo state.
        assert!(state.present(&mut learner).expect("present").is_some());
        pending_sample = state.pending().expect("pending").sample().to_vec();
        state.snapshot_now(&trainer, &learner).expect("snapshot");
        state.sync_journal().expect("sync");
    }

    let (mut state, mut trainer, mut learner) = fresh_state(kind, &table, &dirty, &space);
    let outcome = recover_session(&dir, journal_cfg(), &mut state, &mut trainer, &mut learner)
        .expect("recover");
    assert_eq!(outcome.snapshot_t, Some(4));
    assert_eq!(outcome.replayed, 0, "no WAL records past the snapshot");
    assert_eq!(
        state.pending().expect("pending restored").sample(),
        pending_sample.as_slice(),
        "restored pending presentation must match the pre-crash one"
    );
    drive_to_completion(&mut state, &mut trainer, &mut learner);
    assert_bit_identical(kind, &state.into_result(), &want);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovery_survives_torn_wal_tail_and_corrupt_snapshot() {
    // A torn append at the WAL tail and a checksum-corrupt newest snapshot
    // (the two crash artifacts atomic writes cannot rule out) must both be
    // absorbed: recovery falls back and the completed run stays
    // bit-identical to the uninterrupted baseline.
    let (table, dirty, space) = fixture();
    let kind = StrategyKind::Random;
    let want = baseline(kind, &table, &dirty, &space);

    let dir = tempdir("torn");
    {
        let (mut state, mut trainer, mut learner) = fresh_state(kind, &table, &dirty, &space);
        let journal = SessionJournal::create(&dir, journal_cfg()).expect("create journal");
        state.attach_journal(journal);
        for _ in 0..7 {
            assert!(state.present(&mut learner).expect("present").is_some());
            let labels = state.label_pending(&mut trainer).expect("pending");
            let _ = state
                .apply_labels(&trainer, &mut learner, &labels)
                .expect("aligned");
            state.maybe_snapshot(&trainer, &learner).expect("snapshot");
        }
        state.sync_journal().expect("sync");
    }
    // Torn tail: half a frame of garbage after the last full record.
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("labels.wal"))
            .expect("open wal");
        f.write_all(&[0xAB; 7]).expect("append garbage");
    }
    // Corrupt the newest snapshot (t = 6); the t = 3 fallback must be used.
    {
        let snaps = et_durable::snapshot::list(&dir).expect("list");
        let newest = &snaps.first().expect("snapshots exist").1;
        let mut bytes = std::fs::read(newest).expect("read snapshot");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(newest, &bytes).expect("rewrite snapshot");
    }

    let (mut state, mut trainer, mut learner) = fresh_state(kind, &table, &dirty, &space);
    let outcome = recover_session(&dir, journal_cfg(), &mut state, &mut trainer, &mut learner)
        .expect("recover");
    assert_eq!(outcome.truncated_bytes, 7, "torn tail truncated");
    assert_eq!(
        outcome.snapshot_t,
        Some(3),
        "fell back past corrupt snapshot"
    );
    assert_eq!(outcome.replayed, 4, "rounds 3..7 replayed from the WAL");
    assert_eq!(state.iterations_done(), 7);
    drive_to_completion(&mut state, &mut trainer, &mut learner);
    assert_bit_identical(kind, &state.into_result(), &want);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovery_rejects_mismatched_config() {
    // A snapshot taken under one seed must not restore into a session
    // constructed with another: determinism-based recovery is only sound
    // when the environment matches.
    let (table, dirty, space) = fixture();
    let kind = StrategyKind::Random;

    let dir = tempdir("skew");
    {
        let (mut state, mut trainer, mut learner) = fresh_state(kind, &table, &dirty, &space);
        let journal = SessionJournal::create(&dir, journal_cfg()).expect("create journal");
        state.attach_journal(journal);
        for _ in 0..3 {
            assert!(state.present(&mut learner).expect("present").is_some());
            let labels = state.label_pending(&mut trainer).expect("pending");
            let _ = state
                .apply_labels(&trainer, &mut learner, &labels)
                .expect("aligned");
            state.maybe_snapshot(&trainer, &learner).expect("snapshot");
        }
    }

    let (trainer, learner) = agents(kind, &table, &space);
    let skewed = SessionConfig {
        seed: session_cfg().seed.wrapping_add(1),
        ..session_cfg()
    };
    let mut state = SessionState::new(
        table.clone(),
        space.clone(),
        &dirty,
        skewed,
        &trainer,
        &learner,
    )
    .expect("valid config");
    let (mut trainer, mut learner) = (trainer, learner);
    let err = recover_session(&dir, journal_cfg(), &mut state, &mut trainer, &mut learner)
        .expect_err("config skew must be rejected");
    assert!(
        err.to_string().contains("different session config"),
        "unexpected error: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
