//! Property tests pinning pair selection after the bounded-top-k and
//! delta-rescoring rewrite:
//!
//! * [`top_k_indices`] (the bounded heap) must equal the historical
//!   full-sort selection for arbitrary score vectors, including NaN,
//!   infinities and signed zeros;
//! * every [`StrategyKind`] must pick the same pairs — and consume the
//!   same RNG draws — whether it scores through a plain
//!   [`RelationMatrix`] or through a warm [`DeltaScorer`] attached to the
//!   [`ScoreCtx`], so the cache can never change a session's trajectory.

use std::cell::RefCell;
use std::sync::Arc;

use proptest::prelude::*;

use et_belief::{Belief, Beta};
use et_core::{top_k_indices, CandidatePool, ResponseStrategy, ScoreCtx, StrategyKind};
use et_data::{Schema, Table};
use et_fd::{DeltaScorer, DetectParams, Fd, HypothesisSpace, PartitionCache, RelationMatrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_rows() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    proptest::collection::vec((0u8..4, 0u8..3, 0u8..3), 4..32)
}

fn table_of(rows: &[(u8, u8, u8)]) -> Table {
    let mut b = Table::builder(Schema::new(["x", "y", "a"]));
    for (x, y, a) in rows {
        b.push_row(&[format!("x{x}"), format!("y{y}"), format!("a{a}")]);
    }
    b.finish()
}

fn space() -> Arc<HypothesisSpace> {
    Arc::new(HypothesisSpace::from_fds([
        Fd::from_attrs([0], 2),
        Fd::from_attrs([0], 1),
        Fd::from_attrs([0, 1], 2),
        Fd::from_attrs([1], 0),
        Fd::from_attrs([1, 2], 0),
    ]))
}

const ALL_KINDS: [StrategyKind; 8] = [
    StrategyKind::Random,
    StrategyKind::UncertaintySampling,
    StrategyKind::StochasticBestResponse,
    StrategyKind::StochasticUncertainty,
    StrategyKind::Best,
    StrategyKind::ThompsonSampling,
    StrategyKind::CommitteeDisagreement,
    StrategyKind::DensityWeightedUncertainty,
];

/// One arbitrary score, biased toward finite values (repeated arms — the
/// shim's `prop_oneof!` is uniform) but covering the whole total_cmp
/// order: NaN, infinities and both signed zeros.
fn arb_score() -> impl Strategy<Value = f64> {
    prop_oneof![
        -1000.0f64..1000.0,
        -1000.0f64..1000.0,
        -1000.0f64..1000.0,
        -1000.0f64..1000.0,
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(0.0),
        Just(-0.0),
    ]
}

/// The pre-heap selection: sort every index by (score desc, index asc)
/// and truncate — the behaviour `top_k_indices` replaced.
fn sort_top_k(scores: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&i, &j| scores[j].total_cmp(&scores[i]).then(i.cmp(&j)));
    idx.truncate(k.min(scores.len()));
    idx
}

proptest! {
    /// The bounded heap equals the full sort for every score vector and
    /// every k, including k = 0 and k beyond the vector length.
    #[test]
    fn heap_top_k_equals_full_sort(
        scores in proptest::collection::vec(arb_score(), 0..64),
        k in 0usize..70,
    ) {
        prop_assert_eq!(top_k_indices(&scores, k), sort_top_k(&scores, k));
    }

    /// Every strategy kind selects the same pairs — consuming identical
    /// RNG draws — through a plain matrix and through a warm
    /// [`DeltaScorer`], and reports the same policy distribution. The
    /// scorer is pre-driven through a nudged confidence so the measured
    /// call takes the delta path, not a cold full fold.
    #[test]
    fn scorer_attached_select_equals_plain_matrix(
        rows in arb_rows(),
        a in 0.6f64..8.0,
        b in 0.6f64..8.0,
        seed in any::<u64>(),
        k in 1usize..6,
    ) {
        let t = table_of(&rows);
        let sp = space();
        let cache = PartitionCache::new(&t);
        let pool = CandidatePool::build(&t, &sp, 200, 1);
        let fresh: Vec<_> = pool.pairs().to_vec();
        prop_assume!(!fresh.is_empty());
        let pairs: Vec<(usize, usize)> = fresh.iter().map(|p| (p.a, p.b)).collect();
        let m = Arc::new(RelationMatrix::build(&t, &sp, &cache, &pairs));
        let belief = Belief::constant(sp.clone(), Beta::new(a, b));

        let cell = RefCell::new(DeltaScorer::new(Arc::clone(&m)));
        {
            // Warm both parameterisations with a nudged confidence vector:
            // the selects below then hit existing slots and re-fold only
            // the factor diff.
            let mut warm = belief.confidences();
            warm[0] = (warm[0] * 0.5 + 0.1).min(1.0);
            let mut s = cell.borrow_mut();
            let _ = s.scores_for(&warm, &DetectParams::unsmoothed());
            let _ = s.scores_for(&warm, &DetectParams::default());
        }

        for kind in ALL_KINDS {
            let strategy = ResponseStrategy::paper(kind);
            let plain_ctx = ScoreCtx::new(&t).with_matrix(&m);
            let scorer_ctx = ScoreCtx::new(&t).with_matrix(&m).with_scorer(&cell);

            let mut rng_plain = StdRng::seed_from_u64(seed);
            let mut rng_scorer = StdRng::seed_from_u64(seed);
            let picked_plain = strategy.select(plain_ctx, &belief, &fresh, k, &mut rng_plain);
            let picked_scorer = strategy.select(scorer_ctx, &belief, &fresh, k, &mut rng_scorer);
            prop_assert_eq!(picked_plain, picked_scorer,
                "{}: selections diverged with scorer attached", kind.as_str());
            // Same residual RNG state: neither path may consume extra draws.
            prop_assert_eq!(rng_plain.state(), rng_scorer.state(),
                "{}: RNG draw streams diverged", kind.as_str());

            let dist_plain = strategy.policy_distribution(plain_ctx, &belief, &fresh, k);
            let dist_scorer = strategy.policy_distribution(scorer_ctx, &belief, &fresh, k);
            for (i, (x, y)) in dist_plain.iter().zip(&dist_scorer).enumerate() {
                prop_assert_eq!(x.to_bits(), y.to_bits(),
                    "{}: policy weight {} diverged", kind.as_str(), i);
            }
        }
    }
}
