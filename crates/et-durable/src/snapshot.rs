//! Atomic, checksum-verified snapshot blobs.
//!
//! ## On-disk format
//!
//! ```text
//! file  := MAGIC crc:u32le len:u64le payload:[u8; len]
//! MAGIC := "ETSNAP" 0x00 0x01                        (8 bytes, version 1)
//! ```
//!
//! ## Atomicity
//!
//! [`write_atomic`] writes to `.<name>.tmp` in the same directory, fsyncs
//! the file, renames it over the final name, and fsyncs the directory. A
//! crash at any point leaves either the old state or the new one — never a
//! half-written snapshot under the final name. Readers validate magic,
//! length, and CRC, so even a snapshot torn by filesystem misbehavior is
//! *detected* and the caller can fall back to an older snapshot plus a
//! longer WAL replay.
//!
//! ## Naming
//!
//! Session snapshots are named `snap-<t:020>.bin` so lexicographic order is
//! numeric order. [`list`] collects and sorts entries newest-first rather
//! than trusting `read_dir` iteration order, which is platform-dependent
//! (et-lint L11 treats directory order as a nondeterminism source).

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::wal::fsync_parent_dir;
use crate::{crc32, DurableError};

/// The 8-byte snapshot header: name, NUL, format version.
pub const SNAP_MAGIC: [u8; 8] = *b"ETSNAP\x00\x01";

/// The filename for the snapshot taken at round `t`.
pub fn file_name(t: u64) -> String {
    format!("snap-{t:020}.bin")
}

/// Parses a [`file_name`]-shaped filename back to its round, or `None` for
/// any other file.
pub fn parse_file_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("snap-")?.strip_suffix(".bin")?;
    if digits.len() != 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Writes `payload` to `dir/name` atomically (tmp + fsync + rename + dir
/// fsync when `sync` is set), returning the final path.
///
/// # Errors
/// [`DurableError::Io`] on any filesystem failure; the final name is never
/// left half-written.
pub fn write_atomic(
    dir: &Path,
    name: &str,
    payload: &[u8],
    sync: bool,
) -> Result<PathBuf, DurableError> {
    let final_path = dir.join(name);
    let tmp_path = dir.join(format!(".{name}.tmp"));
    {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)
            .map_err(|e| DurableError::io("create snapshot tmp", &tmp_path, &e))?;
        let mut header = Vec::with_capacity(SNAP_MAGIC.len() + 12);
        header.extend_from_slice(&SNAP_MAGIC);
        header.extend_from_slice(&crc32::checksum(payload).to_le_bytes());
        header.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        f.write_all(&header)
            .map_err(|e| DurableError::io("write snapshot header", &tmp_path, &e))?;
        f.write_all(payload)
            .map_err(|e| DurableError::io("write snapshot payload", &tmp_path, &e))?;
        if sync {
            f.sync_data()
                .map_err(|e| DurableError::io("fsync snapshot", &tmp_path, &e))?;
        }
    }
    fs::rename(&tmp_path, &final_path)
        .map_err(|e| DurableError::io("rename snapshot", &final_path, &e))?;
    if sync {
        fsync_parent_dir(&final_path)?;
    }
    Ok(final_path)
}

/// Reads and validates a snapshot written by [`write_atomic`], returning
/// its payload.
///
/// # Errors
/// [`DurableError::Io`] on filesystem failures; [`DurableError::Corrupt`]
/// when magic, length, or checksum do not validate — the caller should fall
/// back to an older snapshot.
pub fn read(path: &Path) -> Result<Vec<u8>, DurableError> {
    let mut f = File::open(path).map_err(|e| DurableError::io("open snapshot", path, &e))?;
    let mut bytes = Vec::new();
    f.read_to_end(&mut bytes)
        .map_err(|e| DurableError::io("read snapshot", path, &e))?;
    let corrupt = |offset: u64, reason: &str| DurableError::Corrupt {
        path: path.to_path_buf(),
        offset,
        reason: reason.to_string(),
    };
    if bytes.len() < SNAP_MAGIC.len() + 12 {
        return Err(corrupt(0, "snapshot shorter than header"));
    }
    if bytes[..SNAP_MAGIC.len()] != SNAP_MAGIC {
        return Err(corrupt(0, "missing or wrong snapshot magic"));
    }
    let mut w4 = [0u8; 4];
    w4.copy_from_slice(&bytes[8..12]);
    let crc = u32::from_le_bytes(w4);
    let mut w8 = [0u8; 8];
    w8.copy_from_slice(&bytes[12..20]);
    let len = u64::from_le_bytes(w8);
    let payload = &bytes[20..];
    if payload.len() as u64 != len {
        return Err(corrupt(12, "snapshot length mismatch"));
    }
    if crc32::checksum(payload) != crc {
        return Err(corrupt(8, "snapshot checksum mismatch"));
    }
    Ok(payload.to_vec())
}

/// Lists the snapshots in `dir`, newest (highest `t`) first. Non-snapshot
/// files are ignored; entries are sorted explicitly because `read_dir`
/// order is platform-dependent.
///
/// # Errors
/// [`DurableError::Io`] when the directory cannot be read.
pub fn list(dir: &Path) -> Result<Vec<(u64, PathBuf)>, DurableError> {
    let rd = fs::read_dir(dir).map_err(|e| DurableError::io("read snapshot dir", dir, &e))?;
    let mut out = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| DurableError::io("read snapshot dir entry", dir, &e))?;
        let name = entry.file_name();
        if let Some(t) = name.to_str().and_then(parse_file_name) {
            out.push((t, entry.path()));
        }
    }
    out.sort_by_key(|&(t, _)| std::cmp::Reverse(t));
    Ok(out)
}

/// Deletes all snapshots in `dir` strictly older than round `keep_from`
/// (retention after a newer snapshot lands). Errors on individual unlinks
/// are returned after attempting every candidate.
///
/// # Errors
/// [`DurableError::Io`] from listing or from the last failed unlink.
pub fn prune_older_than(dir: &Path, keep_from: u64) -> Result<usize, DurableError> {
    let mut removed = 0usize;
    let mut last_err = None;
    for (t, path) in list(dir)? {
        if t < keep_from {
            match fs::remove_file(&path) {
                Ok(()) => removed += 1,
                Err(e) => last_err = Some(DurableError::io("remove old snapshot", &path, &e)),
            }
        }
    }
    match last_err {
        Some(e) => Err(e),
        None => Ok(removed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "et-durable-snap-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&p);
        fs::create_dir_all(&p).expect("mkdir");
        p
    }

    #[test]
    fn write_read_round_trip() {
        let dir = temp_dir("roundtrip");
        let payload = b"beliefs and pending presentation".to_vec();
        let path = write_atomic(&dir, &file_name(7), &payload, true).expect("write");
        assert_eq!(read(&path).expect("read"), payload);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_is_detected() {
        let dir = temp_dir("corrupt");
        let path = write_atomic(&dir, &file_name(1), b"payload-bytes", false).expect("write");
        let mut bytes = fs::read(&path).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        fs::write(&path, &bytes).expect("rewrite");
        assert!(matches!(read(&path), Err(DurableError::Corrupt { .. })));
        // Truncated payload also detected.
        fs::write(&path, &bytes[..bytes.len() - 4]).expect("truncate");
        assert!(matches!(read(&path), Err(DurableError::Corrupt { .. })));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn naming_and_listing_sort_newest_first() {
        assert_eq!(parse_file_name(&file_name(42)), Some(42));
        assert_eq!(parse_file_name("snap-junk.bin"), None);
        assert_eq!(parse_file_name("other.bin"), None);

        let dir = temp_dir("list");
        for t in [3u64, 11, 7] {
            write_atomic(&dir, &file_name(t), &[1], false).expect("write");
        }
        fs::write(dir.join("meta.bin"), b"not a snapshot").expect("noise");
        let listed = list(&dir).expect("list");
        let ts: Vec<u64> = listed.iter().map(|(t, _)| *t).collect();
        assert_eq!(ts, vec![11, 7, 3]);

        assert_eq!(prune_older_than(&dir, 7).expect("prune"), 1);
        let ts: Vec<u64> = list(&dir).expect("list").iter().map(|(t, _)| *t).collect();
        assert_eq!(ts, vec![11, 7]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tmp_file_never_shadows_final() {
        let dir = temp_dir("tmp");
        write_atomic(&dir, &file_name(1), b"v1", true).expect("write");
        // The tmp name must not be left behind.
        assert!(!dir.join(format!(".{}.tmp", file_name(1))).exists());
        // Overwrite with new content atomically.
        write_atomic(&dir, &file_name(1), b"v2", true).expect("rewrite");
        assert_eq!(read(&dir.join(file_name(1))).expect("read"), b"v2".to_vec());
        let _ = fs::remove_dir_all(&dir);
    }
}
