//! A minimal length-safe binary codec for durable payloads.
//!
//! Fixed-width little-endian integers, `f64` as raw bits (bit-exact across
//! write/read — the recovery bit-identity tests depend on it), and
//! length-prefixed byte strings. [`Dec`] never panics: every read is
//! bounds-checked and returns a typed [`DurableError::Decode`] on truncated
//! or out-of-range input, so a corrupted payload surfaces as an error the
//! caller can route, not a crash.

use crate::DurableError;

/// Appends values to a growable byte buffer.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte (`0`/`1`).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` widened to `u64` (this workspace only targets
    /// 64-bit-or-narrower platforms).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` as its raw bits — the exact value round-trips,
    /// including negative zero and every subnormal.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// Reads values back out of a byte slice, tracking position.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Errors unless every byte was consumed — trailing garbage in a
    /// checksummed payload means a writer/reader version skew.
    ///
    /// # Errors
    /// [`DurableError::Decode`] when bytes remain.
    pub fn finish(&self) -> Result<(), DurableError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DurableError::decode(format!(
                "{} trailing bytes after payload",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], DurableError> {
        if self.remaining() < n {
            return Err(DurableError::decode(format!(
                "truncated payload: wanted {n} bytes for {what}, had {}",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    ///
    /// # Errors
    /// [`DurableError::Decode`] on truncation.
    pub fn take_u8(&mut self) -> Result<u8, DurableError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a bool; any byte other than `0`/`1` is a decode error.
    ///
    /// # Errors
    /// [`DurableError::Decode`] on truncation or an out-of-range byte.
    pub fn take_bool(&mut self) -> Result<bool, DurableError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(DurableError::decode(format!("bad bool byte {b}"))),
        }
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    /// [`DurableError::Decode`] on truncation.
    pub fn take_u32(&mut self) -> Result<u32, DurableError> {
        let s = self.take(4, "u32")?;
        let mut b = [0u8; 4];
        b.copy_from_slice(s);
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    /// [`DurableError::Decode`] on truncation.
    pub fn take_u64(&mut self) -> Result<u64, DurableError> {
        let s = self.take(8, "u64")?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    /// Reads a `u64` and narrows it to `usize`, erroring (not wrapping) when
    /// it does not fit the platform.
    ///
    /// # Errors
    /// [`DurableError::Decode`] on truncation or overflow.
    pub fn take_usize(&mut self) -> Result<usize, DurableError> {
        let v = self.take_u64()?;
        usize::try_from(v).map_err(|_| DurableError::decode(format!("usize overflow: {v}")))
    }

    /// Reads an `f64` from its raw bits.
    ///
    /// # Errors
    /// [`DurableError::Decode`] on truncation.
    pub fn take_f64(&mut self) -> Result<f64, DurableError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a length-prefixed byte string. The length is validated against
    /// the remaining buffer before any allocation, so a corrupted prefix
    /// cannot trigger a huge reserve.
    ///
    /// # Errors
    /// [`DurableError::Decode`] on truncation or an impossible length.
    pub fn take_bytes(&mut self) -> Result<Vec<u8>, DurableError> {
        let n = self.take_usize()?;
        if n > self.remaining() {
            return Err(DurableError::decode(format!(
                "byte-string length {n} exceeds remaining {}",
                self.remaining()
            )));
        }
        Ok(self.take(n, "byte string")?.to_vec())
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    /// [`DurableError::Decode`] on truncation or invalid UTF-8.
    pub fn take_str(&mut self) -> Result<String, DurableError> {
        let bytes = self.take_bytes()?;
        String::from_utf8(bytes).map_err(|e| DurableError::decode(format!("bad utf-8: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::{Dec, Enc};

    #[test]
    fn round_trip_all_types() {
        let mut e = Enc::new();
        e.put_u8(7);
        e.put_bool(true);
        e.put_bool(false);
        e.put_u32(0xDEAD_BEEF);
        e.put_u64(u64::MAX);
        e.put_usize(123_456);
        e.put_f64(-0.0);
        e.put_f64(f64::MIN_POSITIVE / 2.0); // subnormal
        e.put_f64(core::f64::consts::PI);
        e.put_bytes(&[1, 2, 3]);
        e.put_str("snapshot ≠ WAL");
        let bytes = e.into_bytes();

        let mut d = Dec::new(&bytes);
        assert_eq!(d.take_u8().expect("u8"), 7);
        assert!(d.take_bool().expect("bool"));
        assert!(!d.take_bool().expect("bool"));
        assert_eq!(d.take_u32().expect("u32"), 0xDEAD_BEEF);
        assert_eq!(d.take_u64().expect("u64"), u64::MAX);
        assert_eq!(d.take_usize().expect("usize"), 123_456);
        assert_eq!(d.take_f64().expect("f64").to_bits(), (-0.0f64).to_bits());
        assert_eq!(
            d.take_f64().expect("f64").to_bits(),
            (f64::MIN_POSITIVE / 2.0).to_bits()
        );
        assert_eq!(
            d.take_f64().expect("f64").to_bits(),
            core::f64::consts::PI.to_bits()
        );
        assert_eq!(d.take_bytes().expect("bytes"), vec![1, 2, 3]);
        assert_eq!(d.take_str().expect("str"), "snapshot ≠ WAL");
        d.finish().expect("fully consumed");
    }

    #[test]
    fn truncation_errors_never_panic() {
        let mut e = Enc::new();
        e.put_u64(42);
        let bytes = e.into_bytes();
        // Every proper prefix must produce Err, not panic.
        for cut in 0..bytes.len() {
            let mut d = Dec::new(&bytes[..cut]);
            assert!(d.take_u64().is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn hostile_lengths_are_rejected() {
        // A byte-string claiming u64::MAX length must not allocate.
        let mut e = Enc::new();
        e.put_u64(u64::MAX);
        e.put_u8(0);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert!(d.take_bytes().is_err());

        // Bad bool byte.
        let mut d = Dec::new(&[9]);
        assert!(d.take_bool().is_err());

        // Trailing garbage flagged by finish().
        let mut d = Dec::new(&[1, 2]);
        assert_eq!(d.take_u8().expect("u8"), 1);
        assert!(d.finish().is_err());
    }
}
