//! Durability substrate for exploratory-training sessions.
//!
//! A session is a deterministic function of `(seed, config, label sequence)`
//! — PR 2's step-API bit-identity tests pin this. That makes persistence
//! cheap: durably log the *labels* (the only external input), periodically
//! snapshot the mutable state to bound replay time, and rederive everything
//! else (relation matrix, partition cache, candidate pool) on recovery.
//!
//! This crate holds the storage-layer half of that plan, with no knowledge
//! of sessions themselves:
//!
//! - [`Wal`]: an append-only write-ahead log of length-prefixed,
//!   CRC32-checksummed records, with torn-tail truncation on open and a
//!   configurable [`FsyncPolicy`].
//! - [`snapshot`]: atomic write (tmp + fsync + rename + dir fsync) and
//!   checksum-verified read of point-in-time state blobs, plus the
//!   `snap-<t>.bin` naming scheme and newest-first directory listing.
//! - [`codec`]: a tiny length-safe binary encoder/decoder with bit-exact
//!   `f64` transport (`to_bits`/`from_bits`).
//! - [`crc32`]: the IEEE CRC-32 both layers frame with.
//!
//! Everything fallible returns a typed [`DurableError`] — lint rule L9
//! treats this crate's public API as panic-reachability roots, so `unwrap`
//! on the IO path is a build failure, not a style nit.

pub mod codec;
pub mod crc32;
pub mod snapshot;
pub mod wal;

pub use codec::{Dec, Enc};
pub use wal::{FsyncPolicy, Wal, WalOpen, WalRecord};

use std::fmt;
use std::path::{Path, PathBuf};

/// Every way the durability layer can fail, as data (never a panic).
#[derive(Debug)]
pub enum DurableError {
    /// An OS-level IO failure, tagged with the operation and path so the
    /// caller's log line is actionable without a backtrace.
    Io {
        /// What we were doing ("open wal", "fsync dir", ...).
        op: &'static str,
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying error, stringified (io::Error is not `Clone`).
        source: String,
    },
    /// Stored bytes failed validation (bad magic, checksum mismatch, or an
    /// impossible length) somewhere *other* than a WAL tail — WAL tails are
    /// truncated silently by design, see [`wal`].
    Corrupt {
        /// The file involved.
        path: PathBuf,
        /// Byte offset of the first bad byte, when known.
        offset: u64,
        /// Human-readable diagnosis.
        reason: String,
    },
    /// A decode ran off the end of a payload or met an out-of-range value.
    Decode {
        /// Human-readable diagnosis.
        reason: String,
    },
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Io { op, path, source } => {
                write!(f, "{op} {}: {source}", path.display())
            }
            DurableError::Corrupt {
                path,
                offset,
                reason,
            } => write!(
                f,
                "corrupt data in {} at byte {offset}: {reason}",
                path.display()
            ),
            DurableError::Decode { reason } => write!(f, "decode error: {reason}"),
        }
    }
}

impl std::error::Error for DurableError {}

impl DurableError {
    /// Wraps an [`std::io::Error`] with its operation and path.
    pub fn io(op: &'static str, path: &Path, e: &std::io::Error) -> Self {
        DurableError::Io {
            op,
            path: path.to_path_buf(),
            source: e.to_string(),
        }
    }

    /// A decode failure with the given diagnosis.
    pub fn decode(reason: impl Into<String>) -> Self {
        DurableError::Decode {
            reason: reason.into(),
        }
    }
}
