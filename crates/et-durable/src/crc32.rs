//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB8_8320`) — the checksum
//! framing every durable record and snapshot carries.
//!
//! Table-driven, with the table built by a `const fn` at compile time so the
//! hot path is one shift/xor/lookup per byte and the crate stays dependency
//! free.

/// The 256-entry lookup table for the reflected IEEE polynomial.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// The CRC-32 of `bytes` (initial value `!0`, final complement — the
/// standard zlib/IEEE convention).
pub fn checksum(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        let idx = ((crc ^ u32::from(b)) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::checksum;

    #[test]
    fn known_vectors() {
        // Standard test vectors for CRC-32/IEEE.
        assert_eq!(checksum(b""), 0);
        assert_eq!(checksum(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            checksum(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_any_flip() {
        let base = checksum(b"exploratory-training");
        let mut bytes = b"exploratory-training".to_vec();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                bytes[i] ^= 1 << bit;
                assert_ne!(checksum(&bytes), base, "flip at byte {i} bit {bit}");
                bytes[i] ^= 1 << bit;
            }
        }
    }
}
