//! The append-only write-ahead log.
//!
//! ## On-disk format
//!
//! ```text
//! file   := MAGIC record*
//! MAGIC  := "ETWAL" 0x00 0x01 0x0A                 (8 bytes, version 1)
//! record := len:u32le  crc:u32le  type:u8  payload:[u8; len-1]
//! ```
//!
//! `len` counts the type byte plus the payload; `crc` is the IEEE CRC-32 of
//! exactly those `len` bytes. Records are written with a single `write_all`
//! so the common torn-write shape is a truncated tail, not an interleaving.
//!
//! ## Torn-tail truncation
//!
//! [`Wal::open`] scans the whole file and stops at the first frame that is
//! truncated, oversized, or fails its checksum. Everything before that point
//! is returned as [`WalRecord`]s; everything from it onward is physically
//! truncated away and reported in [`WalOpen::truncated_bytes`]. This is the
//! correct policy for a log whose writer appends one fsynced record per
//! acknowledgement: a bad frame can only be the unacknowledged tail of a
//! crashed write, so dropping it never loses acknowledged data. A bad
//! *header* (wrong magic on a non-empty file) is different — that file was
//! never ours, and open refuses with [`DurableError::Corrupt`] rather than
//! destroy it.
//!
//! ## Fsync policy
//!
//! [`FsyncPolicy::Always`] issues `fdatasync` after every append — the
//! durability contract ("acknowledged implies recoverable") requires it.
//! [`FsyncPolicy::Never`] leaves flushing to the OS; crash recovery then
//! only guarantees a *prefix* of acknowledged labels. `load_smoke --json`
//! exists to price the difference.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::{crc32, DurableError};

/// The 8-byte file header: name, NUL, format version, newline.
pub const WAL_MAGIC: [u8; 8] = *b"ETWAL\x00\x01\x0A";

/// Upper bound on a single record's framed length; anything larger is
/// treated as corruption (a real label batch is a few hundred bytes).
pub const MAX_RECORD_LEN: u32 = 64 * 1024 * 1024;

/// When the log forces bytes to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every append and snapshot — acknowledged implies
    /// recoverable, even through power loss.
    Always,
    /// Leave flushing to the OS page cache. Fast; a crash may lose a suffix
    /// of acknowledged records.
    Never,
}

impl FsyncPolicy {
    /// Parses the wire/CLI spelling (`"always"` / `"never"`).
    ///
    /// # Errors
    /// A usage message naming the valid spellings.
    pub fn from_name(name: &str) -> Result<Self, String> {
        match name {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            other => Err(format!("fsync policy must be always|never, got {other:?}")),
        }
    }

    /// The CLI spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Never => "never",
        }
    }
}

/// One decoded log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Application-level record type tag.
    pub rec_type: u8,
    /// The record payload.
    pub payload: Vec<u8>,
}

/// The result of [`Wal::open`]: the writable log plus everything legible
/// that was already in it.
#[derive(Debug)]
pub struct WalOpen {
    /// The log, positioned for appending.
    pub wal: Wal,
    /// All valid records, in append order.
    pub records: Vec<WalRecord>,
    /// Bytes discarded from the tail (0 on a clean file).
    pub truncated_bytes: u64,
}

/// An open append-only log file.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
}

impl Wal {
    /// Opens (or creates) the log at `path`, validates its contents, and
    /// truncates any torn tail. See the module docs for the exact policy.
    ///
    /// # Errors
    /// [`DurableError::Io`] on filesystem failures; [`DurableError::Corrupt`]
    /// when a non-empty file does not carry the WAL magic.
    pub fn open(path: &Path, policy: FsyncPolicy) -> Result<WalOpen, DurableError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| DurableError::io("open wal", path, &e))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| DurableError::io("read wal", path, &e))?;

        let mut records = Vec::new();
        let mut truncated_bytes = 0u64;
        if bytes.is_empty() {
            // Fresh file: stamp the header.
            file.write_all(&WAL_MAGIC)
                .map_err(|e| DurableError::io("write wal header", path, &e))?;
            if policy == FsyncPolicy::Always {
                file.sync_data()
                    .map_err(|e| DurableError::io("fsync wal header", path, &e))?;
                fsync_parent_dir(path)?;
            }
        } else if bytes.len() < WAL_MAGIC.len() || bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
            // A short file could be a torn header from our own crashed
            // create — but so could any other writer's file. Refuse either
            // way; the caller decides whether to delete and restart.
            return Err(DurableError::Corrupt {
                path: path.to_path_buf(),
                offset: 0,
                reason: "missing or wrong WAL magic".to_string(),
            });
        } else {
            let valid_end = scan_records(&bytes, &mut records);
            let total = bytes.len() as u64;
            if valid_end < total {
                truncated_bytes = total - valid_end;
                file.set_len(valid_end)
                    .map_err(|e| DurableError::io("truncate wal tail", path, &e))?;
                if policy == FsyncPolicy::Always {
                    file.sync_data()
                        .map_err(|e| DurableError::io("fsync wal truncate", path, &e))?;
                }
            }
        }
        file.seek(SeekFrom::End(0))
            .map_err(|e| DurableError::io("seek wal end", path, &e))?;
        Ok(WalOpen {
            wal: Wal {
                file,
                path: path.to_path_buf(),
                policy,
            },
            records,
            truncated_bytes,
        })
    }

    /// Appends one record and, under [`FsyncPolicy::Always`], forces it to
    /// stable storage before returning. Only after this returns `Ok` may the
    /// caller acknowledge the data the record carries.
    ///
    /// # Errors
    /// [`DurableError::Io`] when the write or sync fails; the file may then
    /// hold a torn frame, which the next [`Wal::open`] will truncate.
    pub fn append(&mut self, rec_type: u8, payload: &[u8]) -> Result<(), DurableError> {
        let body_len = payload.len() + 1;
        let len = u32::try_from(body_len).map_err(|_| DurableError::Corrupt {
            path: self.path.clone(),
            offset: 0,
            reason: format!("record of {body_len} bytes exceeds u32 framing"),
        })?;
        if len > MAX_RECORD_LEN {
            return Err(DurableError::Corrupt {
                path: self.path.clone(),
                offset: 0,
                reason: format!("record of {body_len} bytes exceeds MAX_RECORD_LEN"),
            });
        }
        let mut frame = Vec::with_capacity(8 + body_len);
        frame.extend_from_slice(&len.to_le_bytes());
        let mut body = Vec::with_capacity(body_len);
        body.push(rec_type);
        body.extend_from_slice(payload);
        frame.extend_from_slice(&crc32::checksum(&body).to_le_bytes());
        frame.extend_from_slice(&body);
        self.file
            .write_all(&frame)
            .map_err(|e| DurableError::io("append wal record", &self.path, &e))?;
        if self.policy == FsyncPolicy::Always {
            self.file
                .sync_data()
                .map_err(|e| DurableError::io("fsync wal append", &self.path, &e))?;
        }
        Ok(())
    }

    /// Forces any buffered appends to stable storage regardless of policy
    /// (used by eviction flushes under [`FsyncPolicy::Never`]).
    ///
    /// # Errors
    /// [`DurableError::Io`] when the sync fails.
    pub fn sync(&mut self) -> Result<(), DurableError> {
        self.file
            .sync_data()
            .map_err(|e| DurableError::io("fsync wal", &self.path, &e))
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The configured fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }
}

/// Decodes frames starting after the magic; returns the byte offset of the
/// end of the last valid record (i.e. where any truncation should cut).
fn scan_records(bytes: &[u8], out: &mut Vec<WalRecord>) -> u64 {
    let mut pos = WAL_MAGIC.len();
    loop {
        let start = pos;
        if bytes.len() - pos < 8 {
            return start as u64; // torn length/crc prefix (or clean EOF)
        }
        let mut w = [0u8; 4];
        w.copy_from_slice(&bytes[pos..pos + 4]);
        let len = u32::from_le_bytes(w);
        w.copy_from_slice(&bytes[pos + 4..pos + 8]);
        let crc = u32::from_le_bytes(w);
        if len == 0 || len > MAX_RECORD_LEN {
            return start as u64; // impossible frame ⇒ treat as tail
        }
        let body_len = len as usize;
        if bytes.len() - pos - 8 < body_len {
            return start as u64; // torn body
        }
        let body = &bytes[pos + 8..pos + 8 + body_len];
        if crc32::checksum(body) != crc {
            return start as u64; // checksum mismatch ⇒ torn or corrupt tail
        }
        out.push(WalRecord {
            rec_type: body[0],
            payload: body[1..].to_vec(),
        });
        pos += 8 + body_len;
    }
}

/// Fsyncs the parent directory of `path` so a newly created or renamed file
/// survives power loss. No-op on platforms without directory fds.
pub fn fsync_parent_dir(path: &Path) -> Result<(), DurableError> {
    #[cfg(unix)]
    {
        if let Some(parent) = path.parent() {
            let dir = File::open(parent).map_err(|e| DurableError::io("open dir", parent, &e))?;
            dir.sync_all()
                .map_err(|e| DurableError::io("fsync dir", parent, &e))?;
        }
    }
    #[cfg(not(unix))]
    {
        let _ = path;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "et-durable-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        p
    }

    fn append_n(path: &Path, n: u8) {
        let mut open = Wal::open(path, FsyncPolicy::Never).expect("open");
        for i in 0..n {
            open.wal
                .append(1, &[i, i.wrapping_mul(3), 0xAB])
                .expect("append");
        }
    }

    #[test]
    fn round_trip_and_reopen() {
        let path = temp_path("roundtrip");
        let _ = fs::remove_file(&path);
        append_n(&path, 5);
        let open = Wal::open(&path, FsyncPolicy::Always).expect("reopen");
        assert_eq!(open.truncated_bytes, 0);
        assert_eq!(open.records.len(), 5);
        assert_eq!(open.records[2].payload, vec![2, 6, 0xAB]);
        assert!(open.records.iter().all(|r| r.rec_type == 1));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_at_every_cut() {
        let path = temp_path("torn");
        let _ = fs::remove_file(&path);
        append_n(&path, 3);
        let full = fs::read(&path).expect("read");
        // Cut the file at every possible byte boundary inside the last
        // record; the first two records must always survive.
        let record_len = (full.len() - WAL_MAGIC.len()) / 3;
        let last_start = full.len() - record_len;
        for cut in last_start..full.len() {
            fs::write(&path, &full[..cut]).expect("write cut");
            let open = Wal::open(&path, FsyncPolicy::Never).expect("open cut");
            assert_eq!(open.records.len(), 2, "cut at {cut}");
            assert_eq!(open.truncated_bytes, (cut - last_start) as u64);
            assert_eq!(
                fs::metadata(&path).expect("meta").len(),
                last_start as u64,
                "file physically truncated at {cut}"
            );
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn corrupt_byte_truncates_from_there() {
        let path = temp_path("corrupt");
        let _ = fs::remove_file(&path);
        append_n(&path, 3);
        let mut bytes = fs::read(&path).expect("read");
        let record_len = (bytes.len() - WAL_MAGIC.len()) / 3;
        // Flip a payload byte inside record #2 (index 1).
        let idx = WAL_MAGIC.len() + record_len + 9;
        bytes[idx] ^= 0xFF;
        fs::write(&path, &bytes).expect("write");
        let open = Wal::open(&path, FsyncPolicy::Never).expect("open");
        assert_eq!(open.records.len(), 1, "only the record before the flip");
        assert_eq!(open.truncated_bytes, 2 * record_len as u64);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn foreign_file_is_refused_not_destroyed() {
        let path = temp_path("foreign");
        fs::write(&path, b"definitely not a wal file").expect("write");
        let err = Wal::open(&path, FsyncPolicy::Never);
        assert!(matches!(err, Err(DurableError::Corrupt { .. })));
        assert_eq!(
            fs::read(&path).expect("read"),
            b"definitely not a wal file".to_vec(),
            "refusal must not modify the file"
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn appends_after_truncated_reopen_continue_cleanly() {
        let path = temp_path("continue");
        let _ = fs::remove_file(&path);
        append_n(&path, 2);
        // Tear the tail by hand.
        let full = fs::read(&path).expect("read");
        fs::write(&path, &full[..full.len() - 3]).expect("tear");
        let mut open = Wal::open(&path, FsyncPolicy::Never).expect("open");
        assert_eq!(open.records.len(), 1);
        open.wal.append(2, b"after-recovery").expect("append");
        drop(open);
        let reopened = Wal::open(&path, FsyncPolicy::Never).expect("reopen");
        assert_eq!(reopened.records.len(), 2);
        assert_eq!(reopened.records[1].rec_type, 2);
        assert_eq!(reopened.records[1].payload, b"after-recovery".to_vec());
        let _ = fs::remove_file(&path);
    }
}
