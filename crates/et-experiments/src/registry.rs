//! The experiment catalogue: every table and figure of the paper plus the
//! ablations DESIGN.md calls out.

use std::fmt::Write as _;
use std::sync::Arc;

use et_belief::{build_prior, EvidenceConfig, PriorConfig, PriorSpec};
use et_core::trainer::FpTrainer;
use et_core::{run_session, Learner, ResponseStrategy, SessionConfig, StrategyKind};
use et_data::gen::DatasetName;
use et_data::{inject_errors, table::paper_table1, InjectConfig};
use et_fd::{g1_of, Fd, HypothesisSpace};
use et_userstudy::{
    average_f1_change, predictor_mrr, run_study, scenarios, PredictorKind, StudyConfig,
};

use crate::convergence::{ConvergenceExperiment, PriorKind};
use crate::report::{curves_to_csv, render_curves, render_summary, render_table, Metric};

/// Global knobs for a reproduction run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Seeds averaged per configuration.
    pub runs: usize,
    /// Rows per generated dataset.
    pub rows: usize,
    /// Interactions per session.
    pub iterations: usize,
    /// Smaller hypothesis spaces and study sizes for smoke tests.
    pub quick: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            runs: 5,
            rows: 240,
            iterations: 30,
            quick: false,
        }
    }
}

impl RunOptions {
    /// A configuration small enough for integration tests.
    pub fn quick() -> Self {
        Self {
            runs: 2,
            rows: 140,
            iterations: 12,
            quick: true,
        }
    }
}

/// The result of regenerating one artifact.
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// Experiment id (e.g. `fig1`).
    pub id: &'static str,
    /// Human-readable report (tables + expectation commentary).
    pub text: String,
    /// CSV artifacts as `(file name, content)`.
    pub csv: Vec<(String, String)>,
}

/// A registered experiment.
pub struct Experiment {
    /// Stable id used on the `repro` command line.
    pub id: &'static str,
    /// One-line title.
    pub title: &'static str,
    /// The paper artifact it regenerates.
    pub paper_ref: &'static str,
    /// The qualitative shape the paper reports (what "reproduced" means).
    pub expectation: &'static str,
    /// Runner.
    pub run: fn(&RunOptions) -> ExperimentOutput,
}

/// Every registered experiment, in the paper's order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "table1",
            title: "Sample instance and g1 measure",
            paper_ref: "Table 1 / Examples 1-2",
            expectation: "g1(Team -> City) = 1/25 = 0.04; violating pair gets dirty prob 0.96",
            run: run_table1,
        },
        Experiment {
            id: "table2",
            title: "User-study scenarios",
            paper_ref: "Table 2",
            expectation: "five scenarios, Airport ratio 1/3, OMDB ratio 2/3",
            run: run_table2,
        },
        Experiment {
            id: "table3",
            title: "Average f1-score change between labeling rounds",
            paper_ref: "Table 3",
            expectation: "substantial per-round hypothesis movement (0.1-0.35), i.e. users learn",
            run: run_table3,
        },
        Experiment {
            id: "fig1",
            title: "MAE curves, OMDB ~10% violations, trainer=Random, learner=Data-estimate",
            paper_ref: "Figure 1",
            expectation: "US converges fastest with an informed learner prior; Random slowest; stochastic methods in between",
            run: run_fig1,
        },
        Experiment {
            id: "fig2",
            title: "MRR@5 of learning models per scenario (exact and '+')",
            paper_ref: "Figure 2",
            expectation: "Bayesian (FP) beats hypothesis testing in most scenarios; scenario 2 is hardest",
            run: run_fig2,
        },
        Experiment {
            id: "fig3",
            title: "MAE curves, OMDB ~10% violations, learner=Uniform-0.9",
            paper_ref: "Figure 3",
            expectation: "with an uninformed learner prior US loses its edge (can hurt vs Random); stochastic methods stay competitive",
            run: run_fig3,
        },
        Experiment {
            id: "fig4",
            title: "MAE curves, all four datasets, ~20% violations, learner=Data-estimate",
            paper_ref: "Figure 4",
            expectation: "same ordering as Figure 1 across OMDB/Airport/Hospital/Tax",
            run: run_fig4,
        },
        Experiment {
            id: "fig5",
            title: "MAE curves, all four datasets, ~20% violations, learner=Uniform-0.9",
            paper_ref: "Figure 5",
            expectation: "same degradation of US as Figure 3 across datasets",
            run: run_fig5,
        },
        Experiment {
            id: "fig6",
            title: "MAE vs violation degree (5%/15%/25%), OMDB, learner=Uniform-0.9",
            paper_ref: "Figure 6",
            expectation: "with mismatched priors, higher violation degrees worsen final MAE",
            run: run_fig6,
        },
        Experiment {
            id: "fig7",
            title: "Learner F1 per iteration, trainer=Random, learner=Random, ~20% violations",
            paper_ref: "Figure 7",
            expectation: "stochastic methods match or beat US and Random; Random has high recall / lower precision; US depressed recall",
            run: run_fig7,
        },
        Experiment {
            id: "prop1",
            title: "Convergence of (FP, Best) x (FP, Stochastic Best) to equilibrium",
            paper_ref: "Proposition 1",
            expectation: "belief drift and empirical label frequency stabilize; MAE settles",
            run: run_prop1,
        },
        Experiment {
            id: "ablation-gamma",
            title: "Temperature sweep for the stochastic strategies",
            paper_ref: "DESIGN.md ablation (gamma)",
            expectation: "gamma->0 approaches the greedy parent strategy, large gamma approaches Random",
            run: run_ablation_gamma,
        },
        Experiment {
            id: "ablation-prior-strength",
            title: "Prior strength sweep",
            paper_ref: "DESIGN.md ablation (prior strength)",
            expectation: "stronger priors slow belief movement and convergence",
            run: run_ablation_prior_strength,
        },
        Experiment {
            id: "ablation-thompson",
            title: "Thompson sampling / deterministic Best vs paper methods",
            paper_ref: "DESIGN.md ablation (extensions)",
            expectation: "Thompson behaves like a stochastic best response",
            run: run_ablation_thompson,
        },
        Experiment {
            id: "ablation-space",
            title: "Hypothesis-space size sweep (19/38/76 FDs)",
            paper_ref: "DESIGN.md ablation (space size)",
            expectation: "larger spaces slow convergence (more parameters to pin down)",
            run: run_ablation_space,
        },
        Experiment {
            id: "ablation-k",
            title: "Examples-per-interaction sweep (k)",
            paper_ref: "DESIGN.md ablation (k)",
            expectation: "more pairs per iteration converge in fewer iterations",
            run: run_ablation_k,
        },
        Experiment {
            id: "ablation-score-basis",
            title: "Pair-local vs dataset-wide example scoring",
            paper_ref: "DESIGN.md ablation (score basis)",
            expectation: "pair-local scoring keeps US calibrated; dataset-wide scoring blunts it",
            run: run_ablation_score_basis,
        },
        Experiment {
            id: "ablation-evidence-scope",
            title: "Learner evidence scope (selected pairs / sample-wide / +memory)",
            paper_ref: "DESIGN.md ablation (evidence scope)",
            expectation: "wider evidence floors MAE lower but dilutes strategy differences",
            run: run_ablation_evidence_scope,
        },
        Experiment {
            id: "ablation-extensions",
            title: "Extension strategies (Committee, DensityUS) vs paper methods",
            paper_ref: "DESIGN.md ablation (extensions)",
            expectation: "extensions land between US and Random",
            run: run_ablation_extensions,
        },
        Experiment {
            id: "weak-strong",
            title: "Weak/strong labeler escalation (related-work extension)",
            paper_ref: "Paper SD (Zhang & Chaudhuri combination)",
            expectation: "noisier weak labelers escalate more; escalation preserves learner F1",
            run: run_weak_strong_exp,
        },
        Experiment {
            id: "fig2-participants",
            title: "Per-participant predictor comparison",
            paper_ref: "Figure 2 (participant grouping)",
            expectation: "Bayesian (FP) wins all but a couple of participants",
            run: run_fig2_participants,
        },
        Experiment {
            id: "ablation-detect-gate",
            title: "Detection indicator gate sweep (sigmoid pivot)",
            paper_ref: "DESIGN.md ablation (detector gate)",
            expectation: "lower pivots trade precision for recall; ROC AUC is threshold-free",
            run: run_ablation_detect_gate,
        },
        Experiment {
            id: "robustness",
            title: "Bootstrap CIs for the headline method differences",
            paper_ref: "Figures 1/3 (robustness check)",
            expectation: "US-Random difference flips sign between informed and uninformed priors, CIs excluding zero",
            run: run_robustness,
        },
        Experiment {
            id: "drift",
            title: "Data evolution: discounted vs plain fictitious play",
            paper_ref: "Paper S1 motivation (data evolution extension)",
            expectation: "forgetting trades accuracy on stable FDs for faster re-learning of shifted FDs",
            run: run_drift,
        },
    ]
}

/// Looks up one experiment by id.
pub fn experiment_by_id(id: &str) -> Option<Experiment> {
    all_experiments().into_iter().find(|e| e.id == id)
}

fn conv(
    opts: &RunOptions,
    dataset: DatasetName,
    degree: f64,
    trainer: PriorKind,
    learner: PriorKind,
) -> ConvergenceExperiment {
    let mut e = ConvergenceExperiment::paper(dataset, degree, trainer, learner);
    e.rows = opts.rows;
    e.runs = opts.runs;
    e.session.iterations = opts.iterations;
    if opts.quick {
        e.max_fd_attrs = 3;
        e.space_cap = 20;
    }
    e
}

fn study_cfg(opts: &RunOptions) -> StudyConfig {
    if opts.quick {
        StudyConfig {
            participants: 6,
            ht_participants: 1,
            rows: 150,
            min_iterations: 5,
            max_iterations: 7,
            seed: 7,
            ..StudyConfig::default()
        }
    } else {
        StudyConfig {
            rows: opts.rows,
            seed: 7,
            ..StudyConfig::default()
        }
    }
}

fn run_table1(_opts: &RunOptions) -> ExperimentOutput {
    let t = paper_table1();
    let fd = Fd::from_attrs([1], 2); // Team -> City
    let g = g1_of(&t, &fd);
    let mut text = String::new();
    let _ = writeln!(text, "{t}");
    let _ = writeln!(
        text,
        "g1({}) = {}/{} = {:.3}  (paper: 1/25 = 0.04)",
        fd.display(t.schema()),
        g.violating_pairs,
        t.nrows() * t.nrows(),
        g.g1()
    );
    let space = HypothesisSpace::from_fds([fd]);
    let conf = [1.0 - g.g1()];
    let raw = et_fd::DetectParams::unsmoothed();
    let (p, _) = et_fd::pair_dirty_probs_with(&t, &space, &conf, 0, 1, &raw);
    let _ = writeln!(
        text,
        "violating pair (t1, t2) dirty probability = {p:.2}  (paper Example 2: 0.96)"
    );
    ExperimentOutput {
        id: "table1",
        text,
        csv: vec![],
    }
}

fn run_table2(_opts: &RunOptions) -> ExperimentOutput {
    let rows: Vec<Vec<String>> = scenarios()
        .iter()
        .map(|s| {
            let schema = s.spec.generate(10, 0).table.schema().clone();
            vec![
                s.id.to_string(),
                s.domain.to_string(),
                schema.names().to_vec().join(", "),
                s.targets
                    .iter()
                    .map(|f| f.display(&schema))
                    .collect::<Vec<_>>()
                    .join(" ; "),
                s.alternatives
                    .iter()
                    .map(|f| f.display(&schema))
                    .collect::<Vec<_>>()
                    .join(" ; "),
                format!("{}/{}", s.ratio.0, s.ratio.1),
            ]
        })
        .collect();
    let text = render_table(
        &[
            "#",
            "Domain",
            "Attributes",
            "Target FDs",
            "Alternative FDs",
            "ratio m/n",
        ],
        &rows,
    );
    ExperimentOutput {
        id: "table2",
        text,
        csv: vec![],
    }
}

fn run_table3(opts: &RunOptions) -> ExperimentOutput {
    let cfg = study_cfg(opts);
    let mut rows = Vec::new();
    let mut csv = String::from("scenario,avg_f1_change\n");
    for s in scenarios() {
        let trajs = run_study(&s, &cfg);
        let change = average_f1_change(&trajs);
        rows.push(vec![s.id.to_string(), format!("{change:.4}")]);
        let _ = writeln!(csv, "{},{change}", s.id);
    }
    let mut text = render_table(&["Scenario #", "Average change in f1-score"], &rows);
    let _ = writeln!(
        text,
        "\nPaper reports 0.11-0.33: hypothesis revisions are real learning, not noise."
    );
    ExperimentOutput {
        id: "table3",
        text,
        csv: vec![("table3.csv".into(), csv)],
    }
}

fn mae_figure(
    id: &'static str,
    opts: &RunOptions,
    datasets: &[DatasetName],
    degree: f64,
    trainer: PriorKind,
    learner: PriorKind,
) -> ExperimentOutput {
    let mut text = String::new();
    let mut csv = Vec::new();
    for &ds in datasets {
        let e = conv(opts, ds, degree, trainer, learner);
        let runs = e.run();
        let title = format!(
            "{} deg={degree} trainer={} learner={}",
            ds.as_str(),
            trainer.label(),
            learner.label()
        );
        text.push_str(&render_curves(&title, &runs, Metric::Mae));
        text.push('\n');
        text.push_str(&render_summary(&runs, Metric::Mae, 0.10));
        text.push('\n');
        csv.push((
            format!("{id}-{}.csv", ds.as_str().to_lowercase()),
            curves_to_csv(&runs, Metric::Mae),
        ));
    }
    ExperimentOutput { id, text, csv }
}

fn run_fig1(opts: &RunOptions) -> ExperimentOutput {
    mae_figure(
        "fig1",
        opts,
        &[DatasetName::Omdb],
        0.10,
        PriorKind::Random,
        PriorKind::DataEstimate,
    )
}

fn run_fig3(opts: &RunOptions) -> ExperimentOutput {
    mae_figure(
        "fig3",
        opts,
        &[DatasetName::Omdb],
        0.10,
        PriorKind::Random,
        PriorKind::Uniform(0.9),
    )
}

fn run_fig4(opts: &RunOptions) -> ExperimentOutput {
    mae_figure(
        "fig4",
        opts,
        &DatasetName::ALL,
        0.20,
        PriorKind::Random,
        PriorKind::DataEstimate,
    )
}

fn run_fig5(opts: &RunOptions) -> ExperimentOutput {
    mae_figure(
        "fig5",
        opts,
        &DatasetName::ALL,
        0.20,
        PriorKind::Random,
        PriorKind::Uniform(0.9),
    )
}

fn run_fig6(opts: &RunOptions) -> ExperimentOutput {
    let mut text = String::new();
    let mut csv = Vec::new();
    for degree in [0.05, 0.15, 0.25] {
        let e = conv(
            opts,
            DatasetName::Omdb,
            degree,
            PriorKind::Random,
            PriorKind::Uniform(0.9),
        );
        let runs = e.run();
        text.push_str(&render_curves(
            &format!("OMDB degree~{}%", (degree * 100.0) as u32),
            &runs,
            Metric::Mae,
        ));
        text.push('\n');
        text.push_str(&render_summary(&runs, Metric::Mae, 0.10));
        text.push('\n');
        csv.push((
            format!("fig6-deg{}.csv", (degree * 100.0) as u32),
            curves_to_csv(&runs, Metric::Mae),
        ));
    }
    ExperimentOutput {
        id: "fig6",
        text,
        csv,
    }
}

fn run_fig7(opts: &RunOptions) -> ExperimentOutput {
    let mut text = String::new();
    let mut csv = Vec::new();
    for ds in [DatasetName::Omdb, DatasetName::Hospital, DatasetName::Tax] {
        let e = conv(opts, ds, 0.20, PriorKind::Random, PriorKind::Random);
        let runs = e.run();
        for metric in [Metric::F1, Metric::Precision, Metric::Recall] {
            text.push_str(&render_curves(
                &format!("{} deg=0.20 priors Random/Random", ds.as_str()),
                &runs,
                metric,
            ));
            text.push('\n');
        }
        text.push_str(&render_summary(&runs, Metric::F1, 0.5));
        text.push('\n');
        csv.push((
            format!("fig7-{}.csv", ds.as_str().to_lowercase()),
            curves_to_csv(&runs, Metric::F1),
        ));
    }
    ExperimentOutput {
        id: "fig7",
        text,
        csv,
    }
}

fn run_fig2(opts: &RunOptions) -> ExperimentOutput {
    let cfg = study_cfg(opts);
    let mut rows = Vec::new();
    let mut csv = String::from("scenario,predictor,mrr_exact,mrr_plus\n");
    for s in scenarios() {
        let trajs = run_study(&s, &cfg);
        let data = et_userstudy::study_dataset(&s, &cfg);
        let clean = data.clean_rows();
        let space = Arc::new(s.space());
        for predictor in PredictorKind::ALL {
            let r = predictor_mrr(&data.table, &space, &trajs, &clean, predictor, 5);
            rows.push(vec![
                s.id.to_string(),
                predictor.as_str().to_string(),
                format!("{:.3}", r.mrr_exact),
                format!("{:.3}", r.mrr_plus),
            ]);
            let _ = writeln!(
                csv,
                "{},{},{},{}",
                s.id,
                predictor.as_str(),
                r.mrr_exact,
                r.mrr_plus
            );
        }
    }
    let text = render_table(&["Scenario", "Model", "MRR@5", "MRR@5 (+)"], &rows);
    ExperimentOutput {
        id: "fig2",
        text,
        csv: vec![("fig2.csv".into(), csv)],
    }
}

fn run_prop1(opts: &RunOptions) -> ExperimentOutput {
    // One long game of (FP trainer, Best-response labeling) vs
    // (FP learner, Stochastic Best Response).
    let mut ds = DatasetName::Omdb.generate(opts.rows, 0x51);
    let specs = ds.exact_fds.clone();
    let inj = inject_errors(
        &mut ds.table,
        &specs,
        &[],
        &InjectConfig::with_degree(0.10, 0x52),
    );
    let pinned: Vec<Fd> = specs.iter().map(Fd::from_spec).collect();
    let space = Arc::new(HypothesisSpace::capped(
        &ds.table,
        if opts.quick { 3 } else { 4 },
        if opts.quick { 20 } else { 38 },
        (opts.rows as u64 / 12).max(5),
        &pinned,
    ));
    let prior_cfg = PriorConfig {
        strength: 0.3,
        ..PriorConfig::default()
    };
    let trainer_prior = build_prior(
        &PriorSpec::Random { seed: 1 },
        &prior_cfg,
        &space,
        &ds.table,
    );
    let learner_prior = build_prior(&PriorSpec::DataEstimate, &prior_cfg, &space, &ds.table);
    let mut trainer = FpTrainer::new(trainer_prior, EvidenceConfig::default());
    let mut learner = Learner::new(
        learner_prior,
        ResponseStrategy::paper(StrategyKind::StochasticBestResponse),
        EvidenceConfig::default(),
        5,
    );
    let cfg = SessionConfig {
        iterations: opts.iterations.max(120),
        // Posterior drift decays like 1/t; ε-stability at this horizon.
        eps_drift: 0.015,
        stability_window: 8,
        seed: 3,
        ..SessionConfig::default()
    };
    let result = run_session(
        &ds.table,
        space,
        &inj.dirty_rows,
        cfg,
        &mut trainer,
        &mut learner,
    );
    let c = &result.convergence;
    let mut text = String::new();
    let _ = writeln!(text, "iterations executed: {}", result.metrics.len());
    let _ = writeln!(text, "converged at:        {:?}", c.converged_at);
    let _ = writeln!(text, "final MAE:           {:.4}", c.final_mae);
    let _ = writeln!(text, "tail belief drift:   {:.5}", c.tail_drift);
    let _ = writeln!(text, "tail |dPhi| (labels): {:.5}", c.tail_phi_change);
    let _ = writeln!(
        text,
        "first-iteration MAE: {:.4}",
        result.metrics.first().map_or(f64::NAN, |m| m.mae)
    );
    let mut csv = String::from("iter,mae,trainer_drift,learner_drift,phi_dirty,agreement\n");
    for m in &result.metrics {
        let _ = writeln!(
            csv,
            "{},{},{},{},{},{}",
            m.t, m.mae, m.trainer_drift, m.learner_drift, m.phi_dirty, m.agreement
        );
    }
    ExperimentOutput {
        id: "prop1",
        text,
        csv: vec![("prop1.csv".into(), csv)],
    }
}

fn run_ablation_gamma(opts: &RunOptions) -> ExperimentOutput {
    let mut rows = Vec::new();
    for kind in [
        StrategyKind::StochasticBestResponse,
        StrategyKind::StochasticUncertainty,
    ] {
        for gamma in [0.05, 0.5, 2.0, 8.0] {
            let mut e = conv(
                opts,
                DatasetName::Omdb,
                0.10,
                PriorKind::Random,
                PriorKind::DataEstimate,
            );
            e.methods = vec![kind];
            e.gamma = gamma;
            let r = &e.run()[0];
            rows.push(vec![
                kind.as_str().to_string(),
                format!("{gamma}"),
                format!("{:.4}", r.mae.last_mean()),
                format!("{:.3}", et_metrics::auc(&r.mae.mean)),
            ]);
        }
    }
    ExperimentOutput {
        id: "ablation-gamma",
        text: render_table(&["method", "gamma", "final MAE", "MAE AUC"], &rows),
        csv: vec![],
    }
}

fn run_ablation_prior_strength(opts: &RunOptions) -> ExperimentOutput {
    let mut rows = Vec::new();
    for strength in [0.1, 0.3, 1.0, 3.0] {
        let mut e = conv(
            opts,
            DatasetName::Omdb,
            0.10,
            PriorKind::Random,
            PriorKind::DataEstimate,
        );
        e.methods = vec![StrategyKind::StochasticBestResponse];
        e.prior_cfg.strength = strength;
        let r = &e.run()[0];
        rows.push(vec![
            format!("{strength}"),
            format!("{:.4}", r.mae.mean[0]),
            format!("{:.4}", r.mae.last_mean()),
        ]);
    }
    ExperimentOutput {
        id: "ablation-prior-strength",
        text: render_table(&["prior strength", "initial MAE", "final MAE"], &rows),
        csv: vec![],
    }
}

fn run_ablation_thompson(opts: &RunOptions) -> ExperimentOutput {
    let mut e = conv(
        opts,
        DatasetName::Omdb,
        0.10,
        PriorKind::Random,
        PriorKind::DataEstimate,
    );
    e.methods = vec![
        StrategyKind::Best,
        StrategyKind::StochasticBestResponse,
        StrategyKind::ThompsonSampling,
        StrategyKind::UncertaintySampling,
    ];
    let runs = e.run();
    let mut text = render_curves("Thompson ablation (OMDB)", &runs, Metric::Mae);
    text.push('\n');
    text.push_str(&render_summary(&runs, Metric::Mae, 0.10));
    ExperimentOutput {
        id: "ablation-thompson",
        text,
        csv: vec![(
            "ablation-thompson.csv".into(),
            curves_to_csv(&runs, Metric::Mae),
        )],
    }
}

fn run_ablation_space(opts: &RunOptions) -> ExperimentOutput {
    let mut rows = Vec::new();
    for cap in [19, 38, 76] {
        let mut e = conv(
            opts,
            DatasetName::Omdb,
            0.10,
            PriorKind::Random,
            PriorKind::DataEstimate,
        );
        e.methods = vec![StrategyKind::StochasticBestResponse];
        e.space_cap = cap;
        let r = &e.run()[0];
        rows.push(vec![
            cap.to_string(),
            format!("{:.4}", r.mae.mean[0]),
            format!("{:.4}", r.mae.last_mean()),
        ]);
    }
    ExperimentOutput {
        id: "ablation-space",
        text: render_table(&["|space|", "initial MAE", "final MAE"], &rows),
        csv: vec![],
    }
}

fn run_ablation_k(opts: &RunOptions) -> ExperimentOutput {
    let mut rows = Vec::new();
    for k in [2usize, 5, 10] {
        let mut e = conv(
            opts,
            DatasetName::Omdb,
            0.10,
            PriorKind::Random,
            PriorKind::DataEstimate,
        );
        e.methods = vec![StrategyKind::StochasticBestResponse];
        e.session.pairs_per_iteration = k;
        let r = &e.run()[0];
        let reach = et_metrics::iterations_to_threshold(&r.mae.mean, 0.10)
            .map(|t| t.to_string())
            .unwrap_or_else(|| "-".into());
        rows.push(vec![
            k.to_string(),
            format!("{:.4}", r.mae.last_mean()),
            reach,
        ]);
    }
    ExperimentOutput {
        id: "ablation-k",
        text: render_table(&["pairs/iter", "final MAE", "iters to MAE<=0.10"], &rows),
        csv: vec![],
    }
}

fn run_ablation_score_basis(opts: &RunOptions) -> ExperimentOutput {
    let mut rows = Vec::new();
    for (label, basis) in [
        ("pair-local", et_core::ScoreBasis::PairLocal),
        ("dataset-wide", et_core::ScoreBasis::DatasetTuple),
    ] {
        for (plabel, lp) in [
            ("Data-estimate", PriorKind::DataEstimate),
            ("Uniform-0.9", PriorKind::Uniform(0.9)),
        ] {
            let mut e = conv(opts, DatasetName::Omdb, 0.10, PriorKind::Random, lp);
            e.score_basis = basis;
            let runs = e.run();
            for m in runs {
                rows.push(vec![
                    label.to_string(),
                    plabel.to_string(),
                    m.kind.as_str().to_string(),
                    format!("{:.4}", m.mae.last_mean()),
                ]);
            }
        }
    }
    ExperimentOutput {
        id: "ablation-score-basis",
        text: render_table(&["basis", "learner prior", "method", "final MAE"], &rows),
        csv: vec![],
    }
}

fn run_ablation_evidence_scope(opts: &RunOptions) -> ExperimentOutput {
    use et_core::EvidenceScope;
    let mut rows = Vec::new();
    for (label, scope) in [
        ("selected-pairs", EvidenceScope::SelectedPairs),
        ("sample-wide", EvidenceScope::SampleWide),
        ("sample+memory", EvidenceScope::SampleWideWithMemory),
    ] {
        let mut e = conv(
            opts,
            DatasetName::Omdb,
            0.10,
            PriorKind::Random,
            PriorKind::DataEstimate,
        );
        e.evidence_scope = scope;
        let runs = e.run();
        let spread = {
            let finals: Vec<f64> = runs.iter().map(|m| m.mae.last_mean()).collect();
            finals.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - finals.iter().cloned().fold(f64::INFINITY, f64::min)
        };
        for m in &runs {
            rows.push(vec![
                label.to_string(),
                m.kind.as_str().to_string(),
                format!("{:.4}", m.mae.last_mean()),
                format!("{spread:.4}"),
            ]);
        }
    }
    ExperimentOutput {
        id: "ablation-evidence-scope",
        text: render_table(
            &["evidence scope", "method", "final MAE", "method spread"],
            &rows,
        ),
        csv: vec![],
    }
}

fn run_ablation_extensions(opts: &RunOptions) -> ExperimentOutput {
    let mut e = conv(
        opts,
        DatasetName::Omdb,
        0.10,
        PriorKind::Random,
        PriorKind::DataEstimate,
    );
    e.methods = vec![
        StrategyKind::Random,
        StrategyKind::UncertaintySampling,
        StrategyKind::StochasticBestResponse,
        StrategyKind::CommitteeDisagreement,
        StrategyKind::DensityWeightedUncertainty,
    ];
    let runs = e.run();
    let mut text = render_curves("extension strategies (OMDB)", &runs, Metric::Mae);
    text.push('\n');
    text.push_str(&render_summary(&runs, Metric::Mae, 0.10));
    ExperimentOutput {
        id: "ablation-extensions",
        text,
        csv: vec![(
            "ablation-extensions.csv".into(),
            curves_to_csv(&runs, Metric::Mae),
        )],
    }
}

fn run_weak_strong_exp(opts: &RunOptions) -> ExperimentOutput {
    use et_core::trainer::{NoisyTrainer, OracleTrainer};
    use et_core::{run_weak_strong, Learner, WeakStrongConfig};

    let mut ds = DatasetName::Omdb.generate(opts.rows, 0x77);
    let specs = ds.exact_fds.clone();
    let inj = inject_errors(
        &mut ds.table,
        &specs,
        &[],
        &InjectConfig::with_degree(0.12, 0x78),
    );
    let pinned: Vec<Fd> = specs.iter().map(Fd::from_spec).collect();
    let space = Arc::new(HypothesisSpace::capped(
        &ds.table,
        if opts.quick { 3 } else { 4 },
        if opts.quick { 20 } else { 38 },
        (opts.rows as u64 / 12).max(5),
        &pinned,
    ));
    let oracle_conf: Vec<f64> = space
        .fds()
        .iter()
        .map(|fd| if pinned.contains(fd) { 0.98 } else { 0.05 })
        .collect();
    let prior_cfg = PriorConfig {
        strength: 0.3,
        ..PriorConfig::default()
    };
    let mut rows = Vec::new();
    for flip in [0.0, 0.2, 0.4] {
        let mut weak = NoisyTrainer::new(
            OracleTrainer::new(inj.dirty_rows.clone(), oracle_conf.clone()),
            flip,
            5,
        );
        let mut strong = OracleTrainer::new(inj.dirty_rows.clone(), oracle_conf.clone());
        let learner_prior = build_prior(&PriorSpec::DataEstimate, &prior_cfg, &space, &ds.table);
        let mut learner = Learner::new(
            learner_prior,
            ResponseStrategy::paper(StrategyKind::StochasticBestResponse),
            EvidenceConfig::default(),
            9,
        );
        let r = run_weak_strong(
            &ds.table,
            space.clone(),
            &inj.dirty_rows,
            &mut weak,
            &mut strong,
            &mut learner,
            &WeakStrongConfig {
                iterations: opts.iterations,
                seed: 3,
                ..WeakStrongConfig::default()
            },
        );
        let final_f1 = r.iterations.last().map_or(0.0, |i| i.learner_f1);
        rows.push(vec![
            format!("{flip:.1}"),
            format!("{:.2}", r.escalation_rate()),
            format!("{:.3}", final_f1),
        ]);
    }
    ExperimentOutput {
        id: "weak-strong",
        text: render_table(
            &["weak flip prob", "escalation rate", "final learner F1"],
            &rows,
        ),
        csv: vec![],
    }
}

fn run_fig2_participants(opts: &RunOptions) -> ExperimentOutput {
    use et_userstudy::{per_participant_mrr, predictor_win_counts};
    let cfg = study_cfg(opts);
    let mut rows = Vec::new();
    let mut total_bayes = 0;
    let mut total = 0;
    for s in scenarios() {
        let trajs = run_study(&s, &cfg);
        let data = et_userstudy::study_dataset(&s, &cfg);
        let clean = data.clean_rows();
        let space = Arc::new(s.space());
        let per = per_participant_mrr(&data.table, &space, &trajs, &clean, 5);
        let (bayes, ht) = predictor_win_counts(&per);
        total_bayes += bayes;
        total += per.len();
        rows.push(vec![s.id.to_string(), bayes.to_string(), ht.to_string()]);
    }
    let mut text = render_table(
        &["scenario", "Bayesian wins (participants)", "HT wins"],
        &rows,
    );
    let _ = writeln!(
        text,
        "\noverall: Bayesian models {total_bayes}/{total} participant-scenarios best \
         (paper: all participants but two)"
    );
    ExperimentOutput {
        id: "fig2-participants",
        text,
        csv: vec![],
    }
}

/// The paper's introduction motivates annotators who must "refresh their
/// knowledge about the data ... due to rapid and frequent data evolution".
/// This experiment injects a *second* wave of errors against a different FD
/// halfway through the session and compares a plain FP annotator against a
/// discounted-FP annotator (geometric forgetting) on how quickly each
/// re-learns the post-shift world.
fn run_drift(opts: &RunOptions) -> ExperimentOutput {
    use et_core::trainer::Trainer;
    use et_core::{sample_rows, CandidatePool, Learner, ScoreCtx};
    use et_fd::{PartitionCache, RelationMatrix, ViolationIndex};

    /// The round-invariant relation matrix of one table phase's pool.
    fn pool_matrix(
        table: &et_data::Table,
        space: &HypothesisSpace,
        cache: &PartitionCache,
        pool: &CandidatePool,
    ) -> RelationMatrix {
        let pairs: Vec<(usize, usize)> = pool.pairs().iter().map(|p| (p.a, p.b)).collect();
        RelationMatrix::build(table, space, cache, &pairs)
    }

    let iterations = opts.iterations.max(45);
    let shift_at = iterations / 3;
    let mut rows = Vec::new();

    for (label, discount) in [("plain FP", None), ("discounted FP (0.9)", Some(0.9))] {
        // Phase-1 world: errors on the first ground-truth FD only.
        let mut ds = DatasetName::Omdb.generate(opts.rows, 0x99);
        let specs = ds.exact_fds.clone();
        // Generated omdb always carries FDs; skip the scenario if a future
        // generator variant produces none.
        let Some((first, rest)) = specs.split_first() else {
            continue;
        };
        let _ = inject_errors(
            &mut ds.table,
            std::slice::from_ref(first),
            &[],
            &InjectConfig::with_degree(0.15, 0x9A),
        );
        let pinned: Vec<Fd> = specs.iter().map(Fd::from_spec).collect();
        let space = Arc::new(HypothesisSpace::capped(
            &ds.table,
            if opts.quick { 3 } else { 4 },
            if opts.quick { 20 } else { 38 },
            (opts.rows as u64 / 12).max(5),
            &pinned,
        ));
        let prior_cfg = PriorConfig {
            strength: 0.3,
            ..PriorConfig::default()
        };
        let trainer_prior = build_prior(&PriorSpec::DataEstimate, &prior_cfg, &space, &ds.table);
        let mut trainer = FpTrainer::new(trainer_prior, EvidenceConfig::default());
        if let Some(lambda) = discount {
            trainer = trainer.with_discount(lambda);
        }
        let learner_prior = build_prior(&PriorSpec::DataEstimate, &prior_cfg, &space, &ds.table);
        let mut learner = Learner::new(
            learner_prior,
            ResponseStrategy::paper(StrategyKind::StochasticBestResponse),
            EvidenceConfig::default(),
            0x9B,
        );

        // Hand-rolled loop so the table can mutate mid-session. Each table
        // phase shares one partition cache: the index build warms it, the
        // trainer's per-round sample labeling restricts it.
        let mut table = ds.table.clone();
        let mut cache = Arc::new(PartitionCache::new(&table));
        let mut pool = CandidatePool::build_with(&table, &space, &cache, 4000, 1);
        let mut matrix = pool_matrix(&table, &space, &cache, &pool);
        let mut index = ViolationIndex::build_with(&table, &space, &cache);
        let mut trainer = trainer.with_cache(Arc::clone(&cache));
        let mut pre_shift_mae = 0.0;
        let mut post_shift_mae = 0.0;
        for t in 0..iterations {
            if t == shift_at {
                // The world changes wholesale: a freshly generated table
                // (old violations repaired) with a heavy error wave against
                // a *different* ground-truth FD — the evidence the annotator
                // accumulated about phase 1 is now stale. The partition
                // cache is bound to the old table, so it is replaced too.
                let mut ds2 = DatasetName::Omdb.generate(opts.rows, 0x99);
                let _ = inject_errors(
                    &mut ds2.table,
                    &[rest[0].clone()],
                    &[],
                    &InjectConfig::with_degree(0.45, 0x9C),
                );
                table = ds2.table;
                cache = Arc::new(PartitionCache::new(&table));
                pool = CandidatePool::build_with(&table, &space, &cache, 4000, 2);
                matrix = pool_matrix(&table, &space, &cache, &pool);
                index = ViolationIndex::build_with(&table, &space, &cache);
                trainer = trainer.with_cache(Arc::clone(&cache));
            }
            let ctx = ScoreCtx::new(&table)
                .with_index(&index)
                .with_matrix(&matrix);
            let pairs = learner.select(ctx, &pool, 5);
            if pairs.is_empty() {
                break;
            }
            let sample = sample_rows(&pairs, table.nrows());
            let labels = trainer.respond(&table, &sample);
            learner.absorb_interaction(&table, &pairs, &sample, &labels);
            let mae = et_core::session::mae(&trainer.confidences(), &learner.confidences());
            if t == shift_at.saturating_sub(1) {
                pre_shift_mae = mae;
            }
            if t == iterations - 1 {
                post_shift_mae = mae;
            }
        }

        // How well does the trainer's final belief reflect the post-shift
        // world? Split the gap between the FDs whose violation rate actually
        // shifted and the stable remainder: forgetting should pay on the
        // former and cost variance on the latter.
        let world_pre =
            build_prior(&PriorSpec::DataEstimate, &prior_cfg, &space, &ds.table).confidences();
        let world_post =
            build_prior(&PriorSpec::DataEstimate, &prior_cfg, &space, &table).confidences();
        let tc = trainer.confidences();
        let (mut shifted_gap, mut shifted_n) = (0.0, 0usize);
        let (mut stable_gap, mut stable_n) = (0.0, 0usize);
        for i in 0..space.len() {
            let gap = (tc[i] - world_post[i]).abs();
            if (world_pre[i] - world_post[i]).abs() > 0.05 {
                shifted_gap += gap;
                shifted_n += 1;
            } else {
                stable_gap += gap;
                stable_n += 1;
            }
        }
        let shifted = shifted_gap / shifted_n.max(1) as f64;
        let stable = stable_gap / stable_n.max(1) as f64;
        rows.push(vec![
            label.to_string(),
            format!("{pre_shift_mae:.4}"),
            format!("{post_shift_mae:.4}"),
            format!("{shifted:.4} ({shifted_n} FDs)"),
            format!("{stable:.4} ({stable_n} FDs)"),
        ]);
    }
    ExperimentOutput {
        id: "drift",
        text: render_table(
            &[
                "trainer",
                "MAE before shift",
                "MAE at end",
                "gap on shifted FDs",
                "gap on stable FDs",
            ],
            &rows,
        ),
        csv: vec![],
    }
}

/// Sweeps the sigmoid pivot of the noisy-OR detector (DESIGN.md decision 3)
/// on a fixed trained belief and reports the precision/recall/F1 trade-off
/// plus the threshold-free ROC AUC (which the gate cannot change much —
/// it is monotone in the scores).
fn run_ablation_detect_gate(opts: &RunOptions) -> ExperimentOutput {
    use et_core::Learner;
    use et_fd::{DetectParams, Indicator, ViolationIndex};
    use et_metrics::{roc_auc, ConfusionMatrix};

    let mut ds = DatasetName::Omdb.generate(opts.rows, 0xAB);
    let specs = ds.exact_fds.clone();
    let inj = inject_errors(
        &mut ds.table,
        &specs,
        &[],
        &InjectConfig::with_degree(0.15, 0xAC),
    );
    let pinned: Vec<Fd> = specs.iter().map(Fd::from_spec).collect();
    let space = Arc::new(HypothesisSpace::capped(
        &ds.table,
        if opts.quick { 3 } else { 4 },
        if opts.quick { 20 } else { 38 },
        (opts.rows as u64 / 12).max(5),
        &pinned,
    ));
    let prior_cfg = PriorConfig {
        strength: 0.3,
        ..PriorConfig::default()
    };
    // Train one learner to get a realistic belief.
    let mut trainer = FpTrainer::new(
        build_prior(
            &PriorSpec::Random { seed: 1 },
            &prior_cfg,
            &space,
            &ds.table,
        ),
        EvidenceConfig::default(),
    );
    let mut learner = Learner::new(
        build_prior(&PriorSpec::DataEstimate, &prior_cfg, &space, &ds.table),
        ResponseStrategy::paper(StrategyKind::StochasticBestResponse),
        EvidenceConfig::default(),
        2,
    );
    let result = run_session(
        &ds.table,
        space.clone(),
        &inj.dirty_rows,
        SessionConfig {
            iterations: opts.iterations,
            seed: 3,
            ..SessionConfig::default()
        },
        &mut trainer,
        &mut learner,
    );
    let conf = result.learner_confidences;
    let index = ViolationIndex::build(&ds.table, &space);
    let all_rows: Vec<usize> = (0..ds.table.nrows()).collect();
    let mut rows = Vec::new();
    for pivot in [0.70, 0.80, 0.85, 0.90, 0.95] {
        let params = DetectParams {
            base_rate: 0.1,
            indicator: Indicator::Sigmoid { pivot, slope: 0.04 },
        };
        let predicted: Vec<bool> = all_rows
            .iter()
            .map(|&r| et_fd::tuple_dirty_prob_with(&index, &conf, r, &params) > 0.5)
            .collect();
        let m = ConfusionMatrix::from_predictions(&predicted, &inj.dirty_rows);
        let scores: Vec<f64> = all_rows
            .iter()
            .map(|&r| et_fd::tuple_dirty_prob_with(&index, &conf, r, &params))
            .collect();
        let auc = roc_auc(&scores, &inj.dirty_rows);
        rows.push(vec![
            format!("{pivot:.2}"),
            format!("{:.3}", m.precision()),
            format!("{:.3}", m.recall()),
            format!("{:.3}", m.f1()),
            format!("{auc:.3}"),
        ]);
    }
    ExperimentOutput {
        id: "ablation-detect-gate",
        text: render_table(&["pivot", "precision", "recall", "F1", "ROC AUC"], &rows),
        csv: vec![],
    }
}

/// Robustness of the headline claims: across many seeds, bootstrap the mean
/// final-MAE *differences* between methods (paired per seed) and report 95%
/// CIs, plus the Kendall correlation of the per-seed method rankings.
fn run_robustness(opts: &RunOptions) -> ExperimentOutput {
    use et_metrics::{bootstrap_mean_ci, kendall_tau};

    let runs = (opts.runs * 2).max(8);
    let mut text = String::new();
    for (label, learner_prior) in [
        (
            "informed (Data-estimate, Figure 1)",
            PriorKind::DataEstimate,
        ),
        (
            "uninformed (Uniform-0.9, Figure 3)",
            PriorKind::Uniform(0.9),
        ),
    ] {
        let mut e = conv(
            opts,
            DatasetName::Omdb,
            0.10,
            PriorKind::Random,
            learner_prior,
        );
        e.runs = 1;
        e.methods = StrategyKind::PAPER_METHODS.to_vec();
        // One experiment per seed so differences are paired.
        let mut finals: Vec<Vec<f64>> = vec![Vec::new(); e.methods.len()];
        for r in 0..runs {
            e.seed = 0xE7u64.wrapping_add(r as u64 * 7919);
            for (mi, m) in e.run().into_iter().enumerate() {
                finals[mi].push(m.mae.last_mean());
            }
        }
        let _ = writeln!(text, "--- {label}, {runs} seeds ---");
        // `methods` is assigned PAPER_METHODS above, so the lookup cannot
        // miss (vetted in et-lint.toml).
        #[allow(clippy::expect_used)]
        let idx = |k: StrategyKind| {
            e.methods
                .iter()
                .position(|&m| m == k)
                .expect("method present")
        };
        let pairs = [
            (
                "Random - US",
                idx(StrategyKind::Random),
                idx(StrategyKind::UncertaintySampling),
            ),
            (
                "Random - StochasticBR",
                idx(StrategyKind::Random),
                idx(StrategyKind::StochasticBestResponse),
            ),
            (
                "US - StochasticBR",
                idx(StrategyKind::UncertaintySampling),
                idx(StrategyKind::StochasticBestResponse),
            ),
        ];
        for (name, a, b) in pairs {
            let diffs: Vec<f64> = finals[a]
                .iter()
                .zip(&finals[b])
                .map(|(x, y)| x - y)
                .collect();
            let ci = bootstrap_mean_ci(&diffs, 0.95, 2000, 11);
            let sig = if ci.lo > 0.0 || ci.hi < 0.0 {
                "  *"
            } else {
                ""
            };
            let _ = writeln!(
                text,
                "{name:<24} mean {:+.4}  95% CI [{:+.4}, {:+.4}]{sig}",
                ci.mean, ci.lo, ci.hi
            );
        }
        // Ranking stability: Kendall tau between each seed's method
        // ordering and the mean ordering.
        let means: Vec<f64> = finals
            .iter()
            .map(|v| v.iter().sum::<f64>() / v.len() as f64)
            .collect();
        let mut taus = Vec::new();
        for r in 0..runs {
            let per_seed: Vec<f64> = finals.iter().map(|v| v[r]).collect();
            taus.push(kendall_tau(&per_seed, &means));
        }
        let mean_tau = taus.iter().sum::<f64>() / taus.len() as f64;
        let _ = writeln!(
            text,
            "per-seed ranking vs mean ranking: Kendall tau = {mean_tau:.2}\n"
        );
    }
    text.push_str("* = the 95% CI excludes zero (a robust ordering)\n");
    ExperimentOutput {
        id: "robustness",
        text,
        csv: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_unique_and_lookup_works() {
        let all = all_experiments();
        assert!(all.len() >= 15);
        for e in &all {
            let found = experiment_by_id(e.id).expect("lookup");
            assert_eq!(found.title, e.title);
        }
        let mut ids: Vec<&str> = all.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), all.len(), "duplicate experiment ids");
        assert!(experiment_by_id("nope").is_none());
    }

    #[test]
    fn table1_reproduces_paper_numbers() {
        let out = run_table1(&RunOptions::quick());
        assert!(out.text.contains("0.040"), "{}", out.text);
        assert!(out.text.contains("0.96"), "{}", out.text);
    }

    #[test]
    fn table2_lists_five_scenarios() {
        let out = run_table2(&RunOptions::quick());
        assert_eq!(out.text.matches("Airport").count(), 3);
        assert_eq!(out.text.matches("OMDB").count(), 2);
    }

    #[test]
    fn fig1_quick_produces_curves_and_csv() {
        let out = run_fig1(&RunOptions::quick());
        assert!(out.text.contains("StochasticBR"));
        assert_eq!(out.csv.len(), 1);
        assert!(out.csv[0].1.lines().count() > 10);
    }

    #[test]
    fn prop1_quick_reports_convergence_fields() {
        let out = run_prop1(&RunOptions::quick());
        assert!(out.text.contains("final MAE"));
        assert!(out.text.contains("tail belief drift"));
    }
}
