//! Rendering: ASCII tables and CSV for curve families and summaries.

use std::fmt::Write as _;

use et_metrics::{auc, iterations_to_threshold, SeriesStats};

use crate::convergence::MethodRun;

/// Which per-iteration curve of a [`MethodRun`] to render.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// MAE between trainer and learner models.
    Mae,
    /// Learner F1 on the held-out test set.
    F1,
    /// Learner precision.
    Precision,
    /// Learner recall.
    Recall,
}

impl Metric {
    fn series<'a>(&self, m: &'a MethodRun) -> &'a SeriesStats {
        match self {
            Metric::Mae => &m.mae,
            Metric::F1 => &m.f1,
            Metric::Precision => &m.precision,
            Metric::Recall => &m.recall,
        }
    }

    fn name(&self) -> &'static str {
        match self {
            Metric::Mae => "MAE",
            Metric::F1 => "F1",
            Metric::Precision => "Precision",
            Metric::Recall => "Recall",
        }
    }
}

/// Renders one curve family as an ASCII table: one row per iteration, one
/// column per method (mean ± std).
pub fn render_curves(title: &str, methods: &[MethodRun], metric: Metric) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} [{}] ==", metric.name());
    let _ = write!(out, "{:>5}", "iter");
    for m in methods {
        let _ = write!(out, "  {:>16}", m.kind.as_str());
    }
    out.push('\n');
    let len = methods
        .iter()
        .map(|m| metric.series(m).len())
        .min()
        .unwrap_or(0);
    for t in 0..len {
        let _ = write!(out, "{t:>5}");
        for m in methods {
            let s = metric.series(m);
            let _ = write!(out, "  {:>8.4}±{:<7.4}", s.mean[t], s.std[t]);
        }
        out.push('\n');
    }
    out
}

/// Summary lines per method: final value, curve AUC, iterations to reach
/// `threshold` (for MAE curves: lower is better everywhere), and the
/// threshold-free detector ROC AUC at the end of the session.
pub fn render_summary(methods: &[MethodRun], metric: Metric, threshold: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:>10} {:>10} {:>16} {:>14}",
        "method",
        "final",
        "AUC",
        format!("iters to {threshold}"),
        "detector ROC"
    );
    for m in methods {
        let s = metric.series(m);
        let reach = iterations_to_threshold(&s.mean, threshold)
            .map(|t| t.to_string())
            .unwrap_or_else(|| "-".into());
        let _ = writeln!(
            out,
            "{:<16} {:>10.4} {:>10.3} {:>16} {:>14.3}  {}",
            m.kind.as_str(),
            s.mean.last().copied().unwrap_or(f64::NAN),
            auc(&s.mean),
            reach,
            m.final_auc,
            sparkline(&s.mean)
        );
    }
    out
}

/// A unicode sparkline of a series (block characters, min–max scaled).
/// Flat series render as a run of middle blocks.
pub fn sparkline(series: &[f64]) -> String {
    const BLOCKS: [char; 8] = [
        '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}',
        '\u{2588}',
    ];
    if series.is_empty() {
        return String::new();
    }
    let lo = series.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = series.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = hi - lo;
    series
        .iter()
        .map(|&v| {
            if span <= f64::EPSILON {
                BLOCKS[3]
            } else {
                let idx = ((v - lo) / span * 7.0).round() as usize;
                BLOCKS[idx.min(7)]
            }
        })
        .collect()
}

/// CSV of one curve family: `iter,method,mean,std`.
pub fn curves_to_csv(methods: &[MethodRun], metric: Metric) -> String {
    let mut out = String::from("iter,method,mean,std\n");
    for m in methods {
        let s = metric.series(m);
        for t in 0..s.len() {
            let _ = writeln!(out, "{t},{},{},{}", m.kind.as_str(), s.mean[t], s.std[t]);
        }
    }
    out
}

/// A minimal generic ASCII table.
///
/// # Panics
/// Panics when a row's width differs from the header count.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(out, "| {h:<w$} ");
    }
    out.push_str("|\n");
    for w in &widths {
        let _ = write!(out, "|{:-<width$}", "", width = w + 2);
    }
    out.push_str("|\n");
    for row in rows {
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(out, "| {cell:<w$} ");
        }
        out.push_str("|\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use et_core::StrategyKind;
    use et_metrics::aggregate;

    fn fake_methods() -> Vec<MethodRun> {
        let mk = |vals: Vec<f64>| aggregate(&[vals]);
        vec![
            MethodRun {
                kind: StrategyKind::Random,
                mae: mk(vec![0.4, 0.3, 0.2]),
                f1: mk(vec![0.5, 0.6, 0.7]),
                precision: mk(vec![0.5, 0.6, 0.7]),
                recall: mk(vec![0.5, 0.6, 0.7]),
                final_auc: 0.7,
            },
            MethodRun {
                kind: StrategyKind::UncertaintySampling,
                mae: mk(vec![0.4, 0.2, 0.1]),
                f1: mk(vec![0.5, 0.7, 0.8]),
                precision: mk(vec![0.5, 0.7, 0.8]),
                recall: mk(vec![0.5, 0.7, 0.8]),
                final_auc: 0.8,
            },
        ]
    }

    #[test]
    fn curves_render_all_iterations() {
        let s = render_curves("demo", &fake_methods(), Metric::Mae);
        assert!(s.contains("Random"));
        assert!(s.contains("US"));
        assert_eq!(s.lines().count(), 2 + 3);
    }

    #[test]
    fn summary_reports_threshold_crossing() {
        let s = render_summary(&fake_methods(), Metric::Mae, 0.25);
        let us_line = s.lines().find(|l| l.starts_with("US")).unwrap();
        assert!(
            us_line.contains(" 1"),
            "US reaches 0.25 at iter 1: {us_line}"
        );
    }

    #[test]
    fn csv_shape() {
        let csv = curves_to_csv(&fake_methods(), Metric::F1);
        assert_eq!(csv.lines().count(), 1 + 6);
        assert!(csv.starts_with("iter,method,mean,std"));
        assert!(csv.contains("0,Random,0.5,0"));
    }

    #[test]
    fn generic_table_alignment() {
        let t = render_table(
            &["a", "long-header"],
            &[
                vec!["1".into(), "2".into()],
                vec!["xx".into(), "yyy".into()],
            ],
        );
        assert_eq!(t.lines().count(), 4);
        for line in t.lines() {
            assert!(line.starts_with('|') && line.ends_with('|'));
        }
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let _ = render_table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn sparkline_shapes() {
        assert_eq!(sparkline(&[]), "");
        // Monotone fall renders high-to-low blocks.
        let fall = sparkline(&[1.0, 0.5, 0.0]);
        let chars: Vec<char> = fall.chars().collect();
        assert_eq!(chars.len(), 3);
        assert!(chars[0] > chars[2], "{fall}");
        // Flat series render uniformly.
        let flat = sparkline(&[0.3, 0.3, 0.3]);
        let set: std::collections::HashSet<char> = flat.chars().collect();
        assert_eq!(set.len(), 1);
    }
}
