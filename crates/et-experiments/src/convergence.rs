//! The shared engine for the empirical-study experiments (Appendix C).
//!
//! One [`ConvergenceExperiment`] fixes a dataset, a violation degree, a
//! trainer prior and a learner prior; running it executes every requested
//! sampling method over `runs` seeds and aggregates per-iteration MAE and
//! F1 curves — the raw material of Figures 1 and 3–7.

use std::sync::Arc;

use et_belief::{build_prior, EvidenceConfig, PriorConfig, PriorSpec};
use et_core::trainer::FpTrainer;
use et_core::{run_session, Learner, ResponseStrategy, SessionConfig, SessionResult, StrategyKind};
use et_data::gen::DatasetName;
use et_data::{inject_errors, InjectConfig};
use et_fd::{Fd, HypothesisSpace};
use et_metrics::{aggregate, SeriesStats};

/// The prior families of the empirical study, instantiated per run seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PriorKind {
    /// Every FD at confidence `d` (the study uses Uniform-0.9).
    Uniform(f64),
    /// Per-FD confidence drawn uniformly at random.
    Random,
    /// Confidence = 1 − violation rate on the unlabeled (dirty) data.
    DataEstimate,
}

impl PriorKind {
    /// The concrete prior spec for one run.
    pub fn spec(&self, seed: u64) -> PriorSpec {
        match self {
            PriorKind::Uniform(d) => PriorSpec::Uniform { d: *d },
            PriorKind::Random => PriorSpec::Random { seed },
            PriorKind::DataEstimate => PriorSpec::DataEstimate,
        }
    }

    /// Display label matching the paper.
    pub fn label(&self) -> String {
        match self {
            PriorKind::Uniform(d) => format!("Uniform-{d}"),
            PriorKind::Random => "Random".into(),
            PriorKind::DataEstimate => "Data-estimate".into(),
        }
    }
}

/// Aggregated curves for one sampling method.
#[derive(Debug, Clone)]
pub struct MethodRun {
    /// The sampling method.
    pub kind: StrategyKind,
    /// MAE(trainer, learner) per iteration, mean ± std over runs.
    pub mae: SeriesStats,
    /// Learner F1 on the held-out test set per iteration.
    pub f1: SeriesStats,
    /// Learner precision per iteration.
    pub precision: SeriesStats,
    /// Learner recall per iteration.
    pub recall: SeriesStats,
    /// Threshold-free detector quality at the end of each run: ROC AUC of
    /// the learner's final dirty scores on the held-out test set, mean over
    /// runs.
    pub final_auc: f64,
}

/// One empirical-study experiment configuration.
#[derive(Debug, Clone)]
pub struct ConvergenceExperiment {
    /// Which dataset to generate.
    pub dataset: DatasetName,
    /// Rows generated.
    pub rows: usize,
    /// Requested degree of violation.
    pub degree: f64,
    /// Trainer prior family.
    pub trainer_prior: PriorKind,
    /// Learner prior family.
    pub learner_prior: PriorKind,
    /// Sampling methods to compare.
    pub methods: Vec<StrategyKind>,
    /// Number of independent runs (seeds) to average.
    pub runs: usize,
    /// Session shape (iterations, pairs per iteration, …).
    pub session: SessionConfig,
    /// Hypothesis-space size (paper: 38 FDs).
    pub space_cap: usize,
    /// Maximum attributes per FD (paper: 4).
    pub max_fd_attrs: u32,
    /// Prior construction knobs.
    pub prior_cfg: PriorConfig,
    /// Evidence weights for both agents' updates.
    pub evidence: EvidenceConfig,
    /// Softmax temperature γ for the stochastic methods (paper: 0.5).
    pub gamma: f64,
    /// What the strategies' example scores are computed from.
    pub score_basis: et_core::respond::ScoreBasis,
    /// How much of each interaction feeds the learner's belief update.
    pub evidence_scope: et_core::EvidenceScope,
    /// Base seed.
    pub seed: u64,
}

impl ConvergenceExperiment {
    /// The paper's default setup for a dataset/degree/prior combination.
    pub fn paper(
        dataset: DatasetName,
        degree: f64,
        trainer_prior: PriorKind,
        learner_prior: PriorKind,
    ) -> Self {
        Self {
            dataset,
            rows: 240,
            degree,
            trainer_prior,
            learner_prior,
            methods: StrategyKind::PAPER_METHODS.to_vec(),
            runs: 5,
            session: SessionConfig::default(),
            space_cap: 38,
            max_fd_attrs: 4,
            prior_cfg: PriorConfig {
                strength: 0.3,
                ..PriorConfig::default()
            },
            evidence: EvidenceConfig::default(),
            gamma: 0.5,
            score_basis: et_core::respond::ScoreBasis::PairLocal,
            evidence_scope: et_core::EvidenceScope::SelectedPairs,
            seed: 0xE7,
        }
    }

    /// Runs all methods over all seeds and aggregates.
    ///
    /// # Panics
    /// Panics when `runs` is zero.
    pub fn run(&self) -> Vec<MethodRun> {
        assert!(self.runs > 0, "need at least one run");
        let mut per_method: Vec<Vec<(SessionResult, f64)>> =
            vec![Vec::with_capacity(self.runs); self.methods.len()];

        for r in 0..self.runs {
            let seed = self.seed.wrapping_add(r as u64).wrapping_mul(0x9e37_79b9);
            let prepared = self.prepare(seed);
            for (mi, &kind) in self.methods.iter().enumerate() {
                let result = self.run_one(&prepared, kind, seed);
                let auc = final_detector_auc(&prepared, &result, seed, &self.session);
                per_method[mi].push((result, auc));
            }
        }

        self.methods
            .iter()
            .zip(per_method)
            .map(|(&kind, results)| {
                let len = results.iter().map(|r| r.0.metrics.len()).min().unwrap_or(0);
                let take = |f: &dyn Fn(&et_core::IterationMetrics) -> f64| {
                    let runs: Vec<Vec<f64>> = results
                        .iter()
                        .map(|r| r.0.metrics[..len].iter().map(f).collect())
                        .collect();
                    aggregate(&runs)
                };
                let final_auc = results.iter().map(|r| r.1).sum::<f64>() / results.len() as f64;
                MethodRun {
                    kind,
                    mae: take(&|m| m.mae),
                    f1: take(&|m| m.learner_f1),
                    precision: take(&|m| m.learner_precision),
                    recall: take(&|m| m.learner_recall),
                    final_auc,
                }
            })
            .collect()
    }

    /// Generates the dirty dataset and hypothesis space for one seed.
    fn prepare(&self, seed: u64) -> Prepared {
        let mut ds = self.dataset.generate(self.rows, seed);
        let specs = ds.exact_fds.clone();
        let injection = inject_errors(
            &mut ds.table,
            &specs,
            &[],
            &InjectConfig::with_degree(self.degree, seed ^ 0xB5),
        );
        let pinned: Vec<Fd> = specs.iter().map(Fd::from_spec).collect();
        // FDs need enough at-risk pairs to be learnable within N
        // interactions; scale the support floor with the data.
        let min_support = (self.rows as u64 / 12).max(5);
        let space = Arc::new(HypothesisSpace::capped(
            &ds.table,
            self.max_fd_attrs,
            self.space_cap,
            min_support,
            &pinned,
        ));
        Prepared {
            table: ds.table,
            dirty_rows: injection.dirty_rows,
            space,
        }
    }

    /// Runs one (seeded) session with one sampling method.
    fn run_one(&self, p: &Prepared, kind: StrategyKind, seed: u64) -> SessionResult {
        let trainer_prior = build_prior(
            &self.trainer_prior.spec(seed ^ 0x7261_696e),
            &self.prior_cfg,
            &p.space,
            &p.table,
        );
        let learner_prior = build_prior(
            &self.learner_prior.spec(seed ^ 0x6c65_6172),
            &self.prior_cfg,
            &p.space,
            &p.table,
        );
        let mut trainer = FpTrainer::new(trainer_prior, self.evidence);
        let mut learner = Learner::new(
            learner_prior,
            ResponseStrategy::new(kind, self.gamma).with_basis(self.score_basis),
            self.evidence,
            seed ^ 0x6b69_6e64,
        )
        .with_evidence_scope(self.evidence_scope);
        let cfg = SessionConfig {
            seed,
            ..self.session.clone()
        };
        run_session(
            &p.table,
            p.space.clone(),
            &p.dirty_rows,
            cfg,
            &mut trainer,
            &mut learner,
        )
    }
}

struct Prepared {
    table: et_data::Table,
    dirty_rows: Vec<bool>,
    space: Arc<HypothesisSpace>,
}

/// ROC AUC of the learner's final dirty scores on the same held-out test
/// split the session used.
fn final_detector_auc(
    p: &Prepared,
    result: &SessionResult,
    seed: u64,
    session: &SessionConfig,
) -> f64 {
    let (_, test_rows) = et_data::split_rows(p.table.nrows(), session.test_frac, seed);
    let test_table = p.table.subset(&test_rows);
    let index = et_fd::ViolationIndex::build(&test_table, &p.space);
    let scores: Vec<f64> = (0..test_rows.len())
        .map(|r| et_fd::tuple_dirty_prob(&index, &result.learner_confidences, r))
        .collect();
    let truth: Vec<bool> = test_rows.iter().map(|&r| p.dirty_rows[r]).collect();
    et_metrics::roc_auc(&scores, &truth)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(dataset: DatasetName) -> ConvergenceExperiment {
        let mut e =
            ConvergenceExperiment::paper(dataset, 0.10, PriorKind::Random, PriorKind::DataEstimate);
        e.rows = 150;
        e.runs = 2;
        e.max_fd_attrs = 3;
        e.space_cap = 20;
        e.session.iterations = 10;
        e
    }

    #[test]
    fn produces_aggregated_curves() {
        let e = quick(DatasetName::Omdb);
        let runs = e.run();
        assert_eq!(runs.len(), 4);
        for m in &runs {
            assert_eq!(m.mae.len(), 10);
            assert_eq!(m.f1.len(), 10);
            assert_eq!(m.mae.runs, 2);
            for v in &m.mae.mean {
                assert!((0.0..=1.0).contains(v));
            }
        }
    }

    #[test]
    fn deterministic_across_invocations() {
        let e = quick(DatasetName::Airport);
        let a = e.run();
        let b = e.run();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.mae.mean, y.mae.mean);
        }
    }

    #[test]
    fn mae_falls_for_every_method() {
        let mut e = quick(DatasetName::Omdb);
        e.session.iterations = 25;
        for m in e.run() {
            let first = m.mae.mean[0];
            let last = m.mae.last_mean();
            assert!(
                last < first,
                "{}: MAE {first:.3} -> {last:.3}",
                m.kind.as_str()
            );
        }
    }

    #[test]
    fn prior_kind_labels() {
        assert_eq!(PriorKind::Uniform(0.9).label(), "Uniform-0.9");
        assert_eq!(PriorKind::Random.label(), "Random");
        assert_eq!(PriorKind::DataEstimate.label(), "Data-estimate");
    }
}
