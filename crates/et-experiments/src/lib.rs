//! Experiment registry: one entry per table and figure of the paper.
//!
//! * [`convergence`] — the shared engine behind Figures 1 and 3–7: generate
//!   a dataset, inject violations, run every sampling method over multiple
//!   seeds, and aggregate MAE / F1 curves.
//! * [`report`] — ASCII-table and CSV rendering of curve families.
//! * [`registry`] — the experiment catalogue (`table1`–`table3`,
//!   `fig1`–`fig7`, `prop1`, plus the ablations DESIGN.md calls out);
//!   each entry regenerates one artifact and explains the expected shape.
//!
//! The `repro` binary in `et-bench` drives this registry end to end:
//! `repro --list`, `repro --exp fig1`, `repro --all`.

#![warn(missing_docs)]

pub mod convergence;
pub mod registry;
pub mod report;

pub use convergence::{ConvergenceExperiment, MethodRun, PriorKind};
pub use registry::{all_experiments, experiment_by_id, Experiment, ExperimentOutput, RunOptions};
