//! The TCP server. Two transports share one routing/domain layer:
//!
//! * **Event** (default, Linux): readiness-based shards. Each shard owns an
//!   epoll instance, an eventfd waker, a timer wheel, and a set of
//!   non-blocking connections with per-connection read/write buffers
//!   (`conn.rs`). Accepting is sharded via `SO_REUSEPORT` listeners — one
//!   per shard, kernel-balanced — with a single-acceptor fallback that
//!   distributes accepted streams to shards by fd hash. CPU work (session
//!   step logic) is dispatched to a fixed worker pool over a job channel;
//!   replies come back over per-shard completion queues plus a waker edge.
//!   A shard keeps at most **one request in flight per connection**, so
//!   per-session ordering is enforced at the completion queue and event
//!   arrival order never reaches session logic (DESIGN.md §16).
//! * **Blocking** (`--blocking`): the portable thread-per-connection path.
//!   One worker handles a connection start-to-finish with fully blocking
//!   reads; shutdown interrupts those reads by `shutdown(2)`-ing every
//!   registered socket — there is no stop-flag polling in either
//!   transport.
//!
//! Worker count bounds concurrent *CPU-bound requests* in event mode (and
//! concurrent clients in blocking mode); concurrent *sessions* are bounded
//! separately by the store capacity.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use et_core::StepError;

use crate::conn::{Conn, FramingError, ReadOutcome, DEFAULT_MAX_LINE_BYTES};
use crate::event::{reuseport_listeners, Event, Poller, TimerWheel, Waker};
use crate::protocol::{ErrorCode, Request, Response, WirePair};
use crate::store::{RecoveryReport, SessionStore, StoreConfig, StoreError};

/// Which transport carries the wire protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// Readiness-based event loop (epoll); the default.
    Event,
    /// Thread-per-connection with blocking IO; the portable fallback.
    Blocking,
}

/// Shard-local token of the shard's own listener.
const LISTENER_TOKEN: u64 = 0;
/// Shard-local token of the shard's eventfd waker.
const WAKER_TOKEN: u64 = 1;
/// First token handed to an accepted connection. Tokens are monotonically
/// increasing and never reused, so a completion for a closed connection is
/// recognisably stale and dropped.
const FIRST_CONN_TOKEN: u64 = 2;

/// Server parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads (event mode: max concurrent CPU-bound requests;
    /// blocking mode: max concurrent client connections).
    pub workers: usize,
    /// Session-store limits and seeding.
    pub store: StoreConfig,
    /// Transport selection.
    pub mode: ServeMode,
    /// Event shards (each owns an epoll instance and, where
    /// `SO_REUSEPORT` binds, its own listener). Ignored in blocking mode.
    pub shards: usize,
    /// Drop a connection that completes no request line for this long.
    /// Dribbled bytes without a newline do **not** refresh the clock, so
    /// this is also the slow-loris bound. Zero disables the timeout.
    pub conn_idle_timeout: Duration,
    /// Per-request-line byte ceiling; longer lines draw a typed
    /// `protocol_error` and the connection is closed.
    pub max_line_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            store: StoreConfig::default(),
            mode: ServeMode::Event,
            shards: 2,
            conn_idle_timeout: Duration::from_secs(300),
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
        }
    }
}

/// A handle to a running server: its bound address and its lifecycle.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    ctl: Arc<Ctl>,
    accept_join: Option<JoinHandle<()>>,
    shard_joins: Vec<JoinHandle<()>>,
    worker_joins: Vec<JoinHandle<()>>,
    ctx: Arc<ServerCtx>,
    recovery: RecoveryReport,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// What start-up recovery found under the data directory (all zeros
    /// when the store runs in-memory).
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Raises the stop flag and wakes every transport thread (eventfd per
    /// shard in event mode; socket shutdown per connection in blocking
    /// mode), so shutdown latency is bounded by one loop iteration rather
    /// than a poll interval. Idempotent; returns immediately — pair with
    /// [`ServerHandle::wait`].
    pub fn shutdown(&self) {
        self.ctl.begin_shutdown();
    }

    /// Blocks until every server thread has exited, then flushes every
    /// journaled session (snapshot + WAL sync) so a clean shutdown leaves
    /// recovery nothing to replay.
    pub fn wait(mut self) {
        if let Some(h) = self.accept_join.take() {
            let _ = h.join();
        }
        for h in self.shard_joins.drain(..) {
            let _ = h.join();
        }
        for h in self.worker_joins.drain(..) {
            let _ = h.join();
        }
        let _ = self.ctx.store.flush_all();
    }

    /// True once shutdown has been requested.
    pub fn is_stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire) // ord: Acquire pairs with the Release store in begin_shutdown
    }
}

/// The routing/domain context shared with the worker pool — deliberately
/// transport-free so `dispatch` cannot observe event ordering.
struct ServerCtx {
    store: SessionStore,
    stop: Arc<AtomicBool>,
}

/// One request handed from a shard to the worker pool.
struct Job {
    shard: usize,
    token: u64,
    line: String,
}

/// One finished request travelling back from a worker to its shard.
struct Completion {
    token: u64,
    /// Encoded reply, newline-terminated.
    payload: String,
    /// The reply was `shutting_down`: the shard begins server shutdown
    /// *after* queueing the reply, so the goodbye is never lost.
    shutdown: bool,
}

/// Per-shard cross-thread state: the waker plus the two queues other
/// threads feed the shard through (worker completions, acceptor handoff).
struct ShardMailbox {
    waker: Waker,
    completions: Mutex<Vec<Completion>>,
    handoff: Mutex<Vec<TcpStream>>,
}

impl ShardMailbox {
    fn new() -> std::io::Result<ShardMailbox> {
        Ok(ShardMailbox {
            waker: Waker::new()?,
            completions: Mutex::new(Vec::new()),
            handoff: Mutex::new(Vec::new()),
        })
    }
}

fn lock_or_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Transport-specific shutdown plumbing.
enum Transport {
    /// Wake every shard; poke the acceptor thread if one exists.
    Event {
        shards: Vec<Arc<ShardMailbox>>,
        poke_acceptor: bool,
    },
    /// Poke the acceptor and `shutdown(2)` every live connection so
    /// blocking reads return immediately.
    Blocking {
        conns: Mutex<HashMap<u64, TcpStream>>,
        next_id: AtomicU64,
    },
}

/// Shutdown control shared by the handle and the transport threads.
struct Ctl {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
    transport: Transport,
}

impl Ctl {
    /// Raises the stop flag and delivers a wake-up to every thread that
    /// could be parked, bounding shutdown latency by one loop iteration.
    fn begin_shutdown(&self) {
        self.stop.store(true, Ordering::Release); // ord: Release pairs with Acquire loads in shard/accept/conn loops
        match &self.transport {
            Transport::Event {
                shards,
                poke_acceptor,
            } => {
                for shard in shards {
                    shard.waker.wake();
                }
                if *poke_acceptor {
                    // A throwaway connection unblocks the acceptor's
                    // blocking accept() so it can observe the flag.
                    let _ = TcpStream::connect(self.addr);
                }
            }
            Transport::Blocking { conns, .. } => {
                let _ = TcpStream::connect(self.addr);
                let guard = lock_or_recover(conns);
                for stream in guard.values() {
                    let _ = stream.shutdown(Shutdown::Both);
                }
            }
        }
    }

    /// Registers a blocking-mode connection for shutdown interruption.
    /// Returns `None` in event mode (shards own their connections).
    fn register_blocking_conn(&self, stream: &TcpStream) -> Option<u64> {
        let Transport::Blocking { conns, next_id } = &self.transport else {
            return None;
        };
        let clone = stream.try_clone().ok()?;
        let id = next_id.fetch_add(1, Ordering::Relaxed); // ord: Relaxed — the id is only a map key, no ordering needed
        lock_or_recover(conns).insert(id, clone);
        Some(id)
    }

    fn deregister_blocking_conn(&self, id: u64) {
        if let Transport::Blocking { conns, .. } = &self.transport {
            lock_or_recover(conns).remove(&id);
        }
    }
}

/// Binds and starts the server; returns once the listener is live.
///
/// # Errors
/// Propagates bind/epoll/eventfd setup failures.
pub fn spawn(cfg: ServerConfig) -> std::io::Result<ServerHandle> {
    match cfg.mode {
        ServeMode::Event => spawn_event(cfg),
        ServeMode::Blocking => spawn_blocking(cfg),
    }
}

fn resolve_addr(addr: &str) -> std::io::Result<SocketAddr> {
    addr.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "bind address resolved to nothing",
        )
    })
}

fn spawn_event(cfg: ServerConfig) -> std::io::Result<ServerHandle> {
    let shards_n = cfg.shards.max(1);
    let sock_addr = resolve_addr(&cfg.addr)?;

    // Preferred: one SO_REUSEPORT listener per shard, kernel-balanced.
    // Fallback (e.g. IPv6 bind): one acceptor thread hashing streams out.
    let (shard_listeners, fallback_listener, addr) = match reuseport_listeners(&sock_addr, shards_n)
    {
        Ok(listeners) => {
            let addr = listeners[0].local_addr()?;
            (Some(listeners), None, addr)
        }
        Err(_) => {
            let listener = TcpListener::bind(&cfg.addr)?;
            let addr = listener.local_addr()?;
            (None, Some(listener), addr)
        }
    };

    let stop = Arc::new(AtomicBool::new(false));
    let store = SessionStore::new(cfg.store);
    // Recover journaled sessions before any worker can serve traffic, so a
    // client reconnecting after a crash finds its session already live.
    let recovery = store.recover_from_disk();
    let ctx = Arc::new(ServerCtx {
        store,
        stop: stop.clone(),
    });

    let mut mailboxes = Vec::with_capacity(shards_n);
    for _ in 0..shards_n {
        mailboxes.push(Arc::new(ShardMailbox::new()?));
    }
    let ctl = Arc::new(Ctl {
        stop: stop.clone(),
        addr,
        transport: Transport::Event {
            shards: mailboxes.clone(),
            poke_acceptor: fallback_listener.is_some(),
        },
    });

    let (job_tx, job_rx) = mpsc::channel::<Job>();
    let job_rx = Arc::new(Mutex::new(job_rx));
    let workers = cfg.workers.max(1);
    let mut worker_joins = Vec::with_capacity(workers);
    for _ in 0..workers {
        let job_rx = job_rx.clone();
        let ctx = ctx.clone();
        let mailboxes = mailboxes.clone();
        worker_joins.push(std::thread::spawn(move || {
            worker_pool_loop(&job_rx, &ctx, &mailboxes);
        }));
    }

    let accept_join = fallback_listener.map(|listener| {
        let mailboxes = mailboxes.clone();
        let accept_stop = stop.clone();
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                // ord: Acquire sees the flag raised before the wake-up connect
                if accept_stop.load(Ordering::Acquire) {
                    break;
                }
                if let Ok(stream) = conn {
                    let fd = stream.as_raw_fd();
                    let shard = usize::try_from(fd).unwrap_or(0) % mailboxes.len();
                    lock_or_recover(&mailboxes[shard].handoff).push(stream);
                    mailboxes[shard].waker.wake();
                }
            }
        })
    });

    let mut shard_listeners = shard_listeners;
    let mut shard_joins = Vec::with_capacity(shards_n);
    for (index, mailbox) in mailboxes.iter().enumerate() {
        let listener = shard_listeners.as_mut().and_then(|v| {
            if v.is_empty() {
                None
            } else {
                Some(v.remove(0))
            }
        });
        let params = ShardParams {
            index,
            listener,
            mailbox: mailbox.clone(),
            ctx: ctx.clone(),
            ctl: ctl.clone(),
            job_tx: job_tx.clone(),
            idle_timeout: cfg.conn_idle_timeout,
            max_line: cfg.max_line_bytes,
        };
        shard_joins.push(std::thread::spawn(move || shard_loop(params)));
    }
    // The shards own the only senders now: when the last shard exits, the
    // channel disconnects and the blocked workers drain out.
    drop(job_tx);

    Ok(ServerHandle {
        addr,
        stop,
        ctl,
        accept_join,
        shard_joins,
        worker_joins,
        ctx,
        recovery,
    })
}

fn worker_pool_loop(
    job_rx: &Arc<Mutex<Receiver<Job>>>,
    ctx: &Arc<ServerCtx>,
    mailboxes: &[Arc<ShardMailbox>],
) {
    loop {
        let next = {
            let guard = lock_or_recover(job_rx);
            // Blocking recv: no polling. The channel disconnects (Err)
            // once every shard has exited, which is the worker's exit
            // signal.
            guard.recv()
        };
        let Ok(job) = next else { return };
        let response = dispatch(&job.line, ctx);
        let shutdown = matches!(response, Response::ShuttingDown);
        let mut payload = response.encode();
        payload.push('\n');
        if let Some(mailbox) = mailboxes.get(job.shard) {
            lock_or_recover(&mailbox.completions).push(Completion {
                token: job.token,
                payload,
                shutdown,
            });
            mailbox.waker.wake();
        }
    }
}

/// Everything one event shard needs.
struct ShardParams {
    index: usize,
    /// The shard's own `SO_REUSEPORT` listener, absent under the
    /// single-acceptor fallback.
    listener: Option<TcpListener>,
    mailbox: Arc<ShardMailbox>,
    ctx: Arc<ServerCtx>,
    ctl: Arc<Ctl>,
    job_tx: Sender<Job>,
    idle_timeout: Duration,
    max_line: usize,
}

/// Mutable per-shard state threaded through the helpers below.
struct ShardState {
    poller: Poller,
    wheel: TimerWheel,
    conns: HashMap<u64, Conn>,
    next_token: u64,
}

fn shard_loop(p: ShardParams) {
    let Ok(poller) = Poller::new() else {
        // A shard that cannot poll cannot serve; take the server down
        // loudly rather than silently shrinking capacity.
        p.ctl.begin_shutdown();
        return;
    };
    if poller
        .add(p.mailbox.waker.as_raw_fd(), WAKER_TOKEN, true, false)
        .is_err()
    {
        p.ctl.begin_shutdown();
        return;
    }
    if let Some(listener) = &p.listener {
        if listener.set_nonblocking(true).is_err()
            || poller
                .add(listener.as_raw_fd(), LISTENER_TOKEN, true, false)
                .is_err()
        {
            p.ctl.begin_shutdown();
            return;
        }
    }

    // Wheel tick: fine enough that a timeout fires within ~1/16 of the
    // configured idle window; rotation (24 slots) comfortably exceeds it.
    // A zero timeout disables expiry entirely (the wheel still paces the
    // epoll timeout so completions/wakes are never starved).
    let timeouts_enabled = !p.idle_timeout.is_zero();
    let tick = if timeouts_enabled {
        (p.idle_timeout / 16).max(Duration::from_millis(10))
    } else {
        Duration::from_secs(60)
    };
    let mut s = ShardState {
        poller,
        wheel: TimerWheel::new(tick, 24),
        conns: HashMap::new(),
        next_token: FIRST_CONN_TOKEN,
    };
    let mut events: Vec<Event> = Vec::new();
    let mut expired: Vec<u64> = Vec::new();

    loop {
        events.clear();
        let timeout = s.wheel.until_next_tick(Instant::now());
        if s.poller.wait(&mut events, Some(timeout)).is_err() {
            p.ctl.begin_shutdown();
            return;
        }
        let now = Instant::now();

        for ev in events.iter().copied() {
            match ev.token {
                LISTENER_TOKEN => accept_burst(&p, &mut s, now),
                WAKER_TOKEN => {
                    p.mailbox.waker.drain();
                    let handoff = std::mem::take(&mut *lock_or_recover(&p.mailbox.handoff));
                    for stream in handoff {
                        register_conn(&p, &mut s, stream, now);
                    }
                }
                token => conn_event(&p, &mut s, token, ev, now),
            }
        }

        // Completions: queue replies, pump the next buffered request, and
        // only then act on a shutdown marker — the goodbye reply is
        // already in the write buffer (and usually on the wire) by then.
        let completions = std::mem::take(&mut *lock_or_recover(&p.mailbox.completions));
        let mut begin_shutdown = false;
        for completion in completions {
            if let Some(conn) = s.conns.get_mut(&completion.token) {
                conn.in_flight = false;
                conn.queue_write(completion.payload.as_bytes());
                pump_conn(&p, conn);
                if !finish_io(&s.poller, conn) {
                    close_conn(&mut s, completion.token);
                }
            }
            begin_shutdown |= completion.shutdown;
        }
        if begin_shutdown {
            p.ctl.begin_shutdown();
        }

        // ord: Acquire pairs with the Release store in begin_shutdown
        if p.ctx.stop.load(Ordering::Acquire) {
            // Best-effort final flush so queued replies (shutdown acks in
            // particular) reach the kernel before the sockets drop.
            for conn in s.conns.values_mut() {
                let _ = conn.flush_ready();
            }
            return;
        }

        if timeouts_enabled {
            expired.clear();
            s.wheel.expire(now, &mut expired);
            for token in expired.iter().copied() {
                // Lazy cancellation: re-check the real activity clock; a
                // refreshed connection is simply rescheduled.
                let action = match s.conns.get(&token) {
                    Some(conn) => {
                        let idle = now.duration_since(conn.last_activity);
                        if idle >= p.idle_timeout {
                            None
                        } else {
                            Some(p.idle_timeout - idle)
                        }
                    }
                    None => continue,
                };
                match action {
                    None => close_conn(&mut s, token),
                    Some(remaining) => s.wheel.schedule(token, remaining),
                }
            }
        }
    }
}

fn accept_burst(p: &ShardParams, s: &mut ShardState, now: Instant) {
    let Some(listener) = &p.listener else { return };
    loop {
        match listener.accept() {
            Ok((stream, _)) => register_conn(p, s, stream, now),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
}

fn register_conn(p: &ShardParams, s: &mut ShardState, stream: TcpStream, now: Instant) {
    if stream.set_nonblocking(true).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let token = s.next_token;
    s.next_token += 1;
    if s.poller
        .add(stream.as_raw_fd(), token, true, false)
        .is_err()
    {
        return;
    }
    s.conns
        .insert(token, Conn::new(stream, token, p.max_line, now));
    if !p.idle_timeout.is_zero() {
        s.wheel.schedule(token, p.idle_timeout);
    }
}

fn close_conn(s: &mut ShardState, token: u64) {
    if let Some(conn) = s.conns.remove(&token) {
        let _ = s.poller.delete(conn.stream().as_raw_fd());
        // Dropping the Conn closes the socket; the wheel entry (if any)
        // expires harmlessly against the now-absent token.
    }
}

fn conn_event(p: &ShardParams, s: &mut ShardState, token: u64, ev: Event, now: Instant) {
    let Some(conn) = s.conns.get_mut(&token) else {
        return;
    };
    if ev.hangup {
        close_conn(s, token);
        return;
    }
    if ev.readable && !conn.close_after_flush {
        match conn.read_ready(now) {
            Err(_) => {
                close_conn(s, token);
                return;
            }
            Ok(ReadOutcome::Protocol(FramingError::Oversized { max })) => {
                let reply = Response::Error {
                    code: ErrorCode::ProtocolError,
                    message: format!("request line exceeds {max} bytes"),
                };
                let mut payload = reply.encode();
                payload.push('\n');
                conn.queue_write(payload.as_bytes());
                conn.close_after_flush = true;
            }
            Ok(ReadOutcome::Eof { .. }) => {
                conn.eof = true;
                pump_conn(p, conn);
            }
            Ok(ReadOutcome::Progress { .. }) => pump_conn(p, conn),
        }
    }
    let conn = match s.conns.get_mut(&token) {
        Some(c) => c,
        None => return,
    };
    if !finish_io(&s.poller, conn) {
        close_conn(s, token);
    }
}

/// Hands the next buffered request line to the worker pool, keeping at
/// most one in flight per connection (per-session ordering).
fn pump_conn(p: &ShardParams, conn: &mut Conn) {
    while !conn.in_flight {
        let Some(line) = conn.inbox.pop_front() else {
            return;
        };
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        conn.in_flight = true;
        // A send can only fail once the workers have exited, which only
        // happens during shutdown; the connection is torn down with the
        // shard shortly after.
        let _ = p.job_tx.send(Job {
            shard: p.index,
            token: conn.token,
            line: trimmed.to_string(),
        });
    }
}

/// Flushes queued output, maintains write interest, and decides whether
/// the connection lives on. Returns `false` when it must be closed.
fn finish_io(poller: &Poller, conn: &mut Conn) -> bool {
    let flushed = match conn.flush_ready() {
        Ok(f) => f,
        Err(_) => return false,
    };
    if flushed && conn.close_after_flush {
        return false;
    }
    if flushed && conn.eof && !conn.in_flight && conn.inbox.is_empty() {
        // Peer half-closed and everything owed has been answered.
        return false;
    }
    let want_write = conn.has_pending_output();
    if want_write != conn.want_write {
        if poller
            .modify(conn.stream().as_raw_fd(), conn.token, true, want_write)
            .is_err()
        {
            return false;
        }
        conn.want_write = want_write;
    }
    true
}

// ---------------------------------------------------------------------------
// Blocking transport (the portable fallback behind --blocking).
// ---------------------------------------------------------------------------

fn spawn_blocking(cfg: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let store = SessionStore::new(cfg.store);
    let recovery = store.recover_from_disk();
    let ctx = Arc::new(ServerCtx {
        store,
        stop: stop.clone(),
    });
    let ctl = Arc::new(Ctl {
        stop: stop.clone(),
        addr,
        transport: Transport::Blocking {
            conns: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(0),
        },
    });

    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    let workers = cfg.workers.max(1);
    let max_line = cfg.max_line_bytes;
    let mut worker_joins = Vec::with_capacity(workers);
    for _ in 0..workers {
        let rx = rx.clone();
        let ctx = ctx.clone();
        let ctl = ctl.clone();
        worker_joins.push(std::thread::spawn(move || {
            blocking_worker_loop(&rx, &ctx, &ctl, max_line);
        }));
    }

    let accept_stop = stop.clone();
    let accept_join = std::thread::spawn(move || {
        for conn in listener.incoming() {
            // ord: Acquire sees the flag raised before the wake-up connect
            if accept_stop.load(Ordering::Acquire) {
                break;
            }
            if let Ok(stream) = conn {
                // A send can only fail after the workers have exited,
                // which only happens once the stop flag is up.
                if tx.send(stream).is_err() {
                    break;
                }
            }
        }
        // Dropping `tx` disconnects the channel; blocked workers drain out.
    });

    Ok(ServerHandle {
        addr,
        stop,
        ctl,
        accept_join: Some(accept_join),
        shard_joins: Vec::new(),
        worker_joins,
        ctx,
        recovery,
    })
}

fn blocking_worker_loop(
    rx: &Arc<Mutex<Receiver<TcpStream>>>,
    ctx: &Arc<ServerCtx>,
    ctl: &Arc<Ctl>,
    max_line: usize,
) {
    loop {
        let next = {
            let guard = lock_or_recover(rx);
            // Blocking recv: no polling. Disconnection (acceptor exited
            // and dropped the sender) is the exit signal.
            guard.recv()
        };
        match next {
            Ok(stream) => handle_connection(stream, ctx, ctl, max_line),
            Err(_) => return,
        }
    }
}

fn handle_connection(stream: TcpStream, ctx: &Arc<ServerCtx>, ctl: &Arc<Ctl>, max_line: usize) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    // Register for shutdown interruption *before* the first blocking read,
    // then re-check the flag to close the register/shutdown race.
    let reg = ctl.register_blocking_conn(&stream);
    // ord: Acquire pairs with the Release store in begin_shutdown
    if ctx.stop.load(Ordering::Acquire) {
        let _ = stream.shutdown(Shutdown::Both);
        if let Some(id) = reg {
            ctl.deregister_blocking_conn(id);
        }
        return;
    }
    let mut reader = BufReader::new(read_half);
    let mut write_half = stream;
    let mut line = String::new();
    loop {
        // ord: Acquire pairs with the Release store in begin_shutdown
        if ctx.stop.load(Ordering::Acquire) {
            break;
        }
        line.clear();
        // Bound each line read so an unterminated request cannot balloon
        // memory: read at most ceiling+2 bytes, then check for the
        // newline.
        let limit = u64::try_from(max_line)
            .unwrap_or(u64::MAX)
            .saturating_add(2);
        match (&mut reader).take(limit).read_line(&mut line) {
            Ok(0) => break, // client closed
            Ok(_) => {
                if !line.ends_with('\n') && line.len() > max_line {
                    let reply = Response::Error {
                        code: ErrorCode::ProtocolError,
                        message: format!("request line exceeds {max_line} bytes"),
                    };
                    let mut out = reply.encode();
                    out.push('\n');
                    let _ = write_half.write_all(out.as_bytes());
                    let _ = write_half.flush();
                    break;
                }
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                let response = dispatch(trimmed, ctx);
                let shutting_down = matches!(response, Response::ShuttingDown);
                let mut out = response.encode();
                out.push('\n');
                if write_half.write_all(out.as_bytes()).is_err() || write_half.flush().is_err() {
                    break;
                }
                // Transport triggers shutdown only after the goodbye reply
                // is on the wire.
                if shutting_down {
                    ctl.begin_shutdown();
                    break;
                }
            }
            Err(_) => break,
        }
    }
    if let Some(id) = reg {
        ctl.deregister_blocking_conn(id);
    }
}

// ---------------------------------------------------------------------------
// Routing + domain logic, shared by both transports. Nothing below this
// line knows how bytes arrive.
// ---------------------------------------------------------------------------

fn dispatch(line: &str, ctx: &Arc<ServerCtx>) -> Response {
    let request = match Request::parse_line(line) {
        Ok(r) => r,
        Err((code, message)) => return Response::Error { code, message },
    };
    match request {
        Request::Create(spec) => {
            // ord: Acquire pairs with the shutdown Release store
            if ctx.stop.load(Ordering::Acquire) {
                return err(ErrorCode::ShuttingDown, "server is draining");
            }
            match ctx.store.create(&spec) {
                Ok((session, seed)) => {
                    let details = ctx.store.with_session(session, |live| {
                        (
                            live.state.table().nrows(),
                            live.state.space().len(),
                            live.state.config().iterations,
                        )
                    });
                    match details {
                        Ok((rows, fds, iterations)) => Response::Created {
                            session,
                            rows,
                            fds,
                            iterations,
                            seed,
                        },
                        Err(_) => err(ErrorCode::UnknownSession, "session vanished"),
                    }
                }
                Err(StoreError::Busy) => err(ErrorCode::ServerBusy, "session store at capacity"),
                Err(StoreError::Invalid(msg)) => Response::Error {
                    code: ErrorCode::InvalidConfig,
                    message: msg,
                },
                Err(StoreError::Durability(msg)) => Response::Error {
                    code: ErrorCode::Internal,
                    message: format!("durable storage refused the session: {msg}"),
                },
                Err(StoreError::Unknown(id)) => {
                    err(ErrorCode::UnknownSession, &format!("no session {id}"))
                }
            }
        }
        Request::NextPairs { session } => run_on_session(ctx, session, next_pairs),
        Request::SubmitLabels { session, labels } => {
            let latency = ctx.store.round_latency();
            run_on_session(ctx, session, move |live| {
                submit_labels(live, labels, Some(latency))
            })
        }
        Request::Status { session: Some(id) } => run_on_session(ctx, id, |live| {
            let report = live.state.convergence_so_far();
            Response::SessionStatus {
                session: live.id,
                iterations_done: live.state.iterations_done(),
                iterations: live.state.config().iterations,
                awaiting_labels: live.state.pending().is_some(),
                mae_series: live.state.metrics().iter().map(|m| m.mae).collect(),
                converged_at: report.converged_at,
                learner_confidences: live.learner.confidences(),
                trainer_confidences: live.trainer.belief().confidences(),
            }
        }),
        Request::Status { session: None } => {
            let snap = ctx.store.snapshot();
            Response::ServerStatus {
                live_sessions: snap.live_sessions,
                capacity: snap.capacity,
                created_total: snap.counters.created_total,
                evicted_total: snap.counters.evicted_total,
                busy_rejections: snap.counters.busy_rejections,
                round_latency_samples: snap.round_latency.samples,
                round_latency_p50_ms: snap.round_latency.p50_ms,
                round_latency_p99_ms: snap.round_latency.p99_ms,
            }
        }
        Request::Close { session } => match ctx.store.remove(session) {
            Ok(()) => Response::Closed { session },
            Err(_) => err(ErrorCode::UnknownSession, &format!("no session {session}")),
        },
        // The transport (not this routing layer) begins shutdown once the
        // reply is queued, so the goodbye is never lost to a racing exit.
        Request::Shutdown => Response::ShuttingDown,
    }
}

fn err(code: ErrorCode, message: &str) -> Response {
    Response::Error {
        code,
        message: message.to_string(),
    }
}

fn run_on_session(
    ctx: &Arc<ServerCtx>,
    session: u64,
    f: impl FnOnce(&mut crate::store::LiveSession) -> Response,
) -> Response {
    match ctx.store.with_session(session, f) {
        Ok(resp) => resp,
        Err(_) => err(ErrorCode::UnknownSession, &format!("no session {session}")),
    }
}

fn done_reply(live: &crate::store::LiveSession) -> Response {
    let report = live.state.convergence_so_far();
    Response::Done {
        session: live.id,
        iterations_run: live.state.iterations_done(),
        converged_at: report.converged_at,
        final_mae: report.final_mae,
    }
}

fn pairs_reply(live: &crate::store::LiveSession) -> Response {
    let Some(pending) = live.state.pending() else {
        return err(ErrorCode::WrongPhase, "no pending presentation");
    };
    let pairs: Vec<WirePair> = pending
        .pairs()
        .iter()
        .map(|p| WirePair { a: p.a, b: p.b })
        .collect();
    let sample = pending.sample().to_vec();
    let tuples = sample
        .iter()
        .map(|&r| live.state.table().row_texts(r).join(" | "))
        .collect();
    Response::Pairs {
        session: live.id,
        t: live.state.iterations_done(),
        pairs,
        sample,
        tuples,
    }
}

fn next_pairs(live: &mut crate::store::LiveSession) -> Response {
    // Idempotent: an unanswered presentation is re-served, so a client that
    // lost a reply can simply ask again.
    if live.state.pending().is_some() {
        return pairs_reply(live);
    }
    enum Outcome {
        Presented,
        Complete,
        OutOfPhase,
    }
    let outcome = {
        let crate::store::LiveSession { state, learner, .. } = live;
        match state.present(learner) {
            Ok(Some(_)) => Outcome::Presented,
            Ok(None) => Outcome::Complete,
            Err(_) => Outcome::OutOfPhase,
        }
    };
    match outcome {
        Outcome::Presented => pairs_reply(live),
        Outcome::Complete => {
            live.reported_done = true;
            done_reply(live)
        }
        Outcome::OutOfPhase => err(ErrorCode::WrongPhase, "labels are pending"),
    }
}

fn submit_labels(
    live: &mut crate::store::LiveSession,
    labels: Option<Vec<bool>>,
    latency: Option<&crate::store::LatencyHistogram>,
) -> Response {
    let Some(expected) = live.state.pending().map(|p| p.sample().len()) else {
        return err(
            ErrorCode::WrongPhase,
            "no pending presentation; call next_pairs first",
        );
    };
    // Validate caller-supplied labels *before* the trainer observes the
    // sample, so a rejected submit leaves the session untouched and
    // retryable.
    if let Some(supplied) = &labels {
        if supplied.len() != expected {
            return err(
                ErrorCode::WrongPhase,
                &format!(
                    "expected {expected} labels (one per sample tuple), got {}",
                    supplied.len()
                ),
            );
        }
    }
    let session = live.id;
    let crate::store::LiveSession {
        state,
        trainer,
        learner,
        ..
    } = live;
    // The hosted annotator always observes the presented sample (its belief
    // tracks the data); its labels are used unless the caller supplied
    // their own. The round timer covers exactly that core step — hosted
    // labeling plus the learner/belief update and WAL append — not the
    // cadence snapshot or reply encoding.
    let round_start = std::time::Instant::now();
    let hosted = match state.label_pending(trainer) {
        Ok(l) => l,
        Err(e) => return err(ErrorCode::WrongPhase, &e.to_string()),
    };
    let applied = labels.unwrap_or(hosted);
    match state.apply_labels(trainer, learner, &applied) {
        Ok(metrics) => {
            if let Some(h) = latency {
                h.record(round_start.elapsed());
            }
            let metrics = metrics.clone();
            // Best-effort cadence snapshot: the WAL append inside
            // apply_labels already made the batch durable, so a failed
            // snapshot costs replay time at recovery, never data.
            if let Err(e) = state.maybe_snapshot(trainer, learner) {
                eprintln!("et-serve: snapshot of session {session} failed: {e}");
            }
            Response::Labeled {
                session,
                labels: applied,
                metrics,
            }
        }
        // The journal could not durably record the batch: the presentation
        // stays pending and the submit is retryable. Do NOT acknowledge.
        Err(StepError::Journal(e)) => err(
            ErrorCode::Internal,
            &format!("labels were not durably recorded: {e}"),
        ),
        Err(e) => err(ErrorCode::WrongPhase, &e.to_string()),
    }
}
