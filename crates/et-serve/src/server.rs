//! The TCP server: an accept thread feeding a fixed worker pool over a
//! channel, a shared [`SessionStore`], and graceful shutdown on a control
//! signal (the wire `shutdown` op or [`ServerHandle::shutdown`]).
//!
//! Concurrency model: one connection is handled start-to-finish by one
//! worker (connections are long-lived annotation dialogues, not one-shot
//! RPCs), so the worker count bounds concurrent *clients*; concurrent
//! *sessions* are bounded separately by the store capacity. All blocking
//! reads carry short timeouts so every thread notices the stop flag
//! within a fraction of a second.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use et_core::StepError;

use crate::protocol::{ErrorCode, Request, Response, WirePair};
use crate::store::{RecoveryReport, SessionStore, StoreConfig, StoreError};

/// How often blocked threads wake to check the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(250);

/// Server parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads (= max concurrent client connections).
    pub workers: usize,
    /// Session-store limits and seeding.
    pub store: StoreConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            store: StoreConfig::default(),
        }
    }
}

/// A handle to a running server: its bound address and its lifecycle.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_join: Option<JoinHandle<()>>,
    worker_joins: Vec<JoinHandle<()>>,
    ctx: Arc<ServerCtx>,
    recovery: RecoveryReport,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// What start-up recovery found under the data directory (all zeros
    /// when the store runs in-memory).
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Raises the stop flag and unblocks the accept loop. Idempotent;
    /// returns immediately — pair with [`ServerHandle::wait`].
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release); // ord: Release pairs with Acquire loads in the accept/worker loops
                                                  // A throwaway connection unblocks the accept() call so the
                                                  // listener thread can observe the flag.
        let _ = TcpStream::connect(self.addr);
    }

    /// Blocks until every server thread has exited, then flushes every
    /// journaled session (snapshot + WAL sync) so a clean shutdown leaves
    /// recovery nothing to replay.
    pub fn wait(mut self) {
        if let Some(h) = self.accept_join.take() {
            let _ = h.join();
        }
        for h in self.worker_joins.drain(..) {
            let _ = h.join();
        }
        let _ = self.ctx.store.flush_all();
    }

    /// True once shutdown has been requested.
    pub fn is_stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire) // ord: Acquire pairs with the Release store in shutdown()
    }
}

struct ServerCtx {
    store: SessionStore,
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServerCtx {
    /// Raises the stop flag and pokes the listener so the accept loop
    /// (blocked in `accept`) wakes up and observes it.
    fn begin_shutdown(&self) {
        self.stop.store(true, Ordering::Release); // ord: Release pairs with Acquire loads in the accept/worker loops
        let _ = TcpStream::connect(self.addr);
    }
}

/// Binds and starts the server; returns once the listener is live.
///
/// # Errors
/// Propagates the bind failure.
pub fn spawn(cfg: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let store = SessionStore::new(cfg.store);
    // Recover journaled sessions before any worker can serve traffic, so a
    // client reconnecting after a crash finds its session already live.
    let recovery = store.recover_from_disk();
    let ctx = Arc::new(ServerCtx {
        store,
        stop: stop.clone(),
        addr,
    });

    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    let workers = cfg.workers.max(1);
    let mut worker_joins = Vec::with_capacity(workers);
    for _ in 0..workers {
        let rx = rx.clone();
        let ctx = ctx.clone();
        worker_joins.push(std::thread::spawn(move || worker_loop(&rx, &ctx)));
    }

    let accept_stop = stop.clone();
    let accept_join = std::thread::spawn(move || {
        for conn in listener.incoming() {
            // ord: Acquire sees the flag raised before the wake-up connect
            if accept_stop.load(Ordering::Acquire) {
                break;
            }
            if let Ok(stream) = conn {
                // A send can only fail after the workers have exited,
                // which only happens once the stop flag is up.
                if tx.send(stream).is_err() {
                    break;
                }
            }
        }
        // Dropping `tx` disconnects the channel; idle workers drain out.
    });

    Ok(ServerHandle {
        addr,
        stop,
        accept_join: Some(accept_join),
        worker_joins,
        ctx,
        recovery,
    })
}

fn worker_loop(rx: &Arc<Mutex<Receiver<TcpStream>>>, ctx: &Arc<ServerCtx>) {
    loop {
        // ord: Acquire pairs with the shutdown Release store
        if ctx.stop.load(Ordering::Acquire) {
            return;
        }
        let next = {
            let guard = match rx.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.recv_timeout(POLL_INTERVAL)
        };
        match next {
            Ok(stream) => handle_connection(stream, ctx),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn handle_connection(stream: TcpStream, ctx: &Arc<ServerCtx>) {
    // Short read timeouts keep the worker responsive to the stop flag even
    // while a client sits idle mid-dialogue.
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut write_half = stream;
    let mut line = String::new();
    loop {
        // ord: Acquire pairs with the shutdown Release store
        if ctx.stop.load(Ordering::Acquire) {
            return;
        }
        match reader.read_line(&mut line) {
            Ok(0) => return, // client closed
            Ok(_) => {
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    let response = dispatch(trimmed, ctx);
                    let mut out = response.encode();
                    out.push('\n');
                    if write_half.write_all(out.as_bytes()).is_err() || write_half.flush().is_err()
                    {
                        return;
                    }
                }
                line.clear();
            }
            // Timeout mid-wait: partial bytes (if any) stay appended in
            // `line`; loop to re-check the stop flag and keep reading.
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return,
        }
    }
}

fn dispatch(line: &str, ctx: &Arc<ServerCtx>) -> Response {
    let request = match Request::parse_line(line) {
        Ok(r) => r,
        Err((code, message)) => return Response::Error { code, message },
    };
    match request {
        Request::Create(spec) => {
            // ord: Acquire pairs with the shutdown Release store
            if ctx.stop.load(Ordering::Acquire) {
                return err(ErrorCode::ShuttingDown, "server is draining");
            }
            match ctx.store.create(&spec) {
                Ok((session, seed)) => {
                    let details = ctx.store.with_session(session, |live| {
                        (
                            live.state.table().nrows(),
                            live.state.space().len(),
                            live.state.config().iterations,
                        )
                    });
                    match details {
                        Ok((rows, fds, iterations)) => Response::Created {
                            session,
                            rows,
                            fds,
                            iterations,
                            seed,
                        },
                        Err(_) => err(ErrorCode::UnknownSession, "session vanished"),
                    }
                }
                Err(StoreError::Busy) => err(ErrorCode::ServerBusy, "session store at capacity"),
                Err(StoreError::Invalid(msg)) => Response::Error {
                    code: ErrorCode::InvalidConfig,
                    message: msg,
                },
                Err(StoreError::Durability(msg)) => Response::Error {
                    code: ErrorCode::Internal,
                    message: format!("durable storage refused the session: {msg}"),
                },
                Err(StoreError::Unknown(id)) => {
                    err(ErrorCode::UnknownSession, &format!("no session {id}"))
                }
            }
        }
        Request::NextPairs { session } => run_on_session(ctx, session, next_pairs),
        Request::SubmitLabels { session, labels } => {
            let latency = ctx.store.round_latency();
            run_on_session(ctx, session, move |live| {
                submit_labels(live, labels, Some(latency))
            })
        }
        Request::Status { session: Some(id) } => run_on_session(ctx, id, |live| {
            let report = live.state.convergence_so_far();
            Response::SessionStatus {
                session: live.id,
                iterations_done: live.state.iterations_done(),
                iterations: live.state.config().iterations,
                awaiting_labels: live.state.pending().is_some(),
                mae_series: live.state.metrics().iter().map(|m| m.mae).collect(),
                converged_at: report.converged_at,
                learner_confidences: live.learner.confidences(),
                trainer_confidences: live.trainer.belief().confidences(),
            }
        }),
        Request::Status { session: None } => {
            let snap = ctx.store.snapshot();
            Response::ServerStatus {
                live_sessions: snap.live_sessions,
                capacity: snap.capacity,
                created_total: snap.counters.created_total,
                evicted_total: snap.counters.evicted_total,
                busy_rejections: snap.counters.busy_rejections,
                round_latency_samples: snap.round_latency.samples,
                round_latency_p50_ms: snap.round_latency.p50_ms,
                round_latency_p99_ms: snap.round_latency.p99_ms,
            }
        }
        Request::Close { session } => match ctx.store.remove(session) {
            Ok(()) => Response::Closed { session },
            Err(_) => err(ErrorCode::UnknownSession, &format!("no session {session}")),
        },
        Request::Shutdown => {
            ctx.begin_shutdown();
            Response::ShuttingDown
        }
    }
}

fn err(code: ErrorCode, message: &str) -> Response {
    Response::Error {
        code,
        message: message.to_string(),
    }
}

fn run_on_session(
    ctx: &Arc<ServerCtx>,
    session: u64,
    f: impl FnOnce(&mut crate::store::LiveSession) -> Response,
) -> Response {
    match ctx.store.with_session(session, f) {
        Ok(resp) => resp,
        Err(_) => err(ErrorCode::UnknownSession, &format!("no session {session}")),
    }
}

fn done_reply(live: &crate::store::LiveSession) -> Response {
    let report = live.state.convergence_so_far();
    Response::Done {
        session: live.id,
        iterations_run: live.state.iterations_done(),
        converged_at: report.converged_at,
        final_mae: report.final_mae,
    }
}

fn pairs_reply(live: &crate::store::LiveSession) -> Response {
    let Some(pending) = live.state.pending() else {
        return err(ErrorCode::WrongPhase, "no pending presentation");
    };
    let pairs: Vec<WirePair> = pending
        .pairs()
        .iter()
        .map(|p| WirePair { a: p.a, b: p.b })
        .collect();
    let sample = pending.sample().to_vec();
    let tuples = sample
        .iter()
        .map(|&r| live.state.table().row_texts(r).join(" | "))
        .collect();
    Response::Pairs {
        session: live.id,
        t: live.state.iterations_done(),
        pairs,
        sample,
        tuples,
    }
}

fn next_pairs(live: &mut crate::store::LiveSession) -> Response {
    // Idempotent: an unanswered presentation is re-served, so a client that
    // lost a reply can simply ask again.
    if live.state.pending().is_some() {
        return pairs_reply(live);
    }
    enum Outcome {
        Presented,
        Complete,
        OutOfPhase,
    }
    let outcome = {
        let crate::store::LiveSession { state, learner, .. } = live;
        match state.present(learner) {
            Ok(Some(_)) => Outcome::Presented,
            Ok(None) => Outcome::Complete,
            Err(_) => Outcome::OutOfPhase,
        }
    };
    match outcome {
        Outcome::Presented => pairs_reply(live),
        Outcome::Complete => {
            live.reported_done = true;
            done_reply(live)
        }
        Outcome::OutOfPhase => err(ErrorCode::WrongPhase, "labels are pending"),
    }
}

fn submit_labels(
    live: &mut crate::store::LiveSession,
    labels: Option<Vec<bool>>,
    latency: Option<&crate::store::LatencyHistogram>,
) -> Response {
    let Some(expected) = live.state.pending().map(|p| p.sample().len()) else {
        return err(
            ErrorCode::WrongPhase,
            "no pending presentation; call next_pairs first",
        );
    };
    // Validate caller-supplied labels *before* the trainer observes the
    // sample, so a rejected submit leaves the session untouched and
    // retryable.
    if let Some(supplied) = &labels {
        if supplied.len() != expected {
            return err(
                ErrorCode::WrongPhase,
                &format!(
                    "expected {expected} labels (one per sample tuple), got {}",
                    supplied.len()
                ),
            );
        }
    }
    let session = live.id;
    let crate::store::LiveSession {
        state,
        trainer,
        learner,
        ..
    } = live;
    // The hosted annotator always observes the presented sample (its belief
    // tracks the data); its labels are used unless the caller supplied
    // their own. The round timer covers exactly that core step — hosted
    // labeling plus the learner/belief update and WAL append — not the
    // cadence snapshot or reply encoding.
    let round_start = std::time::Instant::now();
    let hosted = match state.label_pending(trainer) {
        Ok(l) => l,
        Err(e) => return err(ErrorCode::WrongPhase, &e.to_string()),
    };
    let applied = labels.unwrap_or(hosted);
    match state.apply_labels(trainer, learner, &applied) {
        Ok(metrics) => {
            if let Some(h) = latency {
                h.record(round_start.elapsed());
            }
            let metrics = metrics.clone();
            // Best-effort cadence snapshot: the WAL append inside
            // apply_labels already made the batch durable, so a failed
            // snapshot costs replay time at recovery, never data.
            if let Err(e) = state.maybe_snapshot(trainer, learner) {
                eprintln!("et-serve: snapshot of session {session} failed: {e}");
            }
            Response::Labeled {
                session,
                labels: applied,
                metrics,
            }
        }
        // The journal could not durably record the batch: the presentation
        // stays pending and the submit is retryable. Do NOT acknowledge.
        Err(StepError::Journal(e)) => err(
            ErrorCode::Internal,
            &format!("labels were not durably recorded: {e}"),
        ),
        Err(e) => err(ErrorCode::WrongPhase, &e.to_string()),
    }
}
