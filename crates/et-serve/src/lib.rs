//! `et-serve` — exploratory-training sessions as a network service.
//!
//! The paper's setting is interactive: a trainer labels the pairs an
//! active learner presents, one interaction at a time. The rest of the
//! workspace runs that dialogue as a closed in-process loop
//! ([`et_core::run_session`]); this crate opens it up over TCP so a real
//! annotator — or a remote load generator — can drive a session
//! incrementally.
//!
//! The pieces, bottom-up:
//!
//! * [`json`] — a hand-rolled JSON value/encoder/parser (the build
//!   resolves crates offline, so no serde). Number encoding is
//!   shortest-round-trip, which makes wire-reported metrics *exactly*
//!   comparable to batch results.
//! * [`protocol`] — the newline-delimited request/response grammar with
//!   typed error codes.
//! * [`spec`] — `(spec, seed) → session parts`, the pure build pipeline
//!   shared by the server and the batch reference path.
//! * [`store`] — the sharded, capacity-bounded live-session map with
//!   idle-timeout eviction.
//! * [`event`] — the std-only readiness machinery: an epoll FFI shim,
//!   eventfd waker, `SO_REUSEPORT` listener fan-out, and a timer wheel.
//! * [`conn`] — per-connection state for the event transport: newline
//!   framing over non-blocking reads and a buffered write side.
//! * [`server`] — both transports (readiness event loop with sharded
//!   acceptors, or `--blocking` thread-per-connection), the worker
//!   pool, and graceful shutdown.
//! * [`client`] — a small blocking client used by the example, the
//!   load-smoke binary, and the integration tests.
//! * [`loadgen`] — an open-loop load generator over the same poller,
//!   feeding `load_smoke --connections` and the `bench_serve` harness.
//!
//! Protocol grammar and the session state machine are documented in
//! DESIGN.md §9; the event transport in DESIGN.md §16.

pub mod client;
pub mod conn;
pub mod durability;
pub mod event;
pub mod json;
pub mod loadgen;
pub mod protocol;
pub mod server;
pub mod spec;
pub mod store;

pub use client::{Client, ClientError, DriveOutcome};
pub use conn::{LineFramer, DEFAULT_MAX_LINE_BYTES};
pub use durability::{read_meta, session_dir_name, write_meta, SessionMeta};
pub use json::{Json, JsonError};
pub use loadgen::{run_load, LoadConfig, LoadReport};
pub use protocol::{ErrorCode, Request, Response, WirePair};
pub use server::{spawn, ServeMode, ServerConfig, ServerHandle};
pub use spec::{build_parts, derive_seed, run_batch, CreateSessionSpec, SessionParts};
pub use store::{
    LatencyHistogram, LatencySummary, RecoveryReport, SessionStore, StoreConfig, StoreError,
};
