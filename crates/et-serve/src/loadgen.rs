//! An open-loop load generator for et-serve, event-driven on the client
//! side so one thread can hold hundreds of mostly-idle connections — the
//! same workload shape the server's event transport exists for.
//!
//! Each connection runs the annotation dialogue (`create_session`, then
//! rounds of `next_pairs` + `submit_labels` with hosted labels) against a
//! **fixed-increment virtual schedule**: connection `i` owes round `k` at
//! `start + i/(C·rate) + k/rate`. The schedule advances regardless of
//! whether replies have arrived (open loop), so a server that cannot keep
//! up accumulates backlog instead of silently slowing the offered load —
//! and `next_pairs` latency is measured **from the round's due time**,
//! which makes the histograms coordinated-omission aware. `submit_labels`
//! latency is measured from its send time (it is issued the instant the
//! pairs reply lands). No wall-clock randomness anywhere: reruns offer
//! the identical schedule.
//!
//! Per-op p50/p99/p999 come from the store's log₂-µs
//! [`LatencyHistogram`], so client-side numbers are bucketed exactly like
//! the server's own round-latency telemetry.

use std::collections::{BinaryHeap, VecDeque};
use std::io;
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

use crate::conn::{Conn, ReadOutcome};
use crate::event::{Event, Poller};
use crate::json::Json;
use crate::protocol::Request;
use crate::spec::CreateSessionSpec;
use crate::store::LatencyHistogram;

/// Load-run parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address.
    pub addr: String,
    /// Concurrent connections, each holding one session.
    pub connections: usize,
    /// Offered rounds per second **per connection**.
    pub rate: f64,
    /// Measurement window.
    pub window: Duration,
    /// Connect/create warm-up before the schedule starts.
    pub grace: Duration,
    /// Session template sent by every connection (the server derives
    /// per-session seeds from its own base seed).
    pub spec: CreateSessionSpec,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            addr: String::new(),
            connections: 64,
            rate: 2.0,
            window: Duration::from_secs(5),
            grace: Duration::from_secs(1),
            spec: CreateSessionSpec::default(),
        }
    }
}

/// Quantile summary of one operation's latency histogram.
#[derive(Debug, Clone, Copy, Default)]
pub struct OpStats {
    /// Samples recorded (completed operations).
    pub samples: u64,
    /// Estimated median, ms (log₂-bucket upper bound).
    pub p50_ms: f64,
    /// Estimated 99th percentile, ms.
    pub p99_ms: f64,
    /// Estimated 99.9th percentile, ms.
    pub p999_ms: f64,
}

fn op_stats(h: &LatencyHistogram) -> OpStats {
    OpStats {
        samples: h.samples(),
        p50_ms: h.quantile_ms(0.50).unwrap_or(0.0),
        p99_ms: h.quantile_ms(0.99).unwrap_or(0.0),
        p999_ms: h.quantile_ms(0.999).unwrap_or(0.0),
    }
}

/// What a load run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Connections opened.
    pub connections: usize,
    /// Offered rounds per second per connection.
    pub rate_per_conn: f64,
    /// Measurement window, seconds.
    pub window_secs: f64,
    /// Rounds (pairs + labeled) completed inside the window.
    pub rounds_completed: u64,
    /// `rounds_completed / window_secs`.
    pub throughput_rps: f64,
    /// Connections that completed at least one round — a thread-per-
    /// connection server with fewer workers than connections serves only
    /// this many.
    pub conns_served: usize,
    /// `next_pairs` latency, measured from each round's virtual due time.
    pub next_pairs: OpStats,
    /// `submit_labels` latency, measured from send.
    pub submit: OpStats,
}

enum Phase {
    AwaitCreate,
    Idle,
    AwaitPairs { due: Instant },
    AwaitLabeled { sent: Instant },
    Dead,
}

struct Sim {
    conn: Conn,
    session: u64,
    phase: Phase,
    /// Rounds owed by the schedule but not yet started (server behind).
    pending_dues: VecDeque<Instant>,
    rounds_done: u64,
    served: bool,
}

fn encode_request(req: &Request) -> String {
    let mut line = req.to_json().encode();
    line.push('\n');
    line
}

/// Runs one open-loop load test against a live server.
///
/// # Errors
/// Setup failures (poller creation, connecting the client sockets). A
/// connection dying mid-run is not an error — it just stops contributing.
pub fn run_load(cfg: &LoadConfig) -> io::Result<LoadReport> {
    let connections = cfg.connections.max(1);
    let rate = if cfg.rate > 0.001 { cfg.rate } else { 0.001 };
    let poller = Poller::new()?;
    let create_line = encode_request(&Request::Create(cfg.spec.clone()));

    let mut sims: Vec<Sim> = Vec::with_capacity(connections);
    let setup = Instant::now();
    for i in 0..connections {
        let stream = TcpStream::connect(&cfg.addr)?;
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        let token = u64::try_from(i).unwrap_or(u64::MAX);
        poller.add(stream.as_raw_fd(), token, true, false)?;
        let mut conn = Conn::new(stream, token, crate::conn::DEFAULT_MAX_LINE_BYTES, setup);
        conn.queue_write(create_line.as_bytes());
        sims.push(Sim {
            conn,
            session: 0,
            phase: Phase::AwaitCreate,
            pending_dues: VecDeque::new(),
            rounds_done: 0,
            served: false,
        });
    }
    // Kick the create requests out (interest fixes follow in the loop).
    for sim in &mut sims {
        flush_and_set_interest(&poller, &mut sim.conn);
    }

    let start = Instant::now() + cfg.grace;
    let end = start + cfg.window;
    let per_round = Duration::from_secs_f64(1.0 / rate);
    let stagger = Duration::from_secs_f64(1.0 / (rate * connections as f64));

    // The virtual schedule: every connection's round 0, staggered evenly
    // over one round interval. Firing a due immediately schedules the
    // next, so the offered load never depends on server progress.
    let mut schedule: BinaryHeap<std::cmp::Reverse<(Instant, usize)>> =
        BinaryHeap::with_capacity(connections);
    for i in 0..connections {
        schedule.push(std::cmp::Reverse((start + stagger * u32_of(i), i)));
    }

    let next_hist = LatencyHistogram::new();
    let submit_hist = LatencyHistogram::new();
    let mut rounds_completed: u64 = 0;
    let mut events: Vec<Event> = Vec::new();

    loop {
        let now = Instant::now();
        if now >= end {
            break;
        }
        // Fire every due round: record the debt, advance the schedule.
        while let Some(&std::cmp::Reverse((due, i))) = schedule.peek() {
            if due > now {
                break;
            }
            schedule.pop();
            if due + per_round < end {
                schedule.push(std::cmp::Reverse((due + per_round, i)));
            }
            let sim = &mut sims[i];
            if !matches!(sim.phase, Phase::Dead) {
                sim.pending_dues.push_back(due);
                maybe_start_round(&poller, sim);
            }
        }

        let horizon = schedule
            .peek()
            .map_or(end, |std::cmp::Reverse((due, _))| (*due).min(end));
        let timeout = horizon.saturating_duration_since(now);
        events.clear();
        poller.wait(&mut events, Some(timeout.max(Duration::from_millis(1))))?;
        let now = Instant::now();
        for ev in events.iter().copied() {
            let idx = usize::try_from(ev.token).unwrap_or(0);
            let Some(sim) = sims.get_mut(idx) else {
                continue;
            };
            if matches!(sim.phase, Phase::Dead) {
                continue;
            }
            if ev.hangup {
                kill(&poller, sim);
                continue;
            }
            if ev.readable {
                match sim.conn.read_ready(now) {
                    Ok(ReadOutcome::Progress { .. }) => {}
                    Ok(ReadOutcome::Eof { .. }) | Ok(ReadOutcome::Protocol(_)) | Err(_) => {
                        // Drain whatever full replies arrived, then die.
                        process_replies(
                            sim,
                            now,
                            start,
                            &next_hist,
                            &submit_hist,
                            &mut rounds_completed,
                        );
                        kill(&poller, sim);
                        continue;
                    }
                }
                process_replies(
                    sim,
                    now,
                    start,
                    &next_hist,
                    &submit_hist,
                    &mut rounds_completed,
                );
                maybe_start_round(&poller, sim);
            }
            flush_and_set_interest(&poller, &mut sim.conn);
        }
    }

    let window_secs = cfg.window.as_secs_f64();
    Ok(LoadReport {
        connections,
        rate_per_conn: rate,
        window_secs,
        rounds_completed,
        throughput_rps: rounds_completed as f64 / window_secs,
        conns_served: sims.iter().filter(|s| s.served).count(),
        next_pairs: op_stats(&next_hist),
        submit: op_stats(&submit_hist),
    })
}

fn u32_of(i: usize) -> u32 {
    u32::try_from(i).unwrap_or(u32::MAX)
}

fn kill(poller: &Poller, sim: &mut Sim) {
    let _ = poller.delete(sim.conn.stream().as_raw_fd());
    sim.phase = Phase::Dead;
}

/// Starts the oldest owed round if the connection is idle with a session.
fn maybe_start_round(poller: &Poller, sim: &mut Sim) {
    if !matches!(sim.phase, Phase::Idle) {
        return;
    }
    let Some(due) = sim.pending_dues.pop_front() else {
        return;
    };
    let line = encode_request(&Request::NextPairs {
        session: sim.session,
    });
    sim.conn.queue_write(line.as_bytes());
    sim.phase = Phase::AwaitPairs { due };
    flush_and_set_interest(poller, &mut sim.conn);
}

fn flush_and_set_interest(poller: &Poller, conn: &mut Conn) {
    let _ = conn.flush_ready();
    let want_write = conn.has_pending_output();
    if want_write != conn.want_write
        && poller
            .modify(conn.stream().as_raw_fd(), conn.token, true, want_write)
            .is_ok()
    {
        conn.want_write = want_write;
    }
}

fn process_replies(
    sim: &mut Sim,
    now: Instant,
    window_start: Instant,
    next_hist: &LatencyHistogram,
    submit_hist: &LatencyHistogram,
    rounds_completed: &mut u64,
) {
    while let Some(line) = sim.conn.inbox.pop_front() {
        let Ok(v) = Json::parse(line.trim()) else {
            sim.phase = Phase::Dead;
            return;
        };
        if v.get("ok").and_then(Json::as_bool) != Some(true) {
            // Typed server error (capacity, draining, …): this connection
            // is done contributing.
            sim.phase = Phase::Dead;
            return;
        }
        match v.get("reply").and_then(Json::as_str) {
            Some("created") => {
                let Some(session) = v.get("session").and_then(Json::as_u64) else {
                    sim.phase = Phase::Dead;
                    return;
                };
                sim.session = session;
                sim.phase = Phase::Idle;
            }
            Some("pairs") => {
                if let Phase::AwaitPairs { due } = sim.phase {
                    next_hist.record(now.saturating_duration_since(due));
                    // Submit immediately: hosted labels, measured from
                    // send.
                    let line = encode_request(&Request::SubmitLabels {
                        session: sim.session,
                        labels: None,
                    });
                    sim.conn.queue_write(line.as_bytes());
                    sim.phase = Phase::AwaitLabeled { sent: now };
                } else {
                    sim.phase = Phase::Dead;
                    return;
                }
            }
            Some("labeled") => {
                if let Phase::AwaitLabeled { sent } = sim.phase {
                    submit_hist.record(now.saturating_duration_since(sent));
                    if now >= window_start {
                        *rounds_completed += 1;
                    }
                    sim.rounds_done += 1;
                    sim.served = true;
                    sim.phase = Phase::Idle;
                } else {
                    sim.phase = Phase::Dead;
                    return;
                }
            }
            Some("done") => {
                // The session ran out of iterations: under-provisioned
                // spec for the offered schedule. Stop contributing rather
                // than skew the histograms.
                sim.phase = Phase::Dead;
                return;
            }
            _ => {
                sim.phase = Phase::Dead;
                return;
            }
        }
    }
}
