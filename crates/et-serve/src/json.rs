//! A minimal hand-rolled JSON value, encoder, and recursive-descent parser.
//!
//! The build environment resolves crates offline, so `serde_json` is out of
//! reach; this module covers exactly what the wire protocol needs:
//!
//! * Deterministic encoding — object members keep insertion order, and
//!   numbers print via Rust's `Display` for `f64`, which is
//!   shortest-round-trip: `encode(parse(s))` preserves every finite value
//!   bit for bit. That property is what lets the server report MAE values
//!   that compare *exactly* equal to batch runs on the client side.
//! * A strict parser: full escape handling (including `\uXXXX` surrogate
//!   pairs), a nesting-depth cap so adversarial input cannot blow the
//!   stack, and rejection of non-finite or trailing input.

/// Maximum nesting depth the parser accepts. Deep enough for any protocol
/// message, shallow enough that malformed input cannot overflow the stack.
const MAX_DEPTH: usize = 64;

/// A JSON value.
///
/// Objects are insertion-ordered `(key, value)` vectors rather than maps:
/// the protocol never holds more than a dozen members, linear lookup wins,
/// and encoding stays deterministic. Duplicate keys are kept as parsed;
/// [`Json::get`] returns the first.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (JSON has one number type).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Human-readable cause.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Builds a string value.
    pub fn str(s: &str) -> Json {
        Json::Str(s.to_string())
    }

    /// First member named `key`, when this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean value, when this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric value, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as an unsigned integer, when it is one exactly
    /// (non-negative, integral, within `u64` precision).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        let integral = n.total_cmp(&n.trunc()) == std::cmp::Ordering::Equal;
        if integral && (0.0..=9_007_199_254_740_992.0).contains(&n) {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The string value, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Encodes to compact JSON (no whitespace, `\n`-free — one value fits
    /// one protocol line).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.is_finite() {
                    // `Display` for f64 is shortest-round-trip and never
                    // uses exponent notation, so the output re-parses to
                    // the identical bits.
                    out.push_str(&format!("{n}"));
                } else {
                    // JSON has no NaN/Inf; degrade to null rather than
                    // emit an unparseable token.
                    out.push_str("null");
                }
            }
            Json::Str(s) => encode_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.encode_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_string(k, out);
                    out.push(':');
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON value from `input`; the whole input must be consumed
    /// (trailing whitespace allowed).
    ///
    /// # Errors
    /// [`JsonError`] with the byte offset of the first problem.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing input after value"));
        }
        Ok(v)
    }
}

fn encode_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if u32::from(c) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", u32::from(c)));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect_byte(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so bounds
                    // align with character boundaries).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    let Some(c) = s.chars().next() else {
                        return Err(self.err("unterminated string"));
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (cursor already past the `u`),
    /// combining surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require a \uXXXX low surrogate.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("lone high surrogate"));
        }
        if (0xDC00..0xE000).contains(&hi) {
            return Err(self.err("lone low surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: one digit, or a nonzero digit followed by more.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let n: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        if n.is_finite() {
            Ok(Json::Num(n))
        } else {
            Err(self.err("number out of range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for src in ["null", "true", "false", "0", "-1", "3.25", "1e3", "\"hi\""] {
            let v = Json::parse(src).expect("parses");
            let enc = v.encode();
            assert_eq!(Json::parse(&enc).expect("re-parses"), v, "{src}");
        }
    }

    #[test]
    fn numbers_round_trip_exactly() {
        for n in [0.0, -0.0, 1.0 / 3.0, 0.1, 1e300, 5e-324, 123456789.123456] {
            let enc = Json::Num(n).encode();
            let back = Json::parse(&enc).expect("parses").as_f64().expect("num");
            assert_eq!(back.to_bits(), n.to_bits(), "{n} via {enc}");
        }
    }

    #[test]
    fn non_finite_numbers_encode_as_null() {
        assert_eq!(Json::Num(f64::NAN).encode(), "null");
        assert_eq!(Json::Num(f64::INFINITY).encode(), "null");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a\"b\\c\nd\te\u{08}\u{0c}\u{1f}héllo 😀";
        let enc = Json::Str(s.to_string()).encode();
        assert_eq!(
            Json::parse(&enc).expect("parses").as_str(),
            Some(s),
            "{enc}"
        );
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = Json::parse("\"\\ud83d\\ude00\"").expect("parses");
        assert_eq!(v.as_str(), Some("😀"));
        assert!(Json::parse("\"\\ud83d\"").is_err());
        assert!(Json::parse("\"\\ude00\"").is_err());
    }

    #[test]
    fn objects_keep_order_and_first_duplicate_wins() {
        let v = Json::parse("{\"b\":1,\"a\":2,\"b\":3}").expect("parses");
        assert_eq!(v.encode(), "{\"b\":1,\"a\":2,\"b\":3}");
        assert_eq!(v.get("b").and_then(Json::as_f64), Some(1.0));
    }

    #[test]
    fn malformed_inputs_error() {
        for src in [
            "", "tru", "nul", "[1,", "{\"a\"", "{\"a\":}", "01", "1.", "1e", "-", "\"abc",
            "\"\\x\"", "[1]]", "{}{}", "\u{0}",
        ] {
            assert!(Json::parse(src).is_err(), "{src:?} should fail");
        }
    }

    #[test]
    fn depth_cap_rejects_deep_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(30) + &"]".repeat(30);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn as_u64_accepts_only_exact_integers() {
        assert_eq!(Json::Num(5.0).as_u64(), Some(5));
        assert_eq!(Json::Num(5.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(f64::NAN).as_u64(), None);
    }
}
