//! Per-connection state for the event-driven transport: newline framing
//! over non-blocking reads, a buffered write side, and the bookkeeping the
//! shard loop needs (token, in-flight request, activity clock).
//!
//! This layer knows nothing about the protocol beyond "requests are lines":
//! byte accumulation and line extraction live here, while parsing and
//! dispatch stay in `protocol.rs` / `server.rs`.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// Hard ceiling on a single request line, enforced *while accumulating* so
/// a peer cannot balloon memory by never sending a newline.
pub const DEFAULT_MAX_LINE_BYTES: usize = 1 << 20;

/// The byte stream violated the line-framing contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FramingError {
    /// More than `max` bytes accumulated without (or within) one line.
    Oversized {
        /// The configured per-line ceiling that was exceeded.
        max: usize,
    },
}

/// Accumulates raw bytes and yields complete newline-terminated lines.
///
/// Framing is byte-exact: a line is everything up to `\n` (an optional
/// trailing `\r` is stripped, matching the blocking transport's
/// `BufRead::read_line` + trim behaviour). Once oversized, the framer is
/// poisoned — the connection must be torn down after the typed
/// `protocol_error` reply is flushed.
pub struct LineFramer {
    buf: Vec<u8>,
    /// Scan resume point: bytes before this offset are known newline-free.
    scanned: usize,
    max_line: usize,
    poisoned: bool,
}

impl LineFramer {
    /// A framer enforcing `max_line` bytes per request line.
    pub fn new(max_line: usize) -> LineFramer {
        LineFramer {
            buf: Vec::new(),
            scanned: 0,
            max_line: max_line.max(1),
            poisoned: false,
        }
    }

    /// Appends freshly-read bytes to the frame buffer.
    pub fn push(&mut self, bytes: &[u8]) {
        if !self.poisoned {
            self.buf.extend_from_slice(bytes);
        }
    }

    /// Extracts the next complete line, if one is buffered.
    ///
    /// # Errors
    /// [`FramingError::Oversized`] once the current (complete or partial)
    /// line exceeds the ceiling; every subsequent call repeats the error.
    pub fn next_line(&mut self) -> Result<Option<String>, FramingError> {
        if self.poisoned {
            return Err(FramingError::Oversized { max: self.max_line });
        }
        match self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
            Some(rel) => {
                let end = self.scanned + rel;
                if end > self.max_line {
                    self.poisoned = true;
                    return Err(FramingError::Oversized { max: self.max_line });
                }
                let mut line: Vec<u8> = self.buf.drain(..=end).collect();
                line.pop(); // the newline itself
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                self.scanned = 0;
                Ok(Some(String::from_utf8_lossy(&line).into_owned()))
            }
            None => {
                if self.buf.len() > self.max_line {
                    self.poisoned = true;
                    return Err(FramingError::Oversized { max: self.max_line });
                }
                self.scanned = self.buf.len();
                Ok(None)
            }
        }
    }

    /// True once the framer has rejected the stream.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Bytes currently buffered awaiting a newline.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

/// What a readable-edge drain of the socket produced.
#[derive(Debug, PartialEq, Eq)]
pub enum ReadOutcome {
    /// Socket drained to `WouldBlock`; `lines` complete requests surfaced.
    Progress {
        /// Number of complete lines extracted by this drain.
        lines: usize,
    },
    /// Peer closed its write side (EOF) after `lines` final requests.
    Eof {
        /// Number of complete lines extracted before EOF.
        lines: usize,
    },
    /// The stream violated framing; reply `protocol_error` and close.
    Protocol(FramingError),
}

/// One live connection owned by an event shard.
pub struct Conn {
    stream: TcpStream,
    /// The shard-unique token this connection is registered under.
    pub token: u64,
    framer: LineFramer,
    /// Complete request lines not yet handed to the worker pool.
    pub inbox: VecDeque<String>,
    /// Encoded replies awaiting socket writability.
    out: Vec<u8>,
    /// How much of `out` has already been written.
    out_cursor: usize,
    /// True while a request is at the worker pool; enforces ≤1 in-flight
    /// request per connection, which is what keeps per-session ordering.
    pub in_flight: bool,
    /// Close the connection once `out` fully flushes.
    pub close_after_flush: bool,
    /// Peer half-closed (EOF seen); close once buffered requests are
    /// answered and flushed, matching the blocking transport's
    /// drain-then-close behaviour.
    pub eof: bool,
    /// Advanced only when a *complete* request line arrives — dribbling
    /// bytes without a newline does not count as activity, so slow-loris
    /// peers hit the idle timeout like silent ones.
    pub last_activity: Instant,
    /// The interest set currently registered with the poller.
    pub want_write: bool,
}

impl Conn {
    /// Wraps an accepted stream. The caller has already set non-blocking.
    pub fn new(stream: TcpStream, token: u64, max_line: usize, now: Instant) -> Conn {
        Conn {
            stream,
            token,
            framer: LineFramer::new(max_line),
            inbox: VecDeque::new(),
            out: Vec::new(),
            out_cursor: 0,
            in_flight: false,
            close_after_flush: false,
            eof: false,
            last_activity: now,
            want_write: false,
        }
    }

    /// The underlying socket (for poller registration / shutdown).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Drains the socket until `WouldBlock`/EOF, extracting complete lines
    /// into `inbox` and stamping `last_activity` per completed line.
    ///
    /// # Errors
    /// A hard socket error (not `WouldBlock`/`Interrupted`): close the
    /// connection.
    pub fn read_ready(&mut self, now: Instant) -> io::Result<ReadOutcome> {
        let mut scratch = [0u8; 16 * 1024];
        let mut lines = 0usize;
        let mut eof = false;
        loop {
            match self.stream.read(&mut scratch) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(n) => self.framer.push(&scratch[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        loop {
            match self.framer.next_line() {
                Ok(Some(line)) => {
                    self.last_activity = now;
                    self.inbox.push_back(line);
                    lines += 1;
                }
                Ok(None) => break,
                Err(e) => return Ok(ReadOutcome::Protocol(e)),
            }
        }
        if eof {
            Ok(ReadOutcome::Eof { lines })
        } else {
            Ok(ReadOutcome::Progress { lines })
        }
    }

    /// Queues an encoded reply (already newline-terminated) for writing.
    pub fn queue_write(&mut self, bytes: &[u8]) {
        // Compact lazily: reclaim the flushed prefix before growing.
        if self.out_cursor > 0 && self.out_cursor == self.out.len() {
            self.out.clear();
            self.out_cursor = 0;
        }
        self.out.extend_from_slice(bytes);
    }

    /// Writes as much queued output as the socket accepts. Returns `true`
    /// when the queue is fully flushed.
    ///
    /// # Errors
    /// A hard socket error (not `WouldBlock`/`Interrupted`): close the
    /// connection.
    pub fn flush_ready(&mut self) -> io::Result<bool> {
        while self.out_cursor < self.out.len() {
            match self.stream.write(&self.out[self.out_cursor..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => self.out_cursor += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.out.clear();
        self.out_cursor = 0;
        Ok(true)
    }

    /// True when queued output remains unflushed.
    pub fn has_pending_output(&self) -> bool {
        self.out_cursor < self.out.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn framer_extracts_lines_across_partial_pushes() {
        let mut f = LineFramer::new(1024);
        f.push(b"hel");
        assert_eq!(f.next_line().expect("frame"), None);
        f.push(b"lo\nwor");
        assert_eq!(f.next_line().expect("frame").as_deref(), Some("hello"));
        assert_eq!(f.next_line().expect("frame"), None);
        f.push(b"ld\n");
        assert_eq!(f.next_line().expect("frame").as_deref(), Some("world"));
        assert_eq!(f.next_line().expect("frame"), None);
    }

    #[test]
    fn framer_handles_pipelined_segment() {
        let mut f = LineFramer::new(1024);
        f.push(b"a\r\nb\n\nc\n");
        let mut got = Vec::new();
        while let Some(line) = f.next_line().expect("frame") {
            got.push(line);
        }
        assert_eq!(got, vec!["a", "b", "", "c"]);
    }

    #[test]
    fn framer_poisons_on_oversized_partial() {
        let mut f = LineFramer::new(8);
        f.push(b"123456789"); // 9 bytes, no newline
        assert_eq!(f.next_line(), Err(FramingError::Oversized { max: 8 }));
        assert!(f.poisoned());
        // Error is sticky even if a newline arrives later.
        f.push(b"\n");
        assert_eq!(f.next_line(), Err(FramingError::Oversized { max: 8 }));
    }

    #[test]
    fn framer_poisons_on_oversized_complete_line() {
        let mut f = LineFramer::new(4);
        f.push(b"short\n");
        assert_eq!(f.next_line(), Err(FramingError::Oversized { max: 4 }));
    }

    #[test]
    fn framer_accepts_line_exactly_at_limit() {
        let mut f = LineFramer::new(4);
        f.push(b"abcd\nef\n");
        assert_eq!(f.next_line().expect("frame").as_deref(), Some("abcd"));
        assert_eq!(f.next_line().expect("frame").as_deref(), Some("ef"));
    }
}
