//! On-disk layout for durable sessions: one directory per session holding
//! the creation metadata, the label WAL, and state snapshots.
//!
//! ```text
//! <data-dir>/session-<id:016x>/meta.bin       spec + resolved seed (this module)
//! <data-dir>/session-<id:016x>/labels.wal     et-core session journal
//! <data-dir>/session-<id:016x>/snap-*.bin     et-core session snapshots
//! ```
//!
//! The metadata is what recovery needs to rebuild the session *environment*
//! (table, hypothesis space, agents) from the pure `(spec, seed)` pipeline
//! in [`crate::spec::build_parts`]; the journal then replays the labels.
//! `meta.bin` reuses the checksummed atomic-write container from
//! [`et_durable::snapshot`], so a torn meta write is detected, never
//! half-trusted.

use std::path::{Path, PathBuf};

use et_core::StrategyKind;
use et_data::gen::DatasetName;
use et_durable::{snapshot, Dec, DurableError, Enc};

use crate::spec::CreateSessionSpec;

/// Metadata format version.
const META_VERSION: u8 = 1;
/// The metadata filename inside a session directory.
const META_FILE: &str = "meta.bin";
/// Session directory name prefix.
const DIR_PREFIX: &str = "session-";

/// Everything needed to rebuild a session's environment at recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionMeta {
    /// The session id the server handed out.
    pub id: u64,
    /// The *resolved* seed the session runs under (explicit or derived).
    pub seed: u64,
    /// The creation spec, verbatim.
    pub spec: CreateSessionSpec,
}

/// The directory name for session `id` (fixed-width hex so lexical order
/// is id order).
pub fn session_dir_name(id: u64) -> String {
    format!("{DIR_PREFIX}{id:016x}")
}

/// Parses a [`session_dir_name`]-shaped directory name back to an id.
pub fn parse_session_dir_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix(DIR_PREFIX)?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

fn encode_meta(meta: &SessionMeta) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.put_u8(META_VERSION);
    enc.put_u64(meta.id);
    enc.put_u64(meta.seed);
    enc.put_str(meta.spec.dataset.as_str());
    enc.put_usize(meta.spec.rows);
    enc.put_f64(meta.spec.degree);
    enc.put_str(meta.spec.strategy.as_str());
    enc.put_usize(meta.spec.iterations);
    enc.put_usize(meta.spec.pairs_per_iteration);
    enc.put_f64(meta.spec.test_frac);
    match meta.spec.seed {
        None => enc.put_bool(false),
        Some(s) => {
            enc.put_bool(true);
            enc.put_u64(s);
        }
    }
    enc.into_bytes()
}

fn decode_meta(payload: &[u8]) -> Result<SessionMeta, DurableError> {
    let mut dec = Dec::new(payload);
    let version = dec.take_u8()?;
    if version != META_VERSION {
        return Err(DurableError::decode(format!(
            "meta version {version}, expected {META_VERSION}"
        )));
    }
    let id = dec.take_u64()?;
    let seed = dec.take_u64()?;
    let dataset_name = dec.take_str()?;
    let dataset = DatasetName::ALL
        .into_iter()
        .find(|d| d.as_str() == dataset_name)
        .ok_or_else(|| DurableError::decode(format!("unknown dataset {dataset_name:?}")))?;
    let rows = dec.take_usize()?;
    let degree = dec.take_f64()?;
    let strategy_name = dec.take_str()?;
    let strategy = StrategyKind::from_name(&strategy_name)
        .ok_or_else(|| DurableError::decode(format!("unknown strategy {strategy_name:?}")))?;
    let iterations = dec.take_usize()?;
    let pairs_per_iteration = dec.take_usize()?;
    let test_frac = dec.take_f64()?;
    let explicit_seed = if dec.take_bool()? {
        Some(dec.take_u64()?)
    } else {
        None
    };
    dec.finish()?;
    Ok(SessionMeta {
        id,
        seed,
        spec: CreateSessionSpec {
            dataset,
            rows,
            degree,
            strategy,
            iterations,
            pairs_per_iteration,
            test_frac,
            seed: explicit_seed,
        },
    })
}

/// Atomically writes the session metadata into `dir`.
///
/// # Errors
/// [`DurableError::Io`] when the write fails.
pub fn write_meta(dir: &Path, meta: &SessionMeta, sync: bool) -> Result<(), DurableError> {
    snapshot::write_atomic(dir, META_FILE, &encode_meta(meta), sync)?;
    Ok(())
}

/// Reads and validates the session metadata from `dir`.
///
/// # Errors
/// [`DurableError::Io`] when the file is unreadable, [`DurableError::Corrupt`]
/// when the checksum fails, [`DurableError::Decode`] on format skew.
pub fn read_meta(dir: &Path) -> Result<SessionMeta, DurableError> {
    decode_meta(&snapshot::read(&dir.join(META_FILE))?)
}

/// Lists the session directories under `data_dir`, ascending by id.
///
/// Sorted explicitly: `read_dir` order is platform-dependent, and recovery
/// must assign ids and pick capacity winners deterministically.
///
/// # Errors
/// [`DurableError::Io`] when `data_dir` cannot be read.
pub fn list_session_dirs(data_dir: &Path) -> Result<Vec<(u64, PathBuf)>, DurableError> {
    let entries =
        std::fs::read_dir(data_dir).map_err(|e| DurableError::io("read data dir", data_dir, &e))?;
    let mut out = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| DurableError::io("read data dir entry", data_dir, &e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(id) = parse_session_dir_name(name) else {
            continue;
        };
        if entry.path().is_dir() {
            out.push((id, entry.path()));
        }
    }
    out.sort_unstable_by_key(|&(id, _)| id);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let mut dir = std::env::temp_dir();
        dir.push(format!("et-serve-meta-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create tempdir");
        dir
    }

    #[test]
    fn meta_round_trips() {
        let dir = tempdir("roundtrip");
        let meta = SessionMeta {
            id: 0xBEEF,
            seed: 42,
            spec: CreateSessionSpec {
                dataset: DatasetName::Hospital,
                rows: 120,
                degree: 0.2,
                strategy: StrategyKind::UncertaintySampling,
                iterations: 9,
                pairs_per_iteration: 4,
                test_frac: 0.25,
                seed: Some(42),
            },
        };
        write_meta(&dir, &meta, false).expect("write");
        assert_eq!(read_meta(&dir).expect("read"), meta);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_meta_is_rejected() {
        let dir = tempdir("corrupt");
        let meta = SessionMeta {
            id: 1,
            seed: 2,
            spec: CreateSessionSpec::default(),
        };
        write_meta(&dir, &meta, false).expect("write");
        let path = dir.join(META_FILE);
        let mut bytes = std::fs::read(&path).expect("read back");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).expect("corrupt");
        assert!(read_meta(&dir).is_err(), "flipped bit must fail the crc");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dir_names_round_trip_and_sort_by_id() {
        assert_eq!(parse_session_dir_name(&session_dir_name(7)), Some(7));
        assert_eq!(
            parse_session_dir_name(&session_dir_name(u64::MAX)),
            Some(u64::MAX)
        );
        assert_eq!(parse_session_dir_name("session-zz"), None);
        assert_eq!(parse_session_dir_name("other"), None);
        // Fixed-width hex: lexical order is id order.
        assert!(session_dir_name(9) < session_dir_name(10));
        assert!(session_dir_name(255) < session_dir_name(4096));
    }

    #[test]
    fn list_skips_foreign_entries() {
        let dir = tempdir("list");
        std::fs::create_dir(dir.join(session_dir_name(3))).expect("mk 3");
        std::fs::create_dir(dir.join(session_dir_name(1))).expect("mk 1");
        std::fs::create_dir(dir.join("not-a-session")).expect("mk foreign");
        std::fs::write(dir.join("stray.txt"), b"x").expect("stray file");
        let listed = list_session_dirs(&dir).expect("list");
        let ids: Vec<u64> = listed.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, vec![1, 3], "sorted, foreign entries skipped");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
