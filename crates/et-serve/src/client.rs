//! A small blocking client for the line-JSON protocol, used by the
//! example walkthrough, the load-smoke binary, and the integration tests.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use crate::json::Json;
use crate::protocol::{ErrorCode, Request};
use crate::spec::CreateSessionSpec;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed or dropped.
    Io(std::io::Error),
    /// The server's reply was not understood.
    Protocol(String),
    /// The server replied with a typed error.
    Server {
        /// Machine-readable code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server { code, message } => {
                write!(f, "server error {}: {message}", code.as_str())
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// The outcome of driving one session to completion.
#[derive(Debug, Clone)]
pub struct DriveOutcome {
    /// The session id.
    pub session: u64,
    /// The seed the server ran the session under.
    pub seed: u64,
    /// Per-iteration MAE, as reported over the wire.
    pub mae_series: Vec<f64>,
    /// Interactions executed.
    pub iterations_run: usize,
    /// First stable iteration, if the session converged.
    pub converged_at: Option<usize>,
    /// Final MAE.
    pub final_mae: f64,
}

/// A connected protocol client.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    /// Connection failures.
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { writer, reader })
    }

    /// Sends one request and reads one reply object. Typed server errors
    /// become [`ClientError::Server`].
    ///
    /// # Errors
    /// Io, protocol, or server failures.
    pub fn call(&mut self, request: &Request) -> Result<Json, ClientError> {
        let mut line = request.to_json().encode();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(ClientError::Protocol("connection closed".to_string()));
        }
        let v = Json::parse(reply.trim())
            .map_err(|e| ClientError::Protocol(format!("bad reply: {e}")))?;
        match v.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(v),
            Some(false) => {
                let code = v
                    .get("error")
                    .and_then(Json::as_str)
                    .and_then(ErrorCode::from_name)
                    .ok_or_else(|| ClientError::Protocol("error reply without code".to_string()))?;
                let message = v
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string();
                Err(ClientError::Server { code, message })
            }
            None => Err(ClientError::Protocol(
                "reply missing \"ok\" member".to_string(),
            )),
        }
    }

    /// Creates a session; returns `(session, seed)`.
    ///
    /// # Errors
    /// Io, protocol, or server failures.
    pub fn create_session(&mut self, spec: &CreateSessionSpec) -> Result<(u64, u64), ClientError> {
        let v = self.call(&Request::Create(spec.clone()))?;
        let session = field_u64(&v, "session")?;
        let seed = field_u64(&v, "seed")?;
        Ok((session, seed))
    }

    /// Asks for the next presentation; returns the raw reply (`"reply"` is
    /// either `"pairs"` or `"done"`).
    ///
    /// # Errors
    /// Io, protocol, or server failures.
    pub fn next_pairs(&mut self, session: u64) -> Result<Json, ClientError> {
        self.call(&Request::NextPairs { session })
    }

    /// Submits labels (`None` delegates to the hosted annotator).
    ///
    /// # Errors
    /// Io, protocol, or server failures.
    pub fn submit_labels(
        &mut self,
        session: u64,
        labels: Option<Vec<bool>>,
    ) -> Result<Json, ClientError> {
        self.call(&Request::SubmitLabels { session, labels })
    }

    /// Fetches a session or server status snapshot.
    ///
    /// # Errors
    /// Io, protocol, or server failures.
    pub fn status(&mut self, session: Option<u64>) -> Result<Json, ClientError> {
        self.call(&Request::Status { session })
    }

    /// Closes a session.
    ///
    /// # Errors
    /// Io, protocol, or server failures.
    pub fn close_session(&mut self, session: u64) -> Result<(), ClientError> {
        self.call(&Request::Close { session })?;
        Ok(())
    }

    /// Requests graceful server shutdown.
    ///
    /// # Errors
    /// Io, protocol, or server failures.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.call(&Request::Shutdown)?;
        Ok(())
    }

    /// Drives session `session` to completion with hosted labels,
    /// collecting the per-iteration MAE curve as reported on the wire.
    ///
    /// # Errors
    /// Io, protocol, or server failures.
    pub fn drive_auto(&mut self, session: u64, seed: u64) -> Result<DriveOutcome, ClientError> {
        let mut mae_series = Vec::new();
        loop {
            let reply = self.next_pairs(session)?;
            match reply.get("reply").and_then(Json::as_str) {
                Some("pairs") => {
                    let labeled = self.submit_labels(session, None)?;
                    let mae = labeled
                        .get("metrics")
                        .and_then(|m| m.get("mae"))
                        .and_then(Json::as_f64)
                        .ok_or_else(|| {
                            ClientError::Protocol("labeled reply without mae".to_string())
                        })?;
                    mae_series.push(mae);
                }
                Some("done") => {
                    let iterations_run = field_u64(&reply, "iterations_run")? as usize;
                    let converged_at = reply
                        .get("converged_at")
                        .and_then(Json::as_u64)
                        .map(|n| n as usize);
                    let final_mae =
                        reply
                            .get("final_mae")
                            .and_then(Json::as_f64)
                            .ok_or_else(|| {
                                ClientError::Protocol("done reply without final_mae".to_string())
                            })?;
                    return Ok(DriveOutcome {
                        session,
                        seed,
                        mae_series,
                        iterations_run,
                        converged_at,
                        final_mae,
                    });
                }
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected reply kind {other:?}"
                    )))
                }
            }
        }
    }
}

fn field_u64(v: &Json, key: &str) -> Result<u64, ClientError> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| ClientError::Protocol(format!("reply missing numeric {key:?}")))
}
