//! Readiness primitives for the event-driven transport: a hand-rolled
//! `epoll` wrapper, an `eventfd` waker, `SO_REUSEPORT` listener sharding,
//! and a coarse timer wheel for idle/slow-loris connection timeouts.
//!
//! The repo's no-deps discipline rules out `mio`/`libc`; instead this
//! module declares the handful of C symbols it needs directly (std already
//! links libc on Linux, so they resolve at link time) and owns every file
//! descriptor through [`std::os::fd::OwnedFd`]. Only Linux is supported:
//! on other targets the module is a loud compile-time error — the blocking
//! transport (`--blocking`) is the portable path and the only thing a
//! non-Linux port needs to keep working.
//!
//! Nothing in here touches session logic; see DESIGN.md §16 for how the
//! transport, routing, and domain layers stack.

#[cfg(not(target_os = "linux"))]
compile_error!(
    "et-serve's readiness-based event loop is built on Linux epoll. \
     Port hint: add a kqueue implementation of `Poller`/`Waker` behind \
     `#[cfg(target_os = \"macos\")]`, or build only the blocking transport."
);

use std::ffi::{c_int, c_void};
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::time::{Duration, Instant};

// The exact C ABI surface this module uses. Signatures mirror the Linux
// manpages; `sockaddr` pointers are passed as `*const c_void` because the
// only caller builds the one concrete layout it needs (`SockAddrIn`).
extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: u32, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    fn setsockopt(
        fd: c_int,
        level: c_int,
        optname: c_int,
        optval: *const c_void,
        optlen: u32,
    ) -> c_int;
    fn bind(fd: c_int, addr: *const c_void, addrlen: u32) -> c_int;
    fn listen(fd: c_int, backlog: c_int) -> c_int;
    fn getsockname(fd: c_int, addr: *mut c_void, addrlen: *mut u32) -> c_int;
}

const EPOLL_CLOEXEC: c_int = 0x8_0000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
const EFD_CLOEXEC: c_int = 0x8_0000;
const EFD_NONBLOCK: c_int = 0x800;
const AF_INET: c_int = 2;
const SOCK_STREAM: c_int = 1;
const SOCK_CLOEXEC: c_int = 0x8_0000;
const SOL_SOCKET: c_int = 1;
const SO_REUSEADDR: c_int = 2;
const SO_REUSEPORT: c_int = 15;
const LISTEN_BACKLOG: c_int = 1024;

/// `struct epoll_event`. The kernel packs it on x86-64 only.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    /// The `epoll_data_t` union, used exclusively as a `u64` token.
    data: u64,
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Readable (or a peer half-close, which also needs a read to observe).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error/hangup: the connection is dead or dying.
    pub hangup: bool,
}

fn last_errno() -> io::Error {
    io::Error::last_os_error()
}

/// Checks a C return value, mapping `-1` to the thread's errno.
fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(last_errno())
    } else {
        Ok(ret)
    }
}

/// A readiness queue: one `epoll` instance.
pub struct Poller {
    ep: OwnedFd,
}

impl Poller {
    /// Creates the epoll instance.
    ///
    /// # Errors
    /// The raw `epoll_create1` failure.
    pub fn new() -> io::Result<Poller> {
        // SAFETY: epoll_create1 takes no pointers; a non-negative return is
        // a real fd that we immediately take ownership of.
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        // SAFETY: fd was just returned by the kernel and is owned nowhere
        // else.
        Ok(Poller {
            ep: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it before
        // returning. `fd` validity is the caller's contract.
        cvt(unsafe { epoll_ctl(self.ep.as_raw_fd(), op, fd, &mut ev) })?;
        Ok(())
    }

    fn interest_bits(readable: bool, writable: bool) -> u32 {
        let mut bits = EPOLLRDHUP;
        if readable {
            bits |= EPOLLIN;
        }
        if writable {
            bits |= EPOLLOUT;
        }
        bits
    }

    /// Registers `fd` under `token` with the given interest set.
    ///
    /// # Errors
    /// The raw `epoll_ctl` failure.
    pub fn add(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_ADD,
            fd,
            Self::interest_bits(readable, writable),
            token,
        )
    }

    /// Replaces the interest set of an already-registered `fd`.
    ///
    /// # Errors
    /// The raw `epoll_ctl` failure.
    pub fn modify(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_MOD,
            fd,
            Self::interest_bits(readable, writable),
            token,
        )
    }

    /// Deregisters `fd`.
    ///
    /// # Errors
    /// The raw `epoll_ctl` failure.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks until readiness or `timeout` (None blocks indefinitely),
    /// appending decoded events to `out`. Returns how many arrived.
    /// `EINTR` is retried internally.
    ///
    /// # Errors
    /// The raw `epoll_wait` failure.
    pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        const MAX_EVENTS: usize = 256;
        let mut buf = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        let timeout_ms: c_int = match timeout {
            // Round up so a 0 < t < 1ms timeout does not busy-spin.
            Some(t) => {
                let round_up = u128::from(t.subsec_nanos() % 1_000_000 != 0);
                c_int::try_from(t.as_millis().saturating_add(round_up)).unwrap_or(c_int::MAX)
            }
            None => -1,
        };
        loop {
            // SAFETY: `buf` is a stack array of MAX_EVENTS entries and the
            // kernel writes at most `maxevents` of them.
            let n = unsafe {
                epoll_wait(
                    self.ep.as_raw_fd(),
                    buf.as_mut_ptr(),
                    c_int::try_from(MAX_EVENTS).unwrap_or(c_int::MAX),
                    timeout_ms,
                )
            };
            if n < 0 {
                let e = last_errno();
                if e.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(e);
            }
            let n = usize::try_from(n).unwrap_or(0);
            for ev in &buf[..n] {
                let bits = ev.events;
                out.push(Event {
                    token: ev.data,
                    readable: bits & (EPOLLIN | EPOLLRDHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    hangup: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            return Ok(n);
        }
    }
}

/// A cross-thread wake-up for a [`Poller`]: an `eventfd` registered like
/// any other fd. Writing from any thread makes the owning loop's
/// `epoll_wait` return immediately — this is what bounds shutdown latency
/// to one loop iteration (no stop-flag polling anywhere).
pub struct Waker {
    fd: OwnedFd,
}

impl Waker {
    /// Creates the eventfd.
    ///
    /// # Errors
    /// The raw `eventfd` failure.
    pub fn new() -> io::Result<Waker> {
        // SAFETY: eventfd takes no pointers; a non-negative return is a
        // real fd that we immediately take ownership of.
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        // SAFETY: fd was just returned by the kernel and is owned nowhere
        // else.
        Ok(Waker {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    /// The fd to register with the loop's poller (read interest).
    pub fn as_raw_fd(&self) -> RawFd {
        self.fd.as_raw_fd()
    }

    /// Wakes the owning loop. Callable from any thread; never blocks (a
    /// full eventfd counter already guarantees a pending wake-up).
    pub fn wake(&self) {
        let one: u64 = 1;
        // SAFETY: the buffer is 8 valid bytes on this stack frame; EAGAIN
        // (counter at max) is fine because the loop is already waking.
        let _ = unsafe {
            write(
                self.fd.as_raw_fd(),
                std::ptr::addr_of!(one).cast::<c_void>(),
                8,
            )
        };
    }

    /// Drains pending wake-ups so the next `wake` edge-triggers again.
    pub fn drain(&self) {
        let mut buf = 0u64;
        // SAFETY: the buffer is 8 valid bytes on this stack frame; the fd
        // is non-blocking so the read never parks the loop.
        let _ = unsafe {
            read(
                self.fd.as_raw_fd(),
                std::ptr::addr_of_mut!(buf).cast::<c_void>(),
                8,
            )
        };
    }
}

/// IPv4 `struct sockaddr_in`, the one sockaddr layout the reuse-port path
/// builds by hand.
#[repr(C)]
struct SockAddrIn {
    sin_family: u16,
    /// Big-endian port.
    sin_port: u16,
    /// Big-endian address.
    sin_addr: u32,
    sin_zero: [u8; 8],
}

fn set_opt(fd: c_int, opt: c_int) -> io::Result<()> {
    let one: c_int = 1;
    // SAFETY: optval points at a live c_int of the advertised length.
    cvt(unsafe {
        setsockopt(
            fd,
            SOL_SOCKET,
            opt,
            std::ptr::addr_of!(one).cast::<c_void>(),
            4,
        )
    })?;
    Ok(())
}

/// Binds `n` independent IPv4 listeners to the same address with
/// `SO_REUSEPORT`, so the kernel load-balances incoming connections
/// across event shards with no user-space handoff. Port 0 resolves once
/// (on the first socket) and the rest bind the resolved port.
///
/// # Errors
/// Any socket/bind/listen failure — including a non-IPv4 address — at
/// which point the caller falls back to a single acceptor thread feeding
/// the shards by fd hash.
pub fn reuseport_listeners(addr: &SocketAddr, n: usize) -> io::Result<Vec<TcpListener>> {
    let SocketAddr::V4(v4) = addr else {
        return Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "SO_REUSEPORT sharding is wired for IPv4 only",
        ));
    };
    let mut port = v4.port();
    let mut out = Vec::with_capacity(n.max(1));
    for _ in 0..n.max(1) {
        // SAFETY: socket takes no pointers; ownership is taken immediately
        // below so every early return closes the fd.
        let fd = cvt(unsafe { socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0) })?;
        // SAFETY: fd was just returned by the kernel and is owned nowhere
        // else.
        let owned = unsafe { OwnedFd::from_raw_fd(fd) };
        set_opt(fd, SO_REUSEADDR)?;
        set_opt(fd, SO_REUSEPORT)?;
        let sa = SockAddrIn {
            sin_family: u16::try_from(AF_INET).unwrap_or(2),
            sin_port: port.to_be(),
            sin_addr: u32::from(*v4.ip()).to_be(),
            sin_zero: [0; 8],
        };
        let len = u32::try_from(std::mem::size_of::<SockAddrIn>()).unwrap_or(16);
        // SAFETY: `sa` is a fully-initialised sockaddr_in of the advertised
        // length, alive for the duration of the call.
        cvt(unsafe { bind(fd, std::ptr::addr_of!(sa).cast::<c_void>(), len) })?;
        cvt(unsafe { listen(fd, LISTEN_BACKLOG) })?;
        if port == 0 {
            // Learn the kernel-assigned port so the remaining shards can
            // join the same reuse-port group.
            let mut got = SockAddrIn {
                sin_family: 0,
                sin_port: 0,
                sin_addr: 0,
                sin_zero: [0; 8],
            };
            let mut got_len = len;
            // SAFETY: `got` is a sockaddr_in-sized out-buffer and got_len
            // carries its true length in and out.
            cvt(unsafe {
                getsockname(
                    fd,
                    std::ptr::addr_of_mut!(got).cast::<c_void>(),
                    &mut got_len,
                )
            })?;
            port = u16::from_be(got.sin_port);
        }
        // SAFETY: converting the OwnedFd we hold into a TcpListener
        // transfers ownership exactly once.
        out.push(unsafe { TcpListener::from_raw_fd(std::os::fd::IntoRawFd::into_raw_fd(owned)) });
    }
    Ok(out)
}

/// A coarse hashed timer wheel driving connection idle timeouts.
///
/// Entries are `(token, deadline)` pairs hashed into `slots` buckets of
/// `tick` width. Expiry is *lazy*: [`TimerWheel::expire`] hands back every
/// token whose bucket has passed, and the owner re-checks the connection's
/// real activity clock — a refreshed connection is simply rescheduled. The
/// wheel therefore never needs cancellation, and scheduling is O(1).
pub struct TimerWheel {
    slots: Vec<Vec<u64>>,
    tick: Duration,
    /// Slot index the cursor is standing on.
    cursor: usize,
    /// Wheel time: the instant `cursor`'s slot began.
    cursor_start: Instant,
}

impl TimerWheel {
    /// A wheel of `slots` buckets, each `tick` wide.
    pub fn new(tick: Duration, slots: usize) -> TimerWheel {
        let slots = slots.max(2);
        TimerWheel {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            tick: tick.max(Duration::from_millis(1)),
            cursor: 0,
            cursor_start: Instant::now(),
        }
    }

    /// Schedules `token` to surface roughly `after` from now (rounded up
    /// to the wheel tick; delays past one full rotation clamp to it).
    pub fn schedule(&mut self, token: u64, after: Duration) {
        let ticks = (after.as_nanos() / self.tick.as_nanos().max(1)).saturating_add(1);
        let ticks = usize::try_from(ticks)
            .unwrap_or(usize::MAX)
            .min(self.slots.len() - 1);
        let slot = (self.cursor + ticks) % self.slots.len();
        self.slots[slot].push(token);
    }

    /// How long until the next slot boundary — the natural `epoll_wait`
    /// timeout for the owning loop.
    pub fn until_next_tick(&self, now: Instant) -> Duration {
        let elapsed = now.duration_since(self.cursor_start);
        self.tick
            .saturating_sub(elapsed)
            .max(Duration::from_millis(1))
    }

    /// Advances the cursor over every slot whose window has fully passed,
    /// appending their tokens to `expired`.
    pub fn expire(&mut self, now: Instant, expired: &mut Vec<u64>) {
        // Bounded by one full rotation per call: a long stall expires
        // every slot exactly once instead of looping the wheel repeatedly.
        for _ in 0..self.slots.len() {
            if now.duration_since(self.cursor_start) < self.tick {
                break;
            }
            self.cursor = (self.cursor + 1) % self.slots.len();
            self.cursor_start += self.tick;
            expired.append(&mut self.slots[self.cursor]);
        }
    }

    /// The wheel's tick width.
    pub fn tick(&self) -> Duration {
        self.tick
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poller_sees_waker_edge() {
        let poller = Poller::new().expect("epoll");
        let waker = Waker::new().expect("eventfd");
        poller
            .add(waker.as_raw_fd(), 7, true, false)
            .expect("register waker");
        let mut events = Vec::new();
        // Nothing pending: a short wait times out empty.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(5)))
            .expect("wait");
        assert_eq!(n, 0);
        waker.wake();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .expect("wait");
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        waker.drain();
        // Drained: quiet again.
        events.clear();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(5)))
            .expect("wait");
        assert_eq!(n, 0);
    }

    #[test]
    fn reuseport_shards_share_one_port() {
        let addr: SocketAddr = "127.0.0.1:0".parse().expect("addr");
        let listeners = reuseport_listeners(&addr, 3).expect("reuseport trio");
        assert_eq!(listeners.len(), 3);
        let ports: Vec<u16> = listeners
            .iter()
            .map(|l| l.local_addr().expect("local addr").port())
            .collect();
        assert!(ports[0] != 0);
        assert!(ports.iter().all(|&p| p == ports[0]), "{ports:?}");
        // A plain connect reaches one of the shards' accept queues.
        let probe = std::net::TcpStream::connect(("127.0.0.1", ports[0]));
        assert!(probe.is_ok());
    }

    #[test]
    fn reuseport_rejects_ipv6() {
        let addr: SocketAddr = "[::1]:0".parse().expect("addr");
        assert!(reuseport_listeners(&addr, 2).is_err());
    }

    #[test]
    fn wheel_expires_after_rounded_delay() {
        let mut wheel = TimerWheel::new(Duration::from_millis(5), 8);
        wheel.schedule(42, Duration::from_millis(1));
        let mut expired = Vec::new();
        wheel.expire(Instant::now(), &mut expired);
        assert!(expired.is_empty(), "not due yet");
        std::thread::sleep(Duration::from_millis(25));
        wheel.expire(Instant::now(), &mut expired);
        assert_eq!(expired, vec![42]);
    }

    #[test]
    fn wheel_clamps_long_delays_to_one_rotation() {
        let mut wheel = TimerWheel::new(Duration::from_millis(1), 4);
        wheel.schedule(9, Duration::from_secs(3600));
        std::thread::sleep(Duration::from_millis(10));
        let mut expired = Vec::new();
        wheel.expire(Instant::now(), &mut expired);
        assert_eq!(expired, vec![9], "clamped to the rotation horizon");
    }
}
