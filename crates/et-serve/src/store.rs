//! The live-session store: a sharded, capacity-bounded map of resumable
//! sessions with idle-timeout eviction.
//!
//! Sharding keeps lock contention proportional to concurrent *sessions on
//! the same shard* rather than to total traffic: each session id hashes to
//! one `Mutex<HashMap>` shard, so two workers driving different sessions
//! almost never serialize on a lock. Capacity and lifetime counters live
//! in atomics beside the shards.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use et_core::{FpTrainer, Learner, SessionState};

use crate::spec::{build_parts, derive_seed, CreateSessionSpec};

/// One live session: the resumable state plus its agents and bookkeeping.
pub struct LiveSession {
    /// Session id.
    pub id: u64,
    /// The seed the session runs under.
    pub seed: u64,
    /// The resumable game state.
    pub state: SessionState,
    /// The hosted simulated annotator.
    pub trainer: FpTrainer,
    /// The active learner.
    pub learner: Learner,
    /// Last time a request touched this session (drives eviction).
    pub last_touch: Instant,
    /// Whether the terminal `done` reply has been produced.
    pub reported_done: bool,
}

/// Store limits and seeding.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Maximum live sessions; creates beyond this get `ServerBusy`.
    pub capacity: usize,
    /// Shard count (locks); a small power of two is plenty.
    pub shards: usize,
    /// Sessions idle longer than this are evicted lazily.
    pub idle_timeout: Duration,
    /// Base seed for per-session seed derivation.
    pub base_seed: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            capacity: 64,
            shards: 8,
            idle_timeout: Duration::from_secs(300),
            base_seed: 0,
        }
    }
}

/// Why a create or lookup failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The store is at capacity.
    Busy,
    /// No live session has this id.
    Unknown(u64),
    /// The spec or derived config was rejected.
    Invalid(String),
}

/// Monotonic lifetime counters (exposed via the `status` op).
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreCounters {
    /// Sessions created since start.
    pub created_total: u64,
    /// Sessions evicted for idleness since start.
    pub evicted_total: u64,
    /// Creates refused at capacity since start.
    pub busy_rejections: u64,
}

/// Snapshot of store occupancy plus counters.
#[derive(Debug, Clone, Copy)]
pub struct StoreSnapshot {
    /// Live sessions right now.
    pub live_sessions: usize,
    /// Capacity bound.
    pub capacity: usize,
    /// Lifetime counters.
    pub counters: StoreCounters,
}

/// The sharded store.
pub struct SessionStore {
    shards: Vec<Mutex<HashMap<u64, LiveSession>>>,
    cfg: StoreConfig,
    next_id: AtomicU64,
    live: AtomicUsize,
    created_total: AtomicU64,
    evicted_total: AtomicU64,
    busy_rejections: AtomicU64,
}

/// Recovers the guard from a poisoned mutex: shard state is a plain map,
/// valid regardless of where a holder panicked, so the data is still safe
/// to use.
fn lock_shard(
    m: &Mutex<HashMap<u64, LiveSession>>,
) -> std::sync::MutexGuard<'_, HashMap<u64, LiveSession>> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl SessionStore {
    /// Creates an empty store.
    pub fn new(cfg: StoreConfig) -> Self {
        let shards = (0..cfg.shards.max(1))
            .map(|_| Mutex::new(HashMap::new()))
            .collect();
        Self {
            shards,
            cfg,
            next_id: AtomicU64::new(1),
            live: AtomicUsize::new(0),
            created_total: AtomicU64::new(0),
            evicted_total: AtomicU64::new(0),
            busy_rejections: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, id: u64) -> &Mutex<HashMap<u64, LiveSession>> {
        // SplitMix-style spread so sequential ids land on distinct shards.
        let mut z = id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z ^= z >> 29;
        &self.shards[(z as usize) % self.shards.len()]
    }

    /// Builds and registers a new session.
    ///
    /// # Errors
    /// [`StoreError::Busy`] at capacity, [`StoreError::Invalid`] when the
    /// spec is rejected.
    pub fn create(&self, spec: &CreateSessionSpec) -> Result<(u64, u64), StoreError> {
        // Reject malformed specs before touching capacity: a bad request
        // should read as bad regardless of load. (The seed does not affect
        // validity, so 0 stands in for the not-yet-derived one.)
        spec.validate().map_err(StoreError::Invalid)?;
        spec.session_config(0)
            .validate()
            .map_err(|e| StoreError::Invalid(e.to_string()))?;
        self.evict_idle();
        // Reserve a slot atomically so concurrent creates cannot overshoot
        // capacity between check and insert.
        let reserved = self
            .live
            // ord: AcqRel reservation RMW; Acquire on failure observes releases
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |live| {
                if live < self.cfg.capacity {
                    Some(live + 1)
                } else {
                    None
                }
            });
        if reserved.is_err() {
            self.busy_rejections.fetch_add(1, Ordering::Relaxed); // ord: Relaxed, monotonic diagnostic counter
            return Err(StoreError::Busy);
        }
        let release = |store: &SessionStore| {
            store.live.fetch_sub(1, Ordering::AcqRel); // ord: AcqRel pairs with the reservation RMW
        };

        let id = self.next_id.fetch_add(1, Ordering::Relaxed); // ord: Relaxed, ids only need uniqueness
        let seed = spec
            .seed
            .unwrap_or_else(|| derive_seed(self.cfg.base_seed, id));
        let parts = match build_parts(spec, seed) {
            Ok(p) => p,
            Err(msg) => {
                release(self);
                return Err(StoreError::Invalid(msg));
            }
        };
        let state = match SessionState::new(
            parts.table,
            parts.space,
            &parts.dirty_rows,
            parts.cfg,
            &parts.trainer,
            &parts.learner,
        ) {
            Ok(s) => s,
            Err(e) => {
                release(self);
                return Err(StoreError::Invalid(e.to_string()));
            }
        };
        // The hosted trainer labels against the session's shared partition
        // cache — same labels, no per-round subset re-indexing.
        let trainer = parts.trainer.with_cache(state.partition_cache().clone());
        // Prebuild the round-invariant relation matrix at create time so the
        // first next_pairs call pays scoring cost only, not matrix setup.
        let _ = state.relation_matrix();
        let live = LiveSession {
            id,
            seed,
            state,
            trainer,
            learner: parts.learner,
            last_touch: Instant::now(),
            reported_done: false,
        };
        lock_shard(self.shard_of(id)).insert(id, live);
        self.created_total.fetch_add(1, Ordering::Relaxed); // ord: Relaxed, monotonic diagnostic counter
        Ok((id, seed))
    }

    /// Runs `f` over the live session `id`, refreshing its idle clock.
    ///
    /// # Errors
    /// [`StoreError::Unknown`] when no live session has this id.
    pub fn with_session<R>(
        &self,
        id: u64,
        f: impl FnOnce(&mut LiveSession) -> R,
    ) -> Result<R, StoreError> {
        let mut shard = lock_shard(self.shard_of(id));
        match shard.get_mut(&id) {
            Some(live) => {
                live.last_touch = Instant::now();
                Ok(f(live))
            }
            None => Err(StoreError::Unknown(id)),
        }
    }

    /// Drops the session `id`.
    ///
    /// # Errors
    /// [`StoreError::Unknown`] when no live session has this id.
    pub fn remove(&self, id: u64) -> Result<(), StoreError> {
        let removed = lock_shard(self.shard_of(id)).remove(&id);
        match removed {
            Some(_) => {
                self.live.fetch_sub(1, Ordering::AcqRel); // ord: AcqRel releases the capacity slot
                Ok(())
            }
            None => Err(StoreError::Unknown(id)),
        }
    }

    /// Evicts every session idle longer than the configured timeout.
    /// Called lazily on each create (no background reaper thread needed:
    /// a full store is the only state where eviction matters).
    pub fn evict_idle(&self) -> usize {
        let now = Instant::now();
        let mut evicted = 0usize;
        for shard in &self.shards {
            let mut shard = lock_shard(shard);
            let mut stale: Vec<u64> = shard
                .iter()
                .filter(|(_, s)| now.duration_since(s.last_touch) > self.cfg.idle_timeout)
                .map(|(&id, _)| id)
                .collect();
            // Evict in id order: deterministic across HashMap layouts.
            stale.sort_unstable();
            for id in stale {
                shard.remove(&id);
                evicted += 1;
            }
        }
        if evicted > 0 {
            self.live.fetch_sub(evicted, Ordering::AcqRel); // ord: AcqRel releases the evicted capacity slots
            self.evicted_total
                .fetch_add(evicted as u64, Ordering::Relaxed); // ord: Relaxed, monotonic diagnostic counter
        }
        evicted
    }

    /// Occupancy and counters right now.
    pub fn snapshot(&self) -> StoreSnapshot {
        StoreSnapshot {
            live_sessions: self.live.load(Ordering::Acquire), // ord: Acquire pairs with AcqRel slot updates
            capacity: self.cfg.capacity,
            counters: StoreCounters {
                created_total: self.created_total.load(Ordering::Relaxed), // ord: Relaxed, diagnostic counter snapshot
                evicted_total: self.evicted_total.load(Ordering::Relaxed), // ord: Relaxed, diagnostic counter snapshot
                busy_rejections: self.busy_rejections.load(Ordering::Relaxed), // ord: Relaxed, diagnostic counter snapshot
            },
        }
    }

    /// The configured idle timeout.
    pub fn idle_timeout(&self) -> Duration {
        self.cfg.idle_timeout
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> CreateSessionSpec {
        CreateSessionSpec {
            rows: 60,
            iterations: 2,
            ..CreateSessionSpec::default()
        }
    }

    fn quick_store(capacity: usize, idle: Duration) -> SessionStore {
        SessionStore::new(StoreConfig {
            capacity,
            shards: 4,
            idle_timeout: idle,
            base_seed: 11,
        })
    }

    #[test]
    fn create_touch_remove_lifecycle() {
        let store = quick_store(4, Duration::from_secs(60));
        let (id, seed) = store.create(&quick_spec()).expect("creates");
        assert_eq!(seed, derive_seed(11, id));
        assert_eq!(store.snapshot().live_sessions, 1);
        let iters = store
            .with_session(id, |s| s.state.config().iterations)
            .expect("live");
        assert_eq!(iters, 2);
        store.remove(id).expect("removes");
        assert_eq!(store.snapshot().live_sessions, 0);
        assert!(matches!(
            store.with_session(id, |_| ()),
            Err(StoreError::Unknown(_))
        ));
        assert!(matches!(store.remove(id), Err(StoreError::Unknown(_))));
    }

    #[test]
    fn explicit_seed_wins_over_derivation() {
        let store = quick_store(4, Duration::from_secs(60));
        let spec = CreateSessionSpec {
            seed: Some(777),
            ..quick_spec()
        };
        let (_, seed) = store.create(&spec).expect("creates");
        assert_eq!(seed, 777);
    }

    #[test]
    fn capacity_is_enforced() {
        let store = quick_store(2, Duration::from_secs(60));
        let (first, _) = store.create(&quick_spec()).expect("first");
        store.create(&quick_spec()).expect("second");
        assert_eq!(store.create(&quick_spec()), Err(StoreError::Busy));
        assert_eq!(store.snapshot().counters.busy_rejections, 1);
        // Freeing a slot lets the next create through.
        store.remove(first).expect("removes");
        store.create(&quick_spec()).expect("after free");
    }

    #[test]
    fn invalid_spec_does_not_leak_capacity() {
        let store = quick_store(1, Duration::from_secs(60));
        let bad = CreateSessionSpec {
            degree: 2.0,
            ..quick_spec()
        };
        assert!(matches!(store.create(&bad), Err(StoreError::Invalid(_))));
        // The reserved slot was released: a valid create still fits.
        store.create(&quick_spec()).expect("slot was released");
    }

    #[test]
    fn idle_sessions_are_evicted() {
        let store = quick_store(4, Duration::from_millis(20));
        let (id, _) = store.create(&quick_spec()).expect("creates");
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(store.evict_idle(), 1);
        assert!(matches!(
            store.with_session(id, |_| ()),
            Err(StoreError::Unknown(_))
        ));
        assert_eq!(store.snapshot().counters.evicted_total, 1);
    }
}
