//! The live-session store: a sharded, capacity-bounded map of resumable
//! sessions with idle-timeout eviction.
//!
//! Sharding keeps lock contention proportional to concurrent *sessions on
//! the same shard* rather than to total traffic: each session id hashes to
//! one `Mutex<HashMap>` shard, so two workers driving different sessions
//! almost never serialize on a lock. Capacity and lifetime counters live
//! in atomics beside the shards.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use et_core::{recover_session, FpTrainer, JournalConfig, Learner, SessionJournal, SessionState};
use et_durable::{DurableError, FsyncPolicy};

use crate::durability::{list_session_dirs, read_meta, session_dir_name, write_meta, SessionMeta};
use crate::spec::{build_parts, derive_seed, CreateSessionSpec};

/// One live session: the resumable state plus its agents and bookkeeping.
pub struct LiveSession {
    /// Session id.
    pub id: u64,
    /// The seed the session runs under.
    pub seed: u64,
    /// The resumable game state.
    pub state: SessionState,
    /// The hosted simulated annotator.
    pub trainer: FpTrainer,
    /// The active learner.
    pub learner: Learner,
    /// Last time a request touched this session (drives eviction).
    pub last_touch: Instant,
    /// Whether the terminal `done` reply has been produced.
    pub reported_done: bool,
}

/// Store limits and seeding.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Maximum live sessions; creates beyond this get `ServerBusy`.
    pub capacity: usize,
    /// Shard count (locks); a small power of two is plenty.
    pub shards: usize,
    /// Sessions idle longer than this are evicted lazily.
    pub idle_timeout: Duration,
    /// Base seed for per-session seed derivation.
    pub base_seed: u64,
    /// When set, sessions are journaled under this directory and recovered
    /// on start; `None` keeps the store purely in-memory (the default).
    pub data_dir: Option<PathBuf>,
    /// Journal fsync policy and snapshot cadence (ignored without
    /// `data_dir`).
    pub journal: JournalConfig,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            capacity: 64,
            shards: 8,
            idle_timeout: Duration::from_secs(300),
            base_seed: 0,
            data_dir: None,
            journal: JournalConfig::default(),
        }
    }
}

/// Why a create or lookup failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The store is at capacity.
    Busy,
    /// No live session has this id.
    Unknown(u64),
    /// The spec or derived config was rejected.
    Invalid(String),
    /// Durable storage refused the operation (the session was not created
    /// or the labels were not acknowledged).
    Durability(String),
}

/// Monotonic lifetime counters (exposed via the `status` op).
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreCounters {
    /// Sessions created since start.
    pub created_total: u64,
    /// Sessions evicted for idleness since start.
    pub evicted_total: u64,
    /// Creates refused at capacity since start.
    pub busy_rejections: u64,
}

/// Lock-free log₂-bucket histogram of server-side per-round label
/// latencies: the `submit_labels` handling inside the session lock
/// (hosted labeling, the learner/belief update, the WAL append).
///
/// Reported quantiles are bucket *upper bounds*, so a p50/p99 is an
/// estimate within 2x of the true value — the right fidelity for a
/// smoke-level "did durability just cost 10x" signal without taking a
/// lock or allocating on the submit path.
#[derive(Debug)]
pub struct LatencyHistogram {
    /// `buckets[i]` counts samples whose `floor(log2(µs))` is `i`.
    buckets: [AtomicU64; 64],
    count: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram. Public so load generators can reuse the
    /// same log₂-µs bucketing for client-side per-op latencies.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
        }
    }

    /// Records one sample. Sub-microsecond samples land in the 1µs
    /// bucket; durations beyond `u64::MAX` microseconds saturate.
    pub fn record(&self, elapsed: Duration) {
        let us = u64::try_from(elapsed.as_micros())
            .unwrap_or(u64::MAX)
            .max(1);
        let idx = 63 - us.leading_zeros() as usize;
        // Bucket before count: a concurrent reader that has seen the count
        // is guaranteed to find at least that many bucketed samples.
        self.buckets[idx].fetch_add(1, Ordering::Relaxed); // ord: Relaxed, monotonic diagnostic counter
        self.count.fetch_add(1, Ordering::Release); // ord: Release pairs with the Acquire in samples()
    }

    /// Samples recorded so far.
    pub fn samples(&self) -> u64 {
        self.count.load(Ordering::Acquire) // ord: Acquire pairs with the Release in record()
    }

    /// Nearest-rank quantile in milliseconds (bucket upper bound), or
    /// `None` before the first sample. `q` is clamped to `[0, 1]`.
    pub fn quantile_ms(&self, q: f64) -> Option<f64> {
        let total = self.samples();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(b.load(Ordering::Relaxed)); // ord: Relaxed, diagnostic counter snapshot
            if seen >= rank {
                // Upper bound of bucket i is 2^(i+1) microseconds.
                return Some(2f64.powi(i as i32 + 1) / 1000.0);
            }
        }
        None
    }
}

/// p50/p99 summary of the round-latency histogram, as carried by
/// [`StoreSnapshot`].
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencySummary {
    /// Samples recorded so far.
    pub samples: u64,
    /// Estimated median (bucket upper bound), ms; 0 before any sample.
    pub p50_ms: f64,
    /// Estimated 99th percentile, ms; 0 before any sample.
    pub p99_ms: f64,
}

/// What [`SessionStore::recover_from_disk`] found under the data
/// directory.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Sessions recovered into the store.
    pub recovered: usize,
    /// Session directories left on disk because the store was at capacity.
    pub skipped_capacity: usize,
    /// Directories that failed to recover (left on disk for inspection).
    pub failed: Vec<(PathBuf, String)>,
}

/// Snapshot of store occupancy plus counters.
#[derive(Debug, Clone, Copy)]
pub struct StoreSnapshot {
    /// Live sessions right now.
    pub live_sessions: usize,
    /// Capacity bound.
    pub capacity: usize,
    /// Lifetime counters.
    pub counters: StoreCounters,
    /// Server-side per-round label latency summary.
    pub round_latency: LatencySummary,
}

/// The sharded store.
pub struct SessionStore {
    shards: Vec<Mutex<HashMap<u64, LiveSession>>>,
    cfg: StoreConfig,
    next_id: AtomicU64,
    live: AtomicUsize,
    created_total: AtomicU64,
    evicted_total: AtomicU64,
    busy_rejections: AtomicU64,
    round_latency: LatencyHistogram,
}

/// Recovers the guard from a poisoned mutex: shard state is a plain map,
/// valid regardless of where a holder panicked, so the data is still safe
/// to use.
fn lock_shard(
    m: &Mutex<HashMap<u64, LiveSession>>,
) -> std::sync::MutexGuard<'_, HashMap<u64, LiveSession>> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl SessionStore {
    /// Creates an empty store.
    pub fn new(cfg: StoreConfig) -> Self {
        let shards = (0..cfg.shards.max(1))
            .map(|_| Mutex::new(HashMap::new()))
            .collect();
        Self {
            shards,
            cfg,
            next_id: AtomicU64::new(1),
            live: AtomicUsize::new(0),
            created_total: AtomicU64::new(0),
            evicted_total: AtomicU64::new(0),
            busy_rejections: AtomicU64::new(0),
            round_latency: LatencyHistogram::new(),
        }
    }

    /// The server-side per-round label latency histogram (fed by the
    /// serve layer around `label_pending` + `apply_labels`).
    pub fn round_latency(&self) -> &LatencyHistogram {
        &self.round_latency
    }

    fn shard_of(&self, id: u64) -> &Mutex<HashMap<u64, LiveSession>> {
        // SplitMix-style spread so sequential ids land on distinct shards.
        let mut z = id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z ^= z >> 29;
        &self.shards[(z as usize) % self.shards.len()]
    }

    /// Builds and registers a new session.
    ///
    /// # Errors
    /// [`StoreError::Busy`] at capacity, [`StoreError::Invalid`] when the
    /// spec is rejected.
    pub fn create(&self, spec: &CreateSessionSpec) -> Result<(u64, u64), StoreError> {
        // Reject malformed specs before touching capacity: a bad request
        // should read as bad regardless of load. (The seed does not affect
        // validity, so 0 stands in for the not-yet-derived one.)
        spec.validate().map_err(StoreError::Invalid)?;
        spec.session_config(0)
            .validate()
            .map_err(|e| StoreError::Invalid(e.to_string()))?;
        self.evict_idle();
        // Reserve a slot atomically so concurrent creates cannot overshoot
        // capacity between check and insert.
        let reserved = self
            .live
            // ord: AcqRel reservation RMW; Acquire on failure observes releases
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |live| {
                if live < self.cfg.capacity {
                    Some(live + 1)
                } else {
                    None
                }
            });
        if reserved.is_err() {
            self.busy_rejections.fetch_add(1, Ordering::Relaxed); // ord: Relaxed, monotonic diagnostic counter
            return Err(StoreError::Busy);
        }
        let release = |store: &SessionStore| {
            store.live.fetch_sub(1, Ordering::AcqRel); // ord: AcqRel pairs with the reservation RMW
        };

        let id = self.next_id.fetch_add(1, Ordering::Relaxed); // ord: Relaxed, ids only need uniqueness
        let seed = spec
            .seed
            .unwrap_or_else(|| derive_seed(self.cfg.base_seed, id));
        let parts = match build_parts(spec, seed) {
            Ok(p) => p,
            Err(msg) => {
                release(self);
                return Err(StoreError::Invalid(msg));
            }
        };
        let mut state = match SessionState::new(
            parts.table,
            parts.space,
            &parts.dirty_rows,
            parts.cfg,
            &parts.trainer,
            &parts.learner,
        ) {
            Ok(s) => s,
            Err(e) => {
                release(self);
                return Err(StoreError::Invalid(e.to_string()));
            }
        };
        // The hosted trainer labels against the session's shared partition
        // cache — same labels, no per-round subset re-indexing.
        let trainer = parts.trainer.with_cache(state.partition_cache().clone());
        // Prebuild the round-invariant relation matrix at create time so the
        // first next_pairs call pays scoring cost only, not matrix setup.
        let _ = state.relation_matrix();
        if let Some(data_dir) = &self.cfg.data_dir {
            let dir = data_dir.join(session_dir_name(id));
            let attach = (|| -> Result<(), DurableError> {
                let journal = SessionJournal::create(&dir, self.cfg.journal)?;
                write_meta(
                    &dir,
                    &SessionMeta {
                        id,
                        seed,
                        spec: spec.clone(),
                    },
                    self.cfg.journal.fsync == FsyncPolicy::Always,
                )?;
                state.attach_journal(journal);
                Ok(())
            })();
            if let Err(e) = attach {
                // A directory without a valid meta would read as a failed
                // recovery forever; clear it so the id slot stays clean.
                let _ = std::fs::remove_dir_all(&dir);
                release(self);
                return Err(StoreError::Durability(e.to_string()));
            }
        }
        let live = LiveSession {
            id,
            seed,
            state,
            trainer,
            learner: parts.learner,
            last_touch: Instant::now(),
            reported_done: false,
        };
        lock_shard(self.shard_of(id)).insert(id, live);
        self.created_total.fetch_add(1, Ordering::Relaxed); // ord: Relaxed, monotonic diagnostic counter
        Ok((id, seed))
    }

    /// Runs `f` over the live session `id`, refreshing its idle clock.
    ///
    /// # Errors
    /// [`StoreError::Unknown`] when no live session has this id.
    pub fn with_session<R>(
        &self,
        id: u64,
        f: impl FnOnce(&mut LiveSession) -> R,
    ) -> Result<R, StoreError> {
        let mut shard = lock_shard(self.shard_of(id));
        match shard.get_mut(&id) {
            Some(live) => {
                live.last_touch = Instant::now();
                Ok(f(live))
            }
            None => Err(StoreError::Unknown(id)),
        }
    }

    /// Drops the session `id`. An explicit close discards the session's
    /// durable directory too — closed sessions are finished, not
    /// recoverable (idle *eviction* is what preserves the directory).
    ///
    /// # Errors
    /// [`StoreError::Unknown`] when no live session has this id.
    pub fn remove(&self, id: u64) -> Result<(), StoreError> {
        let removed = lock_shard(self.shard_of(id)).remove(&id);
        match removed {
            Some(_) => {
                self.live.fetch_sub(1, Ordering::AcqRel); // ord: AcqRel releases the capacity slot
                if let Some(data_dir) = &self.cfg.data_dir {
                    let _ = std::fs::remove_dir_all(data_dir.join(session_dir_name(id)));
                }
                Ok(())
            }
            None => Err(StoreError::Unknown(id)),
        }
    }

    /// Flushes one live session to its journal: a fresh snapshot plus a WAL
    /// sync. No-op for sessions without a journal.
    fn flush_live(live: &mut LiveSession) -> Result<(), DurableError> {
        let LiveSession {
            state,
            trainer,
            learner,
            ..
        } = live;
        state.snapshot_now(trainer, learner)?;
        state.sync_journal()
    }

    /// Snapshots and syncs every journaled live session (graceful-shutdown
    /// path). Returns how many sessions flushed cleanly; failures are
    /// counted, not fatal — the WAL already holds every acknowledged label,
    /// so a failed snapshot only costs replay time at recovery.
    pub fn flush_all(&self) -> (usize, usize) {
        let (mut ok, mut failed) = (0usize, 0usize);
        for shard in &self.shards {
            let mut shard = lock_shard(shard);
            for live in shard.values_mut() {
                if live.state.journal().is_none() {
                    continue;
                }
                match Self::flush_live(live) {
                    Ok(()) => ok += 1,
                    Err(e) => {
                        failed += 1;
                        eprintln!("et-serve: flush of session {} failed: {e}", live.id);
                    }
                }
            }
        }
        (ok, failed)
    }

    /// Recovers every session directory under the configured `data_dir`
    /// into the store, ascending by id. Call once, before serving traffic.
    ///
    /// Sessions beyond capacity are left on disk untouched (reported as
    /// `skipped_capacity`); directories that fail to recover are also left
    /// on disk and reported, so no crash artifact is ever silently deleted.
    pub fn recover_from_disk(&self) -> RecoveryReport {
        let mut report = RecoveryReport::default();
        let Some(data_dir) = self.cfg.data_dir.clone() else {
            return report;
        };
        let dirs = match list_session_dirs(&data_dir) {
            Ok(d) => d,
            Err(e) => {
                // A missing data dir is a fresh start, not a failure.
                if !data_dir.exists() {
                    return report;
                }
                report.failed.push((data_dir, e.to_string()));
                return report;
            }
        };
        for (id, dir) in dirs {
            // Ids must never collide with recovered sessions, even ones
            // skipped or failed (their directories may recover later).
            self.next_id.fetch_max(id + 1, Ordering::Relaxed); // ord: Relaxed, ids only need uniqueness
                                                               // ord: Acquire pairs with AcqRel slot updates
            if self.live.load(Ordering::Acquire) >= self.cfg.capacity {
                report.skipped_capacity += 1;
                continue;
            }
            match self.recover_one(id, &dir) {
                Ok(()) => report.recovered += 1,
                Err(msg) => report.failed.push((dir, msg)),
            }
        }
        report
    }

    fn recover_one(&self, id: u64, dir: &std::path::Path) -> Result<(), String> {
        let meta = read_meta(dir).map_err(|e| format!("meta: {e}"))?;
        if meta.id != id {
            return Err(format!(
                "meta id {} does not match directory id {id}",
                meta.id
            ));
        }
        let parts = build_parts(&meta.spec, meta.seed)?;
        let mut state = SessionState::new(
            parts.table,
            parts.space,
            &parts.dirty_rows,
            parts.cfg,
            &parts.trainer,
            &parts.learner,
        )
        .map_err(|e| e.to_string())?;
        // Mirror the create path exactly: cache-backed trainer, prebuilt
        // matrix — replay must walk the same code the live session walked.
        let mut trainer = parts.trainer.with_cache(state.partition_cache().clone());
        let mut learner = parts.learner;
        let _ = state.relation_matrix();
        recover_session(
            dir,
            self.cfg.journal,
            &mut state,
            &mut trainer,
            &mut learner,
        )
        .map_err(|e| e.to_string())?;
        let reported_done = state.is_complete() && state.pending().is_none();
        let live = LiveSession {
            id,
            seed: meta.seed,
            state,
            trainer,
            learner,
            last_touch: Instant::now(),
            reported_done,
        };
        lock_shard(self.shard_of(id)).insert(id, live);
        self.live.fetch_add(1, Ordering::AcqRel); // ord: AcqRel pairs with the reservation RMW
        Ok(())
    }

    /// Evicts every session idle longer than the configured timeout.
    /// Called lazily on each create (no background reaper thread needed:
    /// a full store is the only state where eviction matters).
    ///
    /// Journaled sessions are flushed (snapshot + WAL sync) before the
    /// in-memory state drops: an evicted durable session stays recoverable
    /// from its directory at the next server start.
    pub fn evict_idle(&self) -> usize {
        let now = Instant::now();
        let mut evicted = 0usize;
        for shard in &self.shards {
            let mut shard = lock_shard(shard);
            let mut stale: Vec<u64> = shard
                .iter()
                .filter(|(_, s)| now.duration_since(s.last_touch) > self.cfg.idle_timeout)
                .map(|(&id, _)| id)
                .collect();
            // Evict in id order: deterministic across HashMap layouts.
            stale.sort_unstable();
            for id in stale {
                if let Some(live) = shard.get_mut(&id) {
                    if live.state.journal().is_some() {
                        if let Err(e) = Self::flush_live(live) {
                            // Evict anyway: the WAL already holds every
                            // acknowledged label, so only replay time (and
                            // an unlogged pending presentation, which
                            // replay re-derives) is at stake.
                            eprintln!("et-serve: eviction flush of session {id} failed: {e}");
                        }
                    }
                }
                shard.remove(&id);
                evicted += 1;
            }
        }
        if evicted > 0 {
            self.live.fetch_sub(evicted, Ordering::AcqRel); // ord: AcqRel releases the evicted capacity slots
            self.evicted_total
                .fetch_add(evicted as u64, Ordering::Relaxed); // ord: Relaxed, monotonic diagnostic counter
        }
        evicted
    }

    /// Occupancy and counters right now.
    pub fn snapshot(&self) -> StoreSnapshot {
        StoreSnapshot {
            live_sessions: self.live.load(Ordering::Acquire), // ord: Acquire pairs with AcqRel slot updates
            capacity: self.cfg.capacity,
            counters: StoreCounters {
                created_total: self.created_total.load(Ordering::Relaxed), // ord: Relaxed, diagnostic counter snapshot
                evicted_total: self.evicted_total.load(Ordering::Relaxed), // ord: Relaxed, diagnostic counter snapshot
                busy_rejections: self.busy_rejections.load(Ordering::Relaxed), // ord: Relaxed, diagnostic counter snapshot
            },
            round_latency: LatencySummary {
                samples: self.round_latency.samples(),
                p50_ms: self.round_latency.quantile_ms(0.50).unwrap_or(0.0),
                p99_ms: self.round_latency.quantile_ms(0.99).unwrap_or(0.0),
            },
        }
    }

    /// The configured idle timeout.
    pub fn idle_timeout(&self) -> Duration {
        self.cfg.idle_timeout
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> CreateSessionSpec {
        CreateSessionSpec {
            rows: 60,
            iterations: 2,
            ..CreateSessionSpec::default()
        }
    }

    fn quick_store(capacity: usize, idle: Duration) -> SessionStore {
        SessionStore::new(StoreConfig {
            capacity,
            shards: 4,
            idle_timeout: idle,
            base_seed: 11,
            ..StoreConfig::default()
        })
    }

    #[test]
    fn create_touch_remove_lifecycle() {
        let store = quick_store(4, Duration::from_secs(60));
        let (id, seed) = store.create(&quick_spec()).expect("creates");
        assert_eq!(seed, derive_seed(11, id));
        assert_eq!(store.snapshot().live_sessions, 1);
        let iters = store
            .with_session(id, |s| s.state.config().iterations)
            .expect("live");
        assert_eq!(iters, 2);
        store.remove(id).expect("removes");
        assert_eq!(store.snapshot().live_sessions, 0);
        assert!(matches!(
            store.with_session(id, |_| ()),
            Err(StoreError::Unknown(_))
        ));
        assert!(matches!(store.remove(id), Err(StoreError::Unknown(_))));
    }

    #[test]
    fn explicit_seed_wins_over_derivation() {
        let store = quick_store(4, Duration::from_secs(60));
        let spec = CreateSessionSpec {
            seed: Some(777),
            ..quick_spec()
        };
        let (_, seed) = store.create(&spec).expect("creates");
        assert_eq!(seed, 777);
    }

    #[test]
    fn capacity_is_enforced() {
        let store = quick_store(2, Duration::from_secs(60));
        let (first, _) = store.create(&quick_spec()).expect("first");
        store.create(&quick_spec()).expect("second");
        assert_eq!(store.create(&quick_spec()), Err(StoreError::Busy));
        assert_eq!(store.snapshot().counters.busy_rejections, 1);
        // Freeing a slot lets the next create through.
        store.remove(first).expect("removes");
        store.create(&quick_spec()).expect("after free");
    }

    #[test]
    fn invalid_spec_does_not_leak_capacity() {
        let store = quick_store(1, Duration::from_secs(60));
        let bad = CreateSessionSpec {
            degree: 2.0,
            ..quick_spec()
        };
        assert!(matches!(store.create(&bad), Err(StoreError::Invalid(_))));
        // The reserved slot was released: a valid create still fits.
        store.create(&quick_spec()).expect("slot was released");
    }

    #[test]
    fn idle_sessions_are_evicted() {
        let store = quick_store(4, Duration::from_millis(20));
        let (id, _) = store.create(&quick_spec()).expect("creates");
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(store.evict_idle(), 1);
        assert!(matches!(
            store.with_session(id, |_| ()),
            Err(StoreError::Unknown(_))
        ));
        assert_eq!(store.snapshot().counters.evicted_total, 1);
    }
}
