//! From a wire-level session request to a runnable session: dataset
//! generation, error injection, hypothesis space, agents.
//!
//! Everything here is a pure function of `(spec, seed)` so that a session
//! created over the wire is *bit-identical* to a batch [`run_session`] with
//! the same spec and seed — the server's reproducibility guarantee, and
//! what the integration tests assert.

use std::sync::Arc;

use et_belief::{build_prior, EvidenceConfig, PriorConfig, PriorSpec};
use et_core::{
    run_session, FpTrainer, Learner, ResponseStrategy, SessionConfig, SessionResult, StrategyKind,
};
use et_data::gen::DatasetName;
use et_data::{inject_errors, InjectConfig, Table};
use et_fd::{Fd, HypothesisSpace};

/// What a `create_session` request asks for; every field has a paper-shaped
/// default so the empty request is valid.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateSessionSpec {
    /// Synthetic dataset family.
    pub dataset: DatasetName,
    /// Rows to generate.
    pub rows: usize,
    /// Error-injection degree (fraction of rows dirtied), in `[0, 1)`.
    pub degree: f64,
    /// The learner's selection strategy.
    pub strategy: StrategyKind,
    /// Interactions `N`.
    pub iterations: usize,
    /// Pairs per interaction.
    pub pairs_per_iteration: usize,
    /// Held-out fraction, in `(0, 1)`.
    pub test_frac: f64,
    /// Explicit base seed; `None` lets the server derive one from its base
    /// seed and the session id.
    pub seed: Option<u64>,
}

impl Default for CreateSessionSpec {
    fn default() -> Self {
        Self {
            dataset: DatasetName::Omdb,
            rows: 160,
            degree: 0.10,
            strategy: StrategyKind::StochasticBestResponse,
            iterations: 30,
            pairs_per_iteration: 5,
            test_frac: 0.3,
            seed: None,
        }
    }
}

impl CreateSessionSpec {
    /// The session configuration this spec induces for `session_seed`.
    pub fn session_config(&self, session_seed: u64) -> SessionConfig {
        SessionConfig {
            iterations: self.iterations,
            pairs_per_iteration: self.pairs_per_iteration,
            test_frac: self.test_frac,
            seed: session_seed,
            ..SessionConfig::default()
        }
    }

    /// Rejects specs the build pipeline cannot honor (the session-config
    /// half is covered separately by [`SessionConfig::validate`]).
    ///
    /// # Errors
    /// A human-readable description of the first bad field.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..1.0).contains(&self.degree) {
            return Err(format!("degree must lie in [0, 1), got {}", self.degree));
        }
        if self.rows < 16 {
            return Err(format!("rows must be at least 16, got {}", self.rows));
        }
        if self.rows > 100_000 {
            return Err(format!("rows must be at most 100000, got {}", self.rows));
        }
        Ok(())
    }
}

/// A fully built session environment: the data, the space, and both agents.
pub struct SessionParts {
    /// The generated (and dirtied) table.
    pub table: Table,
    /// The FD hypothesis space.
    pub space: Arc<HypothesisSpace>,
    /// Ground-truth dirty flags (used for held-out F1 only).
    pub dirty_rows: Vec<bool>,
    /// The session configuration.
    pub cfg: SessionConfig,
    /// The simulated annotator.
    pub trainer: FpTrainer,
    /// The active learner.
    pub learner: Learner,
}

/// Splits one base seed into independent sub-streams (SplitMix64), one per
/// pipeline stage, so stages cannot correlate.
fn sub_seed(base: u64, stream: u64) -> u64 {
    let mut z = base
        .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed for session `session_id` from the server's base seed.
/// Pure and collision-resistant in practice: concurrent sessions get
/// unrelated, reproducible streams (et-lint rule L2: never unseeded).
pub fn derive_seed(base_seed: u64, session_id: u64) -> u64 {
    sub_seed(base_seed ^ 0x5E55_105E_5510, session_id)
}

/// Builds the full session environment for `(spec, session_seed)`.
///
/// # Errors
/// A description of the spec or config problem (the server maps this to an
/// `invalid_config` reply).
pub fn build_parts(spec: &CreateSessionSpec, session_seed: u64) -> Result<SessionParts, String> {
    spec.validate()?;
    let cfg = spec.session_config(session_seed);
    cfg.validate().map_err(|e| e.to_string())?;

    let mut ds = spec.dataset.generate(spec.rows, sub_seed(session_seed, 1));
    let specs = ds.exact_fds.clone();
    let inj = inject_errors(
        &mut ds.table,
        &specs,
        &[],
        &InjectConfig::with_degree(spec.degree, sub_seed(session_seed, 2)),
    );
    let pinned: Vec<Fd> = specs.iter().map(Fd::from_spec).collect();
    let space = Arc::new(HypothesisSpace::capped(&ds.table, 3, 20, 3, &pinned));

    let prior_cfg = PriorConfig::weak();
    let trainer_prior = build_prior(
        &PriorSpec::Random {
            seed: sub_seed(session_seed, 3),
        },
        &prior_cfg,
        &space,
        &ds.table,
    );
    let learner_prior = build_prior(&PriorSpec::DataEstimate, &prior_cfg, &space, &ds.table);
    let trainer = FpTrainer::new(trainer_prior, EvidenceConfig::default());
    let learner = Learner::new(
        learner_prior,
        ResponseStrategy::paper(spec.strategy),
        EvidenceConfig::default(),
        sub_seed(session_seed, 4),
    );
    Ok(SessionParts {
        table: ds.table,
        space,
        dirty_rows: inj.dirty_rows,
        cfg,
        trainer,
        learner,
    })
}

/// Runs the same `(spec, seed)` as a closed batch loop — the reference the
/// wire-driven path must match exactly.
///
/// # Errors
/// Same conditions as [`build_parts`].
pub fn run_batch(spec: &CreateSessionSpec, session_seed: u64) -> Result<SessionResult, String> {
    let mut parts = build_parts(spec, session_seed)?;
    Ok(run_session(
        &parts.table,
        parts.space.clone(),
        &parts.dirty_rows,
        parts.cfg.clone(),
        &mut parts.trainer,
        &mut parts.learner,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_builds_and_runs() {
        let spec = CreateSessionSpec {
            iterations: 3,
            ..CreateSessionSpec::default()
        };
        let r = run_batch(&spec, 42).expect("builds");
        assert_eq!(r.metrics.len(), 3);
    }

    #[test]
    fn bad_specs_are_rejected() {
        let bad_degree = CreateSessionSpec {
            degree: 1.0,
            ..CreateSessionSpec::default()
        };
        assert!(bad_degree.validate().is_err());
        let tiny = CreateSessionSpec {
            rows: 4,
            ..CreateSessionSpec::default()
        };
        assert!(tiny.validate().is_err());
        let bad_cfg = CreateSessionSpec {
            test_frac: 1.5,
            ..CreateSessionSpec::default()
        };
        assert!(build_parts(&bad_cfg, 1).is_err());
    }

    #[test]
    fn derive_seed_is_deterministic_and_spread() {
        assert_eq!(derive_seed(7, 1), derive_seed(7, 1));
        assert_ne!(derive_seed(7, 1), derive_seed(7, 2));
        assert_ne!(derive_seed(7, 1), derive_seed(8, 1));
    }

    #[test]
    fn same_seed_same_curve() {
        let spec = CreateSessionSpec {
            rows: 120,
            iterations: 4,
            ..CreateSessionSpec::default()
        };
        let a = run_batch(&spec, 9).expect("runs");
        let b = run_batch(&spec, 9).expect("runs");
        assert_eq!(a.mae_series(), b.mae_series());
    }
}
