//! The `load_smoke` binary: an in-process server driven by N concurrent
//! wire clients, each running one session to completion across the paper's
//! strategy set. Exits non-zero unless every session finishes its full
//! iteration budget with a falling MAE curve.
//!
//! Also a micro load-test: it measures the round-trip latency of every
//! `submit_labels` call and reports p50/p99, so the cost of durability
//! (`--data-dir` with `--fsync always` vs `never`) is directly visible.
//! With `--json` the summary is one machine-readable object on stdout and
//! the progress chatter moves to stderr.
//!
//! ```text
//! load_smoke [--sessions N] [--iterations N] [--rows N] [--seed N]
//!            [--data-dir PATH] [--fsync always|never] [--json]
//! ```
//!
//! With `--connections N` it switches to **load-generator mode**: an
//! in-process server (event transport by default, `--blocking` for the
//! thread-per-connection fallback) driven by the open-loop engine in
//! `et_serve::loadgen` — N concurrent connections offering `--rate`
//! rounds/s each over a `--window`-second measurement window, reporting
//! throughput and per-op p50/p99/p999 latencies:
//!
//! ```text
//! load_smoke --connections N [--rate R] [--window SECS] [--workers N]
//!            [--blocking] [--rows N] [--seed N] [--json]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use et_core::StrategyKind;
use et_durable::FsyncPolicy;
use et_serve::{
    run_load, spawn, Client, CreateSessionSpec, Json, LoadConfig, ServeMode, ServerConfig,
};

struct Options {
    sessions: usize,
    iterations: usize,
    rows: usize,
    seed: u64,
    data_dir: Option<PathBuf>,
    fsync: FsyncPolicy,
    json: bool,
    /// Load-generator mode when set: concurrent connections to hold open.
    connections: Option<usize>,
    rate: f64,
    window_secs: u64,
    workers: usize,
    blocking: bool,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            sessions: 6,
            iterations: 8,
            rows: 120,
            seed: 2026,
            data_dir: None,
            fsync: FsyncPolicy::Always,
            json: false,
            connections: None,
            rate: 2.0,
            window_secs: 5,
            workers: 4,
            blocking: false,
        }
    }
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--json" {
            opts.json = true;
            i += 1;
            continue;
        }
        if flag == "--blocking" {
            opts.blocking = true;
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} requires a value"))?;
        match flag {
            "--data-dir" => opts.data_dir = Some(PathBuf::from(value)),
            "--fsync" => {
                opts.fsync = FsyncPolicy::from_name(value).map_err(|e| format!("--fsync: {e}"))?;
            }
            "--rate" => {
                opts.rate = value
                    .parse()
                    .map_err(|_| format!("--rate must be a number, got {value:?}"))?;
            }
            _ => {
                let parsed: u64 = value
                    .parse()
                    .map_err(|_| format!("{flag} must be a number, got {value:?}"))?;
                match flag {
                    "--sessions" => opts.sessions = parsed as usize,
                    "--iterations" => opts.iterations = parsed as usize,
                    "--rows" => opts.rows = parsed as usize,
                    "--seed" => opts.seed = parsed,
                    "--connections" => opts.connections = Some(parsed as usize),
                    "--window" => opts.window_secs = parsed,
                    "--workers" => opts.workers = parsed as usize,
                    other => return Err(format!("unknown flag {other:?}")),
                }
            }
        }
        i += 2;
    }
    if opts.sessions == 0 {
        return Err("--sessions must be positive".to_string());
    }
    Ok(opts)
}

/// One driven session: iterations run, first/last MAE, and the wall-clock
/// latency of each `submit_labels` round trip in milliseconds.
struct SessionRun {
    iterations_run: usize,
    first_mae: f64,
    last_mae: f64,
    submit_ms: Vec<f64>,
}

fn drive_one(addr: &str, spec: CreateSessionSpec) -> Result<SessionRun, String> {
    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
    let (session, _seed) = client.create_session(&spec).map_err(|e| e.to_string())?;
    let mut mae_series = Vec::new();
    let mut submit_ms = Vec::new();
    let iterations_run = loop {
        let reply = client.next_pairs(session).map_err(|e| e.to_string())?;
        match reply.get("reply").and_then(Json::as_str) {
            Some("pairs") => {
                let start = Instant::now();
                let labeled = client
                    .submit_labels(session, None)
                    .map_err(|e| e.to_string())?;
                submit_ms.push(start.elapsed().as_secs_f64() * 1e3);
                let mae = labeled
                    .get("metrics")
                    .and_then(|m| m.get("mae"))
                    .and_then(Json::as_f64)
                    .ok_or_else(|| "labeled reply without mae".to_string())?;
                mae_series.push(mae);
            }
            Some("done") => {
                break reply
                    .get("iterations_run")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| "done reply without iterations_run".to_string())?
                    as usize;
            }
            other => return Err(format!("unexpected reply kind {other:?}")),
        }
    };
    client.close_session(session).map_err(|e| e.to_string())?;
    let first_mae = mae_series
        .first()
        .copied()
        .ok_or_else(|| "empty MAE series".to_string())?;
    let last_mae = mae_series.last().copied().unwrap_or(first_mae);
    Ok(SessionRun {
        iterations_run,
        first_mae,
        last_mae,
        submit_ms,
    })
}

/// Nearest-rank percentile over a sorted slice; `q` in `[0, 1]`.
fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return f64::NAN;
    }
    let rank = (q * sorted_ms.len() as f64).ceil() as usize;
    sorted_ms[rank.clamp(1, sorted_ms.len()) - 1]
}

/// Load-generator mode: in-process server + the open-loop engine.
fn run_loadgen(opts: &Options, connections: usize) -> ExitCode {
    let mut cfg = ServerConfig {
        workers: opts.workers.max(1),
        mode: if opts.blocking {
            ServeMode::Blocking
        } else {
            ServeMode::Event
        },
        ..ServerConfig::default()
    };
    cfg.store.capacity = connections + 8;
    cfg.store.base_seed = opts.seed;
    let window = Duration::from_secs(opts.window_secs.max(1));
    let handle = match spawn(cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("load_smoke: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Size sessions so they cannot run out of iterations mid-window.
    let iterations = (opts.rate * window.as_secs_f64()).ceil() as usize + 16;
    let load = LoadConfig {
        addr: handle.addr().to_string(),
        connections,
        rate: opts.rate,
        window,
        grace: Duration::from_secs(1),
        spec: CreateSessionSpec {
            rows: opts.rows,
            iterations,
            ..CreateSessionSpec::default()
        },
    };
    eprintln!(
        "offering {} conns x {} rounds/s for {}s against {} ({} transport, {} workers)",
        connections,
        opts.rate,
        opts.window_secs,
        load.addr,
        if opts.blocking { "blocking" } else { "event" },
        opts.workers.max(1),
    );
    let report = match run_load(&load) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("load_smoke: load run failed: {e}");
            handle.shutdown();
            handle.wait();
            return ExitCode::FAILURE;
        }
    };
    handle.shutdown();
    handle.wait();

    let line = format!(
        "throughput {:.1} rounds/s ({} rounds, {}/{} conns served); \
         next_pairs p50 {:.3}ms p99 {:.3}ms p999 {:.3}ms ({} samples); \
         submit p50 {:.3}ms p99 {:.3}ms p999 {:.3}ms ({} samples)",
        report.throughput_rps,
        report.rounds_completed,
        report.conns_served,
        report.connections,
        report.next_pairs.p50_ms,
        report.next_pairs.p99_ms,
        report.next_pairs.p999_ms,
        report.next_pairs.samples,
        report.submit.p50_ms,
        report.submit.p99_ms,
        report.submit.p999_ms,
        report.submit.samples,
    );
    if opts.json {
        eprintln!("{line}");
        let op = |s: &et_serve::loadgen::OpStats| {
            Json::Obj(vec![
                ("p50".to_string(), Json::Num(s.p50_ms)),
                ("p99".to_string(), Json::Num(s.p99_ms)),
                ("p999".to_string(), Json::Num(s.p999_ms)),
                ("samples".to_string(), Json::Num(s.samples as f64)),
            ])
        };
        let fields = vec![
            ("connections".to_string(), Json::Num(connections as f64)),
            ("rate_per_conn".to_string(), Json::Num(report.rate_per_conn)),
            ("window_secs".to_string(), Json::Num(report.window_secs)),
            (
                "transport".to_string(),
                Json::Str(if opts.blocking { "blocking" } else { "event" }.to_string()),
            ),
            ("workers".to_string(), Json::Num(opts.workers.max(1) as f64)),
            (
                "rounds_completed".to_string(),
                Json::Num(report.rounds_completed as f64),
            ),
            (
                "throughput_rps".to_string(),
                Json::Num(report.throughput_rps),
            ),
            (
                "conns_served".to_string(),
                Json::Num(report.conns_served as f64),
            ),
            ("next_pairs_ms".to_string(), op(&report.next_pairs)),
            ("submit_ms".to_string(), op(&report.submit)),
        ];
        println!("{}", Json::Obj(fields).encode());
    } else {
        println!("{line}");
    }
    // The run is meaningful as long as someone was served; comparative
    // judgements (event vs blocking) belong to bench_serve.
    if report.rounds_completed == 0 {
        eprintln!("load_smoke: no rounds completed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("load_smoke: {msg}");
            eprintln!(
                "usage: load_smoke [--sessions N] [--iterations N] [--rows N] [--seed N] \
                 [--data-dir PATH] [--fsync always|never] [--json] \
                 | load_smoke --connections N [--rate R] [--window SECS] \
                 [--workers N] [--blocking] [--rows N] [--seed N] [--json]"
            );
            return ExitCode::FAILURE;
        }
    };
    if let Some(connections) = opts.connections {
        return run_loadgen(&opts, connections.max(1));
    }
    // With --json, stdout carries exactly one JSON object; everything
    // human-shaped goes to stderr.
    let chat = |line: String| {
        if opts.json {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    };

    // One worker per client: every connection stays open for its whole
    // session.
    let mut cfg = ServerConfig {
        workers: opts.sessions,
        ..ServerConfig::default()
    };
    cfg.store.capacity = opts.sessions;
    cfg.store.base_seed = opts.seed;
    cfg.store.data_dir = opts.data_dir.clone();
    cfg.store.journal.fsync = opts.fsync;
    let handle = match spawn(cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("load_smoke: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = handle.addr().to_string();
    chat(format!(
        "driving {} concurrent sessions ({} iterations each) against {addr}{}",
        opts.sessions,
        opts.iterations,
        match &opts.data_dir {
            Some(dir) => format!(
                ", journaled to {} (fsync {})",
                dir.display(),
                opts.fsync.as_str()
            ),
            None => ", in-memory".to_string(),
        }
    ));

    let strategies = StrategyKind::PAPER_METHODS;
    let mut joins = Vec::with_capacity(opts.sessions);
    for i in 0..opts.sessions {
        let addr = addr.clone();
        let spec = CreateSessionSpec {
            strategy: strategies[i % strategies.len()],
            rows: opts.rows,
            iterations: opts.iterations,
            seed: Some(opts.seed.wrapping_add(i as u64)),
            ..CreateSessionSpec::default()
        };
        joins.push(std::thread::spawn(move || drive_one(&addr, spec)));
    }

    let mut failures = 0usize;
    let mut submit_ms: Vec<f64> = Vec::new();
    for (i, join) in joins.into_iter().enumerate() {
        match join.join() {
            Ok(Ok(run)) => {
                let ok = run.iterations_run == opts.iterations && run.last_mae < run.first_mae;
                chat(format!(
                    "session {i}: {} iterations, MAE {:.4} -> {:.4} {}",
                    run.iterations_run,
                    run.first_mae,
                    run.last_mae,
                    if ok { "ok" } else { "FAIL" }
                ));
                if !ok {
                    failures += 1;
                }
                submit_ms.extend(run.submit_ms);
            }
            Ok(Err(msg)) => {
                chat(format!("session {i}: FAIL ({msg})"));
                failures += 1;
            }
            Err(_) => {
                chat(format!("session {i}: FAIL (client thread panicked)"));
                failures += 1;
            }
        }
    }

    // Server-side view of the same rounds: the store's latency histogram
    // times only the labeling core (hosted labels + learner update + WAL
    // append), so the gap to the client-side p50/p99 below is wire +
    // queueing overhead. Fetched before shutdown, log-bucket estimates.
    let mut server_lat: Option<(f64, f64, f64)> = None;
    if let Ok(mut c) = Client::connect(&addr) {
        if let Ok(status) = c.status(None) {
            let g = |k: &str| status.get(k).and_then(Json::as_f64);
            if let (Some(samples), Some(p50), Some(p99)) = (
                g("round_latency_samples"),
                g("round_latency_p50_ms"),
                g("round_latency_p99_ms"),
            ) {
                server_lat = Some((samples, p50, p99));
            }
        }
        let _ = c.shutdown_server();
    }
    handle.wait();

    submit_ms.sort_by(|a, b| a.total_cmp(b));
    let p50 = percentile(&submit_ms, 0.50);
    let p99 = percentile(&submit_ms, 0.99);
    let mean = if submit_ms.is_empty() {
        f64::NAN
    } else {
        submit_ms.iter().sum::<f64>() / submit_ms.len() as f64
    };
    let max = submit_ms.last().copied().unwrap_or(f64::NAN);
    chat(format!(
        "submit_labels latency over {} calls: p50 {p50:.3}ms p99 {p99:.3}ms mean {mean:.3}ms max {max:.3}ms",
        submit_ms.len()
    ));
    if let Some((samples, sp50, sp99)) = server_lat {
        chat(format!(
            "server-side round latency over {samples:.0} rounds: p50 <= {sp50:.3}ms p99 <= {sp99:.3}ms (log-bucket upper bounds)"
        ));
    }

    if opts.json {
        let mut fields = vec![
            ("sessions".to_string(), Json::Num(opts.sessions as f64)),
            ("iterations".to_string(), Json::Num(opts.iterations as f64)),
            ("rows".to_string(), Json::Num(opts.rows as f64)),
            ("failures".to_string(), Json::Num(failures as f64)),
            ("durable".to_string(), Json::Bool(opts.data_dir.is_some())),
            (
                "fsync".to_string(),
                Json::Str(opts.fsync.as_str().to_string()),
            ),
            (
                "submit_latency_ms".to_string(),
                Json::Obj(vec![
                    ("p50".to_string(), Json::Num(p50)),
                    ("p99".to_string(), Json::Num(p99)),
                    ("mean".to_string(), Json::Num(mean)),
                    ("max".to_string(), Json::Num(max)),
                    ("samples".to_string(), Json::Num(submit_ms.len() as f64)),
                ]),
            ),
        ];
        if let Some((samples, sp50, sp99)) = server_lat {
            fields.push((
                "server_round_latency_ms".to_string(),
                Json::Obj(vec![
                    ("p50".to_string(), Json::Num(sp50)),
                    ("p99".to_string(), Json::Num(sp99)),
                    ("samples".to_string(), Json::Num(samples)),
                ]),
            ));
        }
        println!("{}", Json::Obj(fields).encode());
    }

    if failures > 0 {
        eprintln!(
            "load_smoke: {failures} of {} sessions failed",
            opts.sessions
        );
        return ExitCode::FAILURE;
    }
    chat(format!("all {} sessions converged", opts.sessions));
    ExitCode::SUCCESS
}
